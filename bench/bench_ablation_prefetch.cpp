// Extension study: I/O prefetching x power management.  The paper assumes
// "other performance enhancement techniques like I/O prefetching are not
// employed" (§4.1); this sweep adds a compiler-directed prefetch lead to
// every read and asks whether the power results survive: hidden stalls
// shorten the run (less idle energy to harvest in absolute terms) while the
// per-disk idle-gap *structure* is preserved, so CMDRPM's relative savings
// persist.
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/runner.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;

  Table table("Ablation: prefetch lead (swim)");
  table.set_header({"Lead", "Base exec (s)", "Base (J)", "CMDRPM energy",
                    "CMDRPM time", "DRPM energy"});
  workloads::Benchmark swim = workloads::make_swim();
  for (const double lead : {0.0, 2.0, 5.0, 10.0, 20.0}) {
    experiments::ExperimentConfig config;
    config.gen.prefetch_lead_ms = lead;
    experiments::Runner runner(swim, config);
    const auto& base = runner.base_report();
    const auto cmdrpm = runner.run(experiments::Scheme::kCmdrpm);
    const auto drpm = runner.run(experiments::Scheme::kDrpm);
    table.add_row({
        fmt_time_ms(lead),
        fmt_double(base.execution_ms / 1000.0, 2),
        fmt_double(base.total_energy, 1),
        fmt_double(cmdrpm.normalized_energy, 3),
        fmt_double(cmdrpm.normalized_time, 3),
        fmt_double(drpm.normalized_energy, 3),
    });
  }
  bench::emit(table);
  return 0;
}
