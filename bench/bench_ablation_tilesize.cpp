// Ablation: tile footprint (DS(i)) for the layout-aware tiling pass, on
// wupwise — the benchmark whose TL+DL gain depends on the transposed
// matrix's blocked layout.  The tile footprint becomes each reshaped
// array's stripe size, so it sets both the request granularity and the
// per-tile residence time the power schemes can exploit.
//
// The tile-size cells fan out over the sweep engine; the anchor cell
// (untransformed Base) rides along as its own cell.
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/sweep.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;
  using experiments::Scheme;

  Table table("Ablation: tile footprint (wupwise, TL+DL)");
  table.set_header({"Tile bytes", "CMTPM energy", "CMDRPM energy",
                    "CMDRPM time"});
  const workloads::Benchmark wupwise = workloads::make_wupwise();
  const std::vector<Bytes> tiles = {kib(64), kib(128), kib(256), kib(512),
                                    mib(1)};

  std::vector<experiments::SweepCell> cells;
  {
    experiments::SweepCell anchor;
    anchor.label = "base";
    anchor.benchmark = wupwise;
    anchor.schemes = {Scheme::kBase};
    cells.push_back(std::move(anchor));
  }
  for (const Bytes tile : tiles) {
    experiments::SweepCell cell;
    cell.label = fmt_bytes(tile);
    cell.benchmark = wupwise;
    cell.config.transform = core::Transformation::kTLDL;
    cell.config.tile_bytes = tile;
    cell.schemes = {Scheme::kCmtpm, Scheme::kCmdrpm};
    cells.push_back(std::move(cell));
  }

  const std::vector<experiments::SweepCellResult> sweep =
      experiments::SweepEngine().run(cells);
  const Joules base_energy = sweep[0].results[0].energy_j;

  for (std::size_t i = 1; i < sweep.size(); ++i) {
    const experiments::SchemeResult& cmtpm = sweep[i].results[0];
    const experiments::SchemeResult& cmdrpm = sweep[i].results[1];
    table.add_row({
        sweep[i].label,
        fmt_double(cmtpm.energy_j / base_energy, 3),
        fmt_double(cmdrpm.energy_j / base_energy, 3),
        fmt_double(cmdrpm.normalized_time, 3),
    });
  }
  bench::emit(table);
  return 0;
}
