// Ablation: tile footprint (DS(i)) for the layout-aware tiling pass, on
// wupwise — the benchmark whose TL+DL gain depends on the transposed
// matrix's blocked layout.  The tile footprint becomes each reshaped
// array's stripe size, so it sets both the request granularity and the
// per-tile residence time the power schemes can exploit.
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/runner.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;

  Table table("Ablation: tile footprint (wupwise, TL+DL)");
  table.set_header({"Tile bytes", "CMTPM energy", "CMDRPM energy",
                    "CMDRPM time"});
  workloads::Benchmark wupwise = workloads::make_wupwise();

  experiments::ExperimentConfig base_config;
  experiments::Runner base_runner(wupwise, base_config);
  const Joules base_energy = base_runner.base_report().total_energy;

  for (const Bytes tile : {kib(64), kib(128), kib(256), kib(512), mib(1)}) {
    experiments::ExperimentConfig config;
    config.transform = core::Transformation::kTLDL;
    config.tile_bytes = tile;
    experiments::Runner runner(wupwise, config);
    const auto cmtpm = runner.run(experiments::Scheme::kCmtpm);
    const auto cmdrpm = runner.run(experiments::Scheme::kCmdrpm);
    table.add_row({
        fmt_bytes(tile),
        fmt_double(cmtpm.energy_j / base_energy, 3),
        fmt_double(cmdrpm.energy_j / base_energy, 3),
        fmt_double(cmdrpm.normalized_time, 3),
    });
  }
  bench::emit(table);
  return 0;
}
