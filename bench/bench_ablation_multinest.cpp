// Extension study: single-nest vs multi-nest tiling (the paper's stated
// future work).  For each benchmark with a tilable costly nest, compare
// TL+DL restricted to the costliest family against the chained multi-nest
// variant, under CMDRPM, normalized to the untransformed Base run.
#include <iostream>

#include "bench/bench_common.h"
#include "core/schedule.h"
#include "core/tiling.h"
#include "experiments/runner.h"
#include "policy/proactive.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "util/strings.h"

namespace {

double cmdrpm_energy(const sdpm::ir::Program& program,
                     const std::vector<sdpm::layout::Striping>& striping,
                     const sdpm::experiments::ExperimentConfig& config) {
  using namespace sdpm;
  const layout::LayoutTable table(program, striping, config.total_disks);
  core::SchedulerOptions so;
  so.access = config.gen;
  const core::ScheduleResult scheduled =
      core::schedule_power_calls(program, table, config.disk, so);
  trace::GeneratorOptions gen = config.gen;
  gen.noise = config.actual_noise;
  trace::TraceGenerator generator(scheduled.program, table, gen);
  policy::ProactivePolicy policy("CMDRPM");
  return sim::simulate(generator.generate(), config.disk, policy)
      .total_energy;
}

}  // namespace

int main() {
  using namespace sdpm;

  Table table("Single-nest vs multi-nest tiling (CMDRPM energy, normalized)");
  table.set_header({"Benchmark", "TL+DL (single)", "TL+DL (all nests)",
                    "Arrays reshaped (single/all)"});

  for (workloads::Benchmark& b : workloads::all_benchmarks()) {
    experiments::ExperimentConfig config;
    experiments::Runner base_runner(b, config);
    const Joules base_energy = base_runner.base_report().total_energy;

    core::TilingOptions single;
    single.total_disks = config.total_disks;
    single.base_striping = config.striping;
    single.access = config.gen;
    const core::TilingResult one = core::apply_loop_tiling(b.program, single);

    core::TilingOptions multi = single;
    multi.all_nests = true;
    const core::TilingResult all = core::apply_loop_tiling(b.program, multi);

    table.add_row({
        b.name,
        fmt_double(cmdrpm_energy(one.program, one.striping, config) /
                       base_energy,
                   3),
        fmt_double(cmdrpm_energy(all.program, all.striping, config) /
                       base_energy,
                   3),
        std::to_string(one.reshaped_arrays.size()) + " / " +
            std::to_string(all.reshaped_arrays.size()),
    });
  }
  bench::emit(table);
  return 0;
}
