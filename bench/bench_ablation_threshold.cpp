// Ablation: TPM idleness threshold, fixed vs adaptive (paper §2: "choosing
// the idleness threshold, by making use of either fixed or adaptive
// threshold based strategies, is crucial").  Evaluated on the LF+DL-
// transformed mgrid, where long consolidated idle periods make TPM matter.
#include <iostream>

#include "bench/bench_common.h"
#include "core/compiler.h"
#include "policy/adaptive_tpm.h"
#include "policy/base.h"
#include "policy/proactive.h"
#include "policy/tpm.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "util/strings.h"
#include "workloads/benchmarks.h"

int main() {
  using namespace sdpm;

  const workloads::Benchmark mgrid = workloads::make_mgrid();
  core::CompilerOptions co;
  const core::CompileOutput out = core::compile(
      mgrid.program, core::Transformation::kLFDL, std::nullopt, co);
  const layout::LayoutTable table = out.make_layout_table(co.total_disks);
  trace::TraceGenerator generator(out.program, table);
  const trace::Trace trace = generator.generate();
  const disk::DiskParameters params = co.disk_params;

  policy::BasePolicy base_policy;
  const sim::SimReport base = sim::simulate(trace, params, base_policy);

  Table t("Ablation: TPM idleness threshold (mgrid, LF+DL layout)");
  t.set_header({"Threshold", "Norm. energy", "Norm. time", "Spin-downs",
                "Demand spin-ups"});

  const auto report_row = [&](const std::string& label,
                              const sim::SimReport& report) {
    std::int64_t downs = 0, demand = 0;
    for (const auto& d : report.disks) {
      downs += d.spin_downs;
      demand += d.demand_spin_ups;
    }
    t.add_row({label,
               fmt_double(report.total_energy / base.total_energy, 3),
               fmt_double(report.execution_ms / base.execution_ms, 3),
               std::to_string(downs), std::to_string(demand)});
  };

  for (const TimeMs threshold :
       {2'000.0, 5'000.0, 15'190.0, 30'000.0, 60'000.0}) {
    policy::TpmPolicy policy(threshold);
    report_row(fmt_time_ms(threshold), sim::simulate(trace, params, policy));
  }
  {
    policy::AdaptiveTpmPolicy policy;
    report_row("adaptive", sim::simulate(trace, params, policy));
  }
  {
    // Reference: the paper's proactive CMTPM on the same transformed code —
    // pre-activation sidesteps the demand-wake cascades every reactive
    // threshold above suffers from (a 10.9 s wake stalls the application,
    // which lengthens every other disk's idle period past the threshold,
    // which triggers more spin-downs...).
    const core::CompileOutput cm = core::compile(
        mgrid.program, core::Transformation::kLFDL, core::PowerMode::kTpm,
        co);
    trace::TraceGenerator cm_generator(cm.program, table);
    policy::ProactivePolicy policy("CMTPM");
    report_row("CMTPM (proactive)",
               sim::simulate(cm_generator.generate(), params, policy));
  }
  bench::emit(t);
  return 0;
}
