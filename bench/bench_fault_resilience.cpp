// Fault-resilience sweep (robustness extension, DESIGN.md §8).
//
// Sweeps the per-attempt spin-up failure probability and compares four
// schemes on an iterative run of mgrid (LF+DL, 12 timesteps of the
// single-step trace — the compiler plans one timestep, the application
// repeats it): Base (always on), reactive TPM, the compiler-directed
// CMTPM proactive scheme, and CMTPM wrapped in the ResilientPolicy health
// monitor (R+CMTPM).  Under faults every commanded or demand spin-up may
// fail and retry with backoff (~11 s each); the resilient wrapper demotes
// disks that show retries or unplanned demand wakes to a conservative
// adaptive-TPM fallback, so execution time degrades gracefully while
// energy stays below Base.
#include <cstdint>

#include "bench/bench_common.h"
#include "experiments/runner.h"
#include "policy/base.h"
#include "policy/proactive.h"
#include "policy/resilient.h"
#include "policy/tpm.h"
#include "sim/faults.h"
#include "sim/simulator.h"
#include "util/strings.h"
#include "workloads/benchmarks.h"

int main() {
  using namespace sdpm;

  const int kTimesteps = 12;
  workloads::Benchmark bench = workloads::make_benchmark("mgrid");
  experiments::ExperimentConfig config;
  config.transform = core::Transformation::kLFDL;
  experiments::Runner runner(bench, config);
  const trace::Trace plain =
      trace::repeat_trace(runner.trace(), kTimesteps);
  const trace::Trace cm = trace::repeat_trace(
      runner.cm_trace(core::PowerMode::kTpm), kTimesteps);

  Table table("Fault resilience on mgrid LF+DL x" +
              std::to_string(kTimesteps) + " (spin-up failure sweep)");
  table.set_header({"Failure %", "Base J", "Base s", "TPM J", "TPM s",
                    "CMTPM J", "CMTPM s", "R+CMTPM J", "R+CMTPM s",
                    "Retries", "Demotions"});

  for (const double rate : {0.0, 0.02, 0.05, 0.10, 0.15}) {
    sim::FaultConfig faults;
    faults.spin_up_failure_prob = rate;

    policy::BasePolicy base;
    const sim::SimReport base_report = sim::simulate(
        plain, config.disk, base, sim::ReplayMode::kClosedLoop, faults);

    policy::TpmPolicy tpm;
    const sim::SimReport tpm_report = sim::simulate(
        plain, config.disk, tpm, sim::ReplayMode::kClosedLoop, faults);

    policy::ProactivePolicy cmtpm("CMTPM");
    const sim::SimReport cm_report = sim::simulate(
        cm, config.disk, cmtpm, sim::ReplayMode::kClosedLoop, faults);

    policy::ProactivePolicy inner("CMTPM");
    policy::ResilientPolicy resilient(inner);
    const sim::SimReport res_report = sim::simulate(
        cm, config.disk, resilient, sim::ReplayMode::kClosedLoop, faults);

    table.add_row({
        fmt_double(100.0 * rate, 0),
        fmt_double(base_report.total_energy, 0),
        fmt_double(base_report.execution_ms / 1e3, 1),
        fmt_double(tpm_report.total_energy, 0),
        fmt_double(tpm_report.execution_ms / 1e3, 1),
        fmt_double(cm_report.total_energy, 0),
        fmt_double(cm_report.execution_ms / 1e3, 1),
        fmt_double(res_report.total_energy, 0),
        fmt_double(res_report.execution_ms / 1e3, 1),
        std::to_string(res_report.spin_up_retries()),
        std::to_string(resilient.demotions()),
    });
  }

  bench::emit(table);
  return 0;
}
