// Regenerates paper Figure 8: normalized execution time of swim as a
// function of the stripe factor (number of disks).
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/runner.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;

  Table table("Figure 8: swim execution time vs stripe factor");
  std::vector<std::string> header = {"Disks"};
  for (experiments::Scheme s : experiments::all_schemes()) {
    header.push_back(experiments::to_string(s));
  }
  header.push_back("Base (ms)");
  table.set_header(header);

  workloads::Benchmark swim = workloads::make_swim();
  for (const int disks : {2, 4, 8, 16, 32}) {
    experiments::ExperimentConfig config;
    config.total_disks = disks;
    config.striping.stripe_factor = disks;
    experiments::Runner runner(swim, config);
    std::vector<std::string> row = {std::to_string(disks)};
    for (const auto& result : runner.run_all()) {
      row.push_back(fmt_double(result.normalized_time, 3));
    }
    row.push_back(fmt_double(runner.base_report().execution_ms, 1));
    table.add_row(row);
  }
  bench::emit(table);
  return 0;
}
