// Ablation: buffer-cache capacity.  The paper assumes disk-resident data
// with a buffer cache deciding which references reach the disks; this sweep
// shows how cache capacity shapes request counts and scheme behaviour on
// mgrid (the most re-sweep-heavy benchmark).
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/runner.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;

  Table table("Ablation: buffer-cache capacity (mgrid)");
  table.set_header({"Cache", "Requests", "Base (J)", "Base (s)",
                    "CMDRPM energy", "DRPM energy"});
  workloads::Benchmark mgrid = workloads::make_mgrid();
  for (const Bytes cache : {mib(0), mib(2), mib(6), mib(12), mib(32)}) {
    experiments::ExperimentConfig config;
    config.gen.cache_bytes = cache;
    experiments::Runner runner(mgrid, config);
    const auto& base = runner.base_report();
    const auto cmdrpm = runner.run(experiments::Scheme::kCmdrpm);
    const auto drpm = runner.run(experiments::Scheme::kDrpm);
    table.add_row({
        cache == 0 ? "none" : fmt_bytes(cache),
        std::to_string(base.requests),
        fmt_double(base.total_energy, 1),
        fmt_double(base.execution_ms / 1000.0, 2),
        fmt_double(cmdrpm.normalized_energy, 3),
        fmt_double(drpm.normalized_energy, 3),
    });
  }
  bench::emit(table);
  return 0;
}
