// Observability: per-benchmark idle-gap distributions under Base.
//
// The gap distribution *is* the opportunity every power scheme harvests:
// quantiles are printed against the two decision thresholds — the DRPM
// one-step round trip (smallest exploitable gap) and the TPM break-even
// (smallest spin-down-worthy gap).  This is the companion data for
// EXPERIMENTS.md's discussion of why TPM never fires on the untransformed
// codes while DRPM thrives.
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/profile.h"
#include "experiments/runner.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;

  Table table("Idle-gap distribution per benchmark (Base run)");
  table.set_header({"Benchmark", "Gaps", "Median", "p95", "Max",
                    "> DRPM round trip", "> TPM break-even"});
  for (workloads::Benchmark& b : workloads::all_benchmarks()) {
    experiments::ExperimentConfig config;
    experiments::Runner runner(b, config);
    const sim::SimReport& base = runner.base_report();
    const Histogram gaps = experiments::idle_gap_histogram(base);

    // Count gaps above each threshold directly from the busy timelines.
    const TimeMs round_trip = 2 * config.disk.drpm.transition_time_per_step;
    const TimeMs break_even = config.disk.break_even_time();
    std::int64_t above_rt = 0, above_be = 0, total = 0;
    for (const sim::DiskReport& d : base.disks) {
      TimeMs cursor = 0;
      for (const sim::BusyPeriod& bp : d.busy_periods) {
        const TimeMs gap = bp.start - cursor;
        if (gap > 0) {
          ++total;
          if (gap > round_trip) ++above_rt;
          if (gap > break_even) ++above_be;
        }
        cursor = bp.completion;
      }
      const TimeMs tail = base.execution_ms - cursor;
      if (tail > 0) {
        ++total;
        if (tail > round_trip) ++above_rt;
        if (tail > break_even) ++above_be;
      }
    }
    table.add_row({
        b.name,
        std::to_string(total),
        fmt_time_ms(gaps.median()),
        fmt_time_ms(gaps.p95()),
        fmt_time_ms(gaps.max()),
        fmt_double(100.0 * above_rt / std::max<std::int64_t>(total, 1), 1) +
            "%",
        fmt_double(100.0 * above_be / std::max<std::int64_t>(total, 1), 1) +
            "%",
    });
  }
  bench::emit(table);
  return 0;
}
