// Regenerates paper Figure 6: normalized execution time of swim as a
// function of the stripe size.  The paper's observation: the reactive
// DRPM's penalty grows with the stripe size (longer same-disk runs invite
// the controller to drop the speed, then every subsequent larger transfer
// pays for it), while CMDRPM stays at the Base time.
#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/runner.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;

  Table table("Figure 6: swim execution time vs stripe size");
  std::vector<std::string> header = {"Stripe"};
  for (experiments::Scheme s : experiments::all_schemes()) {
    header.push_back(experiments::to_string(s));
  }
  header.push_back("Base (ms)");
  table.set_header(header);

  workloads::Benchmark swim = workloads::make_swim();
  for (const Bytes stripe : {kib(16), kib(32), kib(64), kib(128), kib(256)}) {
    experiments::ExperimentConfig config;
    config.striping.stripe_size = stripe;
    // The application's I/O granularity stays fixed at the default 64 KB
    // request size; the stripe size only changes how requests map to disks
    // (larger stripes send more consecutive requests to the same disk).
    config.gen.block_size = std::min<Bytes>(kib(64), stripe);
    experiments::Runner runner(swim, config);
    std::vector<std::string> row = {fmt_bytes(stripe)};
    for (const auto& result : runner.run_all()) {
      row.push_back(fmt_double(result.normalized_time, 3));
    }
    row.push_back(fmt_double(runner.base_report().execution_ms, 1));
    table.add_row(row);
  }
  bench::emit(table);
  return 0;
}
