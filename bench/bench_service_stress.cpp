// bench_service_stress — end-to-end service latency/throughput under
// concurrent load, with a p99 regression gate.
//
//   bench_service_stress [--clients N] [--jobs N] [--capacity N]
//                        [--batch N] [--workers N] [--socket PATH]
//                        [--out FILE] [--compare FILE] [--tolerance PCT]
//                        [--telemetry-dump FILE] [--trace-out FILE]
//
// Starts an in-process sdpm_serviced daemon on a Unix socket, hammers it
// with --clients concurrent client connections submitting --jobs jobs
// each (submit, then result --wait), and reports a BenchSnapshot (suite
// "service"): jobs/s throughput plus client-observed e2e and
// daemon-side queue-wait p50/p99.  The snapshot is the committed
// BENCH_service.json baseline; --compare FILE re-checks a fresh run
// against it with the calibration-normalized comparator and exits 4 on a
// regression (throughput drop beyond --tolerance, or normalized e2e p99
// growth beyond twice that) — the same exit-4 contract as
// `sdpm_cli bench --compare`.
//
// --telemetry-dump and --trace-out pass through to the daemon: the former
// leaves the final per-stage telemetry snapshot on disk, the latter
// writes a chrome://tracing file in which the first job of the first
// client carries a trace_id, so the artifact demonstrates service-lane /
// disk-track stitching under load.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "api/job_spec.h"
#include "experiments/bench_baseline.h"
#include "obs/latency.h"
#include "obs/sinks.h"
#include "obs/tracer.h"
#include "service/client.h"
#include "service/daemon.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace {

using namespace sdpm;

[[noreturn]] void usage(const std::string& message = "") {
  if (!message.empty()) std::cerr << "error: " << message << "\n";
  std::cerr << "usage: bench_service_stress [--clients N] [--jobs N] "
               "[--capacity N] [--batch N] [--workers N] [--socket PATH] "
               "[--out FILE] [--compare FILE] [--tolerance PCT] "
               "[--telemetry-dump FILE] [--trace-out FILE]\n";
  std::exit(2);
}

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("unexpected argument '" + key + "'");
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags[key] = argv[++i];
    } else {
      flags[key] = "";
    }
  }
  for (const auto& [key, value] : flags) {
    if (key != "clients" && key != "jobs" && key != "capacity" &&
        key != "batch" && key != "workers" && key != "socket" &&
        key != "out" && key != "compare" && key != "tolerance" &&
        key != "telemetry-dump" && key != "trace-out") {
      usage("unknown flag '--" + key + "'");
    }
  }

  const int clients =
      flags.count("clients") != 0 ? std::atoi(flags["clients"].c_str()) : 32;
  const int jobs_per_client =
      flags.count("jobs") != 0 ? std::atoi(flags["jobs"].c_str()) : 64;
  if (clients < 1) usage("--clients must be >= 1");
  if (jobs_per_client < 1) usage("--jobs must be >= 1");
  const double tolerance =
      flags.count("tolerance") != 0 ? std::atof(flags["tolerance"].c_str())
                                    : 15.0;

  service::DaemonOptions options;
  options.socket_path =
      flags.count("socket") != 0
          ? flags["socket"]
          : str_printf("/tmp/sdpm_bench_stress.%d.sock",
                       static_cast<int>(::getpid()));
  options.queue_capacity =
      flags.count("capacity") != 0
          ? static_cast<std::size_t>(std::atoll(flags["capacity"].c_str()))
          : 4096;
  if (flags.count("batch") != 0) {
    options.max_batch =
        static_cast<std::size_t>(std::atoll(flags["batch"].c_str()));
  }
  if (flags.count("workers") != 0) {
    options.jobs = static_cast<unsigned>(std::atoi(flags["workers"].c_str()));
  }
  if (flags.count("telemetry-dump") != 0) {
    options.telemetry_dump = flags["telemetry-dump"];
  }

  obs::EventTracer tracer;
  std::ofstream trace_file;
  std::optional<obs::ChromeTraceSink> chrome;
  const bool traced = flags.count("trace-out") != 0;
  if (traced) {
    trace_file.open(flags["trace-out"]);
    if (!trace_file) usage("cannot open '" + flags["trace-out"] + "'");
    tracer.add_sink(chrome.emplace(trace_file));
    options.tracer = &tracer;
  }

  try {
    // Calibrate BEFORE the stress run so the measurement does not share
    // the machine with the daemon's worker pool.
    const double calib = experiments::calibration_score();

    service::ServiceDaemon daemon(options);
    daemon.start();

    obs::LatencyHistogram e2e;  // client-observed submit -> terminal
    std::atomic<std::int64_t> completed{0};
    std::atomic<std::int64_t> failed{0};

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        try {
          service::ClientOptions client_options;
          client_options.connect_attempts = 40;
          client_options.jitter_seed =
              0x5d9f2e3b4c1a7081ull + static_cast<std::uint64_t>(c);
          service::Client client(options.socket_path, client_options);
          for (int j = 0; j < jobs_per_client; ++j) {
            api::JobSpec spec =
                api::JobSpecBuilder("galgel").scheme("Base").build();
            spec.label = str_printf("stress-c%d-j%d", c, j);
            service::TraceContext trace;
            if (traced && c == 0 && j == 0) {
              // One traced job per run keeps the chrome artifact small
              // while still demonstrating lane/track stitching.
              trace.trace_id = 0xbe5c0de5e55101ull;
              trace.span_id = 1;
            }
            const auto t_submit = std::chrono::steady_clock::now();
            const std::int64_t id = client.submit(spec, 64, trace);
            const Json job = client.result(id, /*wait=*/true);
            e2e.record(wall_ms_since(t_submit));
            if (job.at("state").as_string() == "done") {
              completed.fetch_add(1, std::memory_order_relaxed);
            } else {
              failed.fetch_add(1, std::memory_order_relaxed);
            }
          }
        } catch (const std::exception& e) {
          failed.fetch_add(jobs_per_client, std::memory_order_relaxed);
          std::cerr << "client " << c << " died: " << e.what() << "\n";
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall_ms = wall_ms_since(t0);

    // Daemon-side queue-wait quantiles, read over the wire like any
    // monitoring client would.
    double queue_wait_p50 = 0;
    double queue_wait_p99 = 0;
    {
      service::Client probe(options.socket_path);
      const Json stages =
          probe.telemetry().at("telemetry").at("stages");
      queue_wait_p50 = stages.at("queue_wait").at("p50_ms").as_double();
      queue_wait_p99 = stages.at("queue_wait").at("p99_ms").as_double();
      probe.shutdown();
    }
    daemon.wait();
    tracer.close();

    const obs::LatencyHistogram::Quantiles q = e2e.quantiles();
    experiments::BenchSnapshot snap;
    snap.suite = "service";
    snap.jobs = options.jobs != 0 ? options.jobs : default_jobs();
    snap.calib_score = calib;
    snap.wall_ms = wall_ms;
    snap.requests_simulated = completed.load();
    snap.requests_per_sec =
        wall_ms > 0 ? completed.load() / (wall_ms / 1000.0) : 0;
    snap.clients = clients;
    snap.e2e_p50_ms = q.p50;
    snap.e2e_p99_ms = q.p99;
    snap.queue_wait_p50_ms = queue_wait_p50;
    snap.queue_wait_p99_ms = queue_wait_p99;

    const std::string json = snap.to_json();
    if (flags.count("out") != 0) {
      std::ofstream out(flags["out"]);
      if (!out) usage("cannot open '" + flags["out"] + "'");
      out << json << "\n";
    }
    std::cout << json << "\n";

    if (failed.load() > 0) {
      std::cerr << "bench_service_stress: " << failed.load()
                << " jobs failed\n";
      return 1;
    }

    if (flags.count("compare") != 0) {
      std::ifstream in(flags["compare"]);
      if (!in) usage("cannot open '" + flags["compare"] + "'");
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      const experiments::BenchSnapshot baseline =
          experiments::BenchSnapshot::from_json(text);
      const experiments::BenchComparison cmp =
          experiments::compare_snapshots(baseline, snap, tolerance);
      for (const std::string& note : cmp.notes) {
        std::cerr << note << "\n";
      }
      if (cmp.regressed) return 4;
    }
    return 0;
  } catch (const sdpm::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
