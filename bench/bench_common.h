// Shared helpers for the benchmark harness binaries.
//
// Every bench binary regenerates one table or figure from the paper and
// prints it through util/Table.  Set SDPM_CSV=1 in the environment to emit
// CSV (for plotting) instead of the aligned ASCII table.
#pragma once

#include <cstdlib>
#include <iostream>

#include "util/table.h"

namespace sdpm::bench {

inline bool csv_requested() {
  const char* env = std::getenv("SDPM_CSV");
  return env != nullptr && env[0] == '1';
}

inline void emit(const Table& table) {
  if (csv_requested()) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << std::endl;
}

}  // namespace sdpm::bench
