// Regenerates paper Table 1: the default simulation parameters, printed
// from the live defaults so the documentation can never drift from the
// code.  Derived quantities the paper implies (break-even threshold, the
// RPM ladder's power curve) are printed alongside.
#include <iostream>

#include "bench/bench_common.h"
#include "disk/parameters.h"
#include "layout/striping.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;
  const disk::DiskParameters p = disk::DiskParameters::ultrastar_36z15();
  p.validate();

  Table table("Table 1: default simulation parameters");
  table.set_header({"Parameter", "Value"});
  table.add_row({"Disk model", p.model});
  table.add_row({"Interface", p.interface});
  table.add_row({"Storage capacity", fmt_bytes(p.capacity)});
  table.add_row({"RPM", std::to_string(p.rpm)});
  table.add_row({"Average seek time", fmt_time_ms(p.average_seek_time)});
  table.add_row({"Average rotation time",
                 fmt_time_ms(p.average_rotation_time)});
  table.add_row({"Internal transfer rate",
                 fmt_double(p.internal_transfer_mb_per_s, 0) + " MB/sec"});
  table.add_row({"Power (active)", fmt_double(p.tpm.active_power, 1) + " W"});
  table.add_row({"Power (idle)", fmt_double(p.tpm.idle_power, 1) + " W"});
  table.add_row({"Power (standby)",
                 fmt_double(p.tpm.standby_power, 1) + " W"});
  table.add_row({"Energy (spin down)",
                 fmt_double(p.tpm.spin_down_energy, 0) + " J"});
  table.add_row({"Time (spin down)", fmt_time_ms(p.tpm.spin_down_time)});
  table.add_row({"Energy (spin up)",
                 fmt_double(p.tpm.spin_up_energy, 0) + " J"});
  table.add_row({"Time (spin up)", fmt_time_ms(p.tpm.spin_up_time)});
  table.add_row({"Maximum RPM level", std::to_string(p.drpm.max_rpm)});
  table.add_row({"Minimum RPM level", std::to_string(p.drpm.min_rpm)});
  table.add_row({"RPM step-size", std::to_string(p.drpm.rpm_step)});
  table.add_row({"Window size", std::to_string(p.drpm.window_size)});
  table.add_row({"RPM step transition time",
                 fmt_time_ms(p.drpm.transition_time_per_step)});
  layout::Striping striping;
  table.add_row({"Stripe unit (stripe size)",
                 fmt_bytes(striping.stripe_size)});
  table.add_row({"Stripe factor (number of disks)",
                 std::to_string(striping.stripe_factor)});
  table.add_row({"Starting iodevice (starting disk)",
                 std::to_string(striping.starting_disk)});
  table.add_row({"[derived] TPM break-even time",
                 fmt_time_ms(p.break_even_time())});
  bench::emit(table);

  Table ladder("DRPM ladder (derived power/mechanics per level)");
  ladder.set_header({"Level", "RPM", "Idle (W)", "Active (W)",
                     "Rot. latency", "Transfer (MB/s)"});
  for (int level = 0; level < p.rpm_level_count(); ++level) {
    ladder.add_row({
        std::to_string(level),
        std::to_string(p.rpm_of_level(level)),
        fmt_double(p.idle_power_at_level(level), 2),
        fmt_double(p.active_power_at_level(level), 2),
        fmt_time_ms(p.rotational_latency_at_level(level)),
        fmt_double(p.transfer_rate_at_level(level), 1),
    });
  }
  bench::emit(ladder);
  return 0;
}
