// Regenerates paper Figure 3: normalized disk energy consumption of every
// benchmark under Base/TPM/ITPM/DRPM/IDRPM/CMTPM/CMDRPM with the default
// configuration.  Values are normalized against the Base scheme (1.00).
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/runner.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;

  Table table("Figure 3: normalized energy consumption");
  std::vector<std::string> header = {"Benchmark"};
  for (experiments::Scheme s : experiments::all_schemes()) {
    header.push_back(experiments::to_string(s));
  }
  table.set_header(header);

  std::vector<double> sums(experiments::all_schemes().size(), 0.0);
  int count = 0;
  for (workloads::Benchmark& b : workloads::all_benchmarks()) {
    experiments::ExperimentConfig config;
    experiments::Runner runner(b, config);
    std::vector<std::string> row = {b.name};
    const auto results = runner.run_all();
    for (std::size_t i = 0; i < results.size(); ++i) {
      row.push_back(fmt_double(results[i].normalized_energy, 3));
      sums[i] += results[i].normalized_energy;
    }
    table.add_row(row);
    ++count;
  }
  std::vector<std::string> avg = {"average"};
  for (double s : sums) avg.push_back(fmt_double(s / count, 3));
  table.add_row(avg);

  bench::emit(table);
  return 0;
}
