// Regenerates paper Figure 3: normalized disk energy consumption of every
// benchmark under Base/TPM/ITPM/DRPM/IDRPM/CMTPM/CMDRPM with the default
// configuration.  Values are normalized against the Base scheme (1.00).
// The six benchmark jobs go through the api::Session facade as one batch
// (--jobs/SDPM_JOBS controls the worker count); results are identical to
// the serial run.
#include <iostream>

#include "api/session.h"
#include "bench/bench_common.h"
#include "experiments/runner.h"
#include "util/strings.h"
#include "workloads/benchmarks.h"

int main() {
  using namespace sdpm;

  Table table("Figure 3: normalized energy consumption");
  std::vector<std::string> header = {"Benchmark"};
  for (experiments::Scheme s : experiments::all_schemes()) {
    header.push_back(experiments::to_string(s));
  }
  table.set_header(header);

  std::vector<api::JobSpec> specs;
  for (const std::string& name : workloads::benchmark_names()) {
    specs.push_back(api::JobSpecBuilder(name).label(name).build());
  }
  api::Session session;
  const std::vector<api::JobResult> sweep = session.run_batch(specs);

  std::vector<double> sums(experiments::all_schemes().size(), 0.0);
  for (const api::JobResult& cell : sweep) {
    std::vector<std::string> row = {cell.label};
    for (std::size_t i = 0; i < cell.schemes.size(); ++i) {
      row.push_back(fmt_double(cell.schemes[i].normalized_energy, 3));
      sums[i] += cell.schemes[i].normalized_energy;
    }
    table.add_row(row);
  }
  std::vector<std::string> avg = {"average"};
  for (double s : sums) {
    avg.push_back(fmt_double(s / static_cast<double>(sweep.size()), 3));
  }
  table.add_row(avg);

  bench::emit(table);
  return 0;
}
