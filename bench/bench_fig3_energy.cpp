// Regenerates paper Figure 3: normalized disk energy consumption of every
// benchmark under Base/TPM/ITPM/DRPM/IDRPM/CMTPM/CMDRPM with the default
// configuration.  Values are normalized against the Base scheme (1.00).
// The six benchmark cells fan out over the sweep engine (--jobs/SDPM_JOBS
// controls the worker count); results are identical to the serial run.
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/sweep.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;

  Table table("Figure 3: normalized energy consumption");
  std::vector<std::string> header = {"Benchmark"};
  for (experiments::Scheme s : experiments::all_schemes()) {
    header.push_back(experiments::to_string(s));
  }
  table.set_header(header);

  const std::vector<experiments::SweepCell> cells =
      experiments::cells_for_benchmarks(workloads::all_benchmarks(),
                                        experiments::ExperimentConfig{});
  const std::vector<experiments::SweepCellResult> sweep =
      experiments::SweepEngine().run(cells);

  std::vector<double> sums(experiments::all_schemes().size(), 0.0);
  for (const experiments::SweepCellResult& cell : sweep) {
    std::vector<std::string> row = {cell.label};
    for (std::size_t i = 0; i < cell.results.size(); ++i) {
      row.push_back(fmt_double(cell.results[i].normalized_energy, 3));
      sums[i] += cell.results[i].normalized_energy;
    }
    table.add_row(row);
  }
  std::vector<std::string> avg = {"average"};
  for (double s : sums) {
    avg.push_back(fmt_double(s / static_cast<double>(sweep.size()), 3));
  }
  table.add_row(avg);

  bench::emit(table);
  return 0;
}
