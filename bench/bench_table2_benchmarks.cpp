// Regenerates paper Table 2: benchmark characteristics under the Base
// scheme with the default configuration (64 KB stripes over 8 disks).
// Columns show the paper's reported value next to the value our substrate
// measures.
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/runner.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;

  Table table("Table 2: benchmarks and their characteristics");
  table.set_header({"Benchmark", "Data (MB)", "Reqs (paper)", "Reqs (sim)",
                    "Base E (paper J)", "Base E (sim J)",
                    "Exec (paper ms)", "Exec (sim ms)"});

  for (workloads::Benchmark& b : workloads::all_benchmarks()) {
    experiments::ExperimentConfig config;
    experiments::Runner runner(b, config);
    const sim::SimReport& base = runner.base_report();
    table.add_row({
        b.name,
        fmt_double(static_cast<double>(b.program.total_data_bytes()) /
                       (1024.0 * 1024.0),
                   1),
        std::to_string(b.paper.disk_requests),
        std::to_string(base.requests),
        fmt_double(b.paper.base_energy_j, 2),
        fmt_double(base.total_energy, 2),
        fmt_double(b.paper.execution_ms, 2),
        fmt_double(base.execution_ms, 2),
    });
  }
  bench::emit(table);
  return 0;
}
