// Ablation: the reactive DRPM controller's window size.  The paper uses 30
// "since our evaluation considers one benchmark program at a time, and the
// resulting number of I/O requests is comparatively small"; this sweep
// shows the responsiveness/stability trade-off that motivates the choice.
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/runner.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;

  Table table("Ablation: DRPM controller window size (swim)");
  table.set_header({"Window", "Norm. energy", "Norm. time"});
  workloads::Benchmark swim = workloads::make_swim();
  for (const int window : {5, 15, 30, 60, 120}) {
    experiments::ExperimentConfig config;
    config.disk.drpm.window_size = window;
    experiments::Runner runner(swim, config);
    const auto drpm = runner.run(experiments::Scheme::kDrpm);
    table.add_row({std::to_string(window),
                   fmt_double(drpm.normalized_energy, 3),
                   fmt_double(drpm.normalized_time, 3)});
  }
  bench::emit(table);
  return 0;
}
