// Regenerates paper Figure 13: normalized energy consumption with the code
// transformations (LF, TL, LF+DL, TL+DL) under the compiler-managed
// schemes.  All values are normalized against the *original* (untransformed)
// program under Base — the same normalization the paper uses — so a value
// below the untransformed CMTPM/CMDRPM column shows the additional benefit
// contributed by the transformation.
//
// The (benchmark x transformation) grid goes through the api::Session
// facade as one batch: one job per pair, the untransformed job also
// carrying the Base scheme that anchors the benchmark's normalization.
#include <iostream>

#include "api/session.h"
#include "bench/bench_common.h"
#include "core/compiler.h"
#include "util/strings.h"
#include "workloads/benchmarks.h"

int main() {
  using namespace sdpm;

  const std::vector<std::string> transforms = {"none", "LF", "TL", "LF+DL",
                                               "TL+DL"};
  const std::vector<std::string> schemes = {"CMTPM", "CMDRPM"};

  Table table("Figure 13: normalized energy with code transformations");
  std::vector<std::string> header = {"Benchmark"};
  for (const std::string& t : transforms) {
    for (const std::string& s : schemes) {
      header.push_back(t + "/" + s);
    }
  }
  table.set_header(header);

  const std::vector<std::string> benchmarks = workloads::benchmark_names();
  std::vector<api::JobSpec> specs;
  for (const std::string& b : benchmarks) {
    for (const std::string& t : transforms) {
      api::JobSpecBuilder builder(b);
      builder.transform(t);
      // The untransformed job also anchors the normalization.
      if (t == "none") builder.scheme("Base");
      for (const std::string& s : schemes) builder.scheme(s);
      specs.push_back(builder.build());
    }
  }

  api::Session session;
  const std::vector<api::JobResult> sweep = session.run_batch(specs);

  std::vector<double> sums(transforms.size() * schemes.size(), 0.0);
  std::size_t cell_index = 0;
  for (const std::string& b : benchmarks) {
    // jobs are laid out benchmark-major, "none" first.
    const Joules base_energy = sweep[cell_index].schemes[0].energy_j;
    std::vector<std::string> row = {b};
    std::size_t col = 0;
    for (std::size_t t = 0; t < transforms.size(); ++t) {
      const api::JobResult& cell = sweep[cell_index++];
      const std::size_t first = t == 0 ? 1 : 0;  // skip the Base anchor
      for (std::size_t s = first; s < cell.schemes.size(); ++s) {
        const double normalized = cell.schemes[s].energy_j / base_energy;
        row.push_back(fmt_double(normalized, 3));
        sums[col++] += normalized;
      }
    }
    table.add_row(row);
  }
  std::vector<std::string> avg = {"average"};
  for (double s : sums) {
    avg.push_back(fmt_double(s / static_cast<double>(benchmarks.size()), 3));
  }
  table.add_row(avg);

  bench::emit(table);
  return 0;
}
