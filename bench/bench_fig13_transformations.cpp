// Regenerates paper Figure 13: normalized energy consumption with the code
// transformations (LF, TL, LF+DL, TL+DL) under the compiler-managed
// schemes.  All values are normalized against the *original* (untransformed)
// program under Base — the same normalization the paper uses — so a value
// below the untransformed CMTPM/CMDRPM column shows the additional benefit
// contributed by the transformation.
//
// The (benchmark x transformation) grid fans out over the sweep engine:
// one cell per pair, the untransformed cell also carrying the Base scheme
// that anchors the benchmark's normalization.
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/sweep.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;
  using core::Transformation;
  using experiments::Scheme;

  const std::vector<Transformation> transforms = {
      Transformation::kNone, Transformation::kLF, Transformation::kTL,
      Transformation::kLFDL, Transformation::kTLDL};
  const std::vector<Scheme> schemes = {Scheme::kCmtpm, Scheme::kCmdrpm};

  Table table("Figure 13: normalized energy with code transformations");
  std::vector<std::string> header = {"Benchmark"};
  for (Transformation t : transforms) {
    for (Scheme s : schemes) {
      header.push_back(std::string(core::to_string(t)) + "/" +
                       experiments::to_string(s));
    }
  }
  table.set_header(header);

  const std::vector<workloads::Benchmark> benchmarks =
      workloads::all_benchmarks();
  std::vector<experiments::SweepCell> cells;
  for (const workloads::Benchmark& b : benchmarks) {
    for (Transformation t : transforms) {
      experiments::SweepCell cell;
      cell.label = b.name + "/" + core::to_string(t);
      cell.benchmark = b;
      cell.config.transform = t;
      cell.schemes = schemes;
      // The untransformed cell also anchors the normalization.
      if (t == Transformation::kNone) {
        cell.schemes.insert(cell.schemes.begin(), Scheme::kBase);
      }
      cells.push_back(std::move(cell));
    }
  }

  const std::vector<experiments::SweepCellResult> sweep =
      experiments::SweepEngine().run(cells);

  std::vector<double> sums(transforms.size() * schemes.size(), 0.0);
  std::size_t cell_index = 0;
  for (const workloads::Benchmark& b : benchmarks) {
    // cells are laid out benchmark-major, kNone first.
    const Joules base_energy = sweep[cell_index].results[0].energy_j;
    std::vector<std::string> row = {b.name};
    std::size_t col = 0;
    for (std::size_t t = 0; t < transforms.size(); ++t) {
      const experiments::SweepCellResult& cell = sweep[cell_index++];
      const std::size_t first = t == 0 ? 1 : 0;  // skip the Base anchor
      for (std::size_t s = first; s < cell.results.size(); ++s) {
        const double normalized = cell.results[s].energy_j / base_energy;
        row.push_back(fmt_double(normalized, 3));
        sums[col++] += normalized;
      }
    }
    table.add_row(row);
  }
  std::vector<std::string> avg = {"average"};
  for (double s : sums) {
    avg.push_back(fmt_double(s / static_cast<double>(benchmarks.size()), 3));
  }
  table.add_row(avg);

  bench::emit(table);
  return 0;
}
