// Regenerates paper Figure 13: normalized energy consumption with the code
// transformations (LF, TL, LF+DL, TL+DL) under the compiler-managed
// schemes.  All values are normalized against the *original* (untransformed)
// program under Base — the same normalization the paper uses — so a value
// below the untransformed CMTPM/CMDRPM column shows the additional benefit
// contributed by the transformation.
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/runner.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;
  using core::Transformation;
  using experiments::Scheme;

  const std::vector<Transformation> transforms = {
      Transformation::kNone, Transformation::kLF, Transformation::kTL,
      Transformation::kLFDL, Transformation::kTLDL};
  const std::vector<Scheme> schemes = {Scheme::kCmtpm, Scheme::kCmdrpm};

  Table table("Figure 13: normalized energy with code transformations");
  std::vector<std::string> header = {"Benchmark"};
  for (Transformation t : transforms) {
    for (Scheme s : schemes) {
      header.push_back(std::string(core::to_string(t)) + "/" +
                       experiments::to_string(s));
    }
  }
  table.set_header(header);

  std::vector<double> sums(transforms.size() * schemes.size(), 0.0);
  int count = 0;
  for (workloads::Benchmark& b : workloads::all_benchmarks()) {
    // Reference: untransformed program, Base scheme.
    experiments::ExperimentConfig base_config;
    experiments::Runner base_runner(b, base_config);
    const Joules base_energy = base_runner.base_report().total_energy;

    std::vector<std::string> row = {b.name};
    std::size_t col = 0;
    for (Transformation t : transforms) {
      experiments::ExperimentConfig config;
      config.transform = t;
      experiments::Runner runner(b, config);
      for (Scheme s : schemes) {
        const auto result = runner.run(s);
        const double normalized = result.energy_j / base_energy;
        row.push_back(fmt_double(normalized, 3));
        sums[col++] += normalized;
      }
    }
    table.add_row(row);
    ++count;
  }
  std::vector<std::string> avg = {"average"};
  for (double s : sums) avg.push_back(fmt_double(s / count, 3));
  table.add_row(avg);

  bench::emit(table);
  return 0;
}
