// Extension study: multiprogramming.  The paper evaluates one application
// at a time; this bench co-runs two benchmarks against the same 8-disk
// array and asks how each power-management scheme copes with interference:
//   - reactive DRPM adapts to the *merged* load (its home turf),
//   - CMDRPM executes schedules planned per program in isolation, so
//     co-runner traffic invalidates some of its idle-period predictions.
// Energies are normalized to the co-run under Base.
#include <iostream>

#include "bench/bench_common.h"
#include "core/schedule.h"
#include "experiments/runner.h"
#include "policy/base.h"
#include "policy/drpm.h"
#include "policy/proactive.h"
#include "policy/tpm.h"
#include "sim/multi_stream.h"
#include "trace/generator.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;

  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"swim", "galgel"}, {"mgrid", "mesa"}, {"swim", "mgrid"}};

  Table table("Co-run of two benchmarks on a shared 8-disk array");
  table.set_header({"Pair", "Scheme", "Energy (norm)", "Makespan (norm)",
                    "Mean resp (ms)"});

  for (const auto& [first, second] : pairs) {
    const experiments::ExperimentConfig config;
    std::vector<trace::Trace> base_traces;
    std::vector<trace::Trace> cm_traces;
    std::vector<std::string> names = {first, second};
    for (const std::string& name : names) {
      const workloads::Benchmark bench = workloads::make_benchmark(name);
      const layout::LayoutTable layout_table(bench.program, config.striping,
                                             config.total_disks);
      trace::GeneratorOptions gen = config.gen;
      gen.noise = config.actual_noise;
      trace::TraceGenerator generator(bench.program, layout_table, gen);
      base_traces.push_back(generator.generate());

      // CMDRPM schedule planned for the program running *alone*.
      core::SchedulerOptions so;
      so.access = config.gen;
      const core::ScheduleResult scheduled = core::schedule_power_calls(
          bench.program, layout_table, config.disk, so);
      trace::TraceGenerator cm_generator(scheduled.program, layout_table,
                                         gen);
      cm_traces.push_back(cm_generator.generate());
    }

    policy::BasePolicy base_policy;
    const sim::MultiStreamReport base = sim::simulate_streams(
        base_traces, config.disk, base_policy, names);

    const auto add_row = [&](const char* scheme,
                             const sim::MultiStreamReport& report) {
      double responses = 0;
      std::int64_t count = 0;
      for (const auto& s : report.streams) {
        responses += s.response_ms.sum();
        count += s.requests;
      }
      table.add_row({first + "+" + second, scheme,
                     fmt_double(report.total_energy / base.total_energy, 3),
                     fmt_double(report.makespan_ms / base.makespan_ms, 3),
                     fmt_double(count > 0 ? responses / count : 0.0, 2)});
    };

    add_row("Base", base);
    {
      policy::TpmPolicy policy;
      add_row("TPM", sim::simulate_streams(base_traces, config.disk, policy,
                                           names));
    }
    {
      policy::DrpmPolicy policy;
      add_row("DRPM", sim::simulate_streams(base_traces, config.disk,
                                            policy, names));
    }
    {
      policy::ProactivePolicy policy("CMDRPM");
      add_row("CMDRPM", sim::simulate_streams(cm_traces, config.disk,
                                              policy, names));
    }
  }
  bench::emit(table);
  return 0;
}
