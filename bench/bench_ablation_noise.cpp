// Ablation: cycle-estimation error.  Sweeps the per-nest log-normal sigma
// of the profiling-vs-production timing gap and reports CMDRPM's
// misprediction rate (the Table 3 statistic), energy, and execution time on
// swim — quantifying how much estimate quality the compiler-directed scheme
// actually needs.  One sweep-engine cell per sigma.
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/sweep.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;
  using experiments::Scheme;

  Table table("Ablation: estimation-error sigma (swim, CMDRPM)");
  table.set_header({"Sigma", "Mispredict %", "Norm. energy", "Norm. time",
                    "IDRPM energy"});
  const workloads::Benchmark swim = workloads::make_swim();
  const std::vector<double> sigmas = {0.0, 0.05, 0.1, 0.2, 0.4, 0.8};

  std::vector<experiments::SweepCell> cells;
  for (const double sigma : sigmas) {
    experiments::SweepCell cell;
    cell.label = fmt_double(sigma, 2);
    cell.benchmark = swim;
    cell.config.actual_noise.sigma = sigma;
    cell.config.profile_noise.sigma = sigma;
    cell.schemes = {Scheme::kCmdrpm, Scheme::kIdrpm};
    cells.push_back(std::move(cell));
  }

  const std::vector<experiments::SweepCellResult> sweep =
      experiments::SweepEngine().run(cells);

  for (const experiments::SweepCellResult& cell : sweep) {
    const experiments::SchemeResult& cmdrpm = cell.results[0];
    const experiments::SchemeResult& idrpm = cell.results[1];
    table.add_row({
        cell.label,
        fmt_double(cmdrpm.mispredict_pct.value_or(0.0), 2),
        fmt_double(cmdrpm.normalized_energy, 3),
        fmt_double(cmdrpm.normalized_time, 3),
        fmt_double(idrpm.normalized_energy, 3),
    });
  }
  bench::emit(table);
  return 0;
}
