// Ablation: cycle-estimation error.  Sweeps the per-nest log-normal sigma
// of the profiling-vs-production timing gap and reports CMDRPM's
// misprediction rate (the Table 3 statistic), energy, and execution time on
// swim — quantifying how much estimate quality the compiler-directed scheme
// actually needs.
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/runner.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;

  Table table("Ablation: estimation-error sigma (swim, CMDRPM)");
  table.set_header({"Sigma", "Mispredict %", "Norm. energy", "Norm. time",
                    "IDRPM energy"});
  workloads::Benchmark swim = workloads::make_swim();
  for (const double sigma : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    experiments::ExperimentConfig config;
    config.actual_noise.sigma = sigma;
    config.profile_noise.sigma = sigma;
    experiments::Runner runner(swim, config);
    const auto cmdrpm = runner.run(experiments::Scheme::kCmdrpm);
    const auto idrpm = runner.run(experiments::Scheme::kIdrpm);
    table.add_row({
        fmt_double(sigma, 2),
        fmt_double(cmdrpm.mispredict_pct.value_or(0.0), 2),
        fmt_double(cmdrpm.normalized_energy, 3),
        fmt_double(cmdrpm.normalized_time, 3),
        fmt_double(idrpm.normalized_energy, 3),
    });
  }
  bench::emit(table);
  return 0;
}
