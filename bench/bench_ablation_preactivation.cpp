// Ablation: disk pre-activation on/off (paper §3: "if we do not use
// pre-activation, the disk is automatically spun up when an access comes;
// but, in this case, we incur the associated spin-up delay fully").
// Reports CMDRPM energy/time per benchmark with and without the
// pre-activating calls.
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/runner.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;

  Table table("Ablation: pre-activation (CMDRPM)");
  table.set_header({"Benchmark", "Energy (pre-act)", "Energy (demand)",
                    "Time (pre-act)", "Time (demand)"});
  for (workloads::Benchmark& b : workloads::all_benchmarks()) {
    experiments::ExperimentConfig on;
    experiments::Runner runner_on(b, on);
    const auto with = runner_on.run(experiments::Scheme::kCmdrpm);

    experiments::ExperimentConfig off;
    off.preactivate = false;
    experiments::Runner runner_off(b, off);
    const auto without = runner_off.run(experiments::Scheme::kCmdrpm);

    table.add_row({
        b.name,
        fmt_double(with.normalized_energy, 3),
        fmt_double(without.normalized_energy, 3),
        fmt_double(with.normalized_time, 3),
        fmt_double(without.normalized_time, 3),
    });
  }
  bench::emit(table);
  return 0;
}
