// Regenerates paper Table 3: the percentage of disk idle periods for which
// CMDRPM (planning on the compiler's measured-but-noisy estimates) picks a
// different RPM level than the IDRPM oracle (which sees the actual idle
// durations).
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/runner.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;

  Table table("Table 3: percentage of mispredicted disk speeds (CMDRPM)");
  std::vector<std::string> header;
  std::vector<std::string> row;
  for (workloads::Benchmark& b : workloads::all_benchmarks()) {
    experiments::ExperimentConfig config;
    experiments::Runner runner(b, config);
    const auto result = runner.run(experiments::Scheme::kCmdrpm);
    header.push_back(b.name);
    row.push_back(fmt_double(result.mispredict_pct.value_or(0.0), 2));
  }
  table.set_header(header);
  table.add_row(row);
  bench::emit(table);
  return 0;
}
