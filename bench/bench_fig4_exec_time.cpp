// Regenerates paper Figure 4: normalized execution times of every benchmark
// under the seven schemes with the default configuration.  The six
// benchmark jobs go through the api::Session facade as one batch
// (--jobs/SDPM_JOBS controls the worker count); results are identical to
// the serial run.
#include <iostream>

#include "api/session.h"
#include "bench/bench_common.h"
#include "experiments/runner.h"
#include "util/strings.h"
#include "workloads/benchmarks.h"

int main() {
  using namespace sdpm;

  Table table("Figure 4: normalized execution time");
  std::vector<std::string> header = {"Benchmark"};
  for (experiments::Scheme s : experiments::all_schemes()) {
    header.push_back(experiments::to_string(s));
  }
  table.set_header(header);

  std::vector<api::JobSpec> specs;
  for (const std::string& name : workloads::benchmark_names()) {
    specs.push_back(api::JobSpecBuilder(name).label(name).build());
  }
  api::Session session;
  const std::vector<api::JobResult> sweep = session.run_batch(specs);

  std::vector<double> sums(experiments::all_schemes().size(), 0.0);
  for (const api::JobResult& cell : sweep) {
    std::vector<std::string> row = {cell.label};
    for (std::size_t i = 0; i < cell.schemes.size(); ++i) {
      row.push_back(fmt_double(cell.schemes[i].normalized_time, 3));
      sums[i] += cell.schemes[i].normalized_time;
    }
    table.add_row(row);
  }
  std::vector<std::string> avg = {"average"};
  for (double s : sums) {
    avg.push_back(fmt_double(s / static_cast<double>(sweep.size()), 3));
  }
  table.add_row(avg);

  bench::emit(table);
  return 0;
}
