// Regenerates paper Figure 4: normalized execution times of every benchmark
// under the seven schemes with the default configuration.
#include <iostream>

#include "bench/bench_common.h"
#include "experiments/runner.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;

  Table table("Figure 4: normalized execution time");
  std::vector<std::string> header = {"Benchmark"};
  for (experiments::Scheme s : experiments::all_schemes()) {
    header.push_back(experiments::to_string(s));
  }
  table.set_header(header);

  std::vector<double> sums(experiments::all_schemes().size(), 0.0);
  int count = 0;
  for (workloads::Benchmark& b : workloads::all_benchmarks()) {
    experiments::ExperimentConfig config;
    experiments::Runner runner(b, config);
    std::vector<std::string> row = {b.name};
    const auto results = runner.run_all();
    for (std::size_t i = 0; i < results.size(); ++i) {
      row.push_back(fmt_double(results[i].normalized_time, 3));
      sums[i] += results[i].normalized_time;
    }
    table.add_row(row);
    ++count;
  }
  std::vector<std::string> avg = {"average"};
  for (double s : sums) avg.push_back(fmt_double(s / count, 3));
  table.add_row(avg);

  bench::emit(table);
  return 0;
}
