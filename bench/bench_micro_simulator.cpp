// Micro-benchmarks (google-benchmark): throughput of the substrate —
// trace generation (access walker + buffer cache), the closed-loop
// simulator, the DAP analysis, and the power-call scheduler.
#include <benchmark/benchmark.h>

#include "core/schedule.h"
#include "layout/layout_table.h"
#include "policy/base.h"
#include "policy/drpm.h"
#include "sim/simulator.h"
#include "trace/dap.h"
#include "trace/generator.h"
#include "workloads/benchmarks.h"

namespace {

using namespace sdpm;

const workloads::Benchmark& swim() {
  static const workloads::Benchmark b = workloads::make_swim();
  return b;
}

const layout::LayoutTable& swim_layout() {
  static const layout::LayoutTable table(swim().program, layout::Striping{},
                                         8);
  return table;
}

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    trace::TraceGenerator generator(swim().program, swim_layout());
    benchmark::DoNotOptimize(generator.generate().requests.size());
  }
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void BM_DapAnalysis(benchmark::State& state) {
  for (auto _ : state) {
    const auto dap = trace::DiskAccessPattern::analyze(swim().program,
                                                       swim_layout());
    benchmark::DoNotOptimize(dap.disk_count());
  }
}
BENCHMARK(BM_DapAnalysis)->Unit(benchmark::kMillisecond);

void BM_BaseSimulation(benchmark::State& state) {
  trace::TraceGenerator generator(swim().program, swim_layout());
  const trace::Trace trace = generator.generate();
  for (auto _ : state) {
    policy::BasePolicy policy;
    benchmark::DoNotOptimize(
        sim::simulate(trace, disk::DiskParameters::ultrastar_36z15(), policy)
            .total_energy);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.requests.size()));
}
BENCHMARK(BM_BaseSimulation)->Unit(benchmark::kMillisecond);

void BM_DrpmSimulation(benchmark::State& state) {
  trace::TraceGenerator generator(swim().program, swim_layout());
  const trace::Trace trace = generator.generate();
  for (auto _ : state) {
    policy::DrpmPolicy policy;
    benchmark::DoNotOptimize(
        sim::simulate(trace, disk::DiskParameters::ultrastar_36z15(), policy)
            .total_energy);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.requests.size()));
}
BENCHMARK(BM_DrpmSimulation)->Unit(benchmark::kMillisecond);

void BM_PowerCallScheduling(benchmark::State& state) {
  for (auto _ : state) {
    const auto result = core::schedule_power_calls(
        swim().program, swim_layout(),
        disk::DiskParameters::ultrastar_36z15());
    benchmark::DoNotOptimize(result.calls_inserted);
  }
}
BENCHMARK(BM_PowerCallScheduling)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
