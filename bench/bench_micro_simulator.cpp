// Micro-benchmarks (google-benchmark): throughput of the substrate —
// trace generation (access walker + buffer cache), the closed-loop
// simulator (materialized and streamed), the DAP analysis, the power-call
// scheduler, the sweep engine (serial-uncached vs pooled-cached), and the
// large-trace memory comparison between the materialized and streaming
// delivery paths.
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/schedule.h"
#include "experiments/sweep.h"
#include "experiments/trace_cache.h"
#include "layout/layout_table.h"
#include "obs/sinks.h"
#include "obs/tracer.h"
#include "policy/base.h"
#include "service/telemetry.h"
#include "policy/drpm.h"
#include "sim/simulator.h"
#include "trace/dap.h"
#include "trace/generator.h"
#include "util/perf_counters.h"
#include "workloads/benchmarks.h"

namespace {

using namespace sdpm;

const workloads::Benchmark& swim() {
  static const workloads::Benchmark b = workloads::make_swim();
  return b;
}

const layout::LayoutTable& swim_layout() {
  static const layout::LayoutTable table(swim().program, layout::Striping{},
                                         8);
  return table;
}

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    trace::TraceGenerator generator(swim().program, swim_layout());
    benchmark::DoNotOptimize(generator.generate().requests.size());
  }
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void BM_DapAnalysis(benchmark::State& state) {
  for (auto _ : state) {
    const auto dap = trace::DiskAccessPattern::analyze(swim().program,
                                                       swim_layout());
    benchmark::DoNotOptimize(dap.disk_count());
  }
}
BENCHMARK(BM_DapAnalysis)->Unit(benchmark::kMillisecond);

void BM_BaseSimulation(benchmark::State& state) {
  trace::TraceGenerator generator(swim().program, swim_layout());
  const trace::Trace trace = generator.generate();
  for (auto _ : state) {
    policy::BasePolicy policy;
    benchmark::DoNotOptimize(
        sim::simulate(trace, disk::DiskParameters::ultrastar_36z15(), policy)
            .total_energy);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.requests.size()));
}
BENCHMARK(BM_BaseSimulation)->Unit(benchmark::kMillisecond);

// The batched-replay acceptance metric: single-disk swim replay (no
// striping fan-out, every request back to back through the hot loop) —
// the same workload `sdpm_cli bench --suite simulator` times.
void BM_SingleDiskReplay(benchmark::State& state) {
  const layout::LayoutTable table(swim().program, layout::Striping{0, 1,
                                                                   kib(64)},
                                  1);
  trace::TraceGenerator generator(swim().program, table);
  const trace::Trace trace = generator.generate();
  for (auto _ : state) {
    policy::BasePolicy policy;
    benchmark::DoNotOptimize(
        sim::simulate(trace, disk::DiskParameters::ultrastar_36z15(), policy)
            .total_energy);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.requests.size()));
}
BENCHMARK(BM_SingleDiskReplay)->Unit(benchmark::kMillisecond);

// The same replay through the generic virtual engine (DispatchMode::
// kForceVirtual): the distance between this and BM_BaseSimulation is what
// static kernel dispatch buys.  Results are bit-identical either way (the
// equivalence suite pins that); only the speed differs.
void BM_BaseSimulationVirtualDispatch(benchmark::State& state) {
  trace::TraceGenerator generator(swim().program, swim_layout());
  const trace::Trace trace = generator.generate();
  sim::SimOptions options;
  options.dispatch = sim::DispatchMode::kForceVirtual;
  for (auto _ : state) {
    policy::BasePolicy policy;
    benchmark::DoNotOptimize(
        sim::simulate(trace, disk::DiskParameters::ultrastar_36z15(), policy,
                      options)
            .total_energy);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.requests.size()));
}
BENCHMARK(BM_BaseSimulationVirtualDispatch)->Unit(benchmark::kMillisecond);

// Scalar delivery (replay_batch = 1): one next_batch virtual call per
// item, quantifying what block-pull amortization buys.
void BM_BaseSimulationScalarDelivery(benchmark::State& state) {
  trace::TraceGenerator generator(swim().program, swim_layout());
  const trace::Trace trace = generator.generate();
  sim::SimOptions options;
  options.replay_batch = 1;
  for (auto _ : state) {
    policy::BasePolicy policy;
    benchmark::DoNotOptimize(
        sim::simulate(trace, disk::DiskParameters::ultrastar_36z15(), policy,
                      options)
            .total_energy);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.requests.size()));
}
BENCHMARK(BM_BaseSimulationScalarDelivery)->Unit(benchmark::kMillisecond);

// The observability overhead contract (DESIGN.md §10): a sink-less tracer
// collapses to the null fast path and must stay within ~2% of
// BM_BaseSimulation; compare the three simulation cases in one run.
void BM_NullTracerSimulation(benchmark::State& state) {
  trace::TraceGenerator generator(swim().program, swim_layout());
  const trace::Trace trace = generator.generate();
  obs::EventTracer tracer;  // no sinks attached: resolves to nullptr
  sim::SimOptions options;
  options.tracer = &tracer;
  for (auto _ : state) {
    policy::BasePolicy policy;
    benchmark::DoNotOptimize(
        sim::simulate(trace, disk::DiskParameters::ultrastar_36z15(), policy,
                      options)
            .total_energy);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.requests.size()));
}
BENCHMARK(BM_NullTracerSimulation)->Unit(benchmark::kMillisecond);

// Tracing enabled: a CountingSink consumes every event.  Quantifies what a
// live sink costs relative to the null fast path (not bound by the 2%
// contract; attaching a sink is an explicit opt-in).
void BM_TracedSimulation(benchmark::State& state) {
  trace::TraceGenerator generator(swim().program, swim_layout());
  const trace::Trace trace = generator.generate();
  std::int64_t events = 0;
  for (auto _ : state) {
    obs::CountingSink sink;
    obs::EventTracer tracer;
    tracer.add_sink(sink);
    sim::SimOptions options;
    options.tracer = &tracer;
    policy::BasePolicy policy;
    benchmark::DoNotOptimize(
        sim::simulate(trace, disk::DiskParameters::ultrastar_36z15(), policy,
                      options)
            .total_energy);
    events = sink.total();
  }
  state.counters["events"] = static_cast<double>(events);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.requests.size()));
}
BENCHMARK(BM_TracedSimulation)->Unit(benchmark::kMillisecond);

// The service telemetry contract (DESIGN.md §15): a null telemetry
// pointer through ServiceTelemetry::record_if must keep the daemon's
// per-job path within ~2% of the untelemetered replay — the same shape
// as the null-tracer contract above.  The workload is one job evaluation
// plus the five lifecycle stamps the daemon makes around it (admit,
// queue-wait, dispatch, eval, e2e); compare against BM_BaseSimulation.
void BM_ServiceTelemetryOverhead(benchmark::State& state) {
  trace::TraceGenerator generator(swim().program, swim_layout());
  const trace::Trace trace = generator.generate();
  service::ServiceTelemetry* telemetry = nullptr;  // disabled: branch only
  for (auto _ : state) {
    benchmark::DoNotOptimize(telemetry);
    policy::BasePolicy policy;
    service::ServiceTelemetry::record_if(telemetry, service::Stage::kAdmit,
                                         0.01);
    service::ServiceTelemetry::record_if(telemetry,
                                         service::Stage::kQueueWait, 0.05);
    service::ServiceTelemetry::record_if(telemetry,
                                         service::Stage::kDispatch, 0.01);
    const double energy =
        sim::simulate(trace, disk::DiskParameters::ultrastar_36z15(), policy)
            .total_energy;
    benchmark::DoNotOptimize(energy);
    service::ServiceTelemetry::record_if(telemetry, service::Stage::kEval,
                                         1.0);
    service::ServiceTelemetry::record_if(telemetry,
                                         service::Stage::kEndToEnd, 1.0);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.requests.size()));
}
BENCHMARK(BM_ServiceTelemetryOverhead)->Unit(benchmark::kMillisecond);

// Live telemetry: the same job shape with an active ServiceTelemetry
// recording into the sharded histograms.  Not bound by the 2% contract
// (the daemon always runs with telemetry on; this quantifies that the
// per-job stamp cost is noise next to evaluation).
void BM_ServiceTelemetryActive(benchmark::State& state) {
  trace::TraceGenerator generator(swim().program, swim_layout());
  const trace::Trace trace = generator.generate();
  service::ServiceTelemetry telemetry;
  service::ServiceTelemetry* t = &telemetry;
  for (auto _ : state) {
    policy::BasePolicy policy;
    service::ServiceTelemetry::record_if(t, service::Stage::kAdmit, 0.01);
    service::ServiceTelemetry::record_if(t, service::Stage::kQueueWait, 0.05);
    service::ServiceTelemetry::record_if(t, service::Stage::kDispatch, 0.01);
    const double energy =
        sim::simulate(trace, disk::DiskParameters::ultrastar_36z15(), policy)
            .total_energy;
    benchmark::DoNotOptimize(energy);
    service::ServiceTelemetry::record_if(t, service::Stage::kEval, 1.0);
    service::ServiceTelemetry::record_if(t, service::Stage::kEndToEnd, 1.0);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.requests.size()));
}
BENCHMARK(BM_ServiceTelemetryActive)->Unit(benchmark::kMillisecond);

// Raw per-call cost of one record() into the lock-striped histogram —
// the number a capacity planner multiplies by stamps-per-job.
void BM_ServiceTelemetryRecord(benchmark::State& state) {
  service::ServiceTelemetry telemetry;
  double ms = 0.0;
  for (auto _ : state) {
    ms += 1e-4;
    telemetry.record(service::Stage::kEval, ms);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceTelemetryRecord);

// Same replay fed by the streaming generator: no request vector is ever
// materialized.  The result must be bit-identical to BM_BaseSimulation's.
void BM_StreamedSimulation(benchmark::State& state) {
  trace::TraceGenerator generator(swim().program, swim_layout());
  const trace::Trace trace = generator.generate();
  policy::BasePolicy reference_policy;
  const double reference =
      sim::simulate(trace, disk::DiskParameters::ultrastar_36z15(),
                    reference_policy)
          .total_energy;
  std::int64_t requests = 0;
  for (auto _ : state) {
    trace::StreamingTraceSource source(swim().program, swim_layout());
    policy::BasePolicy policy;
    const sim::SimReport report = sim::simulate(
        source, disk::DiskParameters::ultrastar_36z15(), policy);
    requests = report.requests;
    if (report.total_energy != reference) {
      state.SkipWithError("streamed replay diverged from materialized");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * requests);
}
BENCHMARK(BM_StreamedSimulation)->Unit(benchmark::kMillisecond);

void BM_DrpmSimulation(benchmark::State& state) {
  trace::TraceGenerator generator(swim().program, swim_layout());
  const trace::Trace trace = generator.generate();
  for (auto _ : state) {
    policy::DrpmPolicy policy;
    benchmark::DoNotOptimize(
        sim::simulate(trace, disk::DiskParameters::ultrastar_36z15(), policy)
            .total_energy);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.requests.size()));
}
BENCHMARK(BM_DrpmSimulation)->Unit(benchmark::kMillisecond);

void BM_PowerCallScheduling(benchmark::State& state) {
  for (auto _ : state) {
    const auto result = core::schedule_power_calls(
        swim().program, swim_layout(),
        disk::DiskParameters::ultrastar_36z15());
    benchmark::DoNotOptimize(result.calls_inserted);
  }
}
BENCHMARK(BM_PowerCallScheduling)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Sweep engine: serial + cold trace cache vs pooled + warm trace cache on a
// small 2-cell x 7-scheme grid (galgel is the cheapest benchmark).  Both
// variants produce numerically identical results; the first iteration of
// the pooled variant verifies that against the serial reference.

std::vector<experiments::SweepCell> small_sweep() {
  std::vector<experiments::SweepCell> cells;
  for (const Bytes stripe : {kib(32), kib(64)}) {
    experiments::SweepCell cell;
    cell.label = "galgel/s" + std::to_string(stripe / 1024) + "K";
    cell.benchmark = workloads::make_galgel();
    cell.config.striping.stripe_size = stripe;
    cells.push_back(std::move(cell));
  }
  return cells;
}

void BM_SweepSerialUncached(benchmark::State& state) {
  const std::vector<experiments::SweepCell> cells = small_sweep();
  for (auto _ : state) {
    experiments::TraceCache::global().set_enabled(false);
    const auto results = experiments::SweepEngine(1).run(cells);
    benchmark::DoNotOptimize(results.back().results.back().energy_j);
  }
  experiments::TraceCache::global().set_enabled(true);
}
BENCHMARK(BM_SweepSerialUncached)->Unit(benchmark::kMillisecond);

void BM_SweepEngineCached(benchmark::State& state) {
  const std::vector<experiments::SweepCell> cells = small_sweep();
  experiments::TraceCache::global().set_enabled(false);
  const auto reference = experiments::SweepEngine(1).run(cells);
  experiments::TraceCache::global().set_enabled(true);
  bool verified = false;
  for (auto _ : state) {
    const auto results = experiments::SweepEngine().run(cells);
    if (!verified) {
      verified = true;
      for (std::size_t c = 0; c < results.size(); ++c) {
        for (std::size_t s = 0; s < results[c].results.size(); ++s) {
          if (results[c].results[s].energy_j !=
                  reference[c].results[s].energy_j ||
              results[c].results[s].execution_ms !=
                  reference[c].results[s].execution_ms) {
            state.SkipWithError("pooled sweep diverged from serial");
            return;
          }
        }
      }
    }
    benchmark::DoNotOptimize(results.back().results.back().energy_j);
  }
}
BENCHMARK(BM_SweepEngineCached)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Large-trace memory comparison: replay >= 10M synthetic requests through
// the streaming interface (O(1) request memory) and through a materialized
// Trace (~600 MB of requests).  Each variant reports the process peak RSS
// after its run; the streamed case registers (and runs) first, so its
// reported peak is not inflated by the materialized allocation.

constexpr std::int64_t kLargeRequests = 10'000'000;
constexpr int kLargeDisks = 8;
constexpr TimeMs kLargeGapMs = 0.002;

/// Deterministic synthetic request stream: fixed-size sequential reads
/// round-robined over the disks at a fixed arrival cadence.
class SyntheticSource final : public trace::RequestSource {
 public:
  explicit SyntheticSource(std::int64_t count) : count_(count) {}

  bool next(trace::TraceItem& item) override {
    if (i_ >= count_) return false;
    item.kind = trace::TraceItem::Kind::kRequest;
    item.request = request_at(i_);
    ++i_;
    return true;
  }

  int total_disks() const override { return kLargeDisks; }
  TimeMs compute_total_ms() const override {
    return kLargeGapMs * static_cast<double>(count_);
  }

  static trace::Request request_at(std::int64_t i) {
    trace::Request r;
    r.arrival_ms = kLargeGapMs * static_cast<double>(i);
    r.disk = static_cast<int>(i % kLargeDisks);
    r.start_sector = (i / kLargeDisks) * 16;
    r.size_bytes = kib(8);
    r.kind = ir::AccessKind::kRead;
    r.global_iter = i;
    return r;
  }

 private:
  std::int64_t count_;
  std::int64_t i_ = 0;
};

void BM_LargeTraceStreamedRss(benchmark::State& state) {
  for (auto _ : state) {
    SyntheticSource source(kLargeRequests);
    policy::BasePolicy policy;
    const sim::SimReport report = sim::simulate(
        source, disk::DiskParameters::ultrastar_36z15(), policy);
    benchmark::DoNotOptimize(report.total_energy);
  }
  state.counters["peak_rss_mib"] =
      static_cast<double>(peak_rss_kib()) / 1024.0;
  state.SetItemsProcessed(state.iterations() * kLargeRequests);
}
BENCHMARK(BM_LargeTraceStreamedRss)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_LargeTraceMaterializedRss(benchmark::State& state) {
  for (auto _ : state) {
    trace::Trace trace;
    trace.total_disks = kLargeDisks;
    trace.compute_total_ms =
        kLargeGapMs * static_cast<double>(kLargeRequests);
    trace.requests.reserve(static_cast<std::size_t>(kLargeRequests));
    for (std::int64_t i = 0; i < kLargeRequests; ++i) {
      trace.requests.push_back(SyntheticSource::request_at(i));
      trace.bytes_transferred += trace.requests.back().size_bytes;
    }
    policy::BasePolicy policy;
    const sim::SimReport report = sim::simulate(
        trace, disk::DiskParameters::ultrastar_36z15(), policy);
    benchmark::DoNotOptimize(report.total_energy);
  }
  state.counters["peak_rss_mib"] =
      static_cast<double>(peak_rss_kib()) / 1024.0;
  state.SetItemsProcessed(state.iterations() * kLargeRequests);
}
BENCHMARK(BM_LargeTraceMaterializedRss)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
