// Baseline: Popular Data Concentration (the paper's related work [16]).
//
// PDC reshapes the *layout* so popular data concentrates on few disks and
// the rest can idle — the storage-level counterpart of this paper's
// code-level transformations.  This bench compares, per benchmark, the
// default striped layout against the PDC layout under reactive DRPM, and
// against the paper's compiler scheme (CMDRPM on the default layout).
// Values are normalized to Base on the default layout.
#include <iostream>

#include "bench/bench_common.h"
#include "core/pdc.h"
#include "experiments/runner.h"
#include "layout/layout_table.h"
#include "policy/base.h"
#include "policy/drpm.h"
#include "policy/tpm.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;

  Table table("PDC layout vs compiler-directed power management");
  table.set_header({"Benchmark", "PDC disks unused", "PDC+TPM energy",
                    "PDC+DRPM energy", "PDC+DRPM time", "CMDRPM energy"});

  for (workloads::Benchmark& b : workloads::all_benchmarks()) {
    experiments::ExperimentConfig config;
    experiments::Runner runner(b, config);
    const Joules base_energy = runner.base_report().total_energy;
    const TimeMs base_time = runner.base_report().execution_ms;
    const auto cmdrpm = runner.run(experiments::Scheme::kCmdrpm);

    core::PdcOptions pdc_options;
    pdc_options.total_disks = config.total_disks;
    pdc_options.base_striping = config.striping;
    pdc_options.access = config.gen;
    const core::PdcResult pdc = core::apply_pdc(b.program, pdc_options);

    const layout::LayoutTable pdc_table(b.program, pdc.striping,
                                        config.total_disks);
    trace::GeneratorOptions gen = config.gen;
    gen.noise = config.actual_noise;
    trace::TraceGenerator generator(b.program, pdc_table, gen);
    const trace::Trace pdc_trace = generator.generate();

    policy::TpmPolicy tpm;
    policy::DrpmPolicy drpm;
    const sim::SimReport pdc_tpm =
        sim::simulate(pdc_trace, config.disk, tpm);
    const sim::SimReport pdc_drpm =
        sim::simulate(pdc_trace, config.disk, drpm);

    table.add_row({
        b.name,
        std::to_string(pdc.unused_disks),
        fmt_double(pdc_tpm.total_energy / base_energy, 3),
        fmt_double(pdc_drpm.total_energy / base_energy, 3),
        fmt_double(pdc_drpm.execution_ms / base_time, 3),
        fmt_double(cmdrpm.normalized_energy, 3),
    });
  }
  bench::emit(table);
  return 0;
}
