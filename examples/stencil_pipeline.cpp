// A user-authored out-of-core stencil pipeline, evaluated under all seven
// power-management schemes.
//
// This is the workflow a scientific-application owner would follow: model
// the application's loop nests in the IR, wrap it as a Benchmark, and let
// the experiment Runner compare Base/TPM/ITPM/DRPM/IDRPM/CMTPM/CMDRPM.
//
//   $ ./examples/stencil_pipeline
#include <iostream>

#include "experiments/runner.h"
#include "ir/builder.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sdpm;
  using ir::sym;

  // A 3-field, 24 MB out-of-core stencil: two sweep phases per time step
  // plus a cache-resident reduction phase that leaves the disks idle.
  ir::ProgramBuilder pb("stencil");
  const ir::ArrayId t_now = pb.array("T", {1024, 1024});      // 8 MB
  const ir::ArrayId t_next = pb.array("TNEXT", {1024, 1024});  // 8 MB
  const ir::ArrayId coeff = pb.array("COEFF", {1024, 1024});   // 8 MB

  const auto per_iter = [](TimeMs nest_ms, std::int64_t iters) {
    return nest_ms * 750e3 / static_cast<double>(iters);
  };
  const std::int64_t sweep_iters = 1022 * 1022;
  for (int step = 1; step <= 4; ++step) {
    // Five-point stencil: interior sweep reading T/COEFF, writing TNEXT.
    pb.nest(str_printf("stencil%02d", step))
        .loop("i", 1, 1023)
        .loop("j", 1, 1023)
        .stmt(per_iter(900.0, sweep_iters), "relax")
        .read(t_now, {sym("i"), sym("j")})
        .read(t_now, {sym("i") - 1, sym("j")})
        .read(t_now, {sym("i") + 1, sym("j")})
        .read(coeff, {sym("i"), sym("j")})
        .write(t_next, {sym("i"), sym("j")})
        .done();
    // Copy-back sweep.
    pb.nest(str_printf("copy%02d", step))
        .loop("i", 1, 1023)
        .loop("j", 1, 1023)
        .stmt(per_iter(400.0, sweep_iters), "copy")
        .read(t_next, {sym("i"), sym("j")})
        .write(t_now, {sym("i"), sym("j")})
        .done();
    // Residual reduction over one cached boundary row: compute-heavy, no
    // disk traffic after the first touch.
    pb.nest(str_printf("norm%02d", step))
        .loop("t", 0, 2'000)
        .loop("j", 0, 1'024)
        .stmt(per_iter(2'000.0, 2'000 * 1'024), "norm")
        .read(t_now, {ir::sym_const(0), sym("j")})
        .done();
  }

  workloads::Benchmark bench;
  bench.name = "stencil";
  bench.program = pb.build();

  experiments::ExperimentConfig config;  // Table 1 defaults: 8 x 64 KB
  experiments::Runner runner(bench, config);

  Table table("stencil pipeline under the seven schemes");
  table.set_header({"Scheme", "Energy (J)", "Norm. energy", "Exec (s)",
                    "Norm. time", "Mispredict %"});
  for (const auto& result : runner.run_all()) {
    table.add_row({
        experiments::to_string(result.scheme),
        fmt_double(result.energy_j, 1),
        fmt_double(result.normalized_energy, 3),
        fmt_double(result.execution_ms / 1000.0, 2),
        fmt_double(result.normalized_time, 3),
        result.mispredict_pct ? fmt_double(*result.mispredict_pct, 1) : "-",
    });
  }
  table.print(std::cout);

  const auto& base = runner.base_report();
  std::cout << "\n" << base.requests << " disk requests, "
            << fmt_bytes(base.bytes_transferred) << " transferred, mean "
            << "response " << fmt_time_ms(base.response_ms.mean()) << "\n";
  return 0;
}
