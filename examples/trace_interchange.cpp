// Trace interchange and replay: exporting an I/O trace in the paper's text
// format, reading it back (as one would an externally captured trace), and
// replaying it open-loop under the reactive policies.
//
// This is the DiskSim-style workflow for traces that did not come from the
// compiler: no program structure, no proactive calls — just timestamped
// requests and the reactive policy family.
//
//   $ ./examples/trace_interchange
#include <iostream>
#include <sstream>

#include "experiments/report.h"
#include "layout/layout_table.h"
#include "policy/adaptive_tpm.h"
#include "policy/base.h"
#include "policy/drpm.h"
#include "policy/tpm.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "trace/text_io.h"
#include "util/strings.h"
#include "workloads/benchmarks.h"

int main() {
  using namespace sdpm;

  // 1. Produce a trace (here from the mesa benchmark; in the wild this
  //    would be a blktrace-style capture).
  const workloads::Benchmark mesa = workloads::make_mesa();
  const layout::LayoutTable table(mesa.program, layout::Striping{}, 8);
  trace::TraceGenerator generator(mesa.program, table);
  const trace::Trace original = generator.generate();

  // 2. Serialize and parse it back through the interchange format.
  std::stringstream file;
  trace::write_trace_text(original, file);
  std::cout << "trace file preview:\n";
  std::string line;
  for (int i = 0; i < 5 && std::getline(file, line); ++i) {
    std::cout << "  " << line << "\n";
  }
  std::cout << "  ... (" << original.requests.size() << " requests)\n\n";
  file.clear();
  file.seekg(0);
  trace::Trace parsed = trace::read_trace_text(file);

  // The generated timestamps are compute-only; a trace captured on a real
  // system would include its I/O time.  Dilate the clock accordingly so the
  // open-loop replay is not artificially overloaded.
  for (trace::Request& r : parsed.requests) r.arrival_ms *= 2.5;
  parsed.compute_total_ms *= 2.5;

  // 3. Replay it open-loop (fixed timestamps) under each reactive policy.
  const disk::DiskParameters params = disk::DiskParameters::ultrastar_36z15();
  Table summary("open-loop replay under reactive policies");
  summary.set_header({"Policy", "Energy (J)", "Completion", "Mean resp",
                      "Spin-downs", "RPM shifts"});
  const auto add_row = [&](const char* name, sim::PowerPolicy& policy) {
    const sim::SimReport report =
        sim::simulate(parsed, params, policy, sim::ReplayMode::kOpenLoop);
    std::int64_t downs = 0, shifts = 0;
    for (const auto& d : report.disks) {
      downs += d.spin_downs;
      shifts += d.rpm_transitions;
    }
    summary.add_row({name, fmt_double(report.total_energy, 1),
                     fmt_time_ms(report.execution_ms),
                     fmt_time_ms(report.response_ms.mean()),
                     std::to_string(downs), std::to_string(shifts)});
  };

  policy::BasePolicy base;
  policy::TpmPolicy tpm;
  policy::AdaptiveTpmPolicy atpm;
  policy::DrpmPolicy drpm;
  add_row("Base", base);
  add_row("TPM", tpm);
  add_row("ATPM", atpm);
  add_row("DRPM", drpm);
  summary.print(std::cout);

  std::cout << "\nNote: open-loop replay cannot model the paper's proactive"
               " schemes — their power\ncalls are program events, which is"
               " precisely why the compiler-directed approach\nneeds source"
               " access (paper §1).\n";
  return 0;
}
