// Quickstart: the paper's Figure 2 walked end to end.
//
// Builds the two-nest program of Figure 2(a), places U1 and U2 on four
// disks exactly as Figure 2(b), prints the Disk Access Pattern the compiler
// extracts (Figure 2(c)), lets the scheduler insert explicit power calls
// (Figure 2(d)), and simulates the result under the proactive policy.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/schedule.h"
#include "ir/builder.h"
#include "layout/layout_table.h"
#include "policy/base.h"
#include "policy/proactive.h"
#include "sim/simulator.h"
#include "trace/dap.h"
#include "trace/generator.h"
#include "util/strings.h"

int main() {
  using namespace sdpm;
  using ir::sym;

  // --- 1. the application (paper Figure 2(a)) ------------------------------
  // S: one 64 KB stripe of doubles.  U1 holds 4 stripes, U2 holds 2.
  constexpr std::int64_t S = 8192;
  ir::ProgramBuilder pb("figure2");
  const ir::ArrayId u1 = pb.array("U1", {4 * S});
  const ir::ArrayId u2 = pb.array("U2", {2 * S});
  // 0.25 ms of compute per element: each stripe-long phase lasts ~2 s, so
  // idle disks have seconds-long gaps worth exploiting.
  const Cycles cycles = 187'500.0;  // at 750 MHz
  pb.nest("nest1")
      .loop("i", 0, 2 * S)
      .stmt(cycles)
      .read(u1, {sym("i")})
      .read(u2, {sym("i")})
      .done();
  pb.nest("nest2")
      .loop("i", 0, 2 * S)
      .stmt(cycles)
      .read(u1, {sym("i") + 2 * S})
      .done();
  const ir::Program program = pb.build();
  std::cout << program.to_string() << "\n";

  // --- 2. the disk layout (paper Figure 2(b)) ------------------------------
  // U1 striped over all four disks: (0, 4, S); U2 entirely on disk2:
  // (2, 1, S).
  const std::vector<layout::Striping> striping = {
      layout::Striping{0, 4, S * 8}, layout::Striping{2, 1, S * 8}};
  const layout::LayoutTable table(program, striping, /*total_disks=*/4);

  // --- 3. the Disk Access Pattern (paper Figure 2(c)) ----------------------
  const auto dap = trace::DiskAccessPattern::analyze(program, table);
  std::cout << "Disk access pattern:\n" << dap.to_string(program) << "\n";

  // --- 4. compiler-inserted power calls (paper Figure 2(d)) ----------------
  core::SchedulerOptions options;
  options.mode = core::PowerMode::kDrpm;
  const disk::DiskParameters disk_params =
      disk::DiskParameters::ultrastar_36z15();
  const core::ScheduleResult scheduled =
      core::schedule_power_calls(program, table, disk_params, options);
  std::cout << "Inserted " << scheduled.calls_inserted
            << " set_RPM call(s):\n";
  const trace::IterationSpace space(program);
  for (const ir::PlacedDirective& pd : scheduled.program.directives) {
    std::cout << "  " << ir::to_string(pd.directive.kind) << "(disk"
              << pd.directive.disk;
    if (pd.directive.kind == ir::PowerDirective::Kind::kSetRpm) {
      std::cout << ", " << disk_params.rpm_of_level(pd.directive.rpm_level)
                << " RPM";
    }
    std::cout << ") before iteration " << pd.point.flat_iteration
              << " of nest "
              << program.nests[static_cast<std::size_t>(pd.point.nest_index)]
                     .name
              << "\n";
  }

  // --- 5. simulate: Base vs the compiler-managed schedule ------------------
  trace::TraceGenerator base_gen(program, table);
  policy::BasePolicy base_policy;
  const sim::SimReport base =
      sim::simulate(base_gen.generate(), disk_params, base_policy);

  trace::TraceGenerator cm_gen(scheduled.program, table);
  policy::ProactivePolicy cm_policy("CMDRPM");
  const sim::SimReport cm =
      sim::simulate(cm_gen.generate(), disk_params, cm_policy);

  std::cout << "\nBase:    " << fmt_double(base.total_energy, 1) << " J in "
            << fmt_time_ms(base.execution_ms) << " ("
            << base.requests << " requests)\n";
  std::cout << "CMDRPM:  " << fmt_double(cm.total_energy, 1) << " J in "
            << fmt_time_ms(cm.execution_ms) << "  ->  "
            << fmt_double(100.0 * (1.0 - cm.total_energy / base.total_energy),
                          1)
            << "% energy saved, "
            << fmt_double(
                   100.0 * (cm.execution_ms / base.execution_ms - 1.0), 2)
            << "% slowdown\n";
  return 0;
}
