// Layout tuning: how striping choices shape disk power behaviour.
//
// Sweeps stripe size and stripe factor for one out-of-core matrix sweep and
// reports, per configuration, the Base energy, the per-disk idle-gap
// distribution the compiler sees, and what CMDRPM makes of it — the
// decision data a storage administrator would want before fixing a PVFS
// layout (paper §5.2 in miniature).
//
//   $ ./examples/layout_tuning
#include <iostream>

#include "core/schedule.h"
#include "experiments/runner.h"
#include "ir/builder.h"
#include "trace/dap.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

sdpm::workloads::Benchmark make_matrix_sweep() {
  using namespace sdpm;
  using ir::sym;
  ir::ProgramBuilder pb("matsweep");
  const auto m = pb.array("M", {2048, 2048});  // 32 MB
  const auto v = pb.array("V", {2048, 2048});  // 32 MB
  const auto per_iter = 12'000.0 * 750e3 / (4.0 * 2048 * 2048);
  for (int pass = 1; pass <= 4; ++pass) {
    pb.nest("pass" + std::to_string(pass))
        .loop("i", 0, 2048)
        .loop("j", 0, 2048)
        .stmt(per_iter, "axpy")
        .read(m, {sym("i"), sym("j")})
        .write(v, {sym("i"), sym("j")})
        .done();
  }
  sdpm::workloads::Benchmark bench;
  bench.name = "matsweep";
  bench.program = pb.build();
  return bench;
}

}  // namespace

int main() {
  using namespace sdpm;

  workloads::Benchmark bench = make_matrix_sweep();

  Table table("striping choices for a 64 MB matrix sweep");
  table.set_header({"Disks", "Stripe", "Base (J)", "Median gap",
                    "CMDRPM energy", "CMDRPM time"});

  for (const int disks : {4, 8, 16}) {
    for (const Bytes stripe : {kib(64), kib(256)}) {
      experiments::ExperimentConfig config;
      config.total_disks = disks;
      config.striping = layout::Striping{0, disks, stripe};
      experiments::Runner runner(bench, config);

      // The compiler's view: per-disk idle-gap lengths under this layout.
      const layout::LayoutTable layout_table(runner.program(),
                                             config.striping, disks);
      const auto dap = trace::DiskAccessPattern::analyze(runner.program(),
                                                         layout_table,
                                                         config.gen);
      const trace::Timeline timeline(runner.program());
      std::vector<double> gaps;
      for (int d = 0; d < disks; ++d) {
        const IntervalSet idle = dap.idle_periods(d);
        for (const Interval& gap : idle.intervals()) {
          gaps.push_back(timeline.at_global(gap.hi) -
                         timeline.at_global(gap.lo));
        }
      }
      std::sort(gaps.begin(), gaps.end());
      const double median_gap =
          gaps.empty() ? 0.0 : gaps[gaps.size() / 2];

      const auto cmdrpm = runner.run(experiments::Scheme::kCmdrpm);
      table.add_row({
          std::to_string(disks),
          fmt_bytes(stripe),
          fmt_double(runner.base_report().total_energy, 1),
          fmt_time_ms(median_gap),
          fmt_double(cmdrpm.normalized_energy, 3),
          fmt_double(cmdrpm.normalized_time, 3),
      });
    }
  }
  table.print(std::cout);
  std::cout << "\nReading guide: wider striping multiplies idle disks (lower"
               " normalized CMDRPM energy);\nlarger stripes lengthen each"
               " disk's idle gaps (deeper RPM levels become feasible).\n";
  return 0;
}
