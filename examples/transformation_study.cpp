// Code-transformation study on a user program: loop fission and loop
// tiling, layout-oblivious and layout-aware, with before/after listings and
// the energy outcome under CMTPM/CMDRPM (paper §6 in miniature).
//
//   $ ./examples/transformation_study
#include <iostream>

#include "core/compiler.h"
#include "core/fission.h"
#include "core/tiling.h"
#include "experiments/runner.h"
#include "ir/builder.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

// An ADI-like solver: one nest updates three independent field pairs
// (fissionable, Fig. 11 territory) and a private transposed-matrix factor
// nest dominates the disk energy (tilable, Fig. 12 territory).
sdpm::workloads::Benchmark make_adi() {
  using namespace sdpm;
  using ir::sym;
  ir::ProgramBuilder pb("adi");
  const auto x = pb.array("X", {1024, 1024});
  const auto xr = pb.array("XRHS", {1024, 1024});
  const auto y = pb.array("Y", {1024, 1024});
  const auto yr = pb.array("YRHS", {1024, 1024});
  const auto f = pb.array("F", {512, 512});
  const auto ft = pb.array("FT", {512, 512});

  const auto per_iter = [](TimeMs nest_ms, std::int64_t iters) {
    return nest_ms * 750e3 / static_cast<double>(iters);
  };
  for (int step = 1; step <= 4; ++step) {
    pb.nest(str_printf("sweep%02d", step))
        .loop("i", 0, 1024)
        .loop("j", 0, 1024)
        .stmt(per_iter(500.0, 1024 * 1024) / 2, "row_solve")
        .read(x, {sym("i"), sym("j")})
        .write(xr, {sym("i"), sym("j")})
        .stmt(per_iter(500.0, 1024 * 1024) / 2, "col_solve")
        .read(y, {sym("i"), sym("j")})
        .write(yr, {sym("i"), sym("j")})
        .done();
    pb.nest(str_printf("factor%02d", step))
        .loop("i", 0, 512)
        .loop("j", 0, 512)
        .stmt(per_iter(2'000.0, 512 * 512), "factor")
        .read(f, {sym("i"), sym("j")})
        .read(ft, {sym("j"), sym("i")})
        .write(f, {sym("i"), sym("j")})
        .done();
  }
  sdpm::workloads::Benchmark bench;
  bench.name = "adi";
  bench.program = pb.build();
  return bench;
}

}  // namespace

int main() {
  using namespace sdpm;

  workloads::Benchmark bench = make_adi();

  // --- show what the passes do ---------------------------------------------
  std::cout << "=== original program ===\n"
            << bench.program.to_string() << "\n";

  core::FissionOptions fission_options;
  const core::FissionResult fission =
      core::apply_loop_fission(bench.program, fission_options);
  std::cout << "=== after layout-aware loop fission (Fig. 11) ===\n";
  std::cout << "array groups:\n";
  for (const core::ArrayGroup& g : fission.groups) {
    std::cout << "  disks [" << g.first_disk << ", "
              << g.first_disk + g.disk_count << "):";
    for (const ir::ArrayId a : g.arrays) {
      std::cout << " " << bench.program.array(a).name;
    }
    std::cout << "  (" << fmt_bytes(g.bytes) << ")\n";
  }

  core::TilingOptions tiling_options;
  const core::TilingResult tiling =
      core::apply_loop_tiling(bench.program, tiling_options);
  std::cout << "\n=== after layout-aware loop tiling (Fig. 12) ===\n"
            << tiling.note << "\n"
            << "tile: " << tiling.tile_rows << " x " << tiling.tile_cols
            << " (" << fmt_bytes(tiling.tile_rows * tiling.tile_cols * 8)
            << " per array)\n\n";

  // --- and what they buy ----------------------------------------------------
  Table table("normalized energy vs the untransformed Base run");
  table.set_header({"Version", "CMTPM", "CMDRPM"});

  experiments::ExperimentConfig base_config;
  experiments::Runner base_runner(bench, base_config);
  const Joules base_energy = base_runner.base_report().total_energy;

  for (const auto transform :
       {core::Transformation::kNone, core::Transformation::kLF,
        core::Transformation::kTL, core::Transformation::kLFDL,
        core::Transformation::kTLDL}) {
    experiments::ExperimentConfig config;
    config.transform = transform;
    experiments::Runner runner(bench, config);
    const auto cmtpm = runner.run(experiments::Scheme::kCmtpm);
    const auto cmdrpm = runner.run(experiments::Scheme::kCmdrpm);
    table.add_row({core::to_string(transform),
                   fmt_double(cmtpm.energy_j / base_energy, 3),
                   fmt_double(cmdrpm.energy_j / base_energy, 3)});
  }
  table.print(std::cout);
  return 0;
}
