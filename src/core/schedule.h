// Compiler-directed power-call insertion (paper §3).
//
// The scheduler combines the Disk Access Pattern with the compiler's cycle
// estimates to plan, for every disk idle period:
//   - TPM mode: insert spin_down(disk) at the start of each idle period
//     whose *estimated* length exceeds the break-even threshold, and a
//     pre-activating spin_up(disk) early enough that the disk is back
//     before its next use;
//   - DRPM mode: insert set_RPM(level, disk) with the energy-optimal level
//     for the estimated idle length, and a pre-activating set_RPM(max)
//     before the next use.
// The pre-activation distance follows the paper's Eq. 1,
//   d = ceil(Tsu / (s + Tm)),
// evaluated per nest (s = per-iteration time of the loop the call lands
// in); when an idle period spans several nests the scheduler walks the
// estimated timeline across nest boundaries, which degenerates to Eq. 1
// within a single nest.  Call sites can be restricted to strip-mined tile
// boundaries with `call_site_granularity`.
#pragma once

#include <cstdint>
#include <vector>

#include "disk/parameters.h"
#include "ir/program.h"
#include "layout/layout_table.h"
#include "trace/dap.h"
#include "trace/generator.h"

namespace sdpm::core {

/// Which call family the compiler emits.
enum class PowerMode {
  kTpm,   ///< spin_down / spin_up (CMTPM)
  kDrpm,  ///< set_RPM (CMDRPM)
};

const char* to_string(PowerMode mode);

struct SchedulerOptions {
  PowerMode mode = PowerMode::kDrpm;
  /// Access-model options (block size, buffer cache); timing noise is
  /// irrelevant here — the compiler always plans on the nominal estimate.
  trace::GeneratorOptions access;
  /// Insert calls only at iterations divisible by this granularity (models
  /// strip-mined call sites; 1 = finest).
  std::int64_t call_site_granularity = 1;
  /// Emit pre-activation calls (paper's default).  Disabling reproduces
  /// the "no pre-activation" ablation: the disk wakes on demand instead.
  bool preactivate = true;
  /// The compiler's *measured* per-iteration timing (paper: gethrtime on a
  /// profiling run, so it includes amortized I/O time).  Non-owning; when
  /// null the scheduler falls back to the nominal compute timeline.
  const trace::TimeEstimate* estimate = nullptr;
  /// Conservatism against estimation error: idle periods are discounted by
  /// this fraction when picking a power mode, and pre-activation leads are
  /// inflated by it, so a moderately mispredicted gap still hides the
  /// wake-up latency instead of stalling the application.
  double safety_margin = 0.25;
};

/// The plan for one idle period of one disk.
struct GapPlan {
  int disk = 0;
  std::int64_t begin_iter = 0;  ///< first idle global iteration
  std::int64_t end_iter = 0;    ///< next active global iteration (or total)
  TimeMs estimated_ms = 0;      ///< estimated idle length
  /// Chosen treatment: RPM level for DRPM mode; -1 = spin down (TPM); the
  /// top level / "no action" when the gap is too short to exploit.
  int level = 0;
  bool acted = false;           ///< true when calls were inserted
};

struct ScheduleResult {
  ir::Program program;          ///< copy of the input with directives added
  std::vector<GapPlan> plans;   ///< every idle period, in disk-major order
  std::int64_t calls_inserted = 0;
};

/// Paper Eq. 1: the pre-activation distance in iterations, for a loop whose
/// body takes `s_ms` per iteration, a wake-up latency of `t_su_ms`, and a
/// call overhead of `t_m_ms`.
std::int64_t preactivation_distance(TimeMs t_su_ms, TimeMs s_ms,
                                    TimeMs t_m_ms);

/// Run the scheduler: analyze the DAP of `program` under `layout`, insert
/// power-management directives, and return the annotated program plus the
/// per-gap plans (consumed by the Table 3 misprediction analysis).
ScheduleResult schedule_power_calls(const ir::Program& program,
                                    const layout::LayoutTable& layout,
                                    const disk::DiskParameters& params,
                                    const SchedulerOptions& options = {});

}  // namespace sdpm::core
