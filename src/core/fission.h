// Layout-aware loop fission (paper §6.1, Figure 11).
//
// Visits every nest and distributes it so the resulting loops access
// disjoint sets of arrays.  Arrays "coupled" through a statement (accessed
// by the same statement, directly or transitively) form an *array group*;
// statements touching the same group stay in the same fissioned loop, which
// also makes the distribution trivially legal (loops over disjoint data
// carry no fission-preventing dependences).  Each array group is then
// assigned a disjoint, contiguous set of disks sized proportionally to the
// group's total data (the "+DL" part) — so that while one group's loop
// runs, the other groups' disks can sit in a low-power mode.
#pragma once

#include <vector>

#include "ir/program.h"
#include "layout/striping.h"
#include "util/units.h"

namespace sdpm::core {

struct FissionOptions {
  /// Assign array groups to disjoint disk sets (LF+DL).  When false, the
  /// loops are distributed but every array keeps the base striping (LF).
  bool layout_aware = true;
  int total_disks = 8;
  layout::Striping base_striping{};
};

/// One array group and (when layout-aware) its disk allocation.
struct ArrayGroup {
  std::vector<ir::ArrayId> arrays;
  Bytes bytes = 0;
  int first_disk = 0;
  int disk_count = 0;
};

struct FissionResult {
  ir::Program program;
  /// Per-array striping implementing the group-to-disk assignment; equals
  /// the base striping for every array when !layout_aware.
  std::vector<layout::Striping> striping;
  std::vector<ArrayGroup> groups;
  /// True when at least one nest was actually distributed.
  bool any_fissioned = false;
};

/// Compute the whole-program array groups (Fig. 11's AG set): connected
/// components of the "referenced by a common statement" relation.
std::vector<std::vector<ir::ArrayId>> array_groups(
    const ir::Program& program);

/// Apply Figure 11: distribute every distributable nest and (optionally)
/// partition the disks across the array groups.
FissionResult apply_loop_fission(const ir::Program& program,
                                 const FissionOptions& options = {});

}  // namespace sdpm::core
