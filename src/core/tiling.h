// Layout-aware loop tiling (paper §6.1, Figure 12).
//
// Tiles the most disk-costly nest of the program and, in the layout-aware
// variant (+DL), transforms the storage of the arrays it touches into
// *blocked* (tile-major) order so that the data of one iteration tile is
// contiguous on disk, sets each array's stripe size to its per-tile
// footprint DS(i), and thereby maps co-visited tiles of all arrays onto the
// same disk — at any given time execution touches one disk while the others
// can sit in a low-power mode (Fig. 10's tile-to-disk assignment).
//
// The blocked reshape subsumes the paper's row-major <-> column-major
// transformation: an array whose access pattern does not conform to its
// storage pattern (e.g. U2[j][i]) gets its dimensions permuted into access
// order as part of the blocking — exactly Fig. 12's "if data access pattern
// != storage pattern then transform the data layout".
//
// Faithful to the paper's implementation, the pass handles a single nest
// ("we applied it only to the most costly nest"; multi-nest tiling is future
// work there, available here via TilingOptions::nest_override +
// repeated application).  An array is only reshaped when every one of its
// references lives in the tiled nest — reshaping data used elsewhere would
// change the meaning of the other nests, which is the situation the paper
// acknowledges as the approach's limitation.
#pragma once

#include <string>
#include <vector>

#include "ir/program.h"
#include "layout/striping.h"
#include "trace/generator.h"

namespace sdpm::core {

struct TilingOptions {
  /// Apply the layout transformation + tile-to-disk mapping (TL+DL); when
  /// false only the loop structure changes (TL).
  bool layout_aware = true;
  int total_disks = 8;
  layout::Striping base_striping{};
  /// Access-model options used to rank nests by disk cost.
  trace::GeneratorOptions access;
  /// Force the nest to tile (-1 = pick the most costly one).
  int nest_override = -1;
  /// Target per-array tile footprint; tile sizes are chosen as divisors of
  /// the loop trip counts closest to this footprint.
  Bytes tile_bytes = 256 * 1024;
  /// Extension (the paper's stated future work): instead of tiling only the
  /// most costly nest, repeatedly apply the pass to every nest family it is
  /// applicable to, in decreasing disk-energy order.
  bool all_nests = false;
};

struct TilingResult {
  ir::Program program;
  /// Per-array striping; reshaped arrays get stripe size = DS(i).
  std::vector<layout::Striping> striping;
  bool applied = false;
  int tiled_nest = -1;
  std::int64_t tile_rows = 0;
  std::int64_t tile_cols = 0;
  /// Arrays whose storage was blocked (in access order).
  std::vector<ir::ArrayId> reshaped_arrays;
  /// Among those, the ones that required an access-order permutation (the
  /// paper's row-major -> column-major transformation).
  std::vector<ir::ArrayId> permuted_arrays;
  std::string note;  ///< why the pass did / did not apply
};

/// Rank the nests of `program` by the number of disk requests they cause
/// under `layout`.
std::vector<std::int64_t> misses_per_nest(const ir::Program& program,
                                          const layout::LayoutTable& layout,
                                          const trace::GeneratorOptions& options);

/// Estimated disk energy of every nest: its duration keeps all disks at
/// idle power, and every miss adds an active-service increment.  This is
/// the ranking used to pick "the most costly nest (as far as disk energy is
/// concerned)".
std::vector<double> disk_energy_per_nest(const ir::Program& program,
                                         const layout::LayoutTable& layout,
                                         const trace::GeneratorOptions& options,
                                         int total_disks);

/// Apply Figure 12 to `program`.  With `options.all_nests` the pass chains
/// over every applicable nest family (multi-nest tiling); the returned
/// TilingResult then aggregates the reshaped arrays and striping of every
/// application, and `tiled_nest` names the first (most costly) one.
TilingResult apply_loop_tiling(const ir::Program& program,
                               const TilingOptions& options = {});

}  // namespace sdpm::core
