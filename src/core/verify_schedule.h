// Compatibility shim: schedule verification now lives in the static
// analysis layer (src/analysis/), where it is the first registered pass
// and collects *all* violations instead of stopping at the first.  This
// header keeps the historical core::verify_schedule spelling working.
#pragma once

#include "analysis/verify_schedule.h"

namespace sdpm::core {

using analysis::verify_schedule;

}  // namespace sdpm::core
