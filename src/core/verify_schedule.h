// DEPRECATED compatibility shim — scheduled for removal one release out.
//
// Schedule verification lives in the static analysis layer
// (analysis/verify_schedule.h), where analysis::check_schedule collects
// *every* violation as a structured Diagnostic instead of throwing at the
// first.  Migrate callers:
//
//   // old                                   // new
//   core::verify_schedule(result, n, p);     for (const auto& d :
//                                                analysis::check_schedule(
//                                                    result, n, p))
//                                              handle(d);
//
// This header keeps the historical throwing spelling compiling for one
// release; every use emits a deprecation warning.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/verify_schedule.h"
#include "util/error.h"
#include "util/strings.h"

namespace sdpm::core {

/// Throwing wrapper over analysis::check_schedule: throws sdpm::Error
/// naming the first error's rule and message (with a "(+N more)" suffix
/// when several were found); returns the directive count on success.
[[deprecated(
    "core::verify_schedule is a compatibility shim; use "
    "analysis::check_schedule and inspect the diagnostics")]]
inline std::int64_t verify_schedule(const core::ScheduleResult& result,
                                    int total_disks,
                                    const disk::DiskParameters& params) {
  const std::vector<analysis::Diagnostic> diags =
      analysis::check_schedule(result, total_disks, params);
  int errors = 0;
  const analysis::Diagnostic* first = nullptr;
  for (const analysis::Diagnostic& d : diags) {
    if (d.severity == analysis::Severity::kError) {
      if (first == nullptr) first = &d;
      ++errors;
    }
  }
  if (first != nullptr) {
    std::string message = first->rule + ": " + first->message;
    if (errors > 1) message += str_printf(" (+%d more)", errors - 1);
    throw Error(message);
  }
  return static_cast<std::int64_t>(result.program.directives.size());
}

}  // namespace sdpm::core
