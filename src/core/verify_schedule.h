// Static well-formedness verification of a power-call schedule.
//
// Run after schedule_power_calls (and by its tests) to certify that the
// inserted directives form a sane program, independent of any simulation:
//   - per disk, spin_down/spin_up strictly alternate (TPM mode) and a
//     set_RPM(max) pre-activation follows every set_RPM(lower) that has a
//     later use (DRPM mode);
//   - every directive lands inside one of the scheduler's planned idle
//     periods for its disk;
//   - no directive targets a disk outside the layout;
//   - directives are sorted in program order.
// Violations throw sdpm::Error naming the offending directive.
#pragma once

#include <vector>

#include "core/schedule.h"

namespace sdpm::core {

/// Verify `result` (the scheduler's output) against the disk count and its
/// own gap plans.  Returns the number of directives checked.
std::int64_t verify_schedule(const ScheduleResult& result, int total_disks,
                             const disk::DiskParameters& params);

}  // namespace sdpm::core
