#include "core/mispredict.h"

#include "policy/oracle.h"

namespace sdpm::core {

MispredictStats compare_with_oracle(const std::vector<GapPlan>& plans,
                                    const trace::TimeEstimate& actual,
                                    const disk::DiskParameters& params,
                                    PowerMode mode) {
  MispredictStats stats;
  for (const GapPlan& plan : plans) {
    const TimeMs actual_gap = actual.at_global(plan.end_iter) -
                              actual.at_global(plan.begin_iter);
    ++stats.gaps;
    if (mode == PowerMode::kDrpm) {
      const int oracle = policy::optimal_rpm_level(actual_gap, params);
      if (oracle != plan.level) ++stats.mispredicted;
    } else {
      const bool oracle_down = policy::tpm_gap_beneficial(actual_gap, params);
      const bool planned_down = plan.level == -1 && plan.acted;
      if (oracle_down != planned_down) ++stats.mispredicted;
    }
  }
  return stats;
}

}  // namespace sdpm::core
