#include "core/codegen.h"

#include <sstream>

#include "util/strings.h"

namespace sdpm::core {

namespace {

std::string indent(int depth) { return std::string(2 * (depth + 1), ' '); }

std::string directive_call(const ir::PowerDirective& d,
                           const disk::DiskParameters& disk) {
  switch (d.kind) {
    case ir::PowerDirective::Kind::kSpinDown:
      return str_printf("spin_down(disk%d);", d.disk);
    case ir::PowerDirective::Kind::kSpinUp:
      return str_printf("spin_up(disk%d);", d.disk);
    case ir::PowerDirective::Kind::kSetRpm:
      return str_printf("set_RPM(RPM_%d, disk%d);",
                        disk.rpm_of_level(d.rpm_level), d.disk);
  }
  return "?";
}

/// Guard expression selecting one iteration of the nest.
std::string guard_for(const ir::LoopNest& nest, std::int64_t flat) {
  const std::vector<std::int64_t> iters = nest.iteration_at(flat);
  std::vector<std::string> terms;
  for (std::size_t k = 0; k < nest.loops.size(); ++k) {
    terms.push_back(nest.loops[k].var + " == " +
                    std::to_string(iters[k]));
  }
  return join(terms, " && ");
}

}  // namespace

std::string emit_pseudo_source(const ir::Program& program,
                               const CodegenOptions& options) {
  std::ostringstream os;
  os << "/* " << program.name << " — emitted by sdpm codegen */\n";

  if (options.emit_arrays) {
    for (const ir::Array& a : program.arrays) {
      os << "double " << a.name;
      for (const std::int64_t extent : a.extents) {
        os << "[" << extent << "]";
      }
      os << ";  /* " << fmt_bytes(a.size_bytes()) << ", "
         << ir::to_string(a.layout) << " */\n";
    }
    os << "\n";
  }

  for (int n = 0; n < static_cast<int>(program.nests.size()); ++n) {
    const ir::LoopNest& nest = program.nests[static_cast<std::size_t>(n)];
    const auto names = nest.loop_names();

    os << "/* nest " << n << ": " << nest.name;
    if (options.emit_costs) {
      os << " — " << fmt_double(nest.cycles_per_iteration(), 1)
         << " cycles/iteration, "
         << nest.iteration_count() << " iterations";
    }
    os << " */\n";

    // Directives before the nest body (flat iteration 0), inside, after.
    std::vector<const ir::PlacedDirective*> inside;
    for (const ir::PlacedDirective& pd : program.directives) {
      if (pd.point.nest_index != n) continue;
      if (pd.point.flat_iteration == 0) {
        os << directive_call(pd.directive, options.disk) << "\n";
      } else if (pd.point.flat_iteration >= nest.iteration_count()) {
        // rendered after the closing braces below
      } else {
        inside.push_back(&pd);
      }
    }

    for (int k = 0; k < nest.depth(); ++k) {
      const ir::Loop& loop = nest.loops[static_cast<std::size_t>(k)];
      os << indent(k - 1) << "for (" << loop.var << " = " << loop.lower
         << "; " << loop.var << " < " << loop.upper << "; " << loop.var
         << " += " << loop.step << ") {\n";
    }

    for (const ir::PlacedDirective* pd : inside) {
      os << indent(nest.depth() - 1) << "if ("
         << guard_for(nest, pd->point.flat_iteration) << ") "
         << directive_call(pd->directive, options.disk)
         << "  /* strip-mined call site */\n";
    }

    for (const ir::Statement& stmt : nest.body) {
      // Writes form the left-hand side; reads the right.
      std::vector<std::string> lhs;
      std::vector<std::string> rhs;
      for (const ir::ArrayRef& ref : stmt.refs) {
        std::string text = program.array(ref.array).name;
        for (const ir::AffineExpr& sub : ref.subscripts) {
          text += "[" + sub.to_string(names) + "]";
        }
        (ref.kind == ir::AccessKind::kWrite ? lhs : rhs).push_back(text);
      }
      os << indent(nest.depth() - 1);
      if (lhs.empty()) {
        os << "use(" << join(rhs, ", ") << ");";
      } else if (rhs.empty()) {
        os << join(lhs, " = ") << " = ...;";
      } else {
        os << join(lhs, " = ") << " = f(" << join(rhs, ", ") << ");";
      }
      if (!stmt.label.empty()) os << "  /* " << stmt.label << " */";
      os << "\n";
    }

    for (int k = nest.depth() - 1; k >= 0; --k) {
      os << indent(k - 1) << "}\n";
    }

    for (const ir::PlacedDirective& pd : program.directives) {
      if (pd.point.nest_index == n &&
          pd.point.flat_iteration >= nest.iteration_count()) {
        os << directive_call(pd.directive, options.disk) << "\n";
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace sdpm::core
