// Pseudo-source emission (paper Figure 2(d)).
//
// Renders a Program — including the power-management calls the scheduler
// inserted — as readable pseudo-C.  This is the artifact the paper's
// compiler ultimately produces: the original loop nests with explicit
// spin_down / spin_up / set_RPM calls at their strip-mined insertion
// points.  Directive sites inside a nest are rendered as guarded calls on
// the loop iterators (`if (i == 61 && j == 440) set_RPM(...)`); a real
// code generator would strip-mine the loop so the guard disappears into a
// tile boundary, which is exactly how the paper describes the insertion
// (§3: "we also stripe-mine the loop, because it is unreasonable to unroll
// the loop to make explicit the point at which the spin-up call is to be
// inserted").
#pragma once

#include <string>

#include "disk/parameters.h"
#include "ir/program.h"

namespace sdpm::core {

struct CodegenOptions {
  /// Disk model used to render RPM level indices as RPM values.
  disk::DiskParameters disk = disk::DiskParameters::ultrastar_36z15();
  /// Emit the array declarations header.
  bool emit_arrays = true;
  /// Emit per-nest cycle-cost comments.
  bool emit_costs = true;
};

/// Render `program` as pseudo-C source.
std::string emit_pseudo_source(const ir::Program& program,
                               const CodegenOptions& options = {});

}  // namespace sdpm::core
