#include "core/schedule.h"

#include <algorithm>
#include <cmath>

#include "policy/oracle.h"
#include "trace/timeline.h"
#include "util/error.h"

namespace sdpm::core {

const char* to_string(PowerMode mode) {
  return mode == PowerMode::kTpm ? "CMTPM" : "CMDRPM";
}

std::int64_t preactivation_distance(TimeMs t_su_ms, TimeMs s_ms,
                                    TimeMs t_m_ms) {
  SDPM_REQUIRE(s_ms + t_m_ms > 0, "per-iteration time must be positive");
  return static_cast<std::int64_t>(std::ceil(t_su_ms / (s_ms + t_m_ms)));
}

namespace {

/// Latest global iteration g in [lo, hi] whose estimated remaining time to
/// `hi` is at least `lead_ms` (binary search on the monotone timeline).
std::int64_t latest_start_with_lead(const trace::TimeEstimate& est,
                                    std::int64_t lo, std::int64_t hi,
                                    TimeMs lead_ms) {
  const TimeMs deadline = est.at_global(hi);
  if (deadline - est.at_global(lo) < lead_ms) return lo;
  std::int64_t a = lo;  // invariant: satisfies the lead
  std::int64_t b = hi;  // invariant: does not (or is the deadline itself)
  while (b - a > 1) {
    const std::int64_t mid = a + (b - a) / 2;
    if (deadline - est.at_global(mid) >= lead_ms) {
      a = mid;
    } else {
      b = mid;
    }
  }
  return a;
}

std::int64_t snap_down(std::int64_t g, std::int64_t granularity) {
  return granularity <= 1 ? g : (g / granularity) * granularity;
}

std::int64_t snap_up(std::int64_t g, std::int64_t granularity) {
  return granularity <= 1 ? g
                          : ((g + granularity - 1) / granularity) * granularity;
}

}  // namespace

ScheduleResult schedule_power_calls(const ir::Program& program,
                                    const layout::LayoutTable& layout,
                                    const disk::DiskParameters& params,
                                    const SchedulerOptions& options) {
  SDPM_REQUIRE(options.call_site_granularity >= 1,
               "call-site granularity must be >= 1");
  SDPM_REQUIRE(options.safety_margin >= 0.0 && options.safety_margin < 1.0,
               "safety margin must be in [0, 1)");
  ScheduleResult result;
  result.program = program;

  const trace::DiskAccessPattern dap =
      trace::DiskAccessPattern::analyze(program, layout, options.access);
  const trace::Timeline nominal(program, options.access.clock_hz);
  const trace::TimeEstimate& est =
      options.estimate != nullptr ? *options.estimate : nominal;
  SDPM_REQUIRE(est.total_iterations() == nominal.space().total(),
               "estimate timeline does not match the program");
  const trace::IterationSpace& space = nominal.space();
  const std::int64_t total = space.total();
  const int top = params.max_level();
  const TimeMs tm = options.access.power_call_overhead_ms;

  const auto place = [&](std::int64_t g, ir::PowerDirective directive) {
    result.program.directives.push_back(
        ir::PlacedDirective{space.point_of(g), directive});
    ++result.calls_inserted;
  };

  for (int d = 0; d < dap.disk_count(); ++d) {
    const IntervalSet idle = dap.idle_periods(d);
    for (const Interval& gap : idle.intervals()) {
      GapPlan plan;
      plan.disk = d;
      plan.begin_iter = gap.lo;
      plan.end_iter = gap.hi;
      plan.estimated_ms =
          est.at_global(gap.hi) - est.at_global(gap.lo);
      const TimeMs discounted =
          plan.estimated_ms * (1.0 - options.safety_margin);
      const bool has_next_use = gap.hi < total;

      if (options.mode == PowerMode::kTpm) {
        plan.level = -1;
        const bool beneficial = policy::tpm_gap_beneficial(discounted, params);
        if (beneficial) {
          const std::int64_t down_site = std::min(
              snap_up(gap.lo, options.call_site_granularity), gap.hi);
          place(down_site,
                ir::PowerDirective{ir::PowerDirective::Kind::kSpinDown, d, 0});
          if (has_next_use && options.preactivate) {
            const TimeMs lead =
                (params.wake_time(params.default_park()) + tm) *
                (1.0 + options.safety_margin);
            std::int64_t up_site =
                latest_start_with_lead(est, gap.lo, gap.hi, lead);
            up_site = std::max(snap_down(up_site,
                                         options.call_site_granularity),
                               down_site);
            place(up_site,
                  ir::PowerDirective{ir::PowerDirective::Kind::kSpinUp, d, 0});
          }
          plan.acted = true;
        } else {
          plan.level = top;  // stay up
        }
      } else {
        // The level follows the estimate directly: an RPM round trip that
        // slightly overruns a mispredicted gap delays the next request by
        // at most the residual transition (tens of ms), never a full
        // spin-up.  Conservatism is applied where it matters — the
        // pre-activation lead below.
        const int level =
            policy::optimal_rpm_level(plan.estimated_ms, params);
        plan.level = level;
        if (level < top) {
          const std::int64_t down_site = std::min(
              snap_up(gap.lo, options.call_site_granularity), gap.hi);
          place(down_site, ir::PowerDirective{
                               ir::PowerDirective::Kind::kSetRpm, d, level});
          if (has_next_use && options.preactivate) {
            const TimeMs lead = (params.rpm_transition_time(level, top) + tm) *
                                (1.0 + options.safety_margin);
            std::int64_t up_site =
                latest_start_with_lead(est, gap.lo, gap.hi, lead);
            up_site = std::max(snap_down(up_site,
                                         options.call_site_granularity),
                               down_site);
            place(up_site, ir::PowerDirective{
                               ir::PowerDirective::Kind::kSetRpm, d, top});
          }
          plan.acted = true;
        }
      }
      result.plans.push_back(plan);
    }
  }

  result.program.sort_directives();
  result.program.validate();
  return result;
}

}  // namespace sdpm::core
