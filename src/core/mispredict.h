// Misprediction analysis (paper Table 3).
//
// For every disk idle period the scheduler planned, compare the RPM level
// the compiler chose from its *estimated* gap length with the level an
// oracle picks from the *actual* gap length on the noisy execution
// timeline.  The paper reports the percentage of idle periods where the two
// disagree ("percentage of mispredicted disk speeds").
#pragma once

#include <vector>

#include "core/schedule.h"
#include "trace/timeline.h"

namespace sdpm::core {

struct MispredictStats {
  std::int64_t gaps = 0;
  std::int64_t mispredicted = 0;

  double percent() const {
    return gaps == 0 ? 0.0
                     : 100.0 * static_cast<double>(mispredicted) /
                           static_cast<double>(gaps);
  }
};

/// Compare the scheduler's per-gap choices against the oracle evaluated on
/// the actual timeline.  `mode` selects the decision being compared: the
/// RPM level (DRPM) or the spin-down decision (TPM).
MispredictStats compare_with_oracle(const std::vector<GapPlan>& plans,
                                    const trace::TimeEstimate& actual,
                                    const disk::DiskParameters& params,
                                    PowerMode mode);

}  // namespace sdpm::core
