#include "core/tiling.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "disk/parameters.h"
#include "ir/transform.h"
#include "trace/timeline.h"
#include "util/error.h"

namespace sdpm::core {

std::vector<std::int64_t> misses_per_nest(
    const ir::Program& program, const layout::LayoutTable& layout,
    const trace::GeneratorOptions& options) {
  const trace::IterationSpace space(program);
  std::vector<std::int64_t> counts(program.nests.size(), 0);
  for (const trace::MissRecord& miss :
       trace::collect_misses(program, layout, options)) {
    ++counts[static_cast<std::size_t>(
        space.point_of(miss.global_iter).nest_index)];
  }
  return counts;
}

std::vector<double> disk_energy_per_nest(
    const ir::Program& program, const layout::LayoutTable& layout,
    const trace::GeneratorOptions& options, int total_disks) {
  const disk::DiskParameters params = disk::DiskParameters::ultrastar_36z15();
  const trace::Timeline timeline(program, options.clock_hz);
  const std::vector<std::int64_t> misses =
      misses_per_nest(program, layout, options);
  // Rough per-miss service estimate: seek + rotation + one block transfer.
  const TimeMs service = params.average_seek_time +
                         params.average_rotation_time +
                         64.0 / params.internal_transfer_mb_per_s;
  std::vector<double> energy(program.nests.size(), 0.0);
  for (std::size_t n = 0; n < program.nests.size(); ++n) {
    const TimeMs duration =
        timeline.per_iteration_ms(static_cast<int>(n)) *
            static_cast<double>(program.nests[n].iteration_count()) +
        service * static_cast<double>(misses[n]);
    energy[n] = joules_from_watt_ms(
                    params.idle_power_at_level(params.max_level()),
                    duration) *
                    static_cast<double>(total_disks) +
                joules_from_watt_ms(
                    params.active_power_at_level(params.max_level()) -
                        params.idle_power_at_level(params.max_level()),
                    service) *
                    static_cast<double>(misses[n]);
  }
  return energy;
}

namespace {

/// The single loop index a subscript reads (coef 1, constant 0), or -1 when
/// the subscript has any other shape.
int single_loop_of(const ir::AffineExpr& expr) {
  if (expr.constant != 0) return -1;
  int loop = -1;
  for (std::size_t k = 0; k < expr.coefs.size(); ++k) {
    if (expr.coefs[k] == 0) continue;
    if (loop != -1 || expr.coefs[k] != 1) return -1;
    loop = static_cast<int>(k);
  }
  return loop;
}

/// Pick the divisor pair (T1 | n1, T2 | n2) whose footprint T1*T2*elem is
/// closest to `target`, preferring squarish tiles on ties.
std::pair<std::int64_t, std::int64_t> choose_tiles(std::int64_t n1,
                                                   std::int64_t n2,
                                                   Bytes elem, Bytes target,
                                                   std::int64_t t1_cap) {
  auto divisors = [](std::int64_t n) {
    std::vector<std::int64_t> out;
    for (std::int64_t d = 1; d * d <= n; ++d) {
      if (n % d == 0) {
        out.push_back(d);
        if (d != n / d) out.push_back(n / d);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  const std::vector<std::int64_t> d1 = divisors(n1);
  const std::vector<std::int64_t> d2 = divisors(n2);
  std::pair<std::int64_t, std::int64_t> best{1, 1};
  double best_cost = 1e300;
  for (const std::int64_t t1 : d1) {
    if (t1 > t1_cap) continue;
    for (const std::int64_t t2 : d2) {
      const double footprint = static_cast<double>(t1 * t2 * elem);
      const double size_err =
          std::abs(std::log(footprint / static_cast<double>(target)));
      const double shape_err = std::abs(
          std::log(static_cast<double>(t1) / static_cast<double>(t2)));
      const double cost = size_err * 4.0 + shape_err;
      if (cost < best_cost) {
        best_cost = cost;
        best = {t1, t2};
      }
    }
  }
  return best;
}

/// Two nests are structurally identical when they have the same loop bounds
/// and the same references (arrays, kinds, subscripts) — the situation of a
/// single textual nest executed repeatedly (a time-stepped outer loop that
/// the IR represents as separate nest instances).  The tiling pass treats
/// such a family as one nest, exactly as a source-level compiler would.
bool same_structure(const ir::LoopNest& a, const ir::LoopNest& b) {
  if (a.loops.size() != b.loops.size() || a.body.size() != b.body.size()) {
    return false;
  }
  for (std::size_t k = 0; k < a.loops.size(); ++k) {
    const ir::Loop& la = a.loops[k];
    const ir::Loop& lb = b.loops[k];
    if (la.lower != lb.lower || la.upper != lb.upper || la.step != lb.step) {
      return false;
    }
  }
  for (std::size_t s = 0; s < a.body.size(); ++s) {
    const ir::Statement& sa = a.body[s];
    const ir::Statement& sb = b.body[s];
    if (sa.refs.size() != sb.refs.size()) return false;
    for (std::size_t r = 0; r < sa.refs.size(); ++r) {
      const ir::ArrayRef& ra = sa.refs[r];
      const ir::ArrayRef& rb = sb.refs[r];
      if (ra.array != rb.array || ra.kind != rb.kind ||
          ra.subscripts != rb.subscripts) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

namespace {

/// One application of Fig. 12 (single nest family).
TilingResult apply_once(const ir::Program& program,
                        const TilingOptions& options) {
  TilingResult result;
  result.program = program;
  result.program.name =
      program.name + (options.layout_aware ? "+TL+DL" : "+TL");
  result.striping.assign(program.arrays.size(), options.base_striping);

  // --- select the most costly nest ---------------------------------------
  int target = options.nest_override;
  if (target < 0) {
    const layout::LayoutTable base_layout(program, options.base_striping,
                                          options.total_disks);
    const std::vector<double> energy = disk_energy_per_nest(
        program, base_layout, options.access, options.total_disks);
    target = static_cast<int>(
        std::max_element(energy.begin(), energy.end()) - energy.begin());
  }
  SDPM_REQUIRE(target >= 0 && target < static_cast<int>(program.nests.size()),
               "tiling nest index out of range");
  const ir::LoopNest& nest =
      program.nests[static_cast<std::size_t>(target)];

  // --- applicability ------------------------------------------------------
  if (nest.depth() < 2) {
    result.note = "nest '" + nest.name + "' is not tilable (depth < 2)";
    return result;
  }
  // Tile the two innermost loops (the ones that index the arrays; outer
  // loops, e.g. time steps, are left untouched).
  const int k0 = nest.depth() - 2;
  for (int k = k0; k < k0 + 2; ++k) {
    if (nest.loops[static_cast<std::size_t>(k)].step != 1) {
      result.note = "nest '" + nest.name + "' has non-unit steps";
      return result;
    }
  }
  // Every reference must be a 2-D permutation access U[loop_a][loop_b] of
  // the two tiled loops for the blocked reshape to be expressible.
  for (const ir::Statement& stmt : nest.body) {
    for (const ir::ArrayRef& ref : stmt.refs) {
      const ir::Array& arr = program.array(ref.array);
      if (arr.rank() != 2) {
        result.note = "array '" + arr.name + "' is not 2-D";
        return result;
      }
      const int l0 = single_loop_of(ref.subscripts[0]);
      const int l1 = single_loop_of(ref.subscripts[1]);
      if (l0 < 0 || l1 < 0 || l0 == l1 || l0 < k0 || l0 > k0 + 1 ||
          l1 < k0 || l1 > k0 + 1) {
        result.note = "reference to '" + arr.name +
                      "' is not a permutation of the tiled loops";
        return result;
      }
    }
  }

  // --- family of identical nests -------------------------------------------
  // The costly nest typically recurs once per outer time step; all its
  // structurally identical siblings are tiled with it.
  std::vector<bool> in_family(program.nests.size(), false);
  for (int ni = 0; ni < static_cast<int>(program.nests.size()); ++ni) {
    in_family[static_cast<std::size_t>(ni)] =
        same_structure(program.nests[static_cast<std::size_t>(ni)], nest);
  }

  // Which arrays may be reshaped: every one of their references must live
  // inside the family.
  std::vector<bool> confined(program.arrays.size(), true);
  for (int ni = 0; ni < static_cast<int>(program.nests.size()); ++ni) {
    if (in_family[static_cast<std::size_t>(ni)]) continue;
    for (const ir::Statement& stmt :
         program.nests[static_cast<std::size_t>(ni)].body) {
      for (const ir::ArrayRef& ref : stmt.refs) {
        confined[static_cast<std::size_t>(ref.array)] = false;
      }
    }
  }

  // Determine, per array, which tiled loop indexes which dimension (must
  // agree across all references for the blocked reshape to be well-formed).
  std::vector<int> dim0_loop(program.arrays.size(), -1);
  bool consistent = true;
  for (const ir::Statement& stmt : nest.body) {
    for (const ir::ArrayRef& ref : stmt.refs) {
      const int l0 = single_loop_of(ref.subscripts[0]);
      int& slot = dim0_loop[static_cast<std::size_t>(ref.array)];
      if (slot == -1) {
        slot = l0;
      } else if (slot != l0) {
        consistent = false;
      }
    }
  }

  const auto reshapeable = [&](ir::ArrayId a) {
    return options.layout_aware && consistent &&
           confined[static_cast<std::size_t>(a)];
  };

  // --- choose tile sizes ---------------------------------------------------
  Bytes elem = 8;
  bool any_unreshaped = false;
  Bytes row_bytes_sum = 0;  // bytes touched per unit of the outer tiled loop
  std::vector<bool> seen(program.arrays.size(), false);
  for (const ir::Statement& stmt : nest.body) {
    for (const ir::ArrayRef& ref : stmt.refs) {
      const ir::Array& arr = program.array(ref.array);
      elem = std::max(elem, arr.element_size);
      if (seen[static_cast<std::size_t>(ref.array)]) continue;
      seen[static_cast<std::size_t>(ref.array)] = true;
      if (!reshapeable(ref.array)) {
        any_unreshaped = true;
        const int dim_of_outer =
            dim0_loop[static_cast<std::size_t>(ref.array)] == k0 ? 0 : 1;
        row_bytes_sum +=
            arr.dim_stride(dim_of_outer) * arr.element_size;
      }
    }
  }

  const std::int64_t n1 =
      nest.loops[static_cast<std::size_t>(k0)].trip_count();
  const std::int64_t n2 =
      nest.loops[static_cast<std::size_t>(k0) + 1].trip_count();
  // Without the blocked reshape, a tile of T1 outer-loop values pins T1
  // "rows" of every un-reshaped array (each spanning whole cache blocks);
  // bound T1 so a tile row-band fits in half the buffer cache, or tiling
  // degrades into block re-fetching.
  std::int64_t t1_cap = n1;
  if (any_unreshaped && row_bytes_sum > 0 && options.access.cache_bytes > 0) {
    t1_cap = std::max<std::int64_t>(
        1, options.access.cache_bytes / (2 * row_bytes_sum));
  }
  const auto [t1, t2] =
      choose_tiles(n1, n2, elem, options.tile_bytes, t1_cap);
  result.tile_rows = t1;
  result.tile_cols = t2;

  // --- tile every family member and rewrite its references -----------------
  result.tiled_nest = target;
  result.applied = true;
  const std::int64_t nt1 = n1 / t1;
  const std::int64_t nt2 = n2 / t2;
  int reshaped = 0;
  std::vector<bool> done(program.arrays.size(), false);

  for (int ni = 0; ni < static_cast<int>(program.nests.size()); ++ni) {
    if (!in_family[static_cast<std::size_t>(ni)]) continue;
    ir::LoopNest tiled = ir::tile(
        program.nests[static_cast<std::size_t>(ni)], {t1, t2}, k0);
    const std::size_t new_depth = tiled.loops.size();  // >= 4

    if (options.layout_aware) {
      for (ir::Statement& stmt : tiled.body) {
        for (ir::ArrayRef& ref : stmt.refs) {
          const auto a = static_cast<std::size_t>(ref.array);
          if (!reshapeable(ref.array)) continue;
          if (!done[a]) {
            done[a] = true;
            ir::Array& arr = result.program.array(ref.array);
            // An array is "conforming" when the innermost tiled loop already
            // walks its contiguous dimension; otherwise the blocking
            // permutes the dimensions into access order — the paper's
            // row-major -> column-major transformation.
            const bool permuted =
                (dim0_loop[a] == k0) !=
                (arr.layout == ir::StorageLayout::kRowMajor);
            arr.extents = {nt1, nt2, t1, t2};
            arr.layout = ir::StorageLayout::kRowMajor;
            arr.name += ".blk";
            if (permuted) result.permuted_arrays.push_back(ref.array);
            result.reshaped_arrays.push_back(ref.array);
            ++reshaped;
            // Tile-to-disk mapping: stripe size = per-tile footprint DS(i),
            // striped round-robin over all disks from disk 0, so tile k of
            // every reshaped array lands on disk k mod total_disks.
            layout::Striping s;
            s.starting_disk = 0;
            s.stripe_factor = options.total_disks;
            s.stripe_size = t1 * t2 * arr.element_size;
            result.striping[a] = s;
          }
          // Logical access order: [ii][jj][i][j].
          const auto v = [&](int k) {
            return ir::affine_var(static_cast<std::size_t>(k), new_depth);
          };
          ref.subscripts = {v(k0), v(k0 + 1), v(k0 + 2), v(k0 + 3)};
        }
      }
    }
    result.program.nests[static_cast<std::size_t>(ni)] = std::move(tiled);
  }

  if (!options.layout_aware) {
    result.note = "tiled nest '" + nest.name + "' (no layout change)";
  } else if (reshaped == 0) {
    result.note = "tiled nest '" + nest.name +
                  "' but no array was private to it; tile-to-disk mapping "
                  "not applicable";
  } else {
    result.note = "tiled nest '" + nest.name + "', reshaped " +
                  std::to_string(reshaped) + " array(s), " +
                  std::to_string(result.permuted_arrays.size()) +
                  " required an access-order permutation";
  }
  result.program.validate();
  return result;
}

}  // namespace

TilingResult apply_loop_tiling(const ir::Program& program,
                               const TilingOptions& options) {
  if (!options.all_nests) return apply_once(program, options);

  // Multi-nest extension: chain single-nest applications in decreasing
  // disk-energy order until no applicable family remains.
  TilingResult acc;
  acc.program = program;
  acc.striping.assign(program.arrays.size(), options.base_striping);
  std::vector<bool> done(program.nests.size(), false);
  bool first = true;

  for (;;) {
    // Rank the not-yet-tiled nests of the current program.
    layout::Striping ranking_striping = options.base_striping;
    const layout::LayoutTable ranking_layout(acc.program, ranking_striping,
                                             options.total_disks);
    const std::vector<double> energy = disk_energy_per_nest(
        acc.program, ranking_layout, options.access, options.total_disks);
    std::vector<int> order(acc.program.nests.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](int a, int b) {
                return energy[static_cast<std::size_t>(a)] >
                       energy[static_cast<std::size_t>(b)];
              });

    bool applied_any = false;
    for (const int idx : order) {
      if (done[static_cast<std::size_t>(idx)]) continue;
      TilingOptions once = options;
      once.all_nests = false;
      once.nest_override = idx;
      TilingResult r = apply_once(acc.program, once);
      if (!r.applied) {
        done[static_cast<std::size_t>(idx)] = true;
        continue;
      }
      // Mark every nest the family application transformed.
      for (std::size_t ni = 0; ni < acc.program.nests.size(); ++ni) {
        if (r.program.nests[ni].depth() != acc.program.nests[ni].depth()) {
          done[ni] = true;
        }
      }
      done[static_cast<std::size_t>(idx)] = true;
      // Merge striping for the arrays this application reshaped.
      for (const ir::ArrayId a : r.reshaped_arrays) {
        acc.striping[static_cast<std::size_t>(a)] =
            r.striping[static_cast<std::size_t>(a)];
      }
      acc.reshaped_arrays.insert(acc.reshaped_arrays.end(),
                                 r.reshaped_arrays.begin(),
                                 r.reshaped_arrays.end());
      acc.permuted_arrays.insert(acc.permuted_arrays.end(),
                                 r.permuted_arrays.begin(),
                                 r.permuted_arrays.end());
      if (first) {
        acc.tiled_nest = idx;
        acc.tile_rows = r.tile_rows;
        acc.tile_cols = r.tile_cols;
        first = false;
      }
      acc.program = std::move(r.program);
      acc.applied = true;
      acc.note += (acc.note.empty() ? "" : "; ") + r.note;
      applied_any = true;
      break;  // re-rank on the transformed program
    }
    if (!applied_any) break;
  }
  if (!acc.applied) acc.note = "no tilable nest";
  acc.program.validate();
  return acc;
}

}  // namespace sdpm::core
