#include "core/schedule_edit.h"

#include <algorithm>
#include <cstddef>

#include "util/error.h"

namespace sdpm::core {

const char* to_string(ScheduleEdit::Kind kind) {
  switch (kind) {
    case ScheduleEdit::Kind::kMoveDirective:
      return "move_directive";
    case ScheduleEdit::Kind::kRemoveDirective:
      return "remove_directive";
    case ScheduleEdit::Kind::kInsertDirective:
      return "insert_directive";
    case ScheduleEdit::Kind::kRetargetLevel:
      return "retarget_level";
    case ScheduleEdit::Kind::kSetPlanLevel:
      return "set_plan_level";
    case ScheduleEdit::Kind::kSetPlanActed:
      return "set_plan_acted";
    case ScheduleEdit::Kind::kRestripeArray:
      return "restripe_array";
  }
  return "?";
}

void apply_schedule_edits(ScheduleResult& result,
                          std::vector<layout::Striping>& striping,
                          const std::vector<ScheduleEdit>& edits) {
  auto& dirs = result.program.directives;
  const auto check_dir = [&](const ScheduleEdit& e) {
    SDPM_REQUIRE(e.directive_index >= 0 &&
                     static_cast<std::size_t>(e.directive_index) < dirs.size(),
                 "schedule edit: directive index out of range");
  };
  const auto check_plan = [&](const ScheduleEdit& e) {
    SDPM_REQUIRE(e.plan_index >= 0 && static_cast<std::size_t>(e.plan_index) <
                                          result.plans.size(),
                 "schedule edit: plan index out of range");
  };

  // Index-stable edits first, so every index still refers to the
  // pre-batch schedule.
  for (const ScheduleEdit& e : edits) {
    switch (e.kind) {
      case ScheduleEdit::Kind::kMoveDirective:
        check_dir(e);
        dirs[e.directive_index].point = e.point;
        break;
      case ScheduleEdit::Kind::kRetargetLevel:
        check_dir(e);
        dirs[e.directive_index].directive.rpm_level = e.level;
        break;
      case ScheduleEdit::Kind::kSetPlanLevel:
        check_plan(e);
        result.plans[e.plan_index].level = e.level;
        break;
      case ScheduleEdit::Kind::kSetPlanActed:
        check_plan(e);
        result.plans[e.plan_index].acted = e.acted;
        break;
      case ScheduleEdit::Kind::kRestripeArray:
        SDPM_REQUIRE(e.array >= 0 && static_cast<std::size_t>(e.array) <
                                         striping.size(),
                     "schedule edit: array id out of range");
        striping[e.array] = e.striping;
        break;
      case ScheduleEdit::Kind::kRemoveDirective:
        check_dir(e);
        break;  // validated now, applied below
      case ScheduleEdit::Kind::kInsertDirective:
        break;  // applied below
    }
  }

  // Removals in descending index order keep the remaining indices valid.
  std::vector<int> removals;
  for (const ScheduleEdit& e : edits) {
    if (e.kind == ScheduleEdit::Kind::kRemoveDirective) {
      removals.push_back(e.directive_index);
    }
  }
  std::sort(removals.begin(), removals.end(), std::greater<>());
  SDPM_REQUIRE(std::adjacent_find(removals.begin(), removals.end()) ==
                   removals.end(),
               "schedule edit: duplicate removal of one directive");
  for (const int idx : removals) {
    dirs.erase(dirs.begin() + idx);
    --result.calls_inserted;
  }

  for (const ScheduleEdit& e : edits) {
    if (e.kind != ScheduleEdit::Kind::kInsertDirective) continue;
    dirs.push_back(ir::PlacedDirective{e.point, e.directive});
    ++result.calls_inserted;
  }

  result.program.sort_directives();
}

}  // namespace sdpm::core
