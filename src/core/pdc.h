// Popular Data Concentration (extension; paper's related work [16],
// Pinheiro & Bianchini, ICS'04).
//
// PDC is the reactive *layout* counterpart of this paper's compiler-driven
// scheme: instead of lengthening idle periods by restructuring the code, it
// migrates the most popular data onto a prefix of the disks so the
// remaining disks see little traffic and can be sent to low-power modes.
// We implement the offline variant: array popularity comes from a profiling
// pass (the same access model the compiler already runs), and each array is
// concentrated onto the smallest disk prefix whose projected load stays
// under a configurable cap.  Combined with reactive TPM/DRPM this gives the
// paper's third point of comparison; `bench_ablation_pdc` evaluates it.
#pragma once

#include <vector>

#include "ir/program.h"
#include "layout/striping.h"
#include "trace/generator.h"

namespace sdpm::core {

struct PdcOptions {
  int total_disks = 8;
  layout::Striping base_striping{};
  /// Access-model options for the popularity profile.
  trace::GeneratorOptions access;
  /// A disk accepts new data until its projected share of all requests
  /// exceeds headroom/total_disks (headroom 1.0 = perfectly even load;
  /// larger values concentrate harder).
  double load_headroom = 2.0;
};

struct PdcResult {
  /// Per-array striping implementing the concentration.
  std::vector<layout::Striping> striping;
  /// Arrays in popularity order (most requests first).
  std::vector<ir::ArrayId> popularity_order;
  /// Projected requests per disk under the new layout.
  std::vector<double> projected_load;
  /// Disks that received no data at all (prime spin-down candidates).
  int unused_disks = 0;
};

/// Compute the PDC layout for `program`.
PdcResult apply_pdc(const ir::Program& program, const PdcOptions& options);

}  // namespace sdpm::core
