// Compiler driver: the full pipeline of paper Figure 1.
//
// Takes an application program, optionally restructures it (loop fission /
// loop tiling, with or without the disk-layout optimization), derives the
// per-array striping, and — for the compiler-managed schemes — analyzes the
// DAP and inserts explicit power-management calls.  The output is exactly
// what the trace generator consumes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/schedule.h"
#include "ir/program.h"
#include "layout/layout_table.h"

namespace sdpm::core {

/// The code-restructuring variants evaluated in paper §6.2.
enum class Transformation {
  kNone,  ///< original code
  kLF,    ///< loop fission, layout-oblivious
  kTL,    ///< loop tiling, layout-oblivious
  kLFDL,  ///< layout-aware loop fission (Fig. 11)
  kTLDL,  ///< layout-aware loop tiling (Fig. 12)
};

const char* to_string(Transformation t);

struct CompilerOptions {
  int total_disks = 8;
  layout::Striping base_striping{};
  /// Disk model the scheduler plans against (break-even, RPM ladder).
  disk::DiskParameters disk_params = disk::DiskParameters::ultrastar_36z15();
  /// Access model shared by DAP analysis and nest-cost ranking.
  trace::GeneratorOptions access;
  /// Scheduler knobs (mode is passed separately to compile()).
  std::int64_t call_site_granularity = 1;
  bool preactivate = true;
  /// Target tile footprint for the tiling transformation.
  Bytes tile_bytes = 256 * 1024;
};

struct CompileOutput {
  ir::Program program;
  std::vector<layout::Striping> striping;  ///< per array
  std::vector<GapPlan> plans;  ///< per idle period (empty without scheduling)
  std::int64_t calls_inserted = 0;
  std::string notes;

  layout::LayoutTable make_layout_table(int total_disks) const {
    return layout::LayoutTable(program, striping, total_disks);
  }
};

/// Run the pipeline: transformation (optional) then power-call scheduling
/// (when `mode` is set; CMTPM or CMDRPM).  Without a mode, the output is
/// the restructured program for use with reactive/ideal schemes.
CompileOutput compile(const ir::Program& program, Transformation transform,
                      std::optional<PowerMode> mode,
                      const CompilerOptions& options = {});

}  // namespace sdpm::core
