#include "core/fission.h"

#include <algorithm>
#include <numeric>

#include "ir/transform.h"
#include "util/error.h"

namespace sdpm::core {

namespace {

/// Union-find over array ids.
class ArrayUnionFind {
 public:
  explicit ArrayUnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  void unite(int a, int b) {
    parent_[static_cast<std::size_t>(find(a))] = find(b);
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

std::vector<std::vector<ir::ArrayId>> array_groups(
    const ir::Program& program) {
  ArrayUnionFind uf(program.arrays.size());
  std::vector<bool> accessed(program.arrays.size(), false);
  for (const ir::LoopNest& nest : program.nests) {
    for (const ir::Statement& stmt : nest.body) {
      ir::ArrayId first = -1;
      for (const ir::ArrayRef& ref : stmt.refs) {
        accessed[static_cast<std::size_t>(ref.array)] = true;
        if (first == -1) {
          first = ref.array;
        } else {
          uf.unite(first, ref.array);
        }
      }
    }
  }
  // Collect components in order of first appearance, accessed arrays only.
  std::vector<std::vector<ir::ArrayId>> groups;
  std::vector<int> root_to_group(program.arrays.size(), -1);
  for (ir::ArrayId a = 0; a < static_cast<ir::ArrayId>(program.arrays.size());
       ++a) {
    if (!accessed[static_cast<std::size_t>(a)]) continue;
    const int root = uf.find(a);
    int& slot = root_to_group[static_cast<std::size_t>(root)];
    if (slot == -1) {
      slot = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<std::size_t>(slot)].push_back(a);
  }
  return groups;
}

FissionResult apply_loop_fission(const ir::Program& program,
                                 const FissionOptions& options) {
  SDPM_REQUIRE(options.total_disks >= 1, "need at least one disk");
  FissionResult result;

  const std::vector<std::vector<ir::ArrayId>> groups = array_groups(program);

  // Map array -> group index.
  std::vector<int> group_of(program.arrays.size(), -1);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (ir::ArrayId a : groups[g]) {
      group_of[static_cast<std::size_t>(a)] = static_cast<int>(g);
    }
  }

  // Rebuild the program, distributing each nest by statement group and
  // *consolidating* the distributed loops per array group — the shape of
  // the paper's Figure 9(b), where the transformed code runs all of group
  // 1's loops, then all of group 2's, and so on.  This is legal because
  // distinct groups access disjoint arrays (no cross-group dependences),
  // and it is what turns per-phase idleness into one long contiguous idle
  // period per disk set.
  result.program.name = program.name + (options.layout_aware ? "+LF+DL"
                                                             : "+LF");
  result.program.arrays = program.arrays;
  std::vector<std::vector<ir::LoopNest>> per_group_nests(groups.size());
  for (const ir::LoopNest& nest : program.nests) {
    // Partition statements by the array group they touch (every statement's
    // arrays are in a single group by construction of the groups).
    std::vector<std::vector<int>> stmt_groups;   // statement indices
    std::vector<int> group_key;                  // array-group per partition
    for (int si = 0; si < static_cast<int>(nest.body.size()); ++si) {
      const ir::Statement& stmt = nest.body[static_cast<std::size_t>(si)];
      SDPM_REQUIRE(!stmt.refs.empty(),
                   "statement without references cannot be grouped");
      const int g = group_of[static_cast<std::size_t>(stmt.refs[0].array)];
      const auto it = std::find(group_key.begin(), group_key.end(), g);
      if (it == group_key.end()) {
        group_key.push_back(g);
        stmt_groups.push_back({si});
      } else {
        stmt_groups[static_cast<std::size_t>(it - group_key.begin())]
            .push_back(si);
      }
    }

    if (stmt_groups.size() > 1) result.any_fissioned = true;
    if (stmt_groups.size() <= 1) {
      per_group_nests[static_cast<std::size_t>(group_key[0])].push_back(nest);
      continue;
    }
    std::vector<ir::LoopNest> parts = ir::fission(nest, stmt_groups);
    for (std::size_t p = 0; p < parts.size(); ++p) {
      per_group_nests[static_cast<std::size_t>(group_key[p])].push_back(
          std::move(parts[p]));
    }
  }
  if (result.any_fissioned) {
    for (auto& group_nests : per_group_nests) {
      for (ir::LoopNest& nest : group_nests) {
        result.program.add_nest(std::move(nest));
      }
    }
  } else {
    // Nothing was distributable; keep the original program order.
    result.program.nests = program.nests;
  }

  // Disk allocation: proportional to group bytes, at least one disk each,
  // largest-remainder rounding, contiguous ranges in group order.
  result.striping.assign(program.arrays.size(), options.base_striping);
  // The disk partitioning only accompanies an actual distribution (Fig. 11
  // couples the two); programs with no fissionable nest — the paper's
  // wupwise and galgel — are left untouched.
  if (options.layout_aware && result.any_fissioned && !groups.empty() &&
      static_cast<int>(groups.size()) <= options.total_disks) {
    Bytes total_bytes = 0;
    std::vector<Bytes> group_bytes(groups.size(), 0);
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (ir::ArrayId a : groups[g]) {
        group_bytes[g] += program.array(a).size_bytes();
      }
      total_bytes += group_bytes[g];
    }

    const int n = options.total_disks;
    std::vector<int> alloc(groups.size(), 1);
    int remaining = n - static_cast<int>(groups.size());
    // Distribute the remaining disks by largest fractional share.
    std::vector<double> share(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      share[g] = static_cast<double>(group_bytes[g]) /
                 static_cast<double>(std::max<Bytes>(total_bytes, 1)) *
                 static_cast<double>(n);
    }
    while (remaining > 0) {
      std::size_t best = 0;
      double best_deficit = -1e300;
      for (std::size_t g = 0; g < groups.size(); ++g) {
        const double deficit = share[g] - static_cast<double>(alloc[g]);
        if (deficit > best_deficit) {
          best_deficit = deficit;
          best = g;
        }
      }
      ++alloc[best];
      --remaining;
    }

    int cursor = 0;
    result.groups.resize(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      ArrayGroup& ag = result.groups[g];
      ag.arrays = groups[g];
      ag.bytes = group_bytes[g];
      ag.first_disk = cursor;
      ag.disk_count = alloc[g];
      for (ir::ArrayId a : groups[g]) {
        layout::Striping s = options.base_striping;
        s.starting_disk = ag.first_disk;
        s.stripe_factor = ag.disk_count;
        result.striping[static_cast<std::size_t>(a)] = s;
      }
      cursor += alloc[g];
    }
  } else {
    // LF without DL (or more groups than disks): record the groups without
    // a disk assignment.
    result.groups.resize(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      result.groups[g].arrays = groups[g];
      for (ir::ArrayId a : groups[g]) {
        result.groups[g].bytes += program.array(a).size_bytes();
      }
      result.groups[g].first_disk = options.base_striping.starting_disk;
      result.groups[g].disk_count = options.base_striping.stripe_factor;
    }
  }

  result.program.validate();
  return result;
}

}  // namespace sdpm::core
