#include "core/verify_schedule.h"

#include <map>

#include "trace/iteration_space.h"
#include "util/error.h"
#include "util/strings.h"

namespace sdpm::core {

std::int64_t verify_schedule(const ScheduleResult& result, int total_disks,
                             const disk::DiskParameters& params) {
  const trace::IterationSpace space(result.program);
  const int top = params.max_level();

  // Index the plans per disk for containment checks.
  std::map<int, std::vector<const GapPlan*>> plans_by_disk;
  for (const GapPlan& plan : result.plans) {
    plans_by_disk[plan.disk].push_back(&plan);
  }

  struct DiskState {
    bool standby = false;
    int level;
    explicit DiskState(int l) : level(l) {}
  };
  std::map<int, DiskState> state;

  std::int64_t prev_global = -1;
  std::int64_t checked = 0;
  for (const ir::PlacedDirective& pd : result.program.directives) {
    const std::int64_t g = space.global_of(pd.point);
    SDPM_REQUIRE(g >= prev_global, "directives out of program order");
    prev_global = g;

    const int d = pd.directive.disk;
    SDPM_REQUIRE(d >= 0 && d < total_disks,
                 str_printf("directive targets disk %d of %d", d,
                            total_disks));

    // Containment: the directive must sit inside a planned idle period
    // (inclusive of the gap end, where pre-activations complete).
    bool contained = false;
    for (const GapPlan* plan : plans_by_disk[d]) {
      if (g >= plan->begin_iter && g <= plan->end_iter) {
        contained = true;
        break;
      }
    }
    SDPM_REQUIRE(contained,
                 str_printf("directive at global iteration %lld outside "
                            "every planned idle period of disk %d",
                            static_cast<long long>(g), d));

    auto [it, inserted] = state.try_emplace(d, top);
    DiskState& ds = it->second;
    switch (pd.directive.kind) {
      case ir::PowerDirective::Kind::kSpinDown:
        SDPM_REQUIRE(!ds.standby,
                     str_printf("double spin_down on disk %d", d));
        ds.standby = true;
        break;
      case ir::PowerDirective::Kind::kSpinUp:
        SDPM_REQUIRE(ds.standby,
                     str_printf("spin_up without spin_down on disk %d", d));
        ds.standby = false;
        break;
      case ir::PowerDirective::Kind::kSetRpm:
        SDPM_REQUIRE(!ds.standby,
                     str_printf("set_RPM on standby disk %d", d));
        SDPM_REQUIRE(pd.directive.rpm_level >= 0 &&
                         pd.directive.rpm_level <= top,
                     str_printf("set_RPM level out of range on disk %d", d));
        ds.level = pd.directive.rpm_level;
        break;
    }
    ++checked;
  }

  // Every disk with a *later use* after its last slow-down must have been
  // restored: a disk left slow or in standby is only legal when its last
  // planned gap runs to the end of the program.
  const std::int64_t total = space.total();
  for (const auto& [d, ds] : state) {
    if (!ds.standby && ds.level == top) continue;
    bool trailing_gap = false;
    for (const GapPlan* plan : plans_by_disk[d]) {
      if (plan->end_iter >= total) trailing_gap = true;
    }
    SDPM_REQUIRE(trailing_gap,
                 str_printf("disk %d left %s but is used again later", d,
                            ds.standby ? "in standby" : "below full speed"));
  }
  return checked;
}

}  // namespace sdpm::core
