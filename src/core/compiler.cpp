#include "core/compiler.h"

#include "core/fission.h"
#include "core/tiling.h"

namespace sdpm::core {

const char* to_string(Transformation t) {
  switch (t) {
    case Transformation::kNone:
      return "none";
    case Transformation::kLF:
      return "LF";
    case Transformation::kTL:
      return "TL";
    case Transformation::kLFDL:
      return "LF+DL";
    case Transformation::kTLDL:
      return "TL+DL";
  }
  return "?";
}

CompileOutput compile(const ir::Program& program, Transformation transform,
                      std::optional<PowerMode> mode,
                      const CompilerOptions& options) {
  CompileOutput out;

  switch (transform) {
    case Transformation::kNone:
      out.program = program;
      out.striping.assign(program.arrays.size(), options.base_striping);
      break;
    case Transformation::kLF:
    case Transformation::kLFDL: {
      FissionOptions fo;
      fo.layout_aware = transform == Transformation::kLFDL;
      fo.total_disks = options.total_disks;
      fo.base_striping = options.base_striping;
      FissionResult fr = apply_loop_fission(program, fo);
      out.program = std::move(fr.program);
      out.striping = std::move(fr.striping);
      out.notes = fr.any_fissioned
                      ? "fissioned into " +
                            std::to_string(fr.groups.size()) +
                            " array group(s)"
                      : "no fissionable nest";
      break;
    }
    case Transformation::kTL:
    case Transformation::kTLDL: {
      TilingOptions to;
      to.layout_aware = transform == Transformation::kTLDL;
      to.total_disks = options.total_disks;
      to.base_striping = options.base_striping;
      to.access = options.access;
      to.tile_bytes = options.tile_bytes;
      TilingResult tr = apply_loop_tiling(program, to);
      out.program = std::move(tr.program);
      out.striping = std::move(tr.striping);
      out.notes = tr.note;
      break;
    }
  }

  if (mode.has_value()) {
    SchedulerOptions so;
    so.mode = *mode;
    so.access = options.access;
    so.call_site_granularity = options.call_site_granularity;
    so.preactivate = options.preactivate;
    const layout::LayoutTable table(out.program, out.striping,
                                    options.total_disks);
    ScheduleResult sr =
        schedule_power_calls(out.program, table, options.disk_params, so);
    out.program = std::move(sr.program);
    out.plans = std::move(sr.plans);
    out.calls_inserted = sr.calls_inserted;
  }
  return out;
}

}  // namespace sdpm::core
