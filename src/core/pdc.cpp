#include "core/pdc.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "layout/layout_table.h"
#include "util/error.h"

namespace sdpm::core {

PdcResult apply_pdc(const ir::Program& program, const PdcOptions& options) {
  SDPM_REQUIRE(options.total_disks >= 1, "need at least one disk");
  SDPM_REQUIRE(options.load_headroom >= 1.0,
               "load headroom below 1 is unsatisfiable");
  PdcResult result;

  // --- popularity profile ---------------------------------------------------
  layout::Striping profile_striping = options.base_striping;
  profile_striping.stripe_factor =
      std::min(profile_striping.stripe_factor, options.total_disks);
  profile_striping.starting_disk %= options.total_disks;
  const layout::LayoutTable profile_layout(program, profile_striping,
                                           options.total_disks);
  std::vector<double> requests(program.arrays.size(), 0.0);
  double total_requests = 0;
  for (const trace::MissRecord& miss :
       trace::collect_misses(program, profile_layout, options.access)) {
    requests[static_cast<std::size_t>(miss.array)] += 1.0;
    total_requests += 1.0;
  }

  result.popularity_order.resize(program.arrays.size());
  std::iota(result.popularity_order.begin(), result.popularity_order.end(),
            0);
  std::stable_sort(result.popularity_order.begin(),
                   result.popularity_order.end(),
                   [&](ir::ArrayId a, ir::ArrayId b) {
                     return requests[static_cast<std::size_t>(a)] >
                            requests[static_cast<std::size_t>(b)];
                   });

  // --- concentration ---------------------------------------------------------
  // Fill disks in order; an array spreads over just enough consecutive
  // disks that each stays under the per-disk load cap.
  const double cap = total_requests > 0
                         ? options.load_headroom * total_requests /
                               static_cast<double>(options.total_disks)
                         : 1.0;
  result.striping.assign(program.arrays.size(), options.base_striping);
  result.projected_load.assign(
      static_cast<std::size_t>(options.total_disks), 0.0);

  int cursor = 0;
  for (const ir::ArrayId a : result.popularity_order) {
    const double load = requests[static_cast<std::size_t>(a)];
    // Advance past full disks.
    while (cursor < options.total_disks - 1 &&
           result.projected_load[static_cast<std::size_t>(cursor)] + 1e-9 >=
               cap) {
      ++cursor;
    }
    // Spread over the fewest disks that keep each under the cap (always at
    // least one; never beyond the array's stripe-count worth of disks).
    const double room =
        std::max(cap - result.projected_load[static_cast<std::size_t>(cursor)],
                 cap * 0.1);
    int span = static_cast<int>(std::ceil(load / room));
    span = std::clamp(span, 1, options.total_disks - cursor);

    layout::Striping s = options.base_striping;
    s.starting_disk = cursor;
    s.stripe_factor = span;
    result.striping[static_cast<std::size_t>(a)] = s;
    for (int d = cursor; d < cursor + span; ++d) {
      result.projected_load[static_cast<std::size_t>(d)] +=
          load / static_cast<double>(span);
    }
  }

  for (double load : result.projected_load) {
    if (load == 0.0) ++result.unused_disks;
  }
  return result;
}

}  // namespace sdpm::core
