// Machine-applicable schedule edits — the mutation vocabulary of the
// analyzer's auto-repair engine (analysis/repair.h).
//
// An edit is a small, declarative change to a (ScheduleResult, striping)
// pair: move/remove/insert a power directive, retarget a set_RPM level,
// update the gap plan that justified a directive, or restripe an array.
// Edits are applied in conflict-free batches; directive and plan indices
// always refer to positions *before* the batch, so a batch produced
// against one snapshot of the schedule stays meaningful while it is
// applied.
#pragma once

#include <vector>

#include "core/schedule.h"
#include "ir/program.h"
#include "layout/striping.h"

namespace sdpm::core {

/// One atomic change to a schedule.  Which fields are meaningful depends
/// on `kind`; unused fields keep their defaults.
struct ScheduleEdit {
  enum class Kind {
    kMoveDirective,    ///< move directives[directive_index] to `point`
    kRemoveDirective,  ///< erase directives[directive_index]
    kInsertDirective,  ///< insert {point, directive}
    kRetargetLevel,    ///< directives[directive_index].rpm_level = level
    kSetPlanLevel,     ///< plans[plan_index].level = level
    kSetPlanActed,     ///< plans[plan_index].acted = acted
    kRestripeArray,    ///< striping[array] = striping
  };

  Kind kind = Kind::kMoveDirective;
  int directive_index = -1;       ///< kMove / kRemove / kRetargetLevel
  int plan_index = -1;            ///< kSetPlanLevel / kSetPlanActed
  ir::ArrayId array = -1;         ///< kRestripeArray
  ir::IterationPoint point;       ///< kMove / kInsert
  ir::PowerDirective directive;   ///< kInsert
  int level = 0;                  ///< kRetargetLevel / kSetPlanLevel
  bool acted = false;             ///< kSetPlanActed
  layout::Striping striping;      ///< kRestripeArray
};

const char* to_string(ScheduleEdit::Kind kind);

/// Apply a conflict-free batch of edits in place.  Index-stable edits
/// (moves, retargets, plan updates, restripes) run first, then removals in
/// descending index order, then insertions, and finally the program's
/// directives are re-sorted into program order.  `calls_inserted` tracks
/// removals/insertions.  Throws sdpm::Error on out-of-range indices.
void apply_schedule_edits(ScheduleResult& result,
                          std::vector<layout::Striping>& striping,
                          const std::vector<ScheduleEdit>& edits);

}  // namespace sdpm::core
