#include "experiments/runner.h"

#include <cmath>

#include "core/mispredict.h"
#include "core/schedule.h"
#include "policy/base.h"
#include "policy/drpm.h"
#include "policy/oracle.h"
#include "policy/proactive.h"
#include "policy/tpm.h"
#include "sim/simulator.h"
#include "util/error.h"

namespace sdpm::experiments {

const char* to_string(Scheme scheme) {
  switch (scheme) {
    case Scheme::kBase:
      return "Base";
    case Scheme::kTpm:
      return "TPM";
    case Scheme::kItpm:
      return "ITPM";
    case Scheme::kDrpm:
      return "DRPM";
    case Scheme::kIdrpm:
      return "IDRPM";
    case Scheme::kCmtpm:
      return "CMTPM";
    case Scheme::kCmdrpm:
      return "CMDRPM";
  }
  return "?";
}

std::vector<Scheme> all_schemes() {
  return {Scheme::kBase, Scheme::kTpm,    Scheme::kItpm, Scheme::kDrpm,
          Scheme::kIdrpm, Scheme::kCmtpm, Scheme::kCmdrpm};
}

Runner::Runner(const workloads::Benchmark& benchmark,
               ExperimentConfig config)
    : benchmark_(benchmark), config_(std::move(config)) {
  core::CompilerOptions co;
  co.total_disks = config_.total_disks;
  co.base_striping = config_.striping;
  co.disk_params = config_.disk;
  co.access = config_.gen;
  co.tile_bytes = config_.tile_bytes;
  compiled_ = core::compile(benchmark_.program, config_.transform,
                            std::nullopt, co);
  layout_.emplace(compiled_.program, compiled_.striping,
                  config_.total_disks);
}

void Runner::ensure_base() {
  if (base_.has_value()) return;
  trace::GeneratorOptions gen = config_.gen;
  gen.noise = config_.actual_noise;
  trace::TraceGenerator generator(compiled_.program, *layout_, gen);
  trace_ = generator.generate();

  policy::BasePolicy policy;
  base_ = sim::simulate(*trace_, config_.disk, policy,
                        sim::ReplayMode::kClosedLoop, config_.faults);
}

const sim::SimReport& Runner::base_report() {
  ensure_base();
  return *base_;
}

const trace::Trace& Runner::trace() {
  ensure_base();
  return *trace_;
}

core::ScheduleResult Runner::schedule_cm(core::PowerMode mode) {
  ensure_base();
  const trace::StallAwareTimeline estimate =
      measured_timeline(config_.profile_noise);
  core::SchedulerOptions so;
  so.mode = mode;
  so.access = config_.gen;
  so.call_site_granularity = config_.call_site_granularity;
  so.preactivate = config_.preactivate;
  so.estimate = &estimate;
  return core::schedule_power_calls(compiled_.program, *layout_,
                                    config_.disk, so);
}

trace::Trace Runner::generate_actual(const ir::Program& program) const {
  trace::GeneratorOptions gen = config_.gen;
  gen.noise = config_.actual_noise;
  trace::TraceGenerator generator(program, *layout_, gen);
  return generator.generate();
}

trace::Trace Runner::cm_trace(core::PowerMode mode,
                              std::int64_t* calls_inserted) {
  const core::ScheduleResult scheduled = schedule_cm(mode);
  if (calls_inserted != nullptr) *calls_inserted = scheduled.calls_inserted;
  return generate_actual(scheduled.program);
}

trace::StallAwareTimeline Runner::measured_timeline(
    const trace::CycleNoise& noise) const {
  SDPM_REQUIRE(base_.has_value(), "Base run required first");
  const trace::Timeline compute = trace::Timeline::with_noise(
      compiled_.program, noise, config_.gen.clock_hz);
  std::vector<std::int64_t> miss_iters;
  miss_iters.reserve(trace_->requests.size());
  for (const trace::Request& r : trace_->requests) {
    miss_iters.push_back(r.global_iter);
  }
  return trace::StallAwareTimeline(compute, std::move(miss_iters),
                                   base_->responses);
}

SchemeResult Runner::run(Scheme scheme) {
  ensure_base();
  SchemeResult result;
  result.scheme = scheme;
  result.requests = base_->requests;

  switch (scheme) {
    case Scheme::kBase: {
      result.energy_j = base_->total_energy;
      result.execution_ms = base_->execution_ms;
      break;
    }
    case Scheme::kTpm: {
      policy::TpmPolicy policy;
      const sim::SimReport report =
          sim::simulate(*trace_, config_.disk, policy,
                        sim::ReplayMode::kClosedLoop, config_.faults);
      result.energy_j = report.total_energy;
      result.execution_ms = report.execution_ms;
      break;
    }
    case Scheme::kDrpm: {
      policy::DrpmPolicy policy;
      const sim::SimReport report =
          sim::simulate(*trace_, config_.disk, policy,
                        sim::ReplayMode::kClosedLoop, config_.faults);
      result.energy_j = report.total_energy;
      result.execution_ms = report.execution_ms;
      break;
    }
    case Scheme::kItpm: {
      const policy::OracleReport report =
          policy::ideal_tpm(*base_, config_.disk);
      result.energy_j = report.total_energy;
      result.execution_ms = report.execution_ms;
      break;
    }
    case Scheme::kIdrpm: {
      const policy::OracleReport report =
          policy::ideal_drpm(*base_, config_.disk);
      result.energy_j = report.total_energy;
      result.execution_ms = report.execution_ms;
      break;
    }
    case Scheme::kCmtpm:
    case Scheme::kCmdrpm: {
      const core::PowerMode mode = scheme == Scheme::kCmtpm
                                       ? core::PowerMode::kTpm
                                       : core::PowerMode::kDrpm;
      const core::ScheduleResult scheduled = schedule_cm(mode);
      result.power_calls = scheduled.calls_inserted;
      const trace::Trace cm = generate_actual(scheduled.program);

      policy::ProactivePolicy policy(scheme == Scheme::kCmtpm ? "CMTPM"
                                                              : "CMDRPM");
      const sim::SimReport report =
          sim::simulate(cm, config_.disk, policy,
                        sim::ReplayMode::kClosedLoop, config_.faults);
      result.energy_j = report.total_energy;
      result.execution_ms = report.execution_ms;

      const trace::StallAwareTimeline actual =
          measured_timeline(config_.actual_noise);
      result.mispredict_pct =
          core::compare_with_oracle(scheduled.plans, actual, config_.disk,
                                    mode)
              .percent();
      break;
    }
  }

  result.normalized_energy = result.energy_j / base_->total_energy;
  result.normalized_time = result.execution_ms / base_->execution_ms;
  return result;
}

std::vector<SchemeResult> Runner::run_all() {
  std::vector<SchemeResult> results;
  for (Scheme scheme : all_schemes()) results.push_back(run(scheme));
  return results;
}

}  // namespace sdpm::experiments
