#include "experiments/runner.h"

#include <bit>
#include <cmath>
#include <functional>

#include "core/mispredict.h"
#include "core/schedule.h"
#include "experiments/trace_cache.h"
#include "policy/base.h"
#include "policy/drpm.h"
#include "policy/oracle.h"
#include "policy/proactive.h"
#include "policy/tpm.h"
#include "sim/simulator.h"
#include "util/error.h"
#include "util/perf_counters.h"
#include "util/thread_pool.h"

namespace sdpm::experiments {

const char* to_string(Scheme scheme) {
  switch (scheme) {
    case Scheme::kBase:
      return "Base";
    case Scheme::kTpm:
      return "TPM";
    case Scheme::kItpm:
      return "ITPM";
    case Scheme::kDrpm:
      return "DRPM";
    case Scheme::kIdrpm:
      return "IDRPM";
    case Scheme::kCmtpm:
      return "CMTPM";
    case Scheme::kCmdrpm:
      return "CMDRPM";
  }
  return "?";
}

std::vector<Scheme> all_schemes() {
  return {Scheme::kBase, Scheme::kTpm,    Scheme::kItpm, Scheme::kDrpm,
          Scheme::kIdrpm, Scheme::kCmtpm, Scheme::kCmdrpm};
}

Runner::Runner(const workloads::Benchmark& benchmark,
               ExperimentConfig config)
    : benchmark_(benchmark), config_(std::move(config)) {
  core::CompilerOptions co;
  co.total_disks = config_.total_disks;
  co.base_striping = config_.striping;
  co.disk_params = config_.disk;
  co.access = config_.gen;
  co.tile_bytes = config_.tile_bytes;
  compiled_ = core::compile(benchmark_.program, config_.transform,
                            std::nullopt, co);
  layout_.emplace(compiled_.program, compiled_.striping,
                  config_.total_disks);
}

void Runner::ensure_base() {
  std::call_once(base_once_, [this] {
    trace::GeneratorOptions gen = config_.gen;
    gen.noise = config_.actual_noise;
    trace_ = TraceCache::global().get_or_generate(compiled_.program,
                                                  *layout_, gen);

    policy::BasePolicy policy;
    sim::SimOptions options;
    options.mode = sim::ReplayMode::kClosedLoop;
    options.faults = config_.faults;
    // The measured per-nest timelines consume the Base run's per-request
    // stall vector, and the ITPM/IDRPM oracles + idle-gap profilers walk
    // its busy periods; no other scheme's replay needs either.
    options.capture_responses = true;
    options.capture_busy_periods = true;
    options.tracer = tracer_for(Scheme::kBase);
    base_ = sim::simulate(*trace_, config_.disk, policy, options);
  });
}

const sim::SimReport& Runner::base_report() {
  ensure_base();
  return *base_;
}

const trace::Trace& Runner::trace() {
  ensure_base();
  return *trace_;
}

core::ScheduleResult Runner::schedule_cm(core::PowerMode mode) {
  ensure_base();
  const trace::StallAwareTimeline& estimate =
      measured_timeline(config_.profile_noise);
  core::SchedulerOptions so;
  so.mode = mode;
  so.access = config_.gen;
  so.call_site_granularity = config_.call_site_granularity;
  so.preactivate = config_.preactivate;
  so.estimate = &estimate;
  return core::schedule_power_calls(compiled_.program, *layout_,
                                    config_.disk, so);
}

std::shared_ptr<const trace::Trace> Runner::generate_actual(
    const ir::Program& program) const {
  trace::GeneratorOptions gen = config_.gen;
  gen.noise = config_.actual_noise;
  return TraceCache::global().get_or_generate(program, *layout_, gen);
}

trace::Trace Runner::cm_trace(core::PowerMode mode,
                              std::int64_t* calls_inserted) {
  const core::ScheduleResult scheduled = schedule_cm(mode);
  if (calls_inserted != nullptr) *calls_inserted = scheduled.calls_inserted;
  return *generate_actual(scheduled.program);
}

const trace::StallAwareTimeline& Runner::measured_timeline(
    const trace::CycleNoise& noise) const {
  SDPM_REQUIRE(base_.has_value(), "Base run required first");
  const std::pair<std::uint64_t, std::uint64_t> key{
      std::bit_cast<std::uint64_t>(noise.sigma), noise.seed};

  std::lock_guard lock(timeline_mutex_);
  const auto it = timelines_.find(key);
  if (it != timelines_.end()) {
    PerfCounters::global().add_timeline_cache_hit();
    return *it->second;
  }
  const trace::Timeline compute = trace::Timeline::with_noise(
      compiled_.program, noise, config_.gen.clock_hz);
  std::vector<std::int64_t> miss_iters;
  miss_iters.reserve(trace_->requests.size());
  for (const trace::Request& r : trace_->requests) {
    miss_iters.push_back(r.global_iter);
  }
  auto timeline = std::make_unique<const trace::StallAwareTimeline>(
      compute, std::move(miss_iters), base_->responses);
  return *timelines_.emplace(key, std::move(timeline)).first->second;
}

SchemeResult Runner::run(Scheme scheme) {
  ensure_base();
  SchemeResult result;
  result.scheme = scheme;
  result.requests = base_->requests;

  switch (scheme) {
    case Scheme::kBase: {
      result.energy_j = base_->total_energy;
      result.execution_ms = base_->execution_ms;
      break;
    }
    case Scheme::kTpm: {
      policy::TpmPolicy policy;
      sim::SimOptions options;
      options.faults = config_.faults;
      options.tracer = tracer_for(scheme);
      const sim::SimReport report =
          sim::simulate(*trace_, config_.disk, policy, options);
      result.energy_j = report.total_energy;
      result.execution_ms = report.execution_ms;
      break;
    }
    case Scheme::kDrpm: {
      policy::DrpmPolicy policy;
      sim::SimOptions options;
      options.faults = config_.faults;
      options.tracer = tracer_for(scheme);
      const sim::SimReport report =
          sim::simulate(*trace_, config_.disk, policy, options);
      result.energy_j = report.total_energy;
      result.execution_ms = report.execution_ms;
      break;
    }
    case Scheme::kItpm: {
      const policy::OracleReport report =
          policy::ideal_tpm(*base_, config_.disk);
      result.energy_j = report.total_energy;
      result.execution_ms = report.execution_ms;
      break;
    }
    case Scheme::kIdrpm: {
      const policy::OracleReport report =
          policy::ideal_drpm(*base_, config_.disk);
      result.energy_j = report.total_energy;
      result.execution_ms = report.execution_ms;
      break;
    }
    case Scheme::kCmtpm:
    case Scheme::kCmdrpm: {
      const core::PowerMode mode = scheme == Scheme::kCmtpm
                                       ? core::PowerMode::kTpm
                                       : core::PowerMode::kDrpm;
      const core::ScheduleResult scheduled = schedule_cm(mode);
      result.power_calls = scheduled.calls_inserted;
      const std::shared_ptr<const trace::Trace> cm =
          generate_actual(scheduled.program);

      policy::ProactivePolicy policy(scheme == Scheme::kCmtpm ? "CMTPM"
                                                              : "CMDRPM");
      sim::SimOptions options;
      options.faults = config_.faults;
      options.tracer = tracer_for(scheme);
      const sim::SimReport report =
          sim::simulate(*cm, config_.disk, policy, options);
      result.energy_j = report.total_energy;
      result.execution_ms = report.execution_ms;

      const trace::StallAwareTimeline& actual =
          measured_timeline(config_.actual_noise);
      result.mispredict_pct =
          core::compare_with_oracle(scheduled.plans, actual, config_.disk,
                                    mode)
              .percent();
      break;
    }
  }

  result.normalized_energy = result.energy_j / base_->total_energy;
  result.normalized_time = result.execution_ms / base_->execution_ms;
  return result;
}

std::vector<SchemeResult> Runner::run_all() {
  // Materialize the shared prerequisite once, then fan the seven schemes
  // over a transient pool.  Each task writes its own slot, so the result
  // order (and every value — all randomness is seed-keyed) matches the
  // serial evaluation exactly.
  ensure_base();
  const std::vector<Scheme> schemes = all_schemes();
  std::vector<SchemeResult> results(schemes.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(schemes.size());
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    tasks.push_back(
        [this, &results, &schemes, i] { results[i] = run(schemes[i]); });
  }
  run_parallel(std::move(tasks));
  return results;
}

}  // namespace sdpm::experiments
