#include "experiments/bench_baseline.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

#include "util/error.h"
#include "util/json.h"

namespace sdpm::experiments {

std::string BenchSnapshot::to_json() const {
  // Hand-formatted like perf_json: multiline with sorted keys and fixed
  // precision, so committed baselines diff cleanly and regenerating an
  // unchanged snapshot is byte-stable modulo the measured numbers.
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  const bool service = suite == "service";
  os << "{\n"
     << "  \"calib_score\": " << calib_score << ",\n"
     << "  \"cells_completed\": " << cells_completed << ",\n";
  if (service) {
    os << "  \"clients\": " << clients << ",\n"
       << "  \"e2e_p50_ms\": " << e2e_p50_ms << ",\n"
       << "  \"e2e_p99_ms\": " << e2e_p99_ms << ",\n";
  }
  os << "  \"jobs\": " << jobs << ",\n"
     << "  \"null_tracer_overhead_pct\": " << null_tracer_overhead_pct
     << ",\n";
  if (service) {
    os << "  \"queue_wait_p50_ms\": " << queue_wait_p50_ms << ",\n"
       << "  \"queue_wait_p99_ms\": " << queue_wait_p99_ms << ",\n";
  }
  os << "  \"requests_per_sec\": " << requests_per_sec << ",\n"
     << "  \"requests_simulated\": " << requests_simulated << ",\n"
     << "  \"schema\": " << schema << ",\n"
     << "  \"suite\": \"" << suite << "\",\n"
     << "  \"wall_ms\": " << wall_ms << "\n"
     << "}";
  return os.str();
}

BenchSnapshot BenchSnapshot::from_json(std::string_view text) {
  const Json doc = Json::parse(text);
  SDPM_REQUIRE(doc.is_object(), "bench snapshot must be a JSON object");
  BenchSnapshot snap;
  snap.schema = static_cast<int>(doc.at("schema").as_int());
  SDPM_REQUIRE(snap.schema == 1, "unsupported bench snapshot schema");
  snap.suite = doc.at("suite").as_string();
  SDPM_REQUIRE(snap.suite == "simulator" || snap.suite == "sweep" ||
                   snap.suite == "service",
               "bench snapshot suite must be 'simulator', 'sweep' or "
               "'service'");
  snap.jobs = static_cast<unsigned>(doc.at("jobs").as_int());
  snap.calib_score = doc.at("calib_score").as_double();
  snap.wall_ms = doc.at("wall_ms").as_double();
  snap.requests_simulated = doc.at("requests_simulated").as_int();
  snap.requests_per_sec = doc.at("requests_per_sec").as_double();
  if (const Json* f = doc.find("null_tracer_overhead_pct")) {
    snap.null_tracer_overhead_pct = f->as_double();
  }
  if (const Json* f = doc.find("cells_completed")) {
    snap.cells_completed = f->as_int();
  }
  if (const Json* f = doc.find("clients")) snap.clients = f->as_int();
  if (const Json* f = doc.find("e2e_p50_ms")) {
    snap.e2e_p50_ms = f->as_double();
  }
  if (const Json* f = doc.find("e2e_p99_ms")) {
    snap.e2e_p99_ms = f->as_double();
  }
  if (const Json* f = doc.find("queue_wait_p50_ms")) {
    snap.queue_wait_p50_ms = f->as_double();
  }
  if (const Json* f = doc.find("queue_wait_p99_ms")) {
    snap.queue_wait_p99_ms = f->as_double();
  }
  return snap;
}

double calibration_score() {
  // A fixed integer-mix + dependent FP multiply-add chain: roughly the
  // replay loop's instruction profile (address arithmetic feeding double
  // accumulation).  Deterministic by construction — no input, no
  // randomness — so the only variable is the machine.  Best-of-rounds
  // discards scheduler noise the same way the simulator suite does.
  constexpr int kRounds = 5;
  constexpr std::int64_t kIters = 4'000'000;
  double best_us = std::numeric_limits<double>::infinity();
  double sink = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    double acc = 1.0;
    for (std::int64_t i = 0; i < kIters; ++i) {
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdull;
      acc = acc * 0.999999 + static_cast<double>(x >> 40) * 1e-9;
    }
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    sink += acc;
    if (us > 0) best_us = std::min(best_us, us);
  }
  // Keep the accumulator observable so the work cannot be elided.
  volatile double observe = sink;
  (void)observe;
  SDPM_REQUIRE(best_us < std::numeric_limits<double>::infinity(),
               "calibration loop measured no time");
  return static_cast<double>(kIters) / best_us;
}

namespace {

std::string fmt_pct(double value) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << value;
  return os.str();
}

}  // namespace

BenchComparison compare_snapshots(const BenchSnapshot& baseline,
                                  const BenchSnapshot& fresh,
                                  double tolerance_pct) {
  SDPM_REQUIRE(baseline.suite == fresh.suite,
               "bench suite mismatch between baseline and fresh snapshot");
  SDPM_REQUIRE(baseline.schema == fresh.schema,
               "bench schema mismatch between baseline and fresh snapshot");
  SDPM_REQUIRE(tolerance_pct >= 0, "tolerance must be non-negative");
  SDPM_REQUIRE(baseline.requests_per_sec > 0,
               "baseline snapshot has no throughput");
  SDPM_REQUIRE(fresh.requests_per_sec > 0,
               "fresh snapshot has no throughput");

  BenchComparison cmp;
  // Normalize by the calibration score when both sides have one; raw
  // otherwise (a hand-written baseline without calibration still works,
  // it just assumes comparable machines).
  const bool calibrated =
      baseline.calib_score > 0 && fresh.calib_score > 0;
  cmp.baseline_normalized =
      calibrated ? baseline.requests_per_sec / baseline.calib_score
                 : baseline.requests_per_sec;
  cmp.fresh_normalized = calibrated
                             ? fresh.requests_per_sec / fresh.calib_score
                             : fresh.requests_per_sec;
  cmp.delta_pct =
      (cmp.fresh_normalized / cmp.baseline_normalized - 1.0) * 100.0;

  if (baseline.jobs != fresh.jobs) {
    // Throughput only compares like-for-like at equal parallelism (a
    // 4-job sweep on a 1-core box loses to the same sweep at 1 job, and
    // calibration cannot correct for core count).  Mismatches stay
    // non-fatal so hand-run comparisons still print, but CI pins --jobs
    // to the committed baseline's value.
    cmp.notes.push_back("note: jobs differ (baseline " +
                        std::to_string(baseline.jobs) + ", fresh " +
                        std::to_string(fresh.jobs) +
                        ") — throughput is only like-for-like at equal "
                        "parallelism");
  }

  const bool throughput_regressed = cmp.delta_pct < -tolerance_pct;
  cmp.notes.push_back(
      std::string(calibrated ? "calibrated" : "uncalibrated") +
      " throughput " + (cmp.delta_pct >= 0 ? "+" : "") +
      fmt_pct(cmp.delta_pct) + "% vs baseline (tolerance " +
      fmt_pct(tolerance_pct) + "%): " +
      (throughput_regressed ? "REGRESSED" : "ok"));
  if (throughput_regressed) cmp.regressed = true;

  if (fresh.suite == "simulator") {
    // The observability contract (DESIGN.md §10): the sink-less tracer
    // path must stay within ~2% of the untraced replay.  The band widens
    // slightly with the caller's tolerance to absorb timing noise.
    cmp.null_tracer_limit_pct = 2.0 + 0.2 * tolerance_pct;
    const bool tracer_regressed =
        fresh.null_tracer_overhead_pct > cmp.null_tracer_limit_pct;
    cmp.notes.push_back("null-tracer overhead " +
                        fmt_pct(fresh.null_tracer_overhead_pct) +
                        "% (limit " + fmt_pct(cmp.null_tracer_limit_pct) +
                        "%): " + (tracer_regressed ? "REGRESSED" : "ok"));
    if (tracer_regressed) cmp.regressed = true;
  }

  if (fresh.suite == "service" && baseline.e2e_p99_ms > 0 &&
      fresh.e2e_p99_ms > 0) {
    // Latency shrinks on faster machines, so normalize by MULTIPLYING
    // with the calibration score (the inverse of the throughput
    // normalization).  Tails are noisier than means: the band is twice
    // the throughput tolerance.
    const double baseline_p99 = calibrated
                                    ? baseline.e2e_p99_ms *
                                          baseline.calib_score
                                    : baseline.e2e_p99_ms;
    const double fresh_p99 =
        calibrated ? fresh.e2e_p99_ms * fresh.calib_score : fresh.e2e_p99_ms;
    cmp.p99_delta_pct = (fresh_p99 / baseline_p99 - 1.0) * 100.0;
    cmp.p99_limit_pct = 2.0 * tolerance_pct;
    const bool p99_regressed = cmp.p99_delta_pct > cmp.p99_limit_pct;
    cmp.notes.push_back("e2e p99 latency " +
                        std::string(cmp.p99_delta_pct >= 0 ? "+" : "") +
                        fmt_pct(cmp.p99_delta_pct) + "% vs baseline (limit +" +
                        fmt_pct(cmp.p99_limit_pct) +
                        "%): " + (p99_regressed ? "REGRESSED" : "ok"));
    if (p99_regressed) cmp.regressed = true;
  }
  return cmp;
}

}  // namespace sdpm::experiments
