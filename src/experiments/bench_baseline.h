// Persisted performance baselines and the regression comparator.
//
// A BenchSnapshot is the JSON document committed at the repo root
// (BENCH_simulator.json, BENCH_sweep.json, BENCH_service.json) and
// produced fresh by `sdpm_cli bench --suite ... --format json` or
// `bench_service_stress --format json`.  Raw throughput numbers are
// not comparable across machines, so every snapshot also records a
// calibration score — the throughput of a fixed, deterministic CPU-bound
// workload measured in the same process — and the comparator divides
// requests/s by it before applying the tolerance band.  A baseline taken
// on a fast workstation therefore still gates a slow CI runner: both are
// expressed in "simulator requests per calibration unit".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sdpm::experiments {

/// One persisted benchmark measurement (schema version 1).
struct BenchSnapshot {
  std::string suite;        ///< "simulator", "sweep" or "service"
  int schema = 1;           ///< bumped on incompatible field changes
  unsigned jobs = 1;        ///< worker threads the suite ran with
  double calib_score = 0;   ///< calibration_score() on the same machine
  double wall_ms = 0;       ///< total suite wall time
  std::int64_t requests_simulated = 0;
  double requests_per_sec = 0;
  /// Simulator suite only: sink-less tracer replay slowdown relative to
  /// the untraced replay, in percent (the DESIGN.md §10 ~2% contract).
  double null_tracer_overhead_pct = 0;
  /// Sweep suite only: grid cells completed.
  std::int64_t cells_completed = 0;
  /// Service suite only (bench_service_stress): concurrent client count
  /// and client-observed latency quantiles.  requests_per_sec doubles as
  /// jobs/s.  Serialized only for the service suite, so the committed
  /// simulator/sweep baselines stay byte-identical.
  std::int64_t clients = 0;
  double e2e_p50_ms = 0;
  double e2e_p99_ms = 0;
  double queue_wait_p50_ms = 0;
  double queue_wait_p99_ms = 0;

  /// Multiline deterministic JSON (stable key order, fixed precision).
  std::string to_json() const;
  /// Parse a snapshot; throws sdpm::Error on malformed input, a missing
  /// required field, or an unsupported schema version.
  static BenchSnapshot from_json(std::string_view text);
};

/// Throughput of a fixed deterministic integer+FP workload (units: loop
/// iterations per microsecond, best of several rounds).  Proportional to
/// how fast this machine runs the simulator's instruction mix, so
/// requests_per_sec / calib_score is machine-independent to first order.
double calibration_score();

/// Outcome of comparing a fresh snapshot against a stored baseline.
struct BenchComparison {
  bool regressed = false;
  double baseline_normalized = 0;  ///< baseline req/s per calibration unit
  double fresh_normalized = 0;     ///< fresh req/s per calibration unit
  double delta_pct = 0;            ///< fresh vs baseline; negative = slower
  double null_tracer_limit_pct = 0;  ///< gate applied (simulator suite)
  double p99_delta_pct = 0;        ///< service suite: normalized e2e p99
  double p99_limit_pct = 0;        ///< gate applied (service suite)
  std::vector<std::string> notes;  ///< human-readable verdict lines
};

/// Compare `fresh` against `baseline` with a symmetric tolerance band of
/// `tolerance_pct` percent on the calibration-normalized throughput.
/// Regression criteria:
///   - normalized throughput dropped by more than tolerance_pct, or
///   - (simulator suite) the null-tracer overhead exceeds
///     2.0 + 0.2 * tolerance_pct percent, or
///   - (service suite) the calibration-normalized e2e p99 latency grew by
///     more than 2 * tolerance_pct percent (tails are noisier than
///     means, so the latency band is twice the throughput band).
/// Suite or schema mismatches throw — comparing a sweep snapshot against
/// a simulator baseline is a usage error, not a regression.
BenchComparison compare_snapshots(const BenchSnapshot& baseline,
                                  const BenchSnapshot& fresh,
                                  double tolerance_pct);

}  // namespace sdpm::experiments
