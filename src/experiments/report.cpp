#include "experiments/report.h"

#include "util/strings.h"

namespace sdpm::experiments {

Table per_disk_table(const sim::SimReport& report, const std::string& title) {
  // The fault columns only appear when some fault fired, so fault-free
  // reports keep their historical shape.
  bool any_faults = false;
  for (const sim::DiskReport& disk : report.disks) {
    any_faults = any_faults || disk.spin_up_retries > 0 ||
                 disk.media_errors > 0 || disk.dropped_directives > 0;
  }
  Table table(title);
  std::vector<std::string> header = {
      "Disk", "Energy (J)", "Active", "Idle", "Standby", "Transitions (J)",
      "Services", "Spin-downs", "Demand-ups", "RPM shifts"};
  if (any_faults) {
    header.insert(header.end(),
                  {"Retries", "Media errs", "Remaps", "Dropped"});
  }
  table.set_header(header);
  for (int d = 0; d < report.disk_count(); ++d) {
    const sim::DiskReport& disk = report.disks[static_cast<std::size_t>(d)];
    const auto& b = disk.breakdown;
    std::vector<std::string> row = {
        std::to_string(d),
        fmt_double(b.total_j(), 2),
        fmt_time_ms(b.active_ms) + " / " + fmt_double(b.active_j, 1) + " J",
        fmt_time_ms(b.idle_ms) + " / " + fmt_double(b.idle_j, 1) + " J",
        fmt_time_ms(b.standby_ms) + " / " + fmt_double(b.standby_j, 1) +
            " J",
        fmt_double(b.spin_down_j + b.spin_up_j + b.rpm_shift_j, 2),
        std::to_string(disk.services),
        std::to_string(disk.spin_downs),
        std::to_string(disk.demand_spin_ups),
        std::to_string(disk.rpm_transitions),
    };
    if (any_faults) {
      row.push_back(std::to_string(disk.spin_up_retries));
      row.push_back(std::to_string(disk.media_errors));
      row.push_back(std::to_string(disk.remapped_sectors));
      row.push_back(std::to_string(disk.dropped_directives));
    }
    table.add_row(row);
  }
  return table;
}

Table summary_table(const sim::SimReport& report, const std::string& title) {
  Table table(title);
  table.set_header({"Metric", "Value"});
  table.add_row({"policy", report.policy_name});
  table.add_row({"disks", std::to_string(report.disk_count())});
  table.add_row({"requests", std::to_string(report.requests)});
  table.add_row({"bytes transferred", fmt_bytes(report.bytes_transferred)});
  table.add_row({"disk energy", fmt_double(report.total_energy, 2) + " J"});
  table.add_row({"execution", fmt_time_ms(report.execution_ms)});
  table.add_row({"compute", fmt_time_ms(report.compute_ms)});
  table.add_row({"I/O stall", fmt_time_ms(report.io_stall_ms)});
  table.add_row({"mean response",
                 fmt_time_ms(report.response_ms.mean())});
  table.add_row({"max response", fmt_time_ms(report.response_ms.max())});
  return table;
}

Table rpm_residency_table(const sim::SimReport& report,
                          const disk::DiskParameters& params,
                          const std::string& title) {
  // Find the levels that appear anywhere.
  std::vector<bool> used(static_cast<std::size_t>(params.rpm_level_count()),
                         false);
  for (const sim::DiskReport& d : report.disks) {
    for (std::size_t l = 0; l < d.level_residency_ms.size(); ++l) {
      if (d.level_residency_ms[l] > 0) used[l] = true;
    }
  }
  Table table(title);
  std::vector<std::string> header = {"Disk"};
  for (std::size_t l = 0; l < used.size(); ++l) {
    if (used[l]) {
      header.push_back(std::to_string(params.rpm_of_level(
                           static_cast<int>(l))) +
                       " RPM");
    }
  }
  header.push_back("standby");
  table.set_header(header);
  for (int d = 0; d < report.disk_count(); ++d) {
    const sim::DiskReport& disk = report.disks[static_cast<std::size_t>(d)];
    std::vector<std::string> row = {std::to_string(d)};
    for (std::size_t l = 0; l < used.size(); ++l) {
      if (!used[l]) continue;
      const TimeMs ms = l < disk.level_residency_ms.size()
                            ? disk.level_residency_ms[l]
                            : 0.0;
      row.push_back(fmt_double(100.0 * ms / report.execution_ms, 1) + "%");
    }
    row.push_back(fmt_double(100.0 * disk.breakdown.standby_ms /
                                 report.execution_ms,
                             1) +
                  "%");
    table.add_row(row);
  }
  return table;
}

Table stream_table(const sim::MultiStreamReport& report,
                   const std::string& title) {
  Table table(title);
  table.set_header({"Stream", "Completion", "Compute", "Requests",
                    "Mean response"});
  for (const sim::StreamReport& s : report.streams) {
    table.add_row({
        s.name,
        fmt_time_ms(s.completion_ms),
        fmt_time_ms(s.compute_ms),
        std::to_string(s.requests),
        fmt_time_ms(s.response_ms.mean()),
    });
  }
  return table;
}

}  // namespace sdpm::experiments
