// Report rendering: turn SimReports and scheme results into the aligned
// tables the CLI, examples and bench binaries print.
#pragma once

#include "disk/parameters.h"
#include "sim/multi_stream.h"
#include "sim/report.h"
#include "util/table.h"

namespace sdpm::experiments {

/// Per-disk energy/time breakdown of a simulation: one row per disk with
/// its state-bucket decomposition, service counts and transition counts.
Table per_disk_table(const sim::SimReport& report,
                     const std::string& title = "per-disk breakdown");

/// One-table summary of a simulation (energy, time, stalls, responses).
Table summary_table(const sim::SimReport& report,
                    const std::string& title = "simulation summary");

/// Per-disk RPM residency: how long each disk spent spinning at each
/// level (the DRPM analogue of a state-residency profile).  Levels with no
/// residency anywhere are omitted.
Table rpm_residency_table(const sim::SimReport& report,
                          const disk::DiskParameters& params,
                          const std::string& title = "RPM residency");

/// Per-stream summary of a multiprogrammed run.
Table stream_table(const sim::MultiStreamReport& report,
                   const std::string& title = "streams");

}  // namespace sdpm::experiments
