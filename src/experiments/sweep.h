// Parallel sweep engine: fan independent (benchmark, scheme, config)
// cells over a thread pool.
//
// A sweep is a list of cells; each cell is one Runner evaluating a set of
// schemes.  The engine flattens the sweep into (cell, scheme) tasks so a
// slow cell cannot serialize the tail of the run, and writes every result
// into a pre-sized slot indexed by (cell, scheme) position — results are
// bit-identical to a serial evaluation regardless of completion order or
// worker count, because
//   - all randomness is keyed by explicit seeds carried in each cell's
//     ExperimentConfig (no shared RNG state), and
//   - cross-scheme shared state inside a Runner (the Base run, memoized
//     measured timelines, cached traces) is computed once under a lock and
//     is a pure function of the cell's configuration.
// A task that throws surfaces as an exception from run() after the pool
// drains (see ThreadPool::wait_idle).
#pragma once

#include <string>
#include <vector>

#include "experiments/runner.h"
#include "workloads/benchmarks.h"

namespace sdpm::experiments {

/// One (benchmark, configuration) cell of a sweep, plus the schemes to
/// evaluate in it.  An empty scheme list means all seven.
struct SweepCell {
  std::string label;
  workloads::Benchmark benchmark;
  ExperimentConfig config;
  std::vector<Scheme> schemes;
};

/// Results of one cell, in the cell's scheme order.
struct SweepCellResult {
  std::string label;
  std::vector<SchemeResult> results;
  /// Cumulative task wall time spent on this cell (compile + Base + all
  /// schemes), in milliseconds.  With N workers the elapsed wall clock is
  /// roughly the sum over cells divided by N.
  double wall_ms = 0;
};

class SweepEngine {
 public:
  /// `jobs == 0` uses default_jobs() (SDPM_JOBS / --jobs / hardware).
  explicit SweepEngine(unsigned jobs = 0);

  /// Attach an observability tracer (not owned).  The engine emits a
  /// kCellBegin/kCellEnd pair per (cell, scheme) task, timestamped in wall
  /// milliseconds since run() started and tagged with a dense worker-lane
  /// index — a utilization timeline of the pool, not a deterministic
  /// artifact (unlike everything the simulator emits).
  void set_tracer(obs::EventTracer* tracer) { tracer_ = tracer; }

  /// Evaluate every cell; results are ordered exactly as `cells`, with
  /// each cell's results in its scheme order.  Per-cell wall time also
  /// reports into PerfCounters::global() and the metrics registry.
  std::vector<SweepCellResult> run(const std::vector<SweepCell>& cells);

  unsigned jobs() const { return jobs_; }

 private:
  unsigned jobs_;
  obs::EventTracer* tracer_ = nullptr;
};

/// Convenience: one cell per benchmark, all seven schemes, shared config.
std::vector<SweepCell> cells_for_benchmarks(
    const std::vector<workloads::Benchmark>& benchmarks,
    const ExperimentConfig& config);

}  // namespace sdpm::experiments
