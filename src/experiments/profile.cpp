#include "experiments/profile.h"

#include "trace/iteration_space.h"
#include "trace/timeline.h"
#include "util/error.h"
#include "util/strings.h"

namespace sdpm::experiments {

Table per_nest_profile(const ir::Program& program, const trace::Trace& trace,
                       const sim::SimReport& report) {
  SDPM_REQUIRE(report.responses.size() == trace.requests.size(),
               "report does not match trace");
  const trace::IterationSpace space(program);
  const trace::Timeline nominal(program);

  std::vector<std::int64_t> requests(program.nests.size(), 0);
  std::vector<TimeMs> stall(program.nests.size(), 0.0);
  std::vector<Bytes> bytes(program.nests.size(), 0);
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const auto n = static_cast<std::size_t>(
        space.point_of(trace.requests[i].global_iter).nest_index);
    ++requests[n];
    stall[n] += report.responses[i];
    bytes[n] += trace.requests[i].size_bytes;
  }

  Table table("per-nest profile");
  table.set_header({"Nest", "Compute", "Stall", "Requests", "Bytes",
                    "Share of run"});
  for (std::size_t n = 0; n < program.nests.size(); ++n) {
    const ir::LoopNest& nest = program.nests[n];
    const TimeMs compute =
        nominal.per_iteration_ms(static_cast<int>(n)) *
        static_cast<double>(nest.iteration_count());
    const TimeMs total = compute + stall[n];
    table.add_row({
        nest.name,
        fmt_time_ms(compute),
        fmt_time_ms(stall[n]),
        std::to_string(requests[n]),
        fmt_bytes(bytes[n]),
        fmt_double(100.0 * total / report.execution_ms, 1) + "%",
    });
  }
  return table;
}

Histogram idle_gap_histogram(const sim::SimReport& report) {
  Histogram hist(0.1, 1.3);  // 0.1 ms resolution
  for (const sim::DiskReport& disk : report.disks) {
    TimeMs cursor = 0;
    for (const sim::BusyPeriod& bp : disk.busy_periods) {
      if (bp.start > cursor) hist.add(bp.start - cursor);
      cursor = bp.completion;
    }
    if (report.execution_ms > cursor) {
      hist.add(report.execution_ms - cursor);
    }
  }
  return hist;
}

Table idle_gap_table(const sim::SimReport& report,
                     const disk::DiskParameters& params) {
  const Histogram hist = idle_gap_histogram(report);
  Table table("per-disk idle gaps");
  table.set_header({"Metric", "Value"});
  table.add_row({"gaps", std::to_string(hist.count())});
  table.add_row({"median", fmt_time_ms(hist.median())});
  table.add_row({"p95", fmt_time_ms(hist.p95())});
  table.add_row({"max", fmt_time_ms(hist.max())});
  const int top = params.max_level();
  const TimeMs one_step =
      top > 0 ? params.rpm_transition_time(top - 1, top) : 0;
  table.add_row({"DRPM one-step round trip", fmt_time_ms(2 * one_step)});
  table.add_row({"TPM break-even", fmt_time_ms(params.break_even_time())});
  return table;
}

}  // namespace sdpm::experiments
