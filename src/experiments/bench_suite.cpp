#include "experiments/bench_suite.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "layout/layout_table.h"
#include "obs/tracer.h"
#include "policy/base.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "util/error.h"
#include "workloads/benchmarks.h"

namespace sdpm::experiments {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// One replay of `trace` under a fresh BasePolicy; returns total energy
/// (the determinism check pins it across reps).
double replay_once(const trace::Trace& trace,
                   const disk::DiskParameters& params,
                   const sim::SimOptions& options) {
  policy::BasePolicy policy;
  return sim::simulate(trace, params, policy, options).total_energy;
}

/// One timed round: `reps` replays, per-replay time in ms.
double time_round(const trace::Trace& trace,
                  const disk::DiskParameters& params,
                  const sim::SimOptions& options, int reps,
                  double expected_energy) {
  const auto t0 = Clock::now();
  for (int i = 0; i < reps; ++i) {
    const double energy = replay_once(trace, params, options);
    SDPM_REQUIRE(energy == expected_energy,
                 "bench replay diverged across repetitions");
  }
  return ms_since(t0) / reps;
}

}  // namespace

SimulatorSuiteResult run_simulator_suite() {
  const auto suite_start = Clock::now();

  // Single disk: no striping fan-out, no inter-disk idle gaps — every
  // request flows through the replay hot loop back to back.
  const workloads::Benchmark bench = workloads::make_swim();
  const layout::LayoutTable table(bench.program,
                                  layout::Striping{0, 1, kib(64)}, 1);
  trace::TraceGenerator generator(bench.program, table);
  const trace::Trace trace = generator.generate();
  const disk::DiskParameters params = disk::DiskParameters::ultrastar_36z15();

  const sim::SimOptions untraced;
  obs::EventTracer tracer;  // no sinks: resolves to the null fast path
  sim::SimOptions traced;
  traced.tracer = &tracer;

  // Warm up until the frequency governor has settled (a handful of
  // replays is not enough on a cold core) and take the reference energy.
  const double expected = replay_once(trace, params, untraced);
  const auto warm_start = Clock::now();
  double probe_ms = std::numeric_limits<double>::infinity();
  while (ms_since(warm_start) < 150.0) {
    const auto t0 = Clock::now();
    replay_once(trace, params, untraced);
    probe_ms = std::min(probe_ms, std::max(ms_since(t0), 1e-3));
  }

  // Size a round to ~50 ms so the steady_clock quantization and loop
  // bookkeeping vanish into the noise floor.
  const int reps = static_cast<int>(
      std::clamp(std::ceil(50.0 / probe_ms), 1.0, 2000.0));
  constexpr int kRounds = 7;

  // Interleave the two variants round by round: slow drift (thermal,
  // scheduler) hits both equally, so the overhead ratio stays honest.
  double base_ms = std::numeric_limits<double>::infinity();
  double traced_ms = std::numeric_limits<double>::infinity();
  for (int r = 0; r < kRounds; ++r) {
    base_ms = std::min(base_ms,
                       time_round(trace, params, untraced, reps, expected));
    traced_ms = std::min(
        traced_ms, time_round(trace, params, traced, reps, expected));
  }

  SimulatorSuiteResult result;
  result.trace_requests = static_cast<std::int64_t>(trace.requests.size());
  result.reps_per_round = reps;
  result.base_ms_per_replay = base_ms;
  result.traced_ms_per_replay = traced_ms;
  result.requests_per_sec = static_cast<double>(result.trace_requests) *
                            1000.0 / result.base_ms_per_replay;
  result.null_tracer_overhead_pct =
      (result.traced_ms_per_replay / result.base_ms_per_replay - 1.0) *
      100.0;
  result.wall_ms = ms_since(suite_start);
  return result;
}

BenchSnapshot make_simulator_snapshot(const SimulatorSuiteResult& run) {
  BenchSnapshot snap;
  snap.suite = "simulator";
  snap.jobs = 1;  // the suite is deliberately single-threaded
  snap.calib_score = calibration_score();
  snap.wall_ms = run.wall_ms;
  snap.requests_simulated =
      run.trace_requests * run.reps_per_round;  // per timed round
  snap.requests_per_sec = run.requests_per_sec;
  snap.null_tracer_overhead_pct = run.null_tracer_overhead_pct;
  return snap;
}

BenchSnapshot snapshot_simulator_suite() {
  return make_simulator_snapshot(run_simulator_suite());
}

BenchSnapshot make_sweep_snapshot(const PerfSnapshot& delta, double wall_ms,
                                  unsigned jobs) {
  BenchSnapshot snap;
  snap.suite = "sweep";
  snap.jobs = jobs;
  snap.calib_score = calibration_score();
  snap.wall_ms = wall_ms;
  snap.requests_simulated = delta.requests_simulated;
  snap.requests_per_sec = delta.requests_per_sec();
  snap.cells_completed = delta.cells_completed;
  return snap;
}

}  // namespace sdpm::experiments
