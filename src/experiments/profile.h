// Per-nest and per-disk profiling of a simulated run.
//
// Attribution tables that explain *where* a program's disk energy and time
// go: which nest generates the requests and stalls (the information behind
// the "most costly nest" selection of the tiling pass), and how long each
// disk's idle gaps are (the distribution the power-management schemes
// harvest).
#pragma once

#include "ir/program.h"
#include "layout/layout_table.h"
#include "sim/report.h"
#include "trace/request.h"
#include "util/histogram.h"
#include "util/table.h"

namespace sdpm::experiments {

/// Per-nest attribution of a Base run: duration share, requests, stall
/// time.  `trace` and `report` must come from the same simulation.
Table per_nest_profile(const ir::Program& program, const trace::Trace& trace,
                       const sim::SimReport& report);

/// Distribution of per-disk idle-gap lengths in a simulated run (from the
/// busy timelines), as a histogram over milliseconds.
Histogram idle_gap_histogram(const sim::SimReport& report);

/// Render the idle-gap distribution with summary quantiles.
Table idle_gap_table(const sim::SimReport& report,
                     const disk::DiskParameters& params);

}  // namespace sdpm::experiments
