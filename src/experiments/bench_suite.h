// The "simulator" benchmark suite behind `sdpm_cli bench --suite
// simulator`: the acceptance workload for the batched replay engine.
//
// The suite replays the swim trace on a single disk under BasePolicy —
// the pure hot-loop configuration (no power transitions, no striping
// fan-out), so its requests/s measures the replay engine itself — and
// then repeats the replay through a sink-less tracer to price the
// observability fast path.  Timing is min-of-rounds: each round replays
// the trace enough times to dominate timer noise, and the best round
// stands (load spikes only ever make a round slower).
#pragma once

#include <cstdint>

#include "experiments/bench_baseline.h"
#include "util/perf_counters.h"

namespace sdpm::experiments {

/// Raw measurements from one simulator-suite run.
struct SimulatorSuiteResult {
  std::int64_t trace_requests = 0;  ///< requests per replay
  int reps_per_round = 0;           ///< replays per timed round
  double base_ms_per_replay = 0;    ///< untraced, best round
  double traced_ms_per_replay = 0;  ///< sink-less tracer, best round
  double requests_per_sec = 0;      ///< from base_ms_per_replay
  double null_tracer_overhead_pct = 0;
  double wall_ms = 0;  ///< total suite wall time (all rounds)
};

/// Run the single-disk replay suite.  Deterministic in its results (every
/// replay is checked to produce the same energy); only the timings vary.
SimulatorSuiteResult run_simulator_suite();

/// Package a suite run as a persistable snapshot (including the
/// machine's calibration score).
BenchSnapshot make_simulator_snapshot(const SimulatorSuiteResult& run);

/// run_simulator_suite() + make_simulator_snapshot in one call.
BenchSnapshot snapshot_simulator_suite();

/// Package a sweep run (the figs 5-8 grid sdpm_cli bench dispatches) as a
/// persistable snapshot from its perf-counter delta.
BenchSnapshot make_sweep_snapshot(const PerfSnapshot& delta, double wall_ms,
                                  unsigned jobs);

}  // namespace sdpm::experiments
