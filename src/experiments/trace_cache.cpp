#include "experiments/trace_cache.h"

#include <bit>

#include "obs/metrics.h"
#include "obs/tracer.h"
#include "util/perf_counters.h"

namespace sdpm::experiments {

namespace {

void note_lookup(obs::EventTracer* tracer, bool hit) {
  obs::MetricsRegistry::global().add(hit ? "trace_cache.hits"
                                         : "trace_cache.misses");
  if (tracer != nullptr) {
    obs::Event ev;
    ev.kind = hit ? obs::EventKind::kCacheHit : obs::EventKind::kCacheMiss;
    ev.label = "trace_cache";
    tracer->emit(ev);
  }
}

/// 128-bit streaming mixer: two SplitMix64-style lanes with different
/// constants, each absorbing every word.  Not cryptographic — collision
/// resistance at 2^-128 is ample for a 32-entry cache.
class Fingerprint {
 public:
  void mix(std::uint64_t v) {
    a_ = finalize((a_ ^ v) + 0x9e3779b97f4a7c15ULL);
    b_ = finalize((b_ + v) ^ 0xc2b2ae3d27d4eb4fULL);
  }
  void mix(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(int v) { mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }

  TraceKey key() const { return TraceKey{a_, b_}; }

 private:
  static std::uint64_t finalize(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t a_ = 0x243f6a8885a308d3ULL;
  std::uint64_t b_ = 0x13198a2e03707344ULL;
};

void mix_affine(Fingerprint& fp, const ir::AffineExpr& e) {
  fp.mix(static_cast<std::uint64_t>(e.coefs.size()));
  for (std::int64_t c : e.coefs) fp.mix(c);
  fp.mix(e.constant);
}

void mix_program(Fingerprint& fp, const ir::Program& program) {
  fp.mix(static_cast<std::uint64_t>(program.arrays.size()));
  for (const ir::Array& a : program.arrays) {
    fp.mix(static_cast<std::uint64_t>(a.extents.size()));
    for (std::int64_t e : a.extents) fp.mix(e);
    fp.mix(a.element_size);
    fp.mix(static_cast<std::uint64_t>(a.layout));
  }
  fp.mix(static_cast<std::uint64_t>(program.nests.size()));
  for (const ir::LoopNest& nest : program.nests) {
    fp.mix(static_cast<std::uint64_t>(nest.loops.size()));
    for (const ir::Loop& loop : nest.loops) {
      fp.mix(loop.lower);
      fp.mix(loop.upper);
      fp.mix(loop.step);
    }
    fp.mix(static_cast<std::uint64_t>(nest.body.size()));
    for (const ir::Statement& stmt : nest.body) {
      fp.mix(static_cast<std::uint64_t>(stmt.refs.size()));
      for (const ir::ArrayRef& ref : stmt.refs) {
        fp.mix(ref.array);
        fp.mix(static_cast<std::uint64_t>(ref.kind));
        fp.mix(static_cast<std::uint64_t>(ref.subscripts.size()));
        for (const ir::AffineExpr& sub : ref.subscripts) mix_affine(fp, sub);
      }
      fp.mix(stmt.cycles);
    }
    fp.mix(nest.loop_overhead_cycles);
  }
  fp.mix(static_cast<std::uint64_t>(program.directives.size()));
  for (const ir::PlacedDirective& pd : program.directives) {
    fp.mix(pd.point.nest_index);
    fp.mix(pd.point.flat_iteration);
    fp.mix(static_cast<std::uint64_t>(pd.directive.kind));
    fp.mix(pd.directive.disk);
    fp.mix(pd.directive.rpm_level);
  }
}

void mix_layout(Fingerprint& fp, const layout::LayoutTable& layout) {
  fp.mix(layout.total_disks());
  fp.mix(static_cast<std::uint64_t>(layout.array_count()));
  for (std::size_t a = 0; a < layout.array_count(); ++a) {
    const layout::FileLayout& fl =
        layout.layout_of(static_cast<ir::ArrayId>(a));
    fp.mix(fl.striping().starting_disk);
    fp.mix(fl.striping().stripe_factor);
    fp.mix(fl.striping().stripe_size);
    fp.mix(fl.file_size());
  }
}

void mix_options(Fingerprint& fp, const trace::GeneratorOptions& options) {
  fp.mix(options.block_size);
  fp.mix(options.cache_bytes);
  fp.mix(options.noise.sigma);
  fp.mix(options.noise.seed);
  fp.mix(options.clock_hz);
  fp.mix(options.power_call_overhead_ms);
  fp.mix(options.prefetch_lead_ms);
}

}  // namespace

TraceKey trace_key_of(const ir::Program& program,
                      const layout::LayoutTable& layout,
                      const trace::GeneratorOptions& options) {
  Fingerprint fp;
  mix_program(fp, program);
  mix_layout(fp, layout);
  mix_options(fp, options);
  return fp.key();
}

TraceCache::TraceCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

TraceCache& TraceCache::global() {
  static TraceCache cache;
  return cache;
}

std::shared_ptr<const trace::Trace> TraceCache::get_or_generate(
    const ir::Program& program, const layout::LayoutTable& layout,
    const trace::GeneratorOptions& options) {
  {
    std::lock_guard lock(mutex_);
    if (!enabled_) {
      // Fall through to uncached generation (outside the lock).
    } else {
      const TraceKey key = trace_key_of(program, layout, options);
      const auto it = index_.find(key);
      if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        PerfCounters::global().add_trace_cache_hit();
        note_lookup(tracer_, /*hit=*/true);
        return it->second->trace;
      }
    }
  }

  // Generate outside the lock so concurrent cells generating *different*
  // traces proceed in parallel.  Two cells racing on the same key may both
  // generate; the second insert simply refreshes the entry — traces for
  // equal keys are bit-identical, so either copy is correct.
  auto trace = std::make_shared<const trace::Trace>(
      trace::TraceGenerator(program, layout, options).generate());

  std::lock_guard lock(mutex_);
  if (!enabled_) return trace;
  PerfCounters::global().add_trace_cache_miss();
  note_lookup(tracer_, /*hit=*/false);
  const TraceKey key = trace_key_of(program, layout, options);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->trace = trace;
    return trace;
  }
  lru_.push_front(Entry{key, trace});
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return trace;
}

void TraceCache::set_tracer(obs::EventTracer* tracer) {
  std::lock_guard lock(mutex_);
  tracer_ = obs::effective_tracer(tracer);
}

void TraceCache::set_enabled(bool enabled) {
  std::lock_guard lock(mutex_);
  enabled_ = enabled;
  if (!enabled) {
    lru_.clear();
    index_.clear();
  }
}

bool TraceCache::enabled() const {
  std::lock_guard lock(mutex_);
  return enabled_;
}

void TraceCache::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  index_.clear();
}

std::size_t TraceCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

}  // namespace sdpm::experiments
