// Experiment runner: evaluates one benchmark under one configuration
// across the paper's seven schemes (§4.2).
//
// Orchestration per scheme:
//   Base          closed-loop replay, no policy.
//   TPM / DRPM    closed-loop replay under the reactive policy.
//   ITPM / IDRPM  analytic oracle on the Base run's busy timeline.
//   CMTPM/CMDRPM  compiler pipeline: DAP analysis on the (transformed)
//                 program, power-call insertion against the *measured*
//                 per-nest timing (profile run), then closed-loop replay of
//                 the re-generated trace under the proactive policy.
//
// The measured timing mirrors the paper's methodology: per-iteration cycle
// estimates come from profiling the actual execution (so they include
// amortized I/O time), and the gap between the profiling run and the
// production run — modelled as independent per-nest log-normal factors —
// is what produces Table 3's mispredicted disk speeds.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/compiler.h"
#include "disk/parameters.h"
#include "sim/faults.h"
#include "sim/report.h"
#include "trace/generator.h"
#include "trace/stall_aware.h"
#include "workloads/benchmarks.h"

namespace sdpm::obs {
class EventTracer;
}

namespace sdpm::experiments {

enum class Scheme { kBase, kTpm, kItpm, kDrpm, kIdrpm, kCmtpm, kCmdrpm };

const char* to_string(Scheme scheme);

/// The seven schemes in the paper's presentation order.
std::vector<Scheme> all_schemes();

struct ExperimentConfig {
  int total_disks = 8;
  layout::Striping striping{};  ///< Table 1 default: (0, 8, 64 KB)
  disk::DiskParameters disk = disk::DiskParameters::ultrastar_36z15();
  trace::GeneratorOptions gen;  ///< block/cache/Tm settings
  core::Transformation transform = core::Transformation::kNone;
  /// Per-nest multiplicative timing variation of the production run.
  trace::CycleNoise actual_noise = trace::CycleNoise::paper_default();
  /// Same for the profiling run the compiler's estimates come from.
  trace::CycleNoise profile_noise{0.20, 0x9e0f11e5eedULL};
  std::int64_t call_site_granularity = 1;
  bool preactivate = true;
  Bytes tile_bytes = 256 * 1024;
  /// Fault injection applied to every simulated scheme (Base included, so
  /// normalization stays against the same faulty machine).  Default: none.
  sim::FaultConfig faults;
  /// Observability tracer (not owned).  Attached only to the replay of
  /// `trace_scheme` so a multi-scheme evaluation exports one clean event
  /// stream.  ITPM/IDRPM are analytic oracles with no replay and cannot be
  /// traced.  Default nullptr: every replay stays untraced.
  obs::EventTracer* tracer = nullptr;
  Scheme trace_scheme = Scheme::kBase;
};

struct SchemeResult {
  Scheme scheme = Scheme::kBase;
  Joules energy_j = 0;
  TimeMs execution_ms = 0;
  std::int64_t requests = 0;
  double normalized_energy = 1.0;  ///< vs Base under the same config
  double normalized_time = 1.0;
  /// Table 3 statistic; only meaningful for CM schemes.
  std::optional<double> mispredict_pct;
  std::int64_t power_calls = 0;  ///< directives inserted (CM schemes)
};

/// Evaluates one (benchmark, configuration) cell.  The Base run, the trace
/// and the measured timelines are computed once and shared by all schemes.
/// Traces come from the process-wide content-keyed TraceCache, so repeated
/// cells with identical generation inputs reuse one generation.
///
/// Thread safety: after construction, run() may be called concurrently for
/// different schemes — the lazy shared state (Base run, memoized measured
/// timelines) is initialized under internal synchronization and is a pure
/// function of the configuration, so results do not depend on interleaving.
class Runner {
 public:
  Runner(const workloads::Benchmark& benchmark, ExperimentConfig config);

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  /// The transformed program under evaluation.
  const ir::Program& program() const { return compiled_.program; }

  /// The Base simulation (runs lazily, cached).
  const sim::SimReport& base_report();

  /// The generated trace without power calls (shared by Base/TPM/DRPM).
  const trace::Trace& trace();

  /// The re-generated trace with the compiler's power calls inserted for
  /// `mode`, as used by the CM schemes; `calls_inserted` (optional)
  /// receives the directive count.
  trace::Trace cm_trace(core::PowerMode mode,
                        std::int64_t* calls_inserted = nullptr);

  /// Evaluate one scheme.  Thread-safe: independent schemes may run
  /// concurrently on pool workers.
  SchemeResult run(Scheme scheme);

  /// Evaluate all seven schemes, fanned over a thread pool (default_jobs()
  /// workers) with results in presentation order — bit-identical to a
  /// serial evaluation.
  std::vector<SchemeResult> run_all();

  const ExperimentConfig& config() const { return config_; }

 private:
  void ensure_base();
  /// config_.tracer when `scheme` is the one selected for tracing.
  obs::EventTracer* tracer_for(Scheme scheme) const {
    return config_.trace_scheme == scheme ? config_.tracer : nullptr;
  }
  /// The stall-aware measured timeline for a given compute-noise model:
  /// noisy compute plus the Base run's per-request stalls at their exact
  /// iterations.  Memoized per (sigma, seed); the returned reference stays
  /// valid for the Runner's lifetime.
  const trace::StallAwareTimeline& measured_timeline(
      const trace::CycleNoise& noise) const;
  /// Run the compiler's power-call scheduler for `mode` against the
  /// profile-noise estimate.
  core::ScheduleResult schedule_cm(core::PowerMode mode);
  /// The production-run trace of `program` (actual noise), via the cache.
  std::shared_ptr<const trace::Trace> generate_actual(
      const ir::Program& program) const;

  workloads::Benchmark benchmark_;
  ExperimentConfig config_;
  core::CompileOutput compiled_;
  std::optional<layout::LayoutTable> layout_;
  std::once_flag base_once_;
  std::shared_ptr<const trace::Trace> trace_;  // without power calls
  std::optional<sim::SimReport> base_;
  mutable std::mutex timeline_mutex_;
  mutable std::map<std::pair<std::uint64_t, std::uint64_t>,
                   std::unique_ptr<const trace::StallAwareTimeline>>
      timelines_;  // measured timelines by noise (sigma bits, seed)
};

}  // namespace sdpm::experiments
