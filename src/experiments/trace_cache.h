// Content-keyed trace cache.
//
// Trace generation is the dominant cost of an experiment cell: Base, TPM
// and DRPM all replay the *same* power-call-free trace, and bench sweeps
// revisit identical (program, layout, options) combinations across
// configurations.  The cache keys traces by a 128-bit fingerprint of
// everything that determines the generated trace bit for bit — the
// program's semantic structure (arrays, nests, references, directives),
// the physical layout (per-array striping + total disks), and the full
// GeneratorOptions including the noise sigma/seed — so a hit is guaranteed
// to return the exact trace a fresh generation would produce.
//
// Entries are shared_ptr<const Trace>: concurrently running sweep cells
// can hold the same trace while the LRU evicts it from the cache proper.
// All operations are thread-safe.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "ir/program.h"
#include "layout/layout_table.h"
#include "trace/generator.h"
#include "trace/request.h"

namespace sdpm::obs {
class EventTracer;
}

namespace sdpm::experiments {

/// 128-bit content fingerprint of a (program, layout, options) triple.
struct TraceKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const TraceKey&, const TraceKey&) = default;
};

struct TraceKeyHash {
  std::size_t operator()(const TraceKey& key) const noexcept {
    return static_cast<std::size_t>(key.lo ^ (key.hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// Fingerprint the inputs of trace generation.  Two triples with equal keys
/// generate bit-identical traces: the key covers every semantic field of
/// the program (names are excluded — they do not affect the trace), the
/// per-array striping and file sizes, and all generator options including
/// the noise seed.
TraceKey trace_key_of(const ir::Program& program,
                      const layout::LayoutTable& layout,
                      const trace::GeneratorOptions& options);

/// Thread-safe LRU cache of generated traces, keyed by content.
class TraceCache {
 public:
  explicit TraceCache(std::size_t capacity = 32);

  /// The process-wide instance shared by all Runners.
  static TraceCache& global();

  /// Return the cached trace for the triple, generating (and inserting) it
  /// on a miss.  When the cache is disabled every call generates afresh.
  /// Hits and misses report into PerfCounters::global() and the metrics
  /// registry ("trace_cache.hits"/"trace_cache.misses").
  std::shared_ptr<const trace::Trace> get_or_generate(
      const ir::Program& program, const layout::LayoutTable& layout,
      const trace::GeneratorOptions& options);

  /// Attach an observability tracer (not owned, nullptr detaches): lookups
  /// then emit kCacheHit / kCacheMiss events labelled "trace_cache".
  void set_tracer(obs::EventTracer* tracer);

  /// Toggle caching (enabled by default).  Disabling also clears the cache
  /// so benchmarks of the uncached path start cold.
  void set_enabled(bool enabled);
  bool enabled() const;

  void clear();
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    TraceKey key;
    std::shared_ptr<const trace::Trace> trace;
  };

  mutable std::mutex mutex_;
  obs::EventTracer* tracer_ = nullptr;
  bool enabled_ = true;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<TraceKey, std::list<Entry>::iterator, TraceKeyHash>
      index_;
};

}  // namespace sdpm::experiments
