#include "experiments/sweep.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/tracer.h"
#include "util/perf_counters.h"
#include "util/thread_pool.h"

namespace sdpm::experiments {

SweepEngine::SweepEngine(unsigned jobs)
    : jobs_(jobs == 0 ? default_jobs() : jobs) {}

std::vector<SweepCellResult> SweepEngine::run(
    const std::vector<SweepCell>& cells) {
  // Per-cell shared state: the Runner is built lazily by whichever task of
  // the cell arrives first (compile + Base run happen once), then every
  // scheme task of the cell reuses it.
  struct CellState {
    std::once_flag once;
    std::unique_ptr<Runner> runner;
    std::atomic<std::int64_t> task_us{0};
  };

  std::vector<SweepCellResult> results(cells.size());
  std::vector<CellState> state(cells.size());
  std::vector<std::function<void()>> tasks;

  // Worker-lane bookkeeping for the optional cell-lifecycle tracing: the
  // first task a pool thread runs claims the next dense lane index.
  obs::EventTracer* tracer = obs::effective_tracer(tracer_);
  const auto run_started = std::chrono::steady_clock::now();
  std::mutex lane_mutex;
  std::map<std::thread::id, int> lanes;
  const auto wall_ms = [run_started] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - run_started)
        .count();
  };
  const auto lane_of = [&lane_mutex, &lanes] {
    std::lock_guard lock(lane_mutex);
    return lanes.emplace(std::this_thread::get_id(),
                         static_cast<int>(lanes.size()))
        .first->second;
  };

  for (std::size_t c = 0; c < cells.size(); ++c) {
    const SweepCell& cell = cells[c];
    const std::vector<Scheme> schemes =
        cell.schemes.empty() ? all_schemes() : cell.schemes;
    results[c].label = cell.label;
    results[c].results.resize(schemes.size());

    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const Scheme scheme = schemes[s];
      tasks.push_back([&cells, &results, &state, c, s, scheme, tracer,
                       &wall_ms, &lane_of] {
        const auto started = std::chrono::steady_clock::now();
        std::string task_label;
        int lane = 0;
        if (tracer != nullptr) {
          task_label = cells[c].label + "/" + to_string(scheme);
          lane = lane_of();
          obs::Event ev;
          ev.kind = obs::EventKind::kCellBegin;
          ev.t0 = wall_ms();
          ev.t1 = ev.t0;
          ev.value = lane;
          ev.label = task_label.c_str();
          tracer->emit(ev);
        }
        CellState& st = state[c];
        std::call_once(st.once, [&] {
          st.runner = std::make_unique<Runner>(cells[c].benchmark,
                                               cells[c].config);
          st.runner->base_report();  // shared prerequisite, computed once
        });
        results[c].results[s] = st.runner->run(scheme);
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - started);
        st.task_us.fetch_add(us.count(), std::memory_order_relaxed);
        if (tracer != nullptr) {
          obs::Event ev;
          ev.kind = obs::EventKind::kCellEnd;
          ev.t0 = wall_ms();
          ev.t1 = ev.t0;
          ev.value = lane;
          ev.label = task_label.c_str();
          tracer->emit(ev);
        }
      });
    }
  }

  run_parallel(std::move(tasks), jobs_);

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const std::int64_t us = state[c].task_us.load(std::memory_order_relaxed);
    results[c].wall_ms = static_cast<double>(us) / 1000.0;
    PerfCounters::global().add_cell(us);
    metrics.add("sweep.cells_completed");
    metrics.observe("sweep.cell_wall_ms", results[c].wall_ms);
  }
  return results;
}

std::vector<SweepCell> cells_for_benchmarks(
    const std::vector<workloads::Benchmark>& benchmarks,
    const ExperimentConfig& config) {
  std::vector<SweepCell> cells;
  cells.reserve(benchmarks.size());
  for (const workloads::Benchmark& b : benchmarks) {
    SweepCell cell;
    cell.label = b.name;
    cell.benchmark = b;
    cell.config = config;
    cells.push_back(std::move(cell));
  }
  return cells;
}

}  // namespace sdpm::experiments
