// sdpm_serviced — the long-running simulation service.
//
//   sdpm_serviced --socket PATH [--capacity N] [--batch N] [--jobs N]
//                 [--trace-out FILE] [--trace-format jsonl|chrome]
//                 [--state-dir DIR]
//                 [--job-timeout-ms MS] [--max-attempts N]
//                 [--store-max-bytes N] [--fsync-journal]
//                 [--log-json FILE|-] [--telemetry-dump FILE]
//                 [--telemetry-interval-ms MS]
//
// Listens on a Unix domain socket for length-prefixed JSON requests (see
// src/service/protocol.h), admits jobs into a bounded queue with
// per-client round-robin fairness, and evaluates them in batches on a
// shared sweep engine so repeated (program, layout, options) cells hit the
// process-wide trace cache.  `sdpm_cli client --socket PATH ...` is the
// matching client.
//
// Prints "listening on PATH" to stdout once ready (scripts wait for it).
// SIGTERM / SIGINT drain gracefully: admission closes, every job already
// admitted reaches a terminal state, then the daemon exits 0.  A client's
// "shutdown" op does the same.  --trace-out streams per-batch job spans
// and sweep-cell lifecycle events as JSONL.
//
// --state-dir DIR makes the daemon crash-safe: a write-ahead job journal
// (DIR/journal.bin) and a persistent result store (DIR/store) are replayed
// at startup, so a SIGKILLed daemon restarted on the same state dir
// finishes every admitted job exactly once and serves repeated jobs from
// the store.  --job-timeout-ms arms a watchdog that fails overrunning
// jobs; --max-attempts bounds how often a poison job is retried across
// restarts before it is quarantined.
//
// Observability: --log-json streams leveled structured JSONL lifecycle
// events (to a file, or stderr with "-"); --telemetry-dump writes the
// per-stage latency/rate snapshot JSON atomically every
// --telemetry-interval-ms (default 1000) plus once at shutdown;
// --trace-format chrome makes --trace-out emit a chrome://tracing file
// whose service lanes stitch to the simulated-time disk tracks of traced
// submissions (same trace_id).
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "obs/log.h"
#include "obs/sinks.h"
#include "obs/tracer.h"
#include "service/daemon.h"
#include "util/error.h"

namespace {

using namespace sdpm;

[[noreturn]] void usage(const std::string& message = "") {
  if (!message.empty()) std::cerr << "error: " << message << "\n";
  std::cerr << "usage: sdpm_serviced --socket PATH [--capacity N] "
               "[--batch N] [--jobs N] [--trace-out FILE] "
               "[--trace-format jsonl|chrome] "
               "[--state-dir DIR] [--job-timeout-ms MS] [--max-attempts N] "
               "[--store-max-bytes N] [--fsync-journal] "
               "[--log-json FILE|-] [--telemetry-dump FILE] "
               "[--telemetry-interval-ms MS]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("unexpected argument '" + key + "'");
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags[key] = argv[++i];
    } else {
      flags[key] = "";
    }
  }
  for (const auto& [key, value] : flags) {
    if (key != "socket" && key != "capacity" && key != "batch" &&
        key != "jobs" && key != "trace-out" && key != "trace-format" &&
        key != "state-dir" && key != "job-timeout-ms" &&
        key != "max-attempts" && key != "store-max-bytes" &&
        key != "fsync-journal" && key != "log-json" &&
        key != "telemetry-dump" && key != "telemetry-interval-ms") {
      usage("unknown flag '--" + key + "'");
    }
  }
  if (flags.count("socket") == 0 || flags["socket"].empty()) {
    usage("--socket PATH is required");
  }

  service::DaemonOptions options;
  options.socket_path = flags["socket"];
  if (flags.count("capacity") != 0) {
    options.queue_capacity =
        static_cast<std::size_t>(std::atoll(flags["capacity"].c_str()));
  }
  if (flags.count("batch") != 0) {
    options.max_batch =
        static_cast<std::size_t>(std::atoll(flags["batch"].c_str()));
  }
  if (flags.count("jobs") != 0) {
    options.jobs = static_cast<unsigned>(std::atoi(flags["jobs"].c_str()));
  }
  if (flags.count("state-dir") != 0) {
    if (flags["state-dir"].empty()) usage("--state-dir needs a directory");
    options.state_dir = flags["state-dir"];
  }
  if (flags.count("job-timeout-ms") != 0) {
    options.job_timeout_ms = std::atof(flags["job-timeout-ms"].c_str());
    if (options.job_timeout_ms < 0) usage("--job-timeout-ms must be >= 0");
  }
  if (flags.count("max-attempts") != 0) {
    options.max_attempts = std::atoi(flags["max-attempts"].c_str());
    if (options.max_attempts < 1) usage("--max-attempts must be >= 1");
  }
  if (flags.count("store-max-bytes") != 0) {
    options.store_max_bytes = std::atoll(flags["store-max-bytes"].c_str());
    if (options.store_max_bytes < 1) usage("--store-max-bytes must be >= 1");
  }
  if (flags.count("fsync-journal") != 0) options.fsync_journal = true;
  if (flags.count("telemetry-dump") != 0) {
    if (flags["telemetry-dump"].empty()) usage("--telemetry-dump needs a path");
    options.telemetry_dump = flags["telemetry-dump"];
  }
  if (flags.count("telemetry-interval-ms") != 0) {
    options.telemetry_interval_ms =
        std::atof(flags["telemetry-interval-ms"].c_str());
    if (options.telemetry_interval_ms <= 0) {
      usage("--telemetry-interval-ms must be > 0");
    }
  }

  // Observability: job spans stream as JSONL (or a chrome://tracing file)
  // when requested.
  obs::EventTracer tracer;
  std::ofstream trace_file;
  std::optional<obs::JsonlSink> jsonl;
  std::optional<obs::ChromeTraceSink> chrome;
  if (flags.count("trace-out") != 0) {
    trace_file.open(flags["trace-out"]);
    if (!trace_file) usage("cannot open '" + flags["trace-out"] + "'");
    const std::string format = flags.count("trace-format") != 0
                                   ? flags["trace-format"]
                                   : std::string("jsonl");
    if (format == "jsonl") {
      tracer.add_sink(jsonl.emplace(trace_file));
    } else if (format == "chrome") {
      tracer.add_sink(chrome.emplace(trace_file));
    } else {
      usage("--trace-format must be jsonl or chrome");
    }
    options.tracer = &tracer;
  } else if (flags.count("trace-format") != 0) {
    usage("--trace-format needs --trace-out");
  }

  // Structured JSONL lifecycle log: a file, or stderr with "-".
  std::ofstream log_file;
  std::optional<obs::StructuredLog> log;
  if (flags.count("log-json") != 0) {
    if (flags["log-json"].empty()) usage("--log-json needs FILE or -");
    if (flags["log-json"] == "-") {
      log.emplace(std::cerr);
    } else {
      log_file.open(flags["log-json"], std::ios::app);
      if (!log_file) usage("cannot open '" + flags["log-json"] + "'");
      log.emplace(log_file);
    }
    options.log = &*log;
  }

  // Block the termination signals before any thread exists so every
  // daemon thread inherits the mask and only this loop sees them.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  try {
    service::ServiceDaemon daemon(options);
    daemon.start();
    std::cout << "listening on " << options.socket_path << std::endl;

    const timespec poll_interval{0, 100'000'000};  // 100 ms
    while (!daemon.shutdown_requested()) {
      const int sig = sigtimedwait(&sigs, nullptr, &poll_interval);
      if (sig == SIGTERM || sig == SIGINT) {
        std::cerr << "sdpm_serviced: draining on signal " << sig << "\n";
        daemon.request_shutdown();
        break;
      }
    }
    daemon.wait();
    tracer.close();
    std::cerr << "sdpm_serviced: drained, exiting\n";
    return 0;
  } catch (const sdpm::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
