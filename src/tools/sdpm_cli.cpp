// sdpm_cli — command-line driver for the sdpm library.
//
//   sdpm_cli list
//       Show the available benchmarks, schemes and transformations.
//   sdpm_cli run --benchmark swim [--scheme all|Base|TPM|ITPM|DRPM|IDRPM|
//                 CMTPM|CMDRPM] [--transform none|LF|TL|LF+DL|TL+DL]
//                 [--disks N] [--stripe BYTES] [--block BYTES]
//                 [--cache BYTES] [--noise SIGMA] [--no-preactivate] [--csv]
//                 [--trace-out FILE --trace-format chrome|jsonl|csv]
//                 [--preact-report] [--metrics-out FILE]
//       Evaluate scheme(s) on a benchmark under a configuration.  With
//       --trace-out (single non-oracle --scheme required) the replay's
//       event stream is exported: "chrome" is Perfetto-loadable trace JSON
//       timestamped in simulated time, "jsonl" a structured log, "csv" the
//       per-disk power-state timeline.  --preact-report prints the
//       pre-activation accounting (hit / late / wasted spin-ups);
//       --metrics-out dumps the metrics registry as JSON.
//   sdpm_cli dap --benchmark NAME [--disks N] [--stripe BYTES]
//       Print the compiler's Disk Access Pattern for a benchmark.
//   sdpm_cli trace --benchmark NAME [--out FILE] [config flags]
//       Emit the generated I/O request trace in the text format.
//   sdpm_cli replay --in FILE [--policy Base|TPM|ATPM|DRPM] [--open-loop]
//       Replay a (possibly external) text trace under a reactive policy.
//   sdpm_cli bench [--benchmark NAME] [--json] [--no-cache] [--jobs N]
//       Run the 7-scheme x 8-config sweep on the parallel sweep engine;
//       --json emits the perf-counter snapshot CI archives per commit.
//   sdpm_cli analyze --benchmark NAME [--mode CMTPM|CMDRPM]
//                 [--format text|json] [--fail-on error|warning|note]
//                 [--baseline FILE] [--write-baseline FILE]
//                 [--mutate late-preact|short-gap|overlap-fission]
//                 [--list-rules] [config flags]
//       Statically lint the compiled power-call schedule (no simulation):
//       break-even violations, late/missing pre-activations, redundant or
//       conflicting directives, DRPM misfits, fission disk-set overlap,
//       transformation legality, layout coverage.  --mutate seeds a known
//       bug class first (for validating the analyzer).  Exits 3 when any
//       diagnostic at or above the --fail-on severity survives the
//       baseline.
//
// --jobs N caps the worker count of every parallel phase (equivalent to
// SDPM_JOBS in the environment).
//
// All simulating commands accept fault-injection flags (--fault-seed,
// --fault-spinup, --fault-media, --fault-jitter, --fault-drop) and
// inspect/replay accept --resilient to wrap the chosen policy in the
// degrading ResilientPolicy.
//
// Exit codes: 0 success, 1 runtime error (sdpm::Error), 2 usage error
// (unknown command / flag / malformed value, reported with the usage
// text), 3 analyze found diagnostics at or above the --fail-on severity.
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/mutate.h"
#include "analysis/registry.h"
#include "core/codegen.h"
#include "core/compiler.h"
#include "experiments/profile.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "experiments/sweep.h"
#include "experiments/trace_cache.h"
#include "layout/layout_table.h"
#include "obs/metrics.h"
#include "obs/preactivation.h"
#include "obs/sim_metrics.h"
#include "obs/sinks.h"
#include "obs/tracer.h"
#include "policy/adaptive_tpm.h"
#include "policy/base.h"
#include "policy/drpm.h"
#include "policy/resilient.h"
#include "policy/tpm.h"
#include "sim/simulator.h"
#include "trace/dap.h"
#include "trace/generator.h"
#include "trace/text_io.h"
#include "util/error.h"
#include "util/perf_counters.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

#include "sdpm_version.h"

namespace {

using namespace sdpm;

const char* usage_text() {
  return
      "usage: sdpm_cli <command> [flags]\n"
      "  list                       show benchmarks / schemes / transforms\n"
      "  run    --benchmark NAME [--scheme S] [--transform T] [config]\n"
      "         [--trace-out FILE] [--trace-format chrome|jsonl|csv]\n"
      "         [--preact-report] [--metrics-out FILE]\n"
      "         tracing flags need a single non-oracle --scheme; chrome\n"
      "         traces load in Perfetto (simulated-time tracks per disk)\n"
      "  inspect --benchmark NAME [--policy P] [--per-disk] [config]\n"
      "  codegen --benchmark NAME [--mode CMTPM|CMDRPM] [--transform T]\n"
      "  profile --benchmark NAME [config]\n"
      "  dap    --benchmark NAME [config]\n"
      "  trace  --benchmark NAME [--out FILE] [config]\n"
      "  replay --in FILE [--policy P] [--open-loop] [--per-disk]\n"
      "  bench  [--benchmark NAME] [--json] [--no-cache]\n"
      "         [--metrics-out FILE] [config]\n"
      "         sweep all 7 schemes x 8 configs on the parallel sweep\n"
      "         engine; --json emits the perf-counter snapshot\n"
      "         (BENCH_simulator.json schema) instead of the table\n"
      "  analyze --benchmark NAME [--mode CMTPM|CMDRPM]\n"
      "         [--format text|json] [--fail-on error|warning|note]\n"
      "         [--baseline FILE] [--write-baseline FILE]\n"
      "         [--mutate late-preact|short-gap|overlap-fission]\n"
      "         [--list-rules] [config]\n"
      "         static energy-safety lint of the compiled schedule;\n"
      "         exits 3 when a diagnostic at or above the --fail-on\n"
      "         severity survives the baseline\n"
      "  --help / --version         print this help / the build version\n"
      "config flags: --disks N --stripe BYTES --block BYTES --cache BYTES\n"
      "              --noise SIGMA --no-preactivate --csv --jobs N\n"
      "fault flags:  --fault-seed N --fault-spinup P --fault-media P\n"
      "              --fault-jitter F --fault-drop P --fault-retries N\n"
      "              (inspect/replay also accept --resilient)\n"
      "exit codes:   0 ok, 1 runtime error, 2 usage error, 3 analyze "
      "findings\n";
}

[[noreturn]] void usage(const std::string& message = "") {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::cerr << usage_text();
  std::exit(2);
}

/// Tiny flag parser: --key value and boolean --key.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) usage("unexpected argument '" + key + "'");
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get(const std::string& key,
                  const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::size_t pos = 0;
    std::int64_t value = 0;
    try {
      value = std::stoll(it->second, &pos);
    } catch (const std::exception&) {
      pos = std::string::npos;
    }
    if (pos != it->second.size()) {
      usage("--" + key + " expects an integer, got '" + it->second + "'");
    }
    return value;
  }

  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::size_t pos = 0;
    double value = 0.0;
    try {
      value = std::stod(it->second, &pos);
    } catch (const std::exception&) {
      pos = std::string::npos;
    }
    if (pos != it->second.size()) {
      usage("--" + key + " expects a number, got '" + it->second + "'");
    }
    return value;
  }

  /// All parsed flags (for per-command validation).
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

/// The flags every command's config_from / fault_config_from may read.
const std::set<std::string>& common_flags() {
  static const std::set<std::string> flags = {
      "disks",      "stripe",        "block",        "cache",
      "noise",      "no-preactivate", "transform",   "csv",
      "jobs",       "fault-seed",    "fault-spinup", "fault-media",
      "fault-jitter", "fault-drop",  "fault-retries"};
  return flags;
}

/// Reject flags the command does not understand (distinct from a runtime
/// error: a typo'd flag exits 2 with the usage text, before any work).
void require_known_flags(const std::string& command, const Args& args,
                         std::initializer_list<const char*> extra) {
  std::set<std::string> allowed = common_flags();
  for (const char* flag : extra) allowed.insert(flag);
  for (const auto& [key, value] : args.values()) {
    if (allowed.count(key) == 0) {
      usage("unknown flag '--" + key + "' for command '" + command + "'");
    }
  }
}

/// Write the process-wide metrics registry as JSON to `path`.
void write_metrics_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) usage("cannot open '" + path + "'");
  out << obs::MetricsRegistry::global().to_json() << "\n";
}

sim::FaultConfig fault_config_from(const Args& args) {
  sim::FaultConfig faults;
  faults.spin_up_failure_prob = args.get_double("fault-spinup", 0.0);
  faults.media_error_prob = args.get_double("fault-media", 0.0);
  faults.service_jitter = args.get_double("fault-jitter", 0.0);
  faults.dropped_directive_prob = args.get_double("fault-drop", 0.0);
  faults.max_spin_up_retries =
      static_cast<int>(args.get_int("fault-retries",
                                    faults.max_spin_up_retries));
  if (args.has("fault-seed")) {
    faults.seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 0));
  }
  faults.validate();
  return faults;
}

experiments::ExperimentConfig config_from(const Args& args) {
  experiments::ExperimentConfig config;
  config.faults = fault_config_from(args);
  config.total_disks = static_cast<int>(args.get_int("disks", 8));
  config.striping.stripe_factor = config.total_disks;
  config.striping.stripe_size = args.get_int("stripe", kib(64));
  config.gen.block_size = args.get_int("block", 0);
  config.gen.cache_bytes = args.get_int("cache", mib(6));
  if (args.has("noise")) {
    const double sigma = args.get_double("noise", 0.2);
    config.actual_noise.sigma = sigma;
    config.profile_noise.sigma = sigma;
  }
  config.preactivate = !args.has("no-preactivate");
  if (args.has("transform")) {
    const std::string t = args.get("transform");
    if (t == "none") {
      config.transform = core::Transformation::kNone;
    } else if (t == "LF") {
      config.transform = core::Transformation::kLF;
    } else if (t == "TL") {
      config.transform = core::Transformation::kTL;
    } else if (t == "LF+DL") {
      config.transform = core::Transformation::kLFDL;
    } else if (t == "TL+DL") {
      config.transform = core::Transformation::kTLDL;
    } else {
      usage("unknown transform '" + t + "'");
    }
  }
  return config;
}

std::optional<experiments::Scheme> scheme_from(const std::string& name) {
  for (const experiments::Scheme s : experiments::all_schemes()) {
    if (name == experiments::to_string(s)) return s;
  }
  return std::nullopt;
}

void emit(const Table& table, const Args& args) {
  if (args.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

int cmd_list() {
  std::cout << "benchmarks:";
  for (const std::string& name : workloads::benchmark_names()) {
    std::cout << " " << name;
  }
  std::cout << "\nschemes:   ";
  for (const experiments::Scheme s : experiments::all_schemes()) {
    std::cout << " " << experiments::to_string(s);
  }
  std::cout << "\ntransforms: none LF TL LF+DL TL+DL\n";
  std::cout << "replay policies: Base TPM ATPM DRPM (each wrappable with "
               "--resilient)\n";
  return 0;
}

int cmd_run(const Args& args) {
  require_known_flags("run", args,
                      {"benchmark", "scheme", "trace-out", "trace-format",
                       "preact-report", "metrics-out"});
  if (!args.has("benchmark")) usage("run requires --benchmark");
  workloads::Benchmark bench =
      workloads::make_benchmark(args.get("benchmark"));
  experiments::ExperimentConfig config = config_from(args);

  const std::string scheme_name = args.get("scheme", "all");
  const std::optional<experiments::Scheme> single = scheme_from(scheme_name);
  if (scheme_name != "all" && !single) {
    usage("unknown scheme '" + scheme_name + "'");
  }

  // Observability: sinks are stack-owned and must outlive tracer.close().
  const bool want_trace = args.has("trace-out");
  const bool want_preact = args.has("preact-report");
  if (args.has("trace-format") && !want_trace) {
    usage("--trace-format requires --trace-out");
  }
  obs::EventTracer tracer;
  std::ofstream trace_file;
  std::optional<obs::JsonlSink> jsonl;
  std::optional<obs::ChromeTraceSink> chrome;
  std::optional<obs::TimelineCsvSink> timeline;
  obs::PreactivationAccountant accountant;
  if (want_trace || want_preact) {
    if (!single) {
      usage("--trace-out / --preact-report need a single --scheme "
            "(a multi-scheme run would interleave unrelated replays)");
    }
    if (*single == experiments::Scheme::kItpm ||
        *single == experiments::Scheme::kIdrpm) {
      usage(std::string(experiments::to_string(*single)) +
            " is an analytic oracle with no replay to trace");
    }
    if (want_trace) {
      trace_file.open(args.get("trace-out"));
      if (!trace_file) usage("cannot open '" + args.get("trace-out") + "'");
      const std::string format = args.get("trace-format", "chrome");
      if (format == "chrome") {
        tracer.add_sink(chrome.emplace(trace_file));
      } else if (format == "jsonl") {
        tracer.add_sink(jsonl.emplace(trace_file));
      } else if (format == "csv") {
        tracer.add_sink(timeline.emplace(trace_file));
      } else {
        usage("unknown --trace-format '" + format +
              "' (chrome, jsonl or csv)");
      }
    }
    if (want_preact) tracer.add_sink(accountant);
    config.tracer = &tracer;
    config.trace_scheme = *single;
  }

  experiments::Runner runner(bench, config);
  std::vector<experiments::SchemeResult> results;
  if (scheme_name == "all") {
    results = runner.run_all();
  } else {
    results.push_back(runner.run(*single));
  }
  tracer.close();

  Table table(bench.name + " (" +
              std::string(core::to_string(runner.config().transform)) + ")");
  table.set_header({"Scheme", "Energy (J)", "Norm. energy", "Exec (ms)",
                    "Norm. time", "Requests", "Calls", "Mispredict %"});
  for (const auto& r : results) {
    table.add_row({
        experiments::to_string(r.scheme),
        fmt_double(r.energy_j, 2),
        fmt_double(r.normalized_energy, 3),
        fmt_double(r.execution_ms, 2),
        fmt_double(r.normalized_time, 3),
        std::to_string(r.requests),
        std::to_string(r.power_calls),
        r.mispredict_pct ? fmt_double(*r.mispredict_pct, 2) : "-",
    });
  }
  emit(table, args);
  if (want_preact) std::cout << accountant.report().to_string();
  if (args.has("metrics-out")) {
    // Fold the shared Base report's distributions (idle gaps, responses)
    // in before dumping; the replay counters are already in the registry.
    obs::record_report_metrics(obs::MetricsRegistry::global(),
                               runner.base_report());
    write_metrics_json(args.get("metrics-out"));
  }
  return 0;
}

sim::PowerPolicy* pick_policy(const std::string& name,
                              policy::BasePolicy& base,
                              policy::TpmPolicy& tpm,
                              policy::AdaptiveTpmPolicy& atpm,
                              policy::DrpmPolicy& drpm) {
  if (name == "Base") return &base;
  if (name == "TPM") return &tpm;
  if (name == "ATPM") return &atpm;
  if (name == "DRPM") return &drpm;
  usage("unknown policy '" + name + "'");
}

int cmd_inspect(const Args& args) {
  require_known_flags("inspect", args,
                      {"benchmark", "policy", "per-disk", "resilient"});
  if (!args.has("benchmark")) usage("inspect requires --benchmark");
  const workloads::Benchmark bench =
      workloads::make_benchmark(args.get("benchmark"));
  const experiments::ExperimentConfig config = config_from(args);
  const layout::LayoutTable table(bench.program, config.striping,
                                  config.total_disks);
  trace::GeneratorOptions gen = config.gen;
  gen.noise = config.actual_noise;
  trace::TraceGenerator generator(bench.program, table, gen);
  const trace::Trace trace = generator.generate();

  policy::BasePolicy base;
  policy::TpmPolicy tpm;
  policy::AdaptiveTpmPolicy atpm;
  policy::DrpmPolicy drpm;
  sim::PowerPolicy* policy =
      pick_policy(args.get("policy", "Base"), base, tpm, atpm, drpm);
  std::optional<policy::ResilientPolicy> resilient;
  if (args.has("resilient")) policy = &resilient.emplace(*policy);
  const sim::SimReport report =
      sim::simulate(trace, config.disk, *policy,
                    sim::ReplayMode::kClosedLoop, config.faults);
  emit(experiments::summary_table(report, bench.name), args);
  if (args.has("per-disk")) {
    emit(experiments::per_disk_table(report), args);
  }
  return 0;
}

int cmd_codegen(const Args& args) {
  require_known_flags("codegen", args, {"benchmark", "mode"});
  if (!args.has("benchmark")) usage("codegen requires --benchmark");
  const workloads::Benchmark bench =
      workloads::make_benchmark(args.get("benchmark"));
  const experiments::ExperimentConfig config = config_from(args);
  core::CompilerOptions co;
  co.total_disks = config.total_disks;
  co.base_striping = config.striping;
  co.access = config.gen;
  const std::string mode_name = args.get("mode", "CMDRPM");
  std::optional<core::PowerMode> mode;
  if (mode_name == "CMTPM") {
    mode = core::PowerMode::kTpm;
  } else if (mode_name == "CMDRPM") {
    mode = core::PowerMode::kDrpm;
  } else if (mode_name == "none") {
    mode = std::nullopt;
  } else {
    usage("unknown codegen mode '" + mode_name + "'");
  }
  const core::CompileOutput out =
      core::compile(bench.program, config.transform, mode, co);
  std::cout << core::emit_pseudo_source(out.program);
  return 0;
}

int cmd_profile(const Args& args) {
  require_known_flags("profile", args, {"benchmark"});
  if (!args.has("benchmark")) usage("profile requires --benchmark");
  const workloads::Benchmark bench =
      workloads::make_benchmark(args.get("benchmark"));
  const experiments::ExperimentConfig config = config_from(args);
  const layout::LayoutTable table(bench.program, config.striping,
                                  config.total_disks);
  trace::GeneratorOptions gen = config.gen;
  gen.noise = config.actual_noise;
  trace::TraceGenerator generator(bench.program, table, gen);
  const trace::Trace trace = generator.generate();
  policy::BasePolicy policy;
  sim::SimOptions options;
  options.capture_responses = true;  // the per-nest profile needs them
  const sim::SimReport report =
      sim::simulate(trace, config.disk, policy, options);
  emit(experiments::per_nest_profile(bench.program, trace, report), args);
  emit(experiments::idle_gap_table(report, config.disk), args);
  return 0;
}

int cmd_dap(const Args& args) {
  require_known_flags("dap", args, {"benchmark"});
  if (!args.has("benchmark")) usage("dap requires --benchmark");
  const workloads::Benchmark bench =
      workloads::make_benchmark(args.get("benchmark"));
  const experiments::ExperimentConfig config = config_from(args);
  const layout::LayoutTable table(bench.program, config.striping,
                                  config.total_disks);
  const auto dap =
      trace::DiskAccessPattern::analyze(bench.program, table, config.gen);
  std::cout << dap.to_string(bench.program);
  return 0;
}

int cmd_trace(const Args& args) {
  require_known_flags("trace", args, {"benchmark", "out"});
  if (!args.has("benchmark")) usage("trace requires --benchmark");
  const workloads::Benchmark bench =
      workloads::make_benchmark(args.get("benchmark"));
  const experiments::ExperimentConfig config = config_from(args);
  const layout::LayoutTable table(bench.program, config.striping,
                                  config.total_disks);
  trace::TraceGenerator generator(bench.program, table, config.gen);
  const trace::Trace trace = generator.generate();
  if (args.has("out")) {
    std::ofstream out(args.get("out"));
    if (!out) usage("cannot open '" + args.get("out") + "'");
    trace::write_trace_text(trace, out);
    std::cout << trace.requests.size() << " requests written to "
              << args.get("out") << "\n";
  } else {
    trace::write_trace_text(trace, std::cout);
  }
  return 0;
}

int cmd_replay(const Args& args) {
  require_known_flags("replay", args,
                      {"in", "policy", "open-loop", "per-disk", "resilient"});
  if (!args.has("in")) usage("replay requires --in");
  std::ifstream in(args.get("in"));
  if (!in) usage("cannot open '" + args.get("in") + "'");
  const trace::Trace trace = trace::read_trace_text(in, args.get("in"));

  policy::BasePolicy base;
  policy::TpmPolicy tpm;
  policy::AdaptiveTpmPolicy atpm;
  policy::DrpmPolicy drpm;
  sim::PowerPolicy* policy =
      pick_policy(args.get("policy", "Base"), base, tpm, atpm, drpm);
  std::optional<policy::ResilientPolicy> resilient;
  if (args.has("resilient")) policy = &resilient.emplace(*policy);

  const sim::ReplayMode mode = args.has("open-loop")
                                   ? sim::ReplayMode::kOpenLoop
                                   : sim::ReplayMode::kClosedLoop;
  const sim::SimReport report = sim::simulate(
      trace, disk::DiskParameters::ultrastar_36z15(), *policy, mode,
      fault_config_from(args));

  Table table("replay of " + args.get("in") + " under " +
              std::string(policy->name()));
  table.set_header({"Metric", "Value"});
  table.add_row({"requests", std::to_string(report.requests)});
  table.add_row({"disks", std::to_string(report.disk_count())});
  table.add_row({"energy", fmt_double(report.total_energy, 2) + " J"});
  table.add_row({"completion", fmt_time_ms(report.execution_ms)});
  table.add_row({"mean response", fmt_time_ms(report.response_ms.mean())});
  table.add_row({"max response", fmt_time_ms(report.response_ms.max())});
  emit(table, args);
  if (args.has("per-disk")) {
    emit(experiments::per_disk_table(report), args);
  }
  return 0;
}

int cmd_bench(const Args& args) {
  require_known_flags("bench", args,
                      {"benchmark", "json", "no-cache", "metrics-out"});
  const std::string bench_name = args.get("benchmark", "swim");
  const workloads::Benchmark bench = workloads::make_benchmark(bench_name);
  if (args.has("no-cache")) {
    experiments::TraceCache::global().set_enabled(false);
  }

  // 8 configurations: 4 stripe sizes x 2 subsystem widths, each evaluated
  // under all 7 schemes (the paper's Figs. 5-8 sensitivity grid).
  const std::vector<Bytes> stripes = {kib(16), kib(32), kib(64), kib(128)};
  const std::vector<int> widths = {4, 8};
  std::vector<experiments::SweepCell> cells;
  for (const int disks : widths) {
    for (const Bytes stripe : stripes) {
      experiments::ExperimentConfig config = config_from(args);
      config.total_disks = disks;
      config.striping.stripe_factor = disks;
      config.striping.stripe_size = stripe;
      experiments::SweepCell cell;
      cell.label = bench_name + "/d" + std::to_string(disks) + "/s" +
                   std::to_string(stripe / 1024) + "K";
      cell.benchmark = bench;
      cell.config = std::move(config);
      cells.push_back(std::move(cell));
    }
  }

  // Bracket the sweep with two snapshots instead of resetting the global
  // counters: the diff isolates this sweep without destroying the
  // process-wide perf trajectory.
  const PerfSnapshot before = PerfCounters::global().snapshot();
  const auto started = std::chrono::steady_clock::now();
  experiments::SweepEngine engine;
  const std::vector<experiments::SweepCellResult> results =
      engine.run(cells);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  const PerfSnapshot sweep_delta = PerfCounters::global().snapshot() - before;

  if (args.has("metrics-out")) write_metrics_json(args.get("metrics-out"));
  if (args.has("json")) {
    std::cout << perf_json(sweep_delta, wall_ms, engine.jobs()) << "\n";
    return 0;
  }

  Table table(bench_name + " sweep (" + std::to_string(engine.jobs()) +
              " jobs, " + fmt_double(wall_ms, 1) + " ms)");
  std::vector<std::string> header = {"Cell", "Task ms"};
  for (const experiments::Scheme s : experiments::all_schemes()) {
    header.push_back(std::string(experiments::to_string(s)) + " E");
  }
  table.set_header(header);
  for (const experiments::SweepCellResult& cell : results) {
    std::vector<std::string> row = {cell.label, fmt_double(cell.wall_ms, 1)};
    for (const experiments::SchemeResult& r : cell.results) {
      row.push_back(fmt_double(r.normalized_energy, 3));
    }
    table.add_row(row);
  }
  emit(table, args);
  return 0;
}

int cmd_analyze(const Args& args) {
  require_known_flags("analyze", args,
                      {"benchmark", "mode", "format", "fail-on", "baseline",
                       "write-baseline", "mutate", "list-rules"});
  if (args.has("list-rules")) {
    for (const analysis::RuleInfo& rule : analysis::rule_catalog()) {
      std::cout << rule.id << "  " << analysis::to_string(rule.severity)
                << "\t[" << rule.pass << "]\t" << rule.summary << "\n";
    }
    return 0;
  }
  if (!args.has("benchmark")) usage("analyze requires --benchmark");
  const workloads::Benchmark bench =
      workloads::make_benchmark(args.get("benchmark"));
  const experiments::ExperimentConfig config = config_from(args);

  const std::string mode_name = args.get("mode", "CMDRPM");
  core::PowerMode mode;
  if (mode_name == "CMTPM") {
    mode = core::PowerMode::kTpm;
  } else if (mode_name == "CMDRPM") {
    mode = core::PowerMode::kDrpm;
  } else {
    usage("unknown analyze mode '" + mode_name + "'");
  }

  const std::string format = args.get("format", "text");
  if (format != "text" && format != "json") {
    usage("unknown --format '" + format + "' (text or json)");
  }
  const std::string fail_on = args.get("fail-on", "error");
  analysis::Severity threshold;
  if (fail_on == "error") {
    threshold = analysis::Severity::kError;
  } else if (fail_on == "warning") {
    threshold = analysis::Severity::kWarning;
  } else if (fail_on == "note") {
    threshold = analysis::Severity::kNote;
  } else {
    usage("unknown --fail-on '" + fail_on + "' (error, warning or note)");
  }

  // Reproduce the compiler pipeline, then analyze its exact output.
  core::CompilerOptions co;
  co.total_disks = config.total_disks;
  co.base_striping = config.striping;
  co.disk_params = config.disk;
  co.access = config.gen;
  co.call_site_granularity = config.call_site_granularity;
  co.preactivate = config.preactivate;
  co.tile_bytes = config.tile_bytes;
  const core::CompileOutput out =
      core::compile(bench.program, config.transform, mode, co);
  core::ScheduleResult result{out.program, out.plans, out.calls_inserted};
  std::vector<layout::Striping> striping = out.striping;

  if (args.has("mutate")) {
    const std::optional<analysis::Mutation> mutation =
        analysis::mutation_from_name(args.get("mutate"));
    if (!mutation) usage("unknown --mutate '" + args.get("mutate") + "'");
    analysis::apply_mutation(*mutation, result, striping, config.disk);
  }

  const layout::LayoutTable table(result.program, striping,
                                  config.total_disks);
  analysis::AnalyzeOptions opts;
  opts.access = config.gen;
  opts.transform = config.transform;
  analysis::AnalysisReport report =
      analysis::analyze(result, table, config.disk, opts);

  if (args.has("baseline")) {
    std::ifstream in(args.get("baseline"));
    if (!in) usage("cannot open '" + args.get("baseline") + "'");
    analysis::apply_baseline(report, analysis::Baseline::parse(in));
  }
  if (args.has("write-baseline")) {
    std::ofstream outfile(args.get("write-baseline"));
    if (!outfile) usage("cannot open '" + args.get("write-baseline") + "'");
    outfile << analysis::to_baseline(report);
  }

  std::cout << (format == "json" ? analysis::render_json(report)
                                 : analysis::render_text(report));
  const std::optional<analysis::Severity> worst = report.worst();
  if (worst.has_value() &&
      static_cast<int>(*worst) >= static_cast<int>(threshold)) {
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    std::cout << usage_text();
    return 0;
  }
  if (command == "--version" || command == "-V" || command == "version") {
    std::cout << "sdpm_cli " << SDPM_VERSION << " (" << SDPM_BUILD_TYPE
              << ")\n";
    return 0;
  }
  try {
    const Args args(argc, argv, 2);
    if (args.has("jobs")) {
      set_default_jobs(static_cast<unsigned>(args.get_int("jobs", 0)));
    }
    if (command == "list") {
      require_known_flags("list", args, {});
      return cmd_list();
    }
    if (command == "run") return cmd_run(args);
    if (command == "inspect") return cmd_inspect(args);
    if (command == "codegen") return cmd_codegen(args);
    if (command == "profile") return cmd_profile(args);
    if (command == "dap") return cmd_dap(args);
    if (command == "trace") return cmd_trace(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "bench") return cmd_bench(args);
    if (command == "analyze") return cmd_analyze(args);
    usage("unknown command '" + command + "'");
  } catch (const sdpm::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
