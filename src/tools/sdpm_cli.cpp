// sdpm_cli — command-line driver for the sdpm library.
//
//   sdpm_cli list
//       Show the available benchmarks, schemes, transformations and
//       device presets.
//
// Every simulating command accepts --device PRESET|FILE.json to pick the
// disk model: a power-ladder preset name (see `list`) or a path to a
// ladder descriptor JSON file (disk::PowerLadder::to_json format).  The
// default is the paper's IBM Ultrastar 36Z15.
//   sdpm_cli run --benchmark swim [--scheme all|Base|TPM|ITPM|DRPM|IDRPM|
//                 CMTPM|CMDRPM] [--transform none|LF|TL|LF+DL|TL+DL]
//                 [--disks N] [--stripe BYTES] [--block BYTES]
//                 [--cache BYTES] [--noise SIGMA] [--no-preactivate] [--csv]
//                 [--out FILE --format chrome|jsonl|csv|metrics]
//                 [--preact-report]
//       Evaluate scheme(s) on a benchmark under a configuration, through
//       the sdpm::api::Session facade.  With a trace --format (single
//       non-oracle --scheme required) the replay's event stream is
//       exported to --out: "chrome" is Perfetto-loadable trace JSON
//       timestamped in simulated time, "jsonl" a structured log, "csv" the
//       per-disk power-state timeline; "metrics" dumps the metrics
//       registry as JSON.  --preact-report prints the pre-activation
//       accounting (hit / late / wasted spin-ups).  The pre-unification
//       spellings --trace-out FILE / --trace-format F / --metrics-out FILE
//       still work as deprecated aliases (a note goes to stderr).
//   sdpm_cli dap --benchmark NAME [--disks N] [--stripe BYTES]
//       Print the compiler's Disk Access Pattern for a benchmark.
//   sdpm_cli trace --benchmark NAME [--out FILE] [config flags]
//       Emit the generated I/O request trace in the text format.
//   sdpm_cli replay --in FILE [--policy Base|TPM|ATPM|DRPM] [--open-loop]
//       Replay a (possibly external) text trace under a reactive policy.
//   sdpm_cli bench [--suite sweep|simulator] [--benchmark NAME]
//                 [--out FILE] [--format table|csv|json|metrics]
//                 [--no-cache] [--jobs N] [--compare FILE] [--tolerance N]
//       --suite sweep (default): the 7-scheme x 8-config sweep through
//       the facade's batched entry point; --format json emits the
//       perf-counter snapshot CI archives per commit (with --suite given
//       explicitly, the persistable BenchSnapshot schema instead).
//       --suite simulator: the single-disk hot-loop replay suite (Base
//       policy on swim, plus the null-tracer overhead probe); --format
//       json emits its BenchSnapshot.  --compare FILE checks the fresh
//       run against a stored snapshot (BENCH_simulator.json /
//       BENCH_sweep.json at the repo root) with a --tolerance percent
//       band (default 15) on calibration-normalized throughput; a
//       regression exits 4.  --json / --metrics-out FILE remain as
//       deprecated aliases.
//   sdpm_cli client --socket PATH --op ping|submit|run|status|result|
//                 cancel|stats|telemetry|drain|shutdown [--id N] [--wait]
//                 [--trace-id HEX] [job flags]
//       Talk to a running sdpm_serviced daemon.  "submit" admits a job
//       built from the usual run flags and prints its id; "run" submits,
//       waits for the terminal state and prints the job JSON; "result
//       --wait" blocks until an existing job is terminal.  --trace-id
//       (submit/run) propagates a client trace context so the daemon's
//       --trace-out stream stitches this job's service lifecycle to its
//       simulated-time disk tracks.  "telemetry" prints the daemon's
//       per-stage latency histograms (--prometheus for the text
//       exposition); "stats --watch [N]" renders a live summary line
//       every --interval-ms (default 1000).
//   sdpm_cli analyze --benchmark NAME [--mode CMTPM|CMDRPM]
//                 [--format text|json] [--fail-on error|warning|note]
//                 [--baseline FILE] [--write-baseline FILE]
//                 [--mutate late-preact|short-gap|overlap-fission]
//                 [--fix] [--list-rules] [config flags]
//       Statically lint the compiled power-call schedule (no simulation):
//       break-even violations, late/missing pre-activations, redundant or
//       conflicting directives, DRPM misfits, fission disk-set overlap,
//       transformation legality, layout coverage.  The report carries the
//       certifier's guaranteed energy/execution bounds.  --mutate seeds a
//       known bug class first (for validating the analyzer).  --fix
//       applies the diagnostics' SDPM-F### fix-its to a fixed point and
//       reports the repaired schedule.  Exits 3 when any diagnostic at or
//       above the --fail-on severity survives the baseline.
//
// --jobs N caps the worker count of every parallel phase (equivalent to
// SDPM_JOBS in the environment).
//
// All simulating commands accept fault-injection flags (--fault-seed,
// --fault-spinup, --fault-media, --fault-jitter, --fault-drop) and
// inspect/replay accept --resilient to wrap the chosen policy in the
// degrading ResilientPolicy.
//
// Exit codes: 0 success, 1 runtime error (sdpm::Error), 2 usage error
// (unknown command / flag / malformed value, reported with the usage
// text), 3 analyze found diagnostics at or above the --fail-on severity,
// 4 bench --compare detected a performance regression.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/mutate.h"
#include "analysis/registry.h"
#include "api/job_result.h"
#include "api/job_spec.h"
#include "api/session.h"
#include "core/codegen.h"
#include "core/compiler.h"
#include "disk/ladder.h"
#include "experiments/bench_baseline.h"
#include "experiments/bench_suite.h"
#include "experiments/profile.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "experiments/sweep.h"
#include "experiments/trace_cache.h"
#include "layout/layout_table.h"
#include "obs/metrics.h"
#include "obs/preactivation.h"
#include "obs/sim_metrics.h"
#include "obs/sinks.h"
#include "obs/tracer.h"
#include "policy/adaptive_tpm.h"
#include "policy/base.h"
#include "policy/drpm.h"
#include "policy/resilient.h"
#include "policy/tpm.h"
#include "service/client.h"
#include "sim/simulator.h"
#include "trace/dap.h"
#include "trace/generator.h"
#include "trace/text_io.h"
#include "util/error.h"
#include "util/perf_counters.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

#include "sdpm_version.h"

namespace {

using namespace sdpm;

const char* usage_text() {
  return
      "usage: sdpm_cli <command> [flags]\n"
      "  list                       show benchmarks / schemes / transforms\n"
      "  device --preset NAME [--out FILE] | --validate FILE\n"
      "         export a preset's canonical power-ladder JSON (editable,\n"
      "         feed back via --device FILE.json), or lint a descriptor\n"
      "  run    --benchmark NAME [--scheme S] [--transform T] [config]\n"
      "         [--out FILE] [--format chrome|jsonl|csv|metrics]\n"
      "         [--preact-report]\n"
      "         trace formats need a single non-oracle --scheme; chrome\n"
      "         traces load in Perfetto (simulated-time tracks per disk)\n"
      "  inspect --benchmark NAME [--policy P] [--per-disk] [config]\n"
      "  codegen --benchmark NAME [--mode CMTPM|CMDRPM] [--transform T]\n"
      "  profile --benchmark NAME [config]\n"
      "  dap    --benchmark NAME [config]\n"
      "  trace  --benchmark NAME [--out FILE] [config]\n"
      "  replay --in FILE [--policy P] [--open-loop] [--per-disk]\n"
      "  bench  [--benchmark NAME] [--out FILE]\n"
      "         [--format table|csv|json|metrics] [--no-cache] [config]\n"
      "         sweep all 7 schemes x 8 configs through the batched facade\n"
      "         entry point; --format json emits the perf-counter snapshot\n"
      "         (BENCH_simulator.json schema) instead of the table\n"
      "  client --socket PATH --op ping|submit|run|status|result|cancel|\n"
      "         stats|telemetry|drain|shutdown [--id N] [--wait]\n"
      "         [--retry-connect [N]] [--trace-id HEX [--span-id HEX]]\n"
      "         [job flags]   talk to a running sdpm_serviced daemon;\n"
      "         --retry-connect retries a refused/absent socket with\n"
      "         backoff (default 40 attempts) to ride out restarts;\n"
      "         submit/run propagate --trace-id into the daemon's trace;\n"
      "         telemetry prints stage latency histograms (--prometheus\n"
      "         for text exposition); stats --watch [N] [--interval-ms M]\n"
      "         renders a live one-line summary per tick\n"
      "  analyze --benchmark NAME [--mode CMTPM|CMDRPM]\n"
      "         [--format text|json] [--fail-on error|warning|note]\n"
      "         [--baseline FILE] [--write-baseline FILE]\n"
      "         [--mutate late-preact|short-gap|overlap-fission]\n"
      "         [--fix] [--list-rules] [config]\n"
      "         static energy-safety lint of the compiled schedule with\n"
      "         certified energy bounds; --fix applies SDPM-F### fix-its\n"
      "         to a fixed point; exits 3 when a diagnostic at or above\n"
      "         the --fail-on severity survives the baseline\n"
      "  --help / --version         print this help / the build version\n"
      "config flags: --disks N --stripe BYTES --block BYTES --cache BYTES\n"
      "              --noise SIGMA --no-preactivate --csv --jobs N\n"
      "              --device PRESET|FILE.json (a power-ladder preset name\n"
      "              from `list`, or a ladder descriptor file)\n"
      "fault flags:  --fault-seed N --fault-spinup P --fault-media P\n"
      "              --fault-jitter F --fault-drop P --fault-retries N\n"
      "              (inspect/replay also accept --resilient)\n"
      "deprecated:   --trace-out/--trace-format/--metrics-out (run) and\n"
      "              --json/--metrics-out (bench) are aliases for\n"
      "              --out/--format and print a note to stderr\n"
      "exit codes:   0 ok, 1 runtime error, 2 usage error, 3 analyze "
      "findings\n";
}

[[noreturn]] void usage(const std::string& message = "") {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::cerr << usage_text();
  std::exit(2);
}

/// Tiny flag parser: --key value and boolean --key.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) usage("unexpected argument '" + key + "'");
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get(const std::string& key,
                  const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::size_t pos = 0;
    std::int64_t value = 0;
    try {
      value = std::stoll(it->second, &pos);
    } catch (const std::exception&) {
      pos = std::string::npos;
    }
    if (pos != it->second.size()) {
      usage("--" + key + " expects an integer, got '" + it->second + "'");
    }
    return value;
  }

  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::size_t pos = 0;
    double value = 0.0;
    try {
      value = std::stod(it->second, &pos);
    } catch (const std::exception&) {
      pos = std::string::npos;
    }
    if (pos != it->second.size()) {
      usage("--" + key + " expects a number, got '" + it->second + "'");
    }
    return value;
  }

  /// All parsed flags (for per-command validation).
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

/// The flags every command's config_from / fault_config_from may read.
const std::set<std::string>& common_flags() {
  static const std::set<std::string> flags = {
      "disks",      "stripe",        "block",        "cache",
      "noise",      "no-preactivate", "transform",   "csv",
      "jobs",       "device",        "fault-seed",   "fault-spinup",
      "fault-media", "fault-jitter", "fault-drop",   "fault-retries"};
  return flags;
}

/// Reject flags the command does not understand (distinct from a runtime
/// error: a typo'd flag exits 2 with the usage text, before any work).
void require_known_flags(const std::string& command, const Args& args,
                         std::initializer_list<const char*> extra) {
  std::set<std::string> allowed = common_flags();
  for (const char* flag : extra) allowed.insert(flag);
  for (const auto& [key, value] : args.values()) {
    if (allowed.count(key) == 0) {
      usage("unknown flag '--" + key + "' for command '" + command + "'");
    }
  }
}

/// Write the process-wide metrics registry as JSON to `path`.
void write_metrics_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) usage("cannot open '" + path + "'");
  out << obs::MetricsRegistry::global().to_json() << "\n";
}

/// Apply --device to a job spec: a preset name goes in as-is; anything
/// else is read as a power-ladder JSON descriptor file and stored inline.
void apply_device_flag(const Args& args, api::JobSpec& spec) {
  if (!args.has("device")) return;
  const std::string value = args.get("device");
  if (disk::PowerLadder::is_preset(value)) {
    spec.device = value;
    return;
  }
  std::ifstream in(value);
  if (!in) {
    usage("--device '" + value + "' is neither a preset (" +
          join(disk::PowerLadder::preset_names(), ", ") +
          ") nor a readable ladder JSON file");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    spec.device_inline_json =
        disk::PowerLadder::from_json(Json::parse(text.str())).to_json().dump();
  } catch (const Error& e) {
    usage("--device file '" + value + "': " + e.what());
  }
}

/// The disk model the config-struct commands (inspect/profile/replay/...)
/// run on; the facade commands resolve through the JobSpec instead.
disk::DiskParameters device_params_from(const Args& args) {
  api::JobSpec spec;
  apply_device_flag(args, spec);
  return spec.resolved_device();
}

sim::FaultConfig fault_config_from(const Args& args) {
  sim::FaultConfig faults;
  faults.spin_up_failure_prob = args.get_double("fault-spinup", 0.0);
  faults.media_error_prob = args.get_double("fault-media", 0.0);
  faults.service_jitter = args.get_double("fault-jitter", 0.0);
  faults.dropped_directive_prob = args.get_double("fault-drop", 0.0);
  faults.max_spin_up_retries =
      static_cast<int>(args.get_int("fault-retries",
                                    faults.max_spin_up_retries));
  if (args.has("fault-seed")) {
    faults.seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 0));
  }
  faults.validate();
  return faults;
}

experiments::ExperimentConfig config_from(const Args& args) {
  experiments::ExperimentConfig config;
  config.disk = device_params_from(args);
  config.faults = fault_config_from(args);
  config.total_disks = static_cast<int>(args.get_int("disks", 8));
  config.striping.stripe_factor = config.total_disks;
  config.striping.stripe_size = args.get_int("stripe", kib(64));
  config.gen.block_size = args.get_int("block", 0);
  config.gen.cache_bytes = args.get_int("cache", mib(6));
  if (args.has("noise")) {
    const double sigma = args.get_double("noise", 0.2);
    config.actual_noise.sigma = sigma;
    config.profile_noise.sigma = sigma;
  }
  config.preactivate = !args.has("no-preactivate");
  if (args.has("transform")) {
    const std::string t = args.get("transform");
    if (t == "none") {
      config.transform = core::Transformation::kNone;
    } else if (t == "LF") {
      config.transform = core::Transformation::kLF;
    } else if (t == "TL") {
      config.transform = core::Transformation::kTL;
    } else if (t == "LF+DL") {
      config.transform = core::Transformation::kLFDL;
    } else if (t == "TL+DL") {
      config.transform = core::Transformation::kTLDL;
    } else {
      usage("unknown transform '" + t + "'");
    }
  }
  return config;
}

std::optional<experiments::Scheme> scheme_from(const std::string& name) {
  for (const experiments::Scheme s : experiments::all_schemes()) {
    if (name == experiments::to_string(s)) return s;
  }
  return std::nullopt;
}

/// One stderr note per deprecated alias; the alias keeps working.
void deprecation_note(const std::string& old_flag,
                      const std::string& replacement) {
  std::cerr << "note: --" << old_flag << " is deprecated; use " << replacement
            << "\n";
}

/// Build the unified api::JobSpec from the common config + fault flags
/// (the facade-era replacement of config_from for run/bench/analyze).
api::JobSpec job_spec_from(const Args& args) {
  api::JobSpec spec;
  spec.benchmark = args.get("benchmark", spec.benchmark);
  spec.disks = static_cast<int>(args.get_int("disks", spec.disks));
  spec.stripe_size = args.get_int("stripe", spec.stripe_size);
  spec.block_size = args.get_int("block", spec.block_size);
  spec.cache_bytes = args.get_int("cache", spec.cache_bytes);
  if (args.has("noise")) {
    const double sigma = args.get_double("noise", spec.noise_sigma);
    spec.noise_sigma = sigma;
    spec.profile_sigma = sigma;
  }
  spec.preactivate = !args.has("no-preactivate");
  spec.transform = args.get("transform", spec.transform);
  apply_device_flag(args, spec);
  spec.fault_spinup = args.get_double("fault-spinup", 0.0);
  spec.fault_media = args.get_double("fault-media", 0.0);
  spec.fault_jitter = args.get_double("fault-jitter", 0.0);
  spec.fault_drop = args.get_double("fault-drop", 0.0);
  spec.fault_retries =
      static_cast<int>(args.get_int("fault-retries", spec.fault_retries));
  if (args.has("fault-seed")) spec.fault_seed = args.get_int("fault-seed", 0);
  const std::string scheme_name = args.get("scheme", "all");
  if (scheme_name != "all") {
    if (!scheme_from(scheme_name)) usage("unknown scheme '" + scheme_name + "'");
    spec.schemes = {scheme_name};
  }
  try {
    spec.validate();
  } catch (const Error& e) {
    usage(e.what());
  }
  return spec;
}

void emit(const Table& table, const Args& args) {
  if (args.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

int cmd_list() {
  std::cout << "benchmarks:";
  for (const std::string& name : workloads::benchmark_names()) {
    std::cout << " " << name;
  }
  std::cout << "\nschemes:   ";
  for (const experiments::Scheme s : experiments::all_schemes()) {
    std::cout << " " << experiments::to_string(s);
  }
  std::cout << "\ntransforms: none LF TL LF+DL TL+DL\n";
  std::cout << "device presets:";
  for (const std::string& name : disk::PowerLadder::preset_names()) {
    std::cout << " " << name;
  }
  std::cout << "\nreplay policies: Base TPM ATPM DRPM (each wrappable with "
               "--resilient)\n";
  return 0;
}

/// `device`: export a preset's canonical ladder JSON (the file format
/// --device accepts back), or lint a ladder descriptor file.
int cmd_device(const Args& args) {
  require_known_flags("device", args, {"preset", "out", "validate"});
  if (args.has("preset") == args.has("validate")) {
    usage("device requires exactly one of --preset NAME or --validate FILE");
  }
  if (args.has("validate")) {
    const std::string path = args.get("validate");
    std::ifstream in(path);
    if (!in) usage("device --validate: cannot read '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    try {
      const disk::PowerLadder ladder =
          disk::PowerLadder::from_json(Json::parse(text.str()));
      const disk::PowerLadder again =
          disk::PowerLadder::from_json(ladder.to_json());
      if (again != ladder || again.to_json().dump() != ladder.to_json().dump()) {
        std::cerr << "error: '" << path
                  << "' does not survive a canonical JSON round trip\n";
        return 1;
      }
      std::cout << "ok: " << ladder.name << " (" << ladder.park_count()
                << " parks, " << ladder.level_count() << " levels)\n";
      return 0;
    } catch (const Error& e) {
      std::cerr << "error: '" << path << "': " << e.what() << "\n";
      return 1;
    }
  }
  const std::string name = args.get("preset");
  if (!disk::PowerLadder::is_preset(name)) {
    usage("unknown device preset '" + name + "' (known: " +
          join(disk::PowerLadder::preset_names(), ", ") + ")");
  }
  const std::string text = disk::PowerLadder::preset(name).to_json().dump();
  if (args.has("out")) {
    std::ofstream out(args.get("out"));
    if (!out) usage("device --out: cannot write '" + args.get("out") + "'");
    out << text << "\n";
  } else {
    std::cout << text << "\n";
  }
  return 0;
}

int cmd_run(const Args& args) {
  require_known_flags("run", args,
                      {"benchmark", "scheme", "out", "format", "trace-out",
                       "trace-format", "preact-report", "metrics-out"});
  if (!args.has("benchmark")) usage("run requires --benchmark");
  const api::JobSpec spec = job_spec_from(args);
  const bool single_scheme = spec.schemes.size() == 1;
  // validate() has vetted the names, so the lookup cannot miss.
  const experiments::Scheme single =
      single_scheme ? scheme_from(spec.schemes.front())
                          .value_or(experiments::Scheme::kBase)
                    : experiments::Scheme::kBase;

  // Unified output: --out PATH + --format; the pre-unification flags are
  // deprecated aliases.
  std::string out_path = args.get("out");
  std::string format = args.get("format");
  if (args.has("trace-out")) {
    deprecation_note("trace-out", "--out FILE --format chrome|jsonl|csv");
    out_path = args.get("trace-out");
    if (format.empty()) format = args.get("trace-format", "chrome");
  }
  if (args.has("trace-format")) {
    if (!args.has("trace-out")) usage("--trace-format requires --trace-out");
    deprecation_note("trace-format", "--format");
  }
  std::string metrics_path;  // separate alias channel: may coexist with a
                             // trace export in one legacy invocation
  bool want_metrics = false;
  if (args.has("metrics-out")) {
    deprecation_note("metrics-out", "--out FILE --format metrics");
    metrics_path = args.get("metrics-out");
    want_metrics = true;
  }
  if (format == "metrics") {
    want_metrics = true;
    if (metrics_path.empty()) metrics_path = out_path;
  }
  const bool want_trace =
      format == "chrome" || format == "jsonl" || format == "csv";
  if (!format.empty() && !want_trace && format != "metrics") {
    usage("unknown --format '" + format +
          "' for run (chrome, jsonl, csv or metrics)");
  }
  if (want_trace && out_path.empty()) {
    usage("--format " + format + " requires --out FILE");
  }

  // Observability: sinks are stack-owned and must outlive tracer.close().
  const bool want_preact = args.has("preact-report");
  obs::EventTracer tracer;
  std::ofstream trace_file;
  std::optional<obs::JsonlSink> jsonl;
  std::optional<obs::ChromeTraceSink> chrome;
  std::optional<obs::TimelineCsvSink> timeline;
  obs::PreactivationAccountant accountant;
  api::RunHooks hooks;
  if (want_trace || want_preact) {
    if (!single_scheme) {
      usage("trace export / --preact-report need a single --scheme "
            "(a multi-scheme run would interleave unrelated replays)");
    }
    if (single == experiments::Scheme::kItpm ||
        single == experiments::Scheme::kIdrpm) {
      usage(std::string(experiments::to_string(single)) +
            " is an analytic oracle with no replay to trace");
    }
    if (want_trace) {
      trace_file.open(out_path);
      if (!trace_file) usage("cannot open '" + out_path + "'");
      if (format == "chrome") {
        tracer.add_sink(chrome.emplace(trace_file));
      } else if (format == "jsonl") {
        tracer.add_sink(jsonl.emplace(trace_file));
      } else {
        tracer.add_sink(timeline.emplace(trace_file));
      }
    }
    if (want_preact) tracer.add_sink(accountant);
    hooks.replay_tracer = &tracer;
    hooks.trace_scheme = single;
  }
  hooks.record_base_metrics = want_metrics;

  api::Session session;
  const api::JobResult result = session.run(spec, hooks);
  tracer.close();

  Table table(spec.benchmark + " (" + spec.transform + ")");
  table.set_header({"Scheme", "Energy (J)", "Norm. energy", "Exec (ms)",
                    "Norm. time", "Requests", "Calls", "Mispredict %"});
  for (const api::SchemeOutcome& r : result.schemes) {
    table.add_row({
        r.scheme,
        fmt_double(r.energy_j, 2),
        fmt_double(r.normalized_energy, 3),
        fmt_double(r.execution_ms, 2),
        fmt_double(r.normalized_time, 3),
        std::to_string(r.requests),
        std::to_string(r.power_calls),
        r.mispredict_pct ? fmt_double(*r.mispredict_pct, 2) : "-",
    });
  }
  emit(table, args);
  if (want_preact) std::cout << accountant.report().to_string();
  if (want_metrics) {
    // The Base report's distributions were folded in by the session
    // (RunHooks::record_base_metrics).
    if (metrics_path.empty()) {
      std::cout << obs::MetricsRegistry::global().to_json() << "\n";
    } else {
      write_metrics_json(metrics_path);
    }
  }
  return 0;
}

sim::PowerPolicy* pick_policy(const std::string& name,
                              policy::BasePolicy& base,
                              policy::TpmPolicy& tpm,
                              policy::AdaptiveTpmPolicy& atpm,
                              policy::DrpmPolicy& drpm) {
  if (name == "Base") return &base;
  if (name == "TPM") return &tpm;
  if (name == "ATPM") return &atpm;
  if (name == "DRPM") return &drpm;
  usage("unknown policy '" + name + "'");
}

int cmd_inspect(const Args& args) {
  require_known_flags("inspect", args,
                      {"benchmark", "policy", "per-disk", "resilient"});
  if (!args.has("benchmark")) usage("inspect requires --benchmark");
  const workloads::Benchmark bench =
      workloads::make_benchmark(args.get("benchmark"));
  const experiments::ExperimentConfig config = config_from(args);
  const layout::LayoutTable table(bench.program, config.striping,
                                  config.total_disks);
  trace::GeneratorOptions gen = config.gen;
  gen.noise = config.actual_noise;
  trace::TraceGenerator generator(bench.program, table, gen);
  const trace::Trace trace = generator.generate();

  policy::BasePolicy base;
  policy::TpmPolicy tpm;
  policy::AdaptiveTpmPolicy atpm;
  policy::DrpmPolicy drpm;
  sim::PowerPolicy* policy =
      pick_policy(args.get("policy", "Base"), base, tpm, atpm, drpm);
  std::optional<policy::ResilientPolicy> resilient;
  if (args.has("resilient")) policy = &resilient.emplace(*policy);
  const sim::SimReport report =
      sim::simulate(trace, config.disk, *policy,
                    sim::ReplayMode::kClosedLoop, config.faults);
  emit(experiments::summary_table(report, bench.name), args);
  if (args.has("per-disk")) {
    emit(experiments::per_disk_table(report), args);
  }
  return 0;
}

int cmd_codegen(const Args& args) {
  require_known_flags("codegen", args, {"benchmark", "mode"});
  if (!args.has("benchmark")) usage("codegen requires --benchmark");
  const workloads::Benchmark bench =
      workloads::make_benchmark(args.get("benchmark"));
  const experiments::ExperimentConfig config = config_from(args);
  core::CompilerOptions co;
  co.total_disks = config.total_disks;
  co.base_striping = config.striping;
  co.access = config.gen;
  const std::string mode_name = args.get("mode", "CMDRPM");
  std::optional<core::PowerMode> mode;
  if (mode_name == "CMTPM") {
    mode = core::PowerMode::kTpm;
  } else if (mode_name == "CMDRPM") {
    mode = core::PowerMode::kDrpm;
  } else if (mode_name == "none") {
    mode = std::nullopt;
  } else {
    usage("unknown codegen mode '" + mode_name + "'");
  }
  const core::CompileOutput out =
      core::compile(bench.program, config.transform, mode, co);
  std::cout << core::emit_pseudo_source(out.program);
  return 0;
}

int cmd_profile(const Args& args) {
  require_known_flags("profile", args, {"benchmark"});
  if (!args.has("benchmark")) usage("profile requires --benchmark");
  const workloads::Benchmark bench =
      workloads::make_benchmark(args.get("benchmark"));
  const experiments::ExperimentConfig config = config_from(args);
  const layout::LayoutTable table(bench.program, config.striping,
                                  config.total_disks);
  trace::GeneratorOptions gen = config.gen;
  gen.noise = config.actual_noise;
  trace::TraceGenerator generator(bench.program, table, gen);
  const trace::Trace trace = generator.generate();
  policy::BasePolicy policy;
  sim::SimOptions options;
  options.capture_responses = true;      // the per-nest profile needs them
  options.capture_busy_periods = true;   // the idle-gap table walks them
  const sim::SimReport report =
      sim::simulate(trace, config.disk, policy, options);
  emit(experiments::per_nest_profile(bench.program, trace, report), args);
  emit(experiments::idle_gap_table(report, config.disk), args);
  return 0;
}

int cmd_dap(const Args& args) {
  require_known_flags("dap", args, {"benchmark"});
  if (!args.has("benchmark")) usage("dap requires --benchmark");
  const workloads::Benchmark bench =
      workloads::make_benchmark(args.get("benchmark"));
  const experiments::ExperimentConfig config = config_from(args);
  const layout::LayoutTable table(bench.program, config.striping,
                                  config.total_disks);
  const auto dap =
      trace::DiskAccessPattern::analyze(bench.program, table, config.gen);
  std::cout << dap.to_string(bench.program);
  return 0;
}

int cmd_trace(const Args& args) {
  require_known_flags("trace", args, {"benchmark", "out"});
  if (!args.has("benchmark")) usage("trace requires --benchmark");
  const workloads::Benchmark bench =
      workloads::make_benchmark(args.get("benchmark"));
  const experiments::ExperimentConfig config = config_from(args);
  const layout::LayoutTable table(bench.program, config.striping,
                                  config.total_disks);
  trace::TraceGenerator generator(bench.program, table, config.gen);
  const trace::Trace trace = generator.generate();
  if (args.has("out")) {
    std::ofstream out(args.get("out"));
    if (!out) usage("cannot open '" + args.get("out") + "'");
    trace::write_trace_text(trace, out);
    std::cout << trace.requests.size() << " requests written to "
              << args.get("out") << "\n";
  } else {
    trace::write_trace_text(trace, std::cout);
  }
  return 0;
}

int cmd_replay(const Args& args) {
  require_known_flags("replay", args,
                      {"in", "policy", "open-loop", "per-disk", "resilient"});
  if (!args.has("in")) usage("replay requires --in");
  std::ifstream in(args.get("in"));
  if (!in) usage("cannot open '" + args.get("in") + "'");
  const trace::Trace trace = trace::read_trace_text(in, args.get("in"));

  policy::BasePolicy base;
  policy::TpmPolicy tpm;
  policy::AdaptiveTpmPolicy atpm;
  policy::DrpmPolicy drpm;
  sim::PowerPolicy* policy =
      pick_policy(args.get("policy", "Base"), base, tpm, atpm, drpm);
  std::optional<policy::ResilientPolicy> resilient;
  if (args.has("resilient")) policy = &resilient.emplace(*policy);

  const sim::ReplayMode mode = args.has("open-loop")
                                   ? sim::ReplayMode::kOpenLoop
                                   : sim::ReplayMode::kClosedLoop;
  const sim::SimReport report = sim::simulate(
      trace, device_params_from(args), *policy, mode,
      fault_config_from(args));

  Table table("replay of " + args.get("in") + " under " +
              std::string(policy->name()));
  table.set_header({"Metric", "Value"});
  table.add_row({"requests", std::to_string(report.requests)});
  table.add_row({"disks", std::to_string(report.disk_count())});
  table.add_row({"energy", fmt_double(report.total_energy, 2) + " J"});
  table.add_row({"completion", fmt_time_ms(report.execution_ms)});
  table.add_row({"mean response", fmt_time_ms(report.response_ms.mean())});
  table.add_row({"max response", fmt_time_ms(report.response_ms.max())});
  emit(table, args);
  if (args.has("per-disk")) {
    emit(experiments::per_disk_table(report), args);
  }
  return 0;
}

/// Compare a fresh snapshot against the baseline stored at
/// `baseline_path`, print the verdict lines and return the exit code
/// (0 within tolerance, 4 regression).
int emit_bench_comparison(const std::string& baseline_path,
                          const experiments::BenchSnapshot& fresh,
                          double tolerance_pct) {
  std::ifstream in(baseline_path);
  if (!in) usage("cannot open '" + baseline_path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  const experiments::BenchSnapshot baseline =
      experiments::BenchSnapshot::from_json(text.str());
  const experiments::BenchComparison cmp =
      experiments::compare_snapshots(baseline, fresh, tolerance_pct);
  std::cout << "bench compare (" << fresh.suite << " suite) vs "
            << baseline_path << ":\n";
  for (const std::string& note : cmp.notes) std::cout << "  " << note << "\n";
  return cmp.regressed ? 4 : 0;
}

/// The --suite simulator branch of cmd_bench: the single-disk hot-loop
/// replay suite plus the null-tracer overhead probe.
int cmd_bench_simulator(const Args& args, const std::string& format,
                        double tolerance_pct) {
  if (format != "table" && format != "json") {
    usage("--suite simulator supports --format table or json");
  }
  const experiments::SimulatorSuiteResult run =
      experiments::run_simulator_suite();
  const experiments::BenchSnapshot snap =
      experiments::make_simulator_snapshot(run);

  std::ofstream out_file;
  if (args.has("out")) {
    out_file.open(args.get("out"));
    if (!out_file) usage("cannot open '" + args.get("out") + "'");
  }
  std::ostream& out = args.has("out") ? out_file : std::cout;

  if (format == "json") {
    out << snap.to_json() << "\n";
  } else {
    Table table("simulator suite (single-disk swim replay)");
    table.set_header({"Metric", "Value"});
    table.add_row({"requests/replay", std::to_string(run.trace_requests)});
    table.add_row({"replays/round", std::to_string(run.reps_per_round)});
    table.add_row({"best replay", fmt_double(run.base_ms_per_replay, 3) +
                                      " ms"});
    table.add_row({"throughput",
                   fmt_double(run.requests_per_sec / 1e6, 2) + " M req/s"});
    table.add_row({"null-tracer overhead",
                   fmt_double(run.null_tracer_overhead_pct, 2) + " %"});
    table.add_row({"calibration", fmt_double(snap.calib_score, 1)});
    table.add_row({"suite wall", fmt_double(run.wall_ms, 1) + " ms"});
    table.print(out);
  }
  if (args.has("compare")) {
    return emit_bench_comparison(args.get("compare"), snap, tolerance_pct);
  }
  return 0;
}

int cmd_bench(const Args& args) {
  require_known_flags("bench", args,
                      {"benchmark", "out", "format", "json", "no-cache",
                       "metrics-out", "suite", "compare", "tolerance"});
  const std::string suite = args.get("suite", "sweep");
  if (suite != "sweep" && suite != "simulator") {
    usage("unknown --suite '" + suite + "' for bench (sweep or simulator)");
  }
  const double tolerance_pct = args.get_double("tolerance", 15.0);
  if (tolerance_pct < 0) usage("--tolerance must be non-negative");
  const std::string bench_name = args.get("benchmark", "swim");

  // Unified output: --out PATH + --format; --json and --metrics-out are
  // deprecated aliases.
  std::string format = args.get("format", args.has("csv") ? "csv" : "table");
  if (args.has("json")) {
    deprecation_note("json", "--format json");
    if (!args.has("format")) format = "json";
  }
  std::string metrics_path;
  if (args.has("metrics-out")) {
    deprecation_note("metrics-out", "--out FILE --format metrics");
    metrics_path = args.get("metrics-out");
  }
  if (format != "table" && format != "csv" && format != "json" &&
      format != "metrics") {
    usage("unknown --format '" + format +
          "' for bench (table, csv, json or metrics)");
  }

  if (suite == "simulator") {
    return cmd_bench_simulator(args, format, tolerance_pct);
  }

  api::SessionOptions session_options;
  session_options.use_cache = !args.has("no-cache");
  api::Session session(session_options);

  // 8 configurations: 4 stripe sizes x 2 subsystem widths, each evaluated
  // under all 7 schemes (the paper's Figs. 5-8 sensitivity grid), batched
  // into one sweep dispatch through the facade.
  const std::vector<Bytes> stripes = {kib(16), kib(32), kib(64), kib(128)};
  const std::vector<int> widths = {4, 8};
  std::vector<api::JobSpec> specs;
  for (const int disks : widths) {
    for (const Bytes stripe : stripes) {
      api::JobSpec spec = job_spec_from(args);
      spec.benchmark = bench_name;
      spec.disks = disks;
      spec.stripe_factor = 0;  // whole-subsystem striping at each width
      spec.stripe_size = stripe;
      spec.label = bench_name + "/d" + std::to_string(disks) + "/s" +
                   std::to_string(stripe / 1024) + "K";
      specs.push_back(std::move(spec));
    }
  }

  // Bracket the sweep with two snapshots instead of resetting the global
  // counters: the diff isolates this sweep without destroying the
  // process-wide perf trajectory.
  const PerfSnapshot before = PerfCounters::global().snapshot();
  const auto started = std::chrono::steady_clock::now();
  const std::vector<api::JobResult> results = session.run_batch(specs);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  const PerfSnapshot sweep_delta = PerfCounters::global().snapshot() - before;
  const unsigned jobs = default_jobs();

  // Primary output stream: --out or stdout.
  std::ofstream out_file;
  if (args.has("out")) {
    out_file.open(args.get("out"));
    if (!out_file) usage("cannot open '" + args.get("out") + "'");
  }
  std::ostream& out = args.has("out") ? out_file : std::cout;

  if (!metrics_path.empty()) write_metrics_json(metrics_path);

  std::optional<experiments::BenchSnapshot> snap;
  const auto sweep_snapshot = [&]() -> const experiments::BenchSnapshot& {
    if (!snap) {
      // The gate metric is min-of-rounds like the simulator suite: the
      // primary run above warmed the trace cache, and each extra round
      // re-dispatches the same sweep, so a one-shot load spike cannot
      // fake a regression.  Rounds that simulate a different request
      // count (e.g. a future result cache short-circuiting the sweep)
      // are discarded rather than compared.
      constexpr int kGateRounds = 5;
      double best_rps = sweep_delta.requests_per_sec();
      for (int round = 0; round < kGateRounds; ++round) {
        const PerfSnapshot r0 = PerfCounters::global().snapshot();
        (void)session.run_batch(specs);
        const PerfSnapshot rd = PerfCounters::global().snapshot() - r0;
        if (rd.requests_simulated == sweep_delta.requests_simulated) {
          best_rps = std::max(best_rps, rd.requests_per_sec());
        }
      }
      snap = experiments::make_sweep_snapshot(sweep_delta, wall_ms, jobs);
      snap->requests_per_sec = best_rps;
    }
    return *snap;
  };
  const auto finish = [&]() {
    return args.has("compare")
               ? emit_bench_comparison(args.get("compare"),
                                       sweep_snapshot(), tolerance_pct)
               : 0;
  };

  if (format == "metrics") {
    out << obs::MetricsRegistry::global().to_json() << "\n";
    return finish();
  }
  if (format == "json") {
    // An explicit --suite asks for the persistable BenchSnapshot schema;
    // legacy invocations keep the historical perf-counter document.
    if (args.has("suite")) {
      out << sweep_snapshot().to_json() << "\n";
    } else {
      out << perf_json(sweep_delta, wall_ms, jobs) << "\n";
    }
    return finish();
  }

  Table table(bench_name + " sweep (" + std::to_string(jobs) + " jobs, " +
              fmt_double(wall_ms, 1) + " ms)");
  std::vector<std::string> header = {"Cell", "Task ms"};
  for (const experiments::Scheme s : experiments::all_schemes()) {
    header.push_back(std::string(experiments::to_string(s)) + " E");
  }
  table.set_header(header);
  for (const api::JobResult& cell : results) {
    std::vector<std::string> row = {cell.label, fmt_double(cell.wall_ms, 1)};
    for (const api::SchemeOutcome& r : cell.schemes) {
      row.push_back(fmt_double(r.normalized_energy, 3));
    }
    table.add_row(row);
  }
  if (format == "csv") {
    table.print_csv(out);
  } else {
    table.print(out);
  }
  return finish();
}

int cmd_analyze(const Args& args) {
  require_known_flags("analyze", args,
                      {"benchmark", "mode", "format", "fail-on", "baseline",
                       "write-baseline", "mutate", "fix", "list-rules"});
  if (args.has("list-rules")) {
    for (const analysis::RuleInfo& rule : analysis::rule_catalog()) {
      std::cout << rule.id << "  " << analysis::to_string(rule.severity)
                << "\t[" << rule.pass << "]\t" << rule.summary << "\n";
    }
    return 0;
  }
  if (!args.has("benchmark")) usage("analyze requires --benchmark");
  const api::JobSpec spec = job_spec_from(args);

  const std::string mode_name = args.get("mode", "CMDRPM");
  core::PowerMode mode;
  if (mode_name == "CMTPM") {
    mode = core::PowerMode::kTpm;
  } else if (mode_name == "CMDRPM") {
    mode = core::PowerMode::kDrpm;
  } else {
    usage("unknown analyze mode '" + mode_name + "'");
  }

  const std::string format = args.get("format", "text");
  if (format != "text" && format != "json") {
    usage("unknown --format '" + format + "' (text or json)");
  }
  const std::string fail_on = args.get("fail-on", "error");
  analysis::Severity threshold;
  if (fail_on == "error") {
    threshold = analysis::Severity::kError;
  } else if (fail_on == "warning") {
    threshold = analysis::Severity::kWarning;
  } else if (fail_on == "note") {
    threshold = analysis::Severity::kNote;
  } else {
    usage("unknown --fail-on '" + fail_on + "' (error, warning or note)");
  }

  // The facade reproduces the compiler pipeline and analyzes its exact
  // output (optionally seeding a known bug class first).
  std::optional<analysis::Mutation> mutation;
  if (args.has("mutate")) {
    mutation = analysis::mutation_from_name(args.get("mutate"));
    if (!mutation) usage("unknown --mutate '" + args.get("mutate") + "'");
  }
  const api::Session session;
  analysis::AnalysisReport report;
  if (args.has("fix")) {
    // Repair to a fixed point and judge the repaired schedule: the exit
    // code reflects what is left after the fix-its, and the repair
    // trailer goes to stderr so --format json stays machine-parseable.
    analysis::RepairOutcome outcome = session.repair(spec, mode, mutation);
    std::cerr << "fix: " << outcome.fixits_applied << " fix-it(s) applied"
              << " in " << outcome.rounds << " round(s), "
              << outcome.fixits_skipped << " skipped; "
              << (outcome.converged ? "converged" : "NOT converged") << "\n";
    for (const std::string& id : outcome.applied_ids) {
      std::cerr << "fix: applied " << id << "\n";
    }
    report = std::move(outcome.final_report);
  } else {
    report = session.analyze(spec, mode, mutation);
  }

  if (args.has("baseline")) {
    std::ifstream in(args.get("baseline"));
    if (!in) usage("cannot open '" + args.get("baseline") + "'");
    analysis::apply_baseline(report, analysis::Baseline::parse(in));
  }
  if (args.has("write-baseline")) {
    std::ofstream outfile(args.get("write-baseline"));
    if (!outfile) usage("cannot open '" + args.get("write-baseline") + "'");
    outfile << analysis::to_baseline(report);
  }

  std::cout << (format == "json" ? analysis::render_json(report)
                                 : analysis::render_text(report));
  const std::optional<analysis::Severity> worst = report.worst();
  if (worst.has_value() &&
      static_cast<int>(*worst) >= static_cast<int>(threshold)) {
    return 3;
  }
  return 0;
}

int cmd_client(const Args& args) {
  require_known_flags(
      "client", args,
      {"socket", "op", "id", "wait", "benchmark", "scheme", "retry-connect",
       "trace-id", "span-id", "prometheus", "watch", "interval-ms"});
  if (!args.has("socket")) usage("client requires --socket PATH");
  const std::string op = args.get("op", "ping");
  service::ClientOptions client_options;
  if (args.has("retry-connect")) {
    // Keep knocking while the daemon restarts (crash recovery, rolling
    // restarts): retry refused/absent sockets with backoff for ~10s.
    client_options.connect_attempts =
        args.get("retry-connect").empty()
            ? 40
            : static_cast<int>(args.get_int("retry-connect", 40));
    if (client_options.connect_attempts < 1) {
      usage("client --retry-connect must be >= 1");
    }
  }
  service::Client client(args.get("socket"), client_options);

  if (op == "ping") {
    std::cout << client.ping().dump() << "\n";
    return 0;
  }
  if (op == "submit" || op == "run") {
    if (!args.has("benchmark")) {
      usage("client --op " + op + " requires --benchmark");
    }
    const api::JobSpec spec = job_spec_from(args);
    service::TraceContext trace;
    if (args.has("trace-id")) {
      trace.trace_id = service::parse_trace_hex(args.get("trace-id"));
      if (trace.trace_id == 0) {
        usage("client --trace-id must be 1..16 hex digits (nonzero)");
      }
    }
    if (args.has("span-id")) {
      trace.span_id = service::parse_trace_hex(args.get("span-id"));
    }
    const std::int64_t id = client.submit(spec, 8, trace);
    if (op == "submit") {
      Json line = Json::object();
      line.set("id", id);
      if (trace.active()) {
        line.set("trace_id", service::trace_hex(trace.trace_id));
      }
      std::cout << line.dump() << "\n";
      return 0;
    }
    const Json job = client.result(id, /*wait=*/true);
    std::cout << job.dump() << "\n";
    return job.at("state").as_string() == "done" ? 0 : 1;
  }
  if (op == "status" || op == "result" || op == "cancel") {
    if (!args.has("id")) usage("client --op " + op + " requires --id N");
    const std::int64_t id = args.get_int("id", 0);
    if (op == "cancel") {
      client.cancel(id);
      std::cout << "{\"cancelled\":true}\n";
      return 0;
    }
    const Json job = op == "status" ? client.status(id)
                                    : client.result(id, args.has("wait"));
    std::cout << job.dump() << "\n";
    return 0;
  }
  if (op == "stats") {
    if (!args.has("watch")) {
      std::cout << client.stats().dump() << "\n";
      return 0;
    }
    // Live mode: one summary line per tick, drawn from stats + telemetry.
    // --watch N stops after N ticks (0 / bare --watch = until interrupted).
    const std::int64_t ticks =
        args.get("watch").empty() ? 0 : args.get_int("watch", 0);
    const double interval_ms =
        args.has("interval-ms")
            ? static_cast<double>(args.get_int("interval-ms", 1000))
            : 1000.0;
    if (interval_ms <= 0) usage("client --interval-ms must be > 0");
    for (std::int64_t tick = 0; ticks == 0 || tick < ticks; ++tick) {
      if (tick > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(interval_ms));
      }
      const Json stats = client.stats();
      const Json telemetry = client.telemetry().at("telemetry");
      const Json& queue = stats.at("queue");
      const Json& e2e = telemetry.at("stages").at("e2e");
      const Json& queue_wait = telemetry.at("stages").at("queue_wait");
      const Json& completions =
          telemetry.at("windows").at("completions").at("10s");
      std::cout << str_printf(
                       "queue %lld/%lld running %lld | done %lld failed %lld "
                       "| %.1f jobs/s (10s) | e2e p50 %.1fms p99 %.1fms | "
                       "queue_wait p99 %.1fms",
                       static_cast<long long>(queue.at("depth").as_int()),
                       static_cast<long long>(queue.at("capacity").as_int()),
                       static_cast<long long>(queue.at("running").as_int()),
                       static_cast<long long>(queue.at("completed").as_int()),
                       static_cast<long long>(queue.at("failed").as_int()),
                       completions.at("rate_per_sec").as_double(),
                       e2e.at("p50_ms").as_double(),
                       e2e.at("p99_ms").as_double(),
                       queue_wait.at("p99_ms").as_double())
                << std::endl;
    }
    return 0;
  }
  if (op == "telemetry") {
    const Json response = client.telemetry(args.has("prometheus"));
    if (args.has("prometheus")) {
      std::cout << response.at("text").as_string();
    } else {
      std::cout << response.at("telemetry").dump() << "\n";
    }
    return 0;
  }
  if (op == "drain") {
    client.drain();
    std::cout << "{\"draining\":true}\n";
    return 0;
  }
  if (op == "shutdown") {
    client.shutdown();
    std::cout << "{\"shutting_down\":true}\n";
    return 0;
  }
  usage("unknown client --op '" + op + "'");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    std::cout << usage_text();
    return 0;
  }
  if (command == "--version" || command == "-V" || command == "version") {
    std::cout << "sdpm_cli " << SDPM_VERSION << " (" << SDPM_BUILD_TYPE
              << ")\n";
    return 0;
  }
  try {
    const Args args(argc, argv, 2);
    if (args.has("jobs")) {
      set_default_jobs(static_cast<unsigned>(args.get_int("jobs", 0)));
    }
    if (command == "list") {
      require_known_flags("list", args, {});
      return cmd_list();
    }
    if (command == "device") return cmd_device(args);
    if (command == "run") return cmd_run(args);
    if (command == "inspect") return cmd_inspect(args);
    if (command == "codegen") return cmd_codegen(args);
    if (command == "profile") return cmd_profile(args);
    if (command == "dap") return cmd_dap(args);
    if (command == "trace") return cmd_trace(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "bench") return cmd_bench(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "client") return cmd_client(args);
    usage("unknown command '" + command + "'");
  } catch (const sdpm::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
