#include "sim/faults.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace sdpm::sim {

namespace {

bool valid_prob(double p) { return p >= 0.0 && p <= 1.0 && std::isfinite(p); }

}  // namespace

void FaultConfig::validate() const {
  SDPM_REQUIRE(valid_prob(spin_up_failure_prob),
               "spin_up_failure_prob must be in [0, 1]");
  SDPM_REQUIRE(valid_prob(media_error_prob),
               "media_error_prob must be in [0, 1]");
  SDPM_REQUIRE(valid_prob(dropped_directive_prob),
               "dropped_directive_prob must be in [0, 1]");
  SDPM_REQUIRE(service_jitter >= 0.0 && service_jitter < 1.0,
               "service_jitter must be in [0, 1)");
  SDPM_REQUIRE(max_spin_up_retries >= 0, "max_spin_up_retries must be >= 0");
  SDPM_REQUIRE(retry_backoff_base_ms >= 0.0,
               "retry_backoff_base_ms must be >= 0");
  SDPM_REQUIRE(retry_backoff_factor >= 1.0,
               "retry_backoff_factor must be >= 1");
  SDPM_REQUIRE(retry_backoff_cap_ms >= 0.0,
               "retry_backoff_cap_ms must be >= 0");
}

FaultModel::FaultModel(const FaultConfig& config) : config_(config) {
  config_.validate();
}

FaultModel::DiskState& FaultModel::state(int disk) {
  while (static_cast<std::size_t>(disk) >= disks_.size()) {
    disks_.emplace_back(derive_seed(config_.seed,
                                    static_cast<std::uint64_t>(disks_.size())));
  }
  return disks_[static_cast<std::size_t>(disk)];
}

bool FaultModel::spin_up_fails(int disk) {
  if (config_.spin_up_failure_prob <= 0.0) return false;
  return state(disk).rng.next_double() < config_.spin_up_failure_prob;
}

bool FaultModel::drops_directive(int disk) {
  if (config_.dropped_directive_prob <= 0.0) return false;
  return state(disk).rng.next_double() < config_.dropped_directive_prob;
}

FaultModel::MediaOutcome FaultModel::media_check(int disk, BlockNo sector) {
  MediaOutcome outcome;
  if (config_.media_error_prob <= 0.0) return outcome;
  DiskState& s = state(disk);
  if (s.rng.next_double() >= config_.media_error_prob) return outcome;
  outcome.error = true;
  // A sector already living in the spare area is not remapped again; the
  // error was transient and the retry alone recovers it.
  if (!s.remap.contains(sector)) {
    // Spare-area location: a stable synthetic block keyed by arrival order.
    s.remap.emplace(sector,
                    static_cast<BlockNo>(s.remap.size()) | (BlockNo{1} << 62));
    outcome.new_remap = true;
  }
  return outcome;
}

double FaultModel::service_jitter_factor(int disk) {
  if (config_.service_jitter <= 0.0) return 1.0;
  return state(disk).rng.next_double(1.0 - config_.service_jitter,
                                     1.0 + config_.service_jitter);
}

bool FaultModel::is_remapped(int disk, BlockNo sector) const {
  if (static_cast<std::size_t>(disk) >= disks_.size()) return false;
  return disks_[static_cast<std::size_t>(disk)].remap.contains(sector);
}

TimeMs FaultModel::backoff_ms(int attempt) const {
  TimeMs delay = config_.retry_backoff_base_ms;
  for (int i = 0; i < attempt; ++i) {
    delay *= config_.retry_backoff_factor;
    if (delay >= config_.retry_backoff_cap_ms) break;
  }
  return std::min(delay, config_.retry_backoff_cap_ms);
}

std::int64_t FaultModel::remapped_count(int disk) const {
  if (static_cast<std::size_t>(disk) >= disks_.size()) return 0;
  return static_cast<std::int64_t>(
      disks_[static_cast<std::size_t>(disk)].remap.size());
}

}  // namespace sdpm::sim
