// Multiprogrammed (multi-stream) simulation — extension.
//
// The paper evaluates "one benchmark program at a time"; real servers run
// several applications against the same disk array, which is the setting
// the reactive DRPM scheme was originally designed for.  This simulator
// replays several closed-loop traces concurrently: each stream computes,
// blocks on its own requests, and contends with the other streams for the
// shared disks (FIFO per disk).  Power policies see the merged request
// stream, so reactive schemes adapt to the combined load while
// compiler-directed schedules — planned per program in isolation — reveal
// how much interference their predictions tolerate
// (`bench_ablation_multiprogram`).
#pragma once

#include <span>
#include <vector>

#include "disk/parameters.h"
#include "sim/faults.h"
#include "sim/policy.h"
#include "sim/report.h"
#include "trace/request.h"

namespace sdpm::sim {

/// Outcome of one application stream.
struct StreamReport {
  std::string name;
  TimeMs completion_ms = 0;  ///< when this stream finished
  TimeMs compute_ms = 0;
  std::int64_t requests = 0;
  RunningStats response_ms;
};

struct MultiStreamReport {
  Joules total_energy = 0;
  TimeMs makespan_ms = 0;  ///< completion of the last stream
  std::vector<StreamReport> streams;
  std::vector<DiskReport> disks;
};

/// Replay `traces` concurrently against one disk array under `policy`.
/// All traces must agree on total_disks.  `names` (optional) labels the
/// streams in the report; `faults` (optional) injects disk misbehavior, the
/// default keeps the replay fault-free.
MultiStreamReport simulate_streams(std::span<const trace::Trace> traces,
                                   const disk::DiskParameters& params,
                                   PowerPolicy& policy,
                                   std::span<const std::string> names = {},
                                   FaultConfig faults = FaultConfig::none());

}  // namespace sdpm::sim
