// Simulation results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "disk/power_state.h"
#include "sim/disk_unit.h"
#include "util/stats.h"
#include "util/units.h"

namespace sdpm::sim {

/// Per-disk outcome.
struct DiskReport {
  disk::EnergyBreakdown breakdown;
  /// Spinning time per RPM level (see DiskUnit::level_residency_ms).
  std::vector<TimeMs> level_residency_ms;
  std::int64_t services = 0;
  std::int64_t demand_spin_ups = 0;
  std::int64_t rpm_transitions = 0;
  std::int64_t spin_downs = 0;
  std::vector<BusyPeriod> busy_periods;
};

/// Whole-run outcome.
struct SimReport {
  std::string policy_name;
  Joules total_energy = 0;      ///< disk-subsystem energy (paper's "energy")
  TimeMs execution_ms = 0;      ///< application completion time
  TimeMs compute_ms = 0;        ///< pure compute (incl. power-call overhead)
  TimeMs io_stall_ms = 0;       ///< execution - compute
  std::int64_t requests = 0;
  Bytes bytes_transferred = 0;
  RunningStats response_ms;
  /// Response time of every request, in trace order (index-aligned with
  /// Trace::requests); used to build measured per-nest timelines.
  std::vector<TimeMs> responses;
  std::vector<DiskReport> disks;

  int disk_count() const { return static_cast<int>(disks.size()); }
};

}  // namespace sdpm::sim
