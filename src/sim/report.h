// Simulation results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "disk/power_state.h"
#include "sim/disk_unit.h"
#include "util/stats.h"
#include "util/units.h"

namespace sdpm::sim {

/// Per-disk outcome.
struct DiskReport {
  disk::EnergyBreakdown breakdown;
  /// Spinning time per RPM level (see DiskUnit::level_residency_ms).
  std::vector<TimeMs> level_residency_ms;
  std::int64_t services = 0;
  std::int64_t demand_spin_ups = 0;
  std::int64_t rpm_transitions = 0;
  std::int64_t spin_downs = 0;
  // Fault outcomes (all zero without fault injection).
  std::int64_t spin_up_retries = 0;
  std::int64_t media_errors = 0;
  std::int64_t remapped_sectors = 0;
  std::int64_t dropped_directives = 0;
  std::vector<BusyPeriod> busy_periods;
};

/// Snapshot a finished DiskUnit into its report entry.
inline DiskReport make_disk_report(const DiskUnit& unit) {
  DiskReport dr;
  dr.breakdown = unit.breakdown();
  dr.level_residency_ms = unit.level_residency_ms();
  dr.services = unit.services();
  dr.demand_spin_ups = unit.demand_spin_ups();
  dr.rpm_transitions = unit.rpm_transitions();
  dr.spin_downs = unit.commanded_spin_downs();
  dr.spin_up_retries = unit.spin_up_retries();
  dr.media_errors = unit.media_errors();
  dr.remapped_sectors = unit.remapped_sectors();
  dr.dropped_directives = unit.dropped_directives();
  dr.busy_periods = unit.busy_periods();
  return dr;
}

/// Whole-run outcome.
struct SimReport {
  std::string policy_name;
  Joules total_energy = 0;      ///< disk-subsystem energy (paper's "energy")
  TimeMs execution_ms = 0;      ///< application completion time
  TimeMs compute_ms = 0;        ///< pure compute (incl. power-call overhead)
  TimeMs io_stall_ms = 0;       ///< execution - compute
  std::int64_t requests = 0;
  Bytes bytes_transferred = 0;
  RunningStats response_ms;
  /// Response time of every request, in trace order (index-aligned with
  /// Trace::requests); used to build measured per-nest timelines.
  std::vector<TimeMs> responses;
  std::vector<DiskReport> disks;

  int disk_count() const { return static_cast<int>(disks.size()); }

  // Array-wide fault totals (zero without fault injection).
  std::int64_t spin_up_retries() const {
    std::int64_t n = 0;
    for (const DiskReport& d : disks) n += d.spin_up_retries;
    return n;
  }
  std::int64_t media_errors() const {
    std::int64_t n = 0;
    for (const DiskReport& d : disks) n += d.media_errors;
    return n;
  }
  std::int64_t remapped_sectors() const {
    std::int64_t n = 0;
    for (const DiskReport& d : disks) n += d.remapped_sectors;
    return n;
  }
  std::int64_t dropped_directives() const {
    std::int64_t n = 0;
    for (const DiskReport& d : disks) n += d.dropped_directives;
    return n;
  }
};

}  // namespace sdpm::sim
