#include "sim/invariants.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/strings.h"

namespace sdpm::sim {

namespace {

constexpr double kRelTol = 1e-6;
constexpr double kAbsTolMs = 1e-3;

void check_disk(const DiskReport& disk, TimeMs duration,
                const disk::DiskParameters& params, int index) {
  const auto& b = disk.breakdown;
  SDPM_REQUIRE(std::abs(b.total_ms() - duration) <=
                   kAbsTolMs + kRelTol * duration,
               str_printf("disk %d time buckets (%.6f ms) do not cover the "
                          "run (%.6f ms)",
                          index, b.total_ms(), duration));
  SDPM_REQUIRE(b.total_j() >= -1e-9, "negative disk energy");

  TimeMs cursor = -1.0;
  for (const BusyPeriod& bp : disk.busy_periods) {
    SDPM_REQUIRE(bp.completion >= bp.start,
                 str_printf("disk %d busy period ends before it starts",
                            index));
    SDPM_REQUIRE(bp.start >= cursor,
                 str_printf("disk %d busy periods overlap or regress",
                            index));
    SDPM_REQUIRE(bp.completion <= duration + kAbsTolMs,
                 str_printf("disk %d busy period outruns the simulation",
                            index));
    cursor = bp.completion;
  }
  // Busy periods are opt-in (SimOptions::capture_busy_periods); when they
  // were captured, there must be exactly one per service.
  SDPM_REQUIRE(disk.busy_periods.empty() ||
                   static_cast<std::int64_t>(disk.busy_periods.size()) ==
                       disk.services,
               "service count does not match busy periods");

  // Fault counters: non-negative, and every remapped sector was created by
  // a media error (remaps are monotone in errors).
  SDPM_REQUIRE(disk.spin_up_retries >= 0 && disk.media_errors >= 0 &&
                   disk.remapped_sectors >= 0 &&
                   disk.dropped_directives >= 0,
               str_printf("disk %d has a negative fault counter", index));
  SDPM_REQUIRE(disk.remapped_sectors <= disk.media_errors,
               str_printf("disk %d remapped more sectors (%lld) than media "
                          "errors seen (%lld)",
                          index,
                          static_cast<long long>(disk.remapped_sectors),
                          static_cast<long long>(disk.media_errors)));

  // Physical envelope.
  const Joules floor =
      joules_from_watt_ms(params.standby_power(), duration) * 0.99 - 1e-6;
  const Joules active_ceiling =
      joules_from_watt_ms(params.active_power_at_level(params.max_level()),
                          duration);
  // Every transition's full edge energy is granted as a lump per commanded
  // spin-down / demand spin-up (worst edge of the ladder), so transitions
  // billed above active power are still covered; each failed spin-up
  // attempt adds at most one more wake's worth of energy (a timed-out
  // attempt is billed pro rata, never above the full cost).
  Joules worst_wake_j = 0;
  Joules worst_entry_j = 0;
  for (int park = 0; park < params.park_count(); ++park) {
    worst_wake_j = std::max(worst_wake_j, params.wake_energy(park));
    for (int level = 0; level < params.rpm_level_count(); ++level) {
      if (params.park_entry_possible(level, park)) {
        worst_entry_j =
            std::max(worst_entry_j, params.park_entry_energy(level, park));
      }
    }
  }
  const Joules ceiling = active_ceiling * 1.05 +
                         static_cast<double>(disk.demand_spin_ups +
                                             disk.spin_downs) *
                             (worst_wake_j + worst_entry_j) +
                         static_cast<double>(disk.spin_up_retries) *
                             worst_wake_j;
  SDPM_REQUIRE(b.total_j() >= floor,
               str_printf("disk %d energy %.3f J below the standby floor "
                          "%.3f J",
                          index, b.total_j(), floor));
  SDPM_REQUIRE(b.total_j() <= ceiling,
               str_printf("disk %d energy %.3f J above the active ceiling "
                          "%.3f J",
                          index, b.total_j(), ceiling));
}

}  // namespace

void check_invariants(const SimReport& report,
                      const disk::DiskParameters& params) {
  SDPM_REQUIRE(report.execution_ms >= report.compute_ms - kAbsTolMs,
               "execution shorter than compute");
  SDPM_REQUIRE(std::abs(report.compute_ms + report.io_stall_ms -
                        report.execution_ms) <=
                   kAbsTolMs + kRelTol * report.execution_ms,
               "execution != compute + stalls");
  // The per-request vector is opt-in (SimOptions::capture_responses); when
  // captured it must be exactly one response per request.
  SDPM_REQUIRE(report.responses.empty() ||
                   static_cast<std::int64_t>(report.responses.size()) ==
                       report.requests,
               "one response per request required");

  Joules sum = 0;
  for (int d = 0; d < report.disk_count(); ++d) {
    check_disk(report.disks[static_cast<std::size_t>(d)],
               report.execution_ms, params, d);
    sum += report.disks[static_cast<std::size_t>(d)].breakdown.total_j();
  }
  SDPM_REQUIRE(std::abs(sum - report.total_energy) <=
                   1e-6 + kRelTol * std::abs(sum),
               "total energy does not equal the per-disk sum");
}

void check_invariants(const MultiStreamReport& report,
                      const disk::DiskParameters& params) {
  for (const StreamReport& s : report.streams) {
    SDPM_REQUIRE(s.completion_ms <= report.makespan_ms + kAbsTolMs,
                 "stream completes after the makespan");
    SDPM_REQUIRE(s.completion_ms >= s.compute_ms - kAbsTolMs,
                 "stream completes before its compute time");
  }
  Joules sum = 0;
  for (int d = 0; d < static_cast<int>(report.disks.size()); ++d) {
    check_disk(report.disks[static_cast<std::size_t>(d)],
               report.makespan_ms, params, d);
    sum += report.disks[static_cast<std::size_t>(d)].breakdown.total_j();
  }
  SDPM_REQUIRE(std::abs(sum - report.total_energy) <=
                   1e-6 + kRelTol * std::abs(sum),
               "total energy does not equal the per-disk sum");
}

}  // namespace sdpm::sim
