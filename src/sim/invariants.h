// Simulation invariant checker.
//
// Validates the conservation properties every SimReport must satisfy,
// independent of policy or workload; the fuzz suite runs it over random
// programs, and callers can assert it after any simulation.  Violations
// throw sdpm::Error with a description of the broken invariant.
#pragma once

#include "sim/multi_stream.h"
#include "sim/report.h"

namespace sdpm::sim {

/// Check a single-stream report:
///   - every disk's time buckets partition [0, execution_ms] exactly,
///   - total energy equals the per-disk sum,
///   - busy periods are non-overlapping, ordered, within the run,
///   - execution = compute + I/O stalls,
///   - fault counters are non-negative and remapped sectors never exceed
///     media errors,
///   - energy is within the physical envelope
///     [standby_power, active_power] x disks x duration (plus bounded
///     transition and spin-up-retry lumps).
void check_invariants(const SimReport& report,
                      const disk::DiskParameters& params);

/// Same for a multiprogrammed report (per-stream completions bounded by
/// the makespan; disk timelines span the makespan).
void check_invariants(const MultiStreamReport& report,
                      const disk::DiskParameters& params);

}  // namespace sdpm::sim
