#include "sim/disk_unit.h"

#include <algorithm>

#include "disk/ladder.h"
#include "obs/tracer.h"

namespace sdpm::sim {

namespace {

/// Ladder-state name for tracing; nullptr for legacy-backed disks (their
/// traces stay byte-identical to the pre-ladder format).
const char* state_label(const disk::DiskParameters& params, DiskMode mode,
                        int level, int park) {
  if (!params.has_ladder()) return nullptr;
  const disk::PowerLadder& ladder = params.ladder();
  switch (mode) {
    case DiskMode::kSpinning:
      return ladder.states[static_cast<std::size_t>(ladder.level_state(level))]
          .name.c_str();
    case DiskMode::kStandby:
      return ladder.states[static_cast<std::size_t>(ladder.park_state(park))]
          .name.c_str();
    case DiskMode::kTransition:
      return nullptr;  // the bucket names the transition
  }
  return nullptr;
}

}  // namespace

DiskUnit::DiskUnit(const disk::DiskParameters& params, int id,
                   FaultModel* faults)
    : params_(&params), id_(id), faults_(faults), state_(nullptr), slot_(0),
      level_residency_(static_cast<std::size_t>(params.rpm_level_count()),
                       0.0) {
  owned_ = std::make_unique<DiskArrayState>(1, params);  // validates params
  state_ = owned_.get();
}

DiskUnit::DiskUnit(DiskArrayState& state, int slot,
                   const disk::DiskParameters& params, int id,
                   FaultModel* faults)
    : params_(&params), id_(id), faults_(faults), state_(&state),
      slot_(static_cast<std::size_t>(slot)),
      level_residency_(static_cast<std::size_t>(params.rpm_level_count()),
                       0.0) {
  SDPM_REQUIRE(slot >= 0 && slot_ < state.core.size(),
               "disk slot out of range for the array state");
}

void DiskUnit::emit_state_segment(disk::PowerState bucket, TimeMs dt,
                                  Joules energy) {
  obs::Event ev;
  ev.kind = obs::EventKind::kStateSegment;
  ev.disk = id_;
  ev.t0 = core().clock;
  ev.t1 = core().clock + dt;
  ev.state = bucket;
  ev.level = core().level;
  ev.energy_j = energy;
  ev.value = dt;
  ev.label = state_label(*params_, core().mode, core().level, core().park);
  tracer_->emit(ev);
}

void DiskUnit::emit_service_segment(TimeMs t0, TimeMs t1, Joules energy,
                                    TimeMs dt) {
  obs::Event ev;
  ev.kind = obs::EventKind::kStateSegment;
  ev.disk = id_;
  ev.t0 = t0;
  ev.t1 = t1;
  ev.state = disk::PowerState::kActive;
  ev.level = core().level;
  ev.energy_j = energy;
  ev.value = dt;
  ev.label =
      state_label(*params_, DiskMode::kSpinning, core().level, core().park);
  tracer_->emit(ev);
}

void DiskUnit::begin_transition(disk::PowerState bucket, TimeMs duration,
                                Joules energy, DiskMode after,
                                int level_after, int park_after) {
  DiskArrayState::Core& c = core();
  SDPM_ASSERT(c.mode != DiskMode::kTransition,
              "transition already in flight");
  if (duration <= 0) {
    c.mode = after;
    c.level = level_after;
    c.park = static_cast<std::uint8_t>(park_after);
    breakdown_.add(bucket, 0, energy);
    if (tracer_ != nullptr && energy > 0) {
      // Instant transitions still pay their energy; report a zero-width
      // segment so timeline consumers reconcile exactly with the breakdown.
      obs::Event ev;
      ev.kind = obs::EventKind::kStateSegment;
      ev.disk = id_;
      ev.t0 = c.clock;
      ev.t1 = c.clock;
      ev.state = bucket;
      ev.level = level_after;
      ev.energy_j = energy;
      tracer_->emit(ev);
    }
    return;
  }
  c.mode = DiskMode::kTransition;
  DiskArrayState::Transition& tr = trans();
  tr.end = c.clock + duration;
  tr.power = energy / seconds_from_ms(duration);
  tr.bucket = bucket;
  tr.after_mode = after;
  tr.after_level = level_after;
  tr.after_park = static_cast<std::uint8_t>(park_after);
}

int DiskUnit::target_level() const {
  const DiskArrayState::Core& c = core();
  if (c.mode == DiskMode::kTransition &&
      trans().after_mode == DiskMode::kSpinning) {
    return trans().after_level;
  }
  return c.level;
}

bool DiskUnit::heading_to_standby() const {
  const DiskArrayState::Core& c = core();
  return c.mode == DiskMode::kStandby ||
         (c.mode == DiskMode::kTransition &&
          trans().after_mode == DiskMode::kStandby);
}

int DiskUnit::current_park() const {
  const DiskArrayState::Core& c = core();
  if (c.mode == DiskMode::kStandby) return c.park;
  if (c.mode == DiskMode::kTransition &&
      trans().after_mode == DiskMode::kStandby) {
    return trans().after_park;
  }
  return -1;
}

void DiskUnit::begin_spin_up() {
  SDPM_ASSERT(core().mode == DiskMode::kStandby,
              "spin-up must start from standby");
  // Wake cost depends on the resident park (legacy disks: the standby park,
  // whose wake edge carries the Table 1 spin-up figures).
  const int park = core().park;
  const TimeMs up_time = params_->wake_time(park);
  const Joules up_energy = params_->wake_energy(park);
  if (faults_ != nullptr) {
    const FaultConfig& fc = faults_->config();
    TimeMs attempt_ms =
        fc.spin_up_attempt_ms >= 0 ? fc.spin_up_attempt_ms : up_time;
    attempt_ms = std::min(attempt_ms, up_time);
    const Joules attempt_j =
        up_energy * (up_time > 0 ? attempt_ms / up_time : 1.0);
    int attempt = 0;
    // The attempt after the retry cap always succeeds (controller
    // recovery), so service can never wedge behind a permanently dead
    // spindle.
    while (attempt < fc.max_spin_up_retries && faults_->spin_up_fails(id_)) {
      ++spin_up_retries_;
      const TimeMs backoff = faults_->backoff_ms(attempt);
      if (tracer_ != nullptr) {
        obs::Event ev;
        ev.kind = obs::EventKind::kSpinUpRetry;
        ev.disk = id_;
        ev.t0 = core().clock;
        ev.t1 = core().clock;
        ev.value = backoff;
        tracer_->emit(ev);
      }
      begin_transition(disk::PowerState::kSpinningUp, attempt_ms, attempt_j,
                       DiskMode::kStandby, core().level, park);
      settle();
      advance_to(core().clock + backoff);
      ++attempt;
    }
  }
  begin_transition(disk::PowerState::kSpinningUp, up_time, up_energy,
                   DiskMode::kSpinning, params_->max_level());
}

void DiskUnit::serve_wake(ServeResult& result) {
  DiskArrayState::Core& c = core();
  if (c.mode == DiskMode::kTransition) {
    result.waited_transition = trans().after_mode == DiskMode::kSpinning;
    settle();
  }
  if (c.mode == DiskMode::kStandby) {
    result.demand_spin_up = true;
    ++demand_spin_ups_;
    if (tracer_ != nullptr) {
      obs::Event ev;
      ev.kind = obs::EventKind::kDemandSpinUp;
      ev.disk = id_;
      ev.t0 = c.clock;
      ev.t1 = c.clock;
      tracer_->emit(ev);
    }
    begin_spin_up();
    settle();
  }
}

TimeMs DiskUnit::faulted_service(BlockNo sector, Bytes size_bytes,
                                 TimeMs service) {
  const DiskArrayState::Core& c = core();
  const LevelTable::Level& lv = state_->levels[c.level];
  if (faults_->is_remapped(id_, sector)) {
    // The head must detour to the spare area: one reposition (seek +
    // rotational latency) on top of the nominal transfer.
    service += params_->average_seek_time + lv.rot_latency_ms;
  }
  const FaultModel::MediaOutcome media = faults_->media_check(id_, sector);
  if (media.error) {
    ++media_errors_;
    if (media.new_remap) ++remapped_sectors_;
    if (tracer_ != nullptr) {
      obs::Event ev;
      ev.kind = obs::EventKind::kMediaError;
      ev.disk = id_;
      ev.t0 = c.clock;
      ev.t1 = c.clock;
      ev.value = media.new_remap ? 1 : 0;
      tracer_->emit(ev);
    }
    // Retry the transfer from the (re)mapped location: a full
    // non-sequential re-read at the current level.
    service += params_->average_seek_time + lv.rot_latency_ms +
               static_cast<double>(size_bytes) / lv.bytes_per_ms;
  }
  return service * faults_->service_jitter_factor(id_);
}

void DiskUnit::spin_down(TimeMs t) {
  if (heading_to_standby()) return;
  if (faults_ != nullptr && faults_->drops_directive(id_)) {
    ++dropped_directives_;
    if (tracer_ != nullptr) {
      obs::Event ev;
      ev.kind = obs::EventKind::kDirectiveDropped;
      ev.disk = id_;
      ev.t0 = t;
      ev.t1 = t;
      ev.label = "spin_down";
      tracer_->emit(ev);
    }
    return;
  }
  advance_to(std::max(t, core().clock));
  settle();
  if (core().mode == DiskMode::kStandby) return;
  ++spin_downs_;
  if (tracer_ != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::kDirective;
    ev.disk = id_;
    ev.t0 = core().clock;
    ev.t1 = core().clock;
    ev.label = "spin_down";
    tracer_->emit(ev);
  }
  begin_transition(disk::PowerState::kSpinningDown,
                   params_->park_entry_time(core().level, 0),
                   params_->park_entry_energy(core().level, 0),
                   DiskMode::kStandby, core().level, params_->default_park());
}

void DiskUnit::park_to(TimeMs t, int park) {
  SDPM_REQUIRE(park >= 0 && park < params_->park_count(),
               "park index out of range");
  const int resident = current_park();
  if (resident >= 0 && resident <= park) return;  // already at-or-deeper
  if (faults_ != nullptr && faults_->drops_directive(id_)) {
    ++dropped_directives_;
    if (tracer_ != nullptr) {
      obs::Event ev;
      ev.kind = obs::EventKind::kDirectiveDropped;
      ev.disk = id_;
      ev.t0 = t;
      ev.t1 = t;
      ev.value = park;
      ev.label = params_->has_ladder() ? params_->park_name(park).c_str()
                                       : "spin_down";
      tracer_->emit(ev);
    }
    return;
  }
  advance_to(std::max(t, core().clock));
  settle();
  DiskArrayState::Core& c = core();
  const bool parked = c.mode == DiskMode::kStandby;
  if (parked && c.park <= park) return;
  // Hold when the ladder has no edge for the requested move (a reactive
  // policy may ask for a deepening the hardware cannot do directly).
  if (parked ? !params_->park_descent_possible(c.park, park)
             : !params_->park_entry_possible(c.level, park)) {
    return;
  }
  ++spin_downs_;
  if (tracer_ != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::kDirective;
    ev.disk = id_;
    ev.t0 = c.clock;
    ev.t1 = c.clock;
    ev.value = park;
    ev.label = params_->has_ladder() ? params_->park_name(park).c_str()
                                     : "spin_down";
    tracer_->emit(ev);
  }
  if (parked) {
    begin_transition(disk::PowerState::kSpinningDown,
                     params_->park_descent_time(c.park, park),
                     params_->park_descent_energy(c.park, park),
                     DiskMode::kStandby, c.level, park);
  } else {
    begin_transition(disk::PowerState::kSpinningDown,
                     params_->park_entry_time(c.level, park),
                     params_->park_entry_energy(c.level, park),
                     DiskMode::kStandby, c.level, park);
  }
}

void DiskUnit::spin_up(TimeMs t) {
  if (core().mode == DiskMode::kSpinning) return;
  if (core().mode == DiskMode::kTransition &&
      trans().after_mode == DiskMode::kSpinning) {
    return;
  }
  advance_to(std::max(t, core().clock));
  settle();
  if (core().mode == DiskMode::kSpinning) return;
  if (tracer_ != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::kDirective;
    ev.disk = id_;
    ev.t0 = core().clock;
    ev.t1 = core().clock;
    ev.label = "spin_up";
    tracer_->emit(ev);
  }
  begin_spin_up();
}

void DiskUnit::set_rpm_level(TimeMs t, int level) {
  SDPM_REQUIRE(level >= 0 && level < params_->rpm_level_count(),
               "RPM level out of range");
  SDPM_REQUIRE(!heading_to_standby(),
               "set_rpm_level on a standby disk (spin it up first)");
  if (target_level() == level) return;
  if (faults_ != nullptr && faults_->drops_directive(id_)) {
    ++dropped_directives_;
    if (tracer_ != nullptr) {
      obs::Event ev;
      ev.kind = obs::EventKind::kDirectiveDropped;
      ev.disk = id_;
      ev.t0 = t;
      ev.t1 = t;
      ev.level = level;
      ev.label = "set_rpm";
      tracer_->emit(ev);
    }
    return;
  }
  advance_to(std::max(t, core().clock));
  settle();
  if (core().level == level) return;
  ++rpm_transitions_;
  if (tracer_ != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::kDirective;
    ev.disk = id_;
    ev.t0 = core().clock;
    ev.t1 = core().clock;
    ev.level = level;
    ev.label = "set_rpm";
    tracer_->emit(ev);
  }
  begin_transition(disk::PowerState::kRpmShift,
                   params_->rpm_transition_time(core().level, level),
                   params_->rpm_transition_energy(core().level, level),
                   DiskMode::kSpinning, level);
}

void DiskUnit::finish(TimeMs end) {
  advance_to(std::max(end, core().clock));
  settle();
}

}  // namespace sdpm::sim
