#include "sim/disk_unit.h"

#include <algorithm>

#include "layout/striping.h"
#include "obs/tracer.h"
#include "util/error.h"

namespace sdpm::sim {

namespace {
constexpr TimeMs kTimeEps = 1e-9;
}

DiskUnit::DiskUnit(const disk::DiskParameters& params, int id,
                   FaultModel* faults)
    : params_(&params), id_(id), faults_(faults),
      level_(params.max_level()),
      level_residency_(static_cast<std::size_t>(params.rpm_level_count()),
                       0.0) {
  params.validate();
}

void DiskUnit::accumulate(TimeMs dt) {
  if (dt <= 0) return;
  disk::PowerState bucket = disk::PowerState::kIdle;
  Joules energy = 0;
  switch (mode_) {
    case Mode::kSpinning:
      bucket = disk::PowerState::kIdle;
      energy = joules_from_watt_ms(params_->idle_power_at_level(level_), dt);
      level_residency_[static_cast<std::size_t>(level_)] += dt;
      break;
    case Mode::kStandby:
      bucket = disk::PowerState::kStandby;
      energy = joules_from_watt_ms(params_->standby_power(), dt);
      break;
    case Mode::kTransition:
      bucket = trans_bucket_;
      energy = joules_from_watt_ms(trans_power_, dt);
      break;
  }
  breakdown_.add(bucket, dt, energy);
  if (tracer_ != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::kStateSegment;
    ev.disk = id_;
    ev.t0 = clock_;
    ev.t1 = clock_ + dt;
    ev.state = bucket;
    ev.level = level_;
    ev.energy_j = energy;
    ev.value = dt;
    tracer_->emit(ev);
  }
}

void DiskUnit::advance_to(TimeMs t) {
  SDPM_ASSERT(t >= clock_ - kTimeEps, "disk commands must be time-ordered");
  if (t <= clock_) return;
  if (mode_ == Mode::kTransition && trans_end_ <= t) {
    accumulate(trans_end_ - clock_);
    clock_ = trans_end_;
    mode_ = after_mode_;
    level_ = after_level_;
  }
  if (t > clock_) {
    accumulate(t - clock_);
    clock_ = t;
  }
}

void DiskUnit::settle() {
  if (mode_ == Mode::kTransition) advance_to(trans_end_);
  SDPM_ASSERT(mode_ != Mode::kTransition, "settle left a transition open");
}

void DiskUnit::begin_transition(disk::PowerState bucket, TimeMs duration,
                                Joules energy, Mode after, int level_after) {
  SDPM_ASSERT(mode_ != Mode::kTransition, "transition already in flight");
  if (duration <= 0) {
    mode_ = after;
    level_ = level_after;
    breakdown_.add(bucket, 0, energy);
    if (tracer_ != nullptr && energy > 0) {
      // Instant transitions still pay their energy; report a zero-width
      // segment so timeline consumers reconcile exactly with the breakdown.
      obs::Event ev;
      ev.kind = obs::EventKind::kStateSegment;
      ev.disk = id_;
      ev.t0 = clock_;
      ev.t1 = clock_;
      ev.state = bucket;
      ev.level = level_after;
      ev.energy_j = energy;
      tracer_->emit(ev);
    }
    return;
  }
  mode_ = Mode::kTransition;
  trans_end_ = clock_ + duration;
  trans_power_ = energy / seconds_from_ms(duration);
  trans_bucket_ = bucket;
  after_mode_ = after;
  after_level_ = level_after;
}

int DiskUnit::target_level() const {
  if (mode_ == Mode::kTransition && after_mode_ == Mode::kSpinning) {
    return after_level_;
  }
  return level_;
}

bool DiskUnit::heading_to_standby() const {
  return mode_ == Mode::kStandby ||
         (mode_ == Mode::kTransition && after_mode_ == Mode::kStandby);
}

void DiskUnit::begin_spin_up() {
  SDPM_ASSERT(mode_ == Mode::kStandby, "spin-up must start from standby");
  if (faults_ != nullptr) {
    const FaultConfig& fc = faults_->config();
    TimeMs attempt_ms = fc.spin_up_attempt_ms >= 0 ? fc.spin_up_attempt_ms
                                                   : params_->tpm.spin_up_time;
    attempt_ms = std::min(attempt_ms, params_->tpm.spin_up_time);
    const Joules attempt_j =
        params_->tpm.spin_up_energy *
        (params_->tpm.spin_up_time > 0
             ? attempt_ms / params_->tpm.spin_up_time
             : 1.0);
    int attempt = 0;
    // The attempt after the retry cap always succeeds (controller
    // recovery), so service can never wedge behind a permanently dead
    // spindle.
    while (attempt < fc.max_spin_up_retries && faults_->spin_up_fails(id_)) {
      ++spin_up_retries_;
      const TimeMs backoff = faults_->backoff_ms(attempt);
      if (tracer_ != nullptr) {
        obs::Event ev;
        ev.kind = obs::EventKind::kSpinUpRetry;
        ev.disk = id_;
        ev.t0 = clock_;
        ev.t1 = clock_;
        ev.value = backoff;
        tracer_->emit(ev);
      }
      begin_transition(disk::PowerState::kSpinningUp, attempt_ms, attempt_j,
                       Mode::kStandby, level_);
      settle();
      advance_to(clock_ + backoff);
      ++attempt;
    }
  }
  begin_transition(disk::PowerState::kSpinningUp, params_->tpm.spin_up_time,
                   params_->tpm.spin_up_energy, Mode::kSpinning,
                   params_->max_level());
}

void DiskUnit::spin_down(TimeMs t) {
  if (heading_to_standby()) return;
  if (faults_ != nullptr && faults_->drops_directive(id_)) {
    ++dropped_directives_;
    if (tracer_ != nullptr) {
      obs::Event ev;
      ev.kind = obs::EventKind::kDirectiveDropped;
      ev.disk = id_;
      ev.t0 = t;
      ev.t1 = t;
      ev.label = "spin_down";
      tracer_->emit(ev);
    }
    return;
  }
  advance_to(std::max(t, clock_));
  settle();
  if (mode_ == Mode::kStandby) return;
  ++spin_downs_;
  if (tracer_ != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::kDirective;
    ev.disk = id_;
    ev.t0 = clock_;
    ev.t1 = clock_;
    ev.label = "spin_down";
    tracer_->emit(ev);
  }
  begin_transition(disk::PowerState::kSpinningDown, params_->tpm.spin_down_time,
                   params_->tpm.spin_down_energy, Mode::kStandby, level_);
}

void DiskUnit::spin_up(TimeMs t) {
  if (mode_ == Mode::kSpinning) return;
  if (mode_ == Mode::kTransition && after_mode_ == Mode::kSpinning) return;
  advance_to(std::max(t, clock_));
  settle();
  if (mode_ == Mode::kSpinning) return;
  if (tracer_ != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::kDirective;
    ev.disk = id_;
    ev.t0 = clock_;
    ev.t1 = clock_;
    ev.label = "spin_up";
    tracer_->emit(ev);
  }
  begin_spin_up();
}

void DiskUnit::set_rpm_level(TimeMs t, int level) {
  SDPM_REQUIRE(level >= 0 && level < params_->rpm_level_count(),
               "RPM level out of range");
  SDPM_REQUIRE(!heading_to_standby(),
               "set_rpm_level on a standby disk (spin it up first)");
  if (target_level() == level) return;
  if (faults_ != nullptr && faults_->drops_directive(id_)) {
    ++dropped_directives_;
    if (tracer_ != nullptr) {
      obs::Event ev;
      ev.kind = obs::EventKind::kDirectiveDropped;
      ev.disk = id_;
      ev.t0 = t;
      ev.t1 = t;
      ev.level = level;
      ev.label = "set_rpm";
      tracer_->emit(ev);
    }
    return;
  }
  advance_to(std::max(t, clock_));
  settle();
  if (level_ == level) return;
  ++rpm_transitions_;
  if (tracer_ != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::kDirective;
    ev.disk = id_;
    ev.t0 = clock_;
    ev.t1 = clock_;
    ev.level = level;
    ev.label = "set_rpm";
    tracer_->emit(ev);
  }
  begin_transition(disk::PowerState::kRpmShift,
                   params_->rpm_transition_time(level_, level),
                   params_->rpm_transition_energy(level_, level),
                   Mode::kSpinning, level);
}

DiskUnit::ServeResult DiskUnit::serve(TimeMs arrival, BlockNo sector,
                                      Bytes size_bytes, ir::AccessKind kind) {
  (void)kind;  // reads and writes share the service model
  ServeResult result;
  advance_to(std::max(arrival, clock_));
  if (mode_ == Mode::kTransition) {
    result.waited_transition = after_mode_ == Mode::kSpinning;
    settle();
  }
  if (mode_ == Mode::kStandby) {
    result.demand_spin_up = true;
    ++demand_spin_ups_;
    if (tracer_ != nullptr) {
      obs::Event ev;
      ev.kind = obs::EventKind::kDemandSpinUp;
      ev.disk = id_;
      ev.t0 = clock_;
      ev.t1 = clock_;
      tracer_->emit(ev);
    }
    begin_spin_up();
    settle();
  }
  SDPM_ASSERT(mode_ == Mode::kSpinning, "disk must spin to serve");

  const bool sequential = sector == next_sector_;
  TimeMs service = params_->service_time(size_bytes, level_, sequential);
  if (faults_ != nullptr) {
    if (faults_->is_remapped(id_, sector)) {
      // The head must detour to the spare area: one reposition (seek +
      // rotational latency) on top of the nominal transfer.
      service += params_->average_seek_time +
                 params_->rotational_latency_at_level(level_);
    }
    const FaultModel::MediaOutcome media = faults_->media_check(id_, sector);
    if (media.error) {
      ++media_errors_;
      if (media.new_remap) ++remapped_sectors_;
      if (tracer_ != nullptr) {
        obs::Event ev;
        ev.kind = obs::EventKind::kMediaError;
        ev.disk = id_;
        ev.t0 = clock_;
        ev.t1 = clock_;
        ev.value = media.new_remap ? 1 : 0;
        tracer_->emit(ev);
      }
      // Retry the transfer from the (re)mapped location: a full
      // non-sequential re-read at the current level.
      service += params_->service_time(size_bytes, level_, false);
    }
    service *= faults_->service_jitter_factor(id_);
  }
  result.start = clock_;
  result.completion = clock_ + service;
  const Joules active_j =
      joules_from_watt_ms(params_->active_power_at_level(level_), service);
  breakdown_.add(disk::PowerState::kActive, service, active_j);
  if (tracer_ != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::kStateSegment;
    ev.disk = id_;
    ev.t0 = result.start;
    ev.t1 = result.completion;
    ev.state = disk::PowerState::kActive;
    ev.level = level_;
    ev.energy_j = active_j;
    ev.value = service;
    tracer_->emit(ev);
  }
  level_residency_[static_cast<std::size_t>(level_)] += service;
  clock_ = result.completion;
  last_completion_ = clock_;
  next_sector_ = sector + (size_bytes + layout::kSectorBytes - 1) /
                              layout::kSectorBytes;
  busy_.push_back(BusyPeriod{result.start, result.completion});
  ++services_;
  return result;
}

void DiskUnit::finish(TimeMs end) {
  advance_to(std::max(end, clock_));
  settle();
}

}  // namespace sdpm::sim
