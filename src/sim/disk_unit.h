// Per-disk simulation unit: power-state machine + service model + energy
// integration.
//
// A DiskUnit is driven by timestamped power commands (spin_down / spin_up /
// set_rpm_level) and service calls.  Times must be non-decreasing per disk;
// the unit lazily integrates energy from its internal clock to each new
// timestamp, so a policy may issue a command "in the past" relative to the
// global simulation clock as long as it is not before the disk's own last
// event — exactly what a reactive timeout policy needs (the spin-down
// conceptually happened during an idle gap that is only examined when the
// next request arrives).
//
// Commands issued while a transition is in progress take effect when the
// transition settles (a physical spindle cannot abort a speed change
// mid-flight in this model).
#pragma once

#include <cstdint>
#include <vector>

#include "disk/parameters.h"
#include "disk/power_state.h"
#include "ir/nest.h"
#include "sim/faults.h"
#include "util/units.h"

namespace sdpm::obs {
class EventTracer;
}

namespace sdpm::sim {

/// One serviced request interval (for oracle post-processing and
/// utilization statistics).
struct BusyPeriod {
  TimeMs start = 0;       ///< service start (after any wake-up wait)
  TimeMs completion = 0;  ///< service end
};

class DiskUnit {
 public:
  /// `faults` (optional, not owned, may outlive no call) injects spin-up
  /// failures, media errors, jitter and dropped directives; nullptr keeps
  /// the unit's behavior exactly fault-free.
  DiskUnit(const disk::DiskParameters& params, int id,
           FaultModel* faults = nullptr);

  int id() const { return id_; }
  const disk::DiskParameters& params() const { return *params_; }

  /// Attach the observability tracer (nullptr = untraced, the default).
  /// The unit then emits power-state segments, directive outcomes and
  /// fault events as it integrates — observation only, the simulated
  /// behavior is bit-identical either way.  The simulator resolves the
  /// tracer once per run; each emission site costs one null-pointer test.
  void set_tracer(obs::EventTracer* tracer) { tracer_ = tracer; }

  // ---- power commands ----------------------------------------------------

  /// Begin spinning down at `t` (idle -> standby).  No-op when already in
  /// standby.  A transition in progress completes first.  Under fault
  /// injection the command may be silently dropped.
  void spin_down(TimeMs t);

  /// Begin spinning up at `t` (standby -> active at full RPM).  No-op when
  /// the disk is spinning.  A spin-down in progress completes first.
  void spin_up(TimeMs t);

  /// Begin an RPM transition towards `level` at `t`.  No-op when already at
  /// `level`.  Must not be called on a standby disk.
  void set_rpm_level(TimeMs t, int level);

  // ---- service -----------------------------------------------------------

  struct ServeResult {
    TimeMs start = 0;       ///< when service began (after any waits)
    TimeMs completion = 0;  ///< when the request finished
    bool demand_spin_up = false;     ///< had to wake a standby disk
    bool waited_transition = false;  ///< waited on an in-flight transition
  };

  /// Service a request arriving at `arrival`: waits out any in-flight
  /// transition, wakes the disk if it is in standby (demand spin-up), then
  /// transfers `size_bytes` starting at `sector` at the current RPM level.
  ServeResult serve(TimeMs arrival, BlockNo sector, Bytes size_bytes,
                    ir::AccessKind kind = ir::AccessKind::kRead);

  /// Integrate energy up to the end of simulation.
  void finish(TimeMs end);

  // ---- introspection -----------------------------------------------------

  /// RPM level the disk is at (or transitioning toward).
  int target_level() const;

  /// True when in standby or spinning down toward it.
  bool heading_to_standby() const;

  /// The unit's internal clock: the last time up to which energy has been
  /// integrated.
  TimeMs clock() const { return clock_; }

  /// Completion time of the last serviced request (start of the current
  /// idle period); 0 if never serviced.
  TimeMs last_completion() const { return last_completion_; }

  const disk::EnergyBreakdown& breakdown() const { return breakdown_; }
  const std::vector<BusyPeriod>& busy_periods() const { return busy_; }

  /// Time spent spinning (idle or active) at each RPM level, indexed by
  /// level; the DRPM analogue of the active/idle/standby buckets.
  const std::vector<TimeMs>& level_residency_ms() const {
    return level_residency_;
  }

  std::int64_t services() const { return services_; }
  std::int64_t demand_spin_ups() const { return demand_spin_ups_; }
  std::int64_t rpm_transitions() const { return rpm_transitions_; }
  std::int64_t commanded_spin_downs() const { return spin_downs_; }

  // ---- fault outcomes (all zero when no FaultModel is attached) ----------

  /// Failed spin-up attempts (each paid attempt time + energy + backoff).
  std::int64_t spin_up_retries() const { return spin_up_retries_; }
  /// Transient media errors hit while servicing requests.
  std::int64_t media_errors() const { return media_errors_; }
  /// Sectors remapped to the spare area by this unit's media errors.
  std::int64_t remapped_sectors() const { return remapped_sectors_; }
  /// spin_down / set_rpm_level commands that silently did not take effect.
  std::int64_t dropped_directives() const { return dropped_directives_; }

 private:
  enum class Mode { kSpinning, kStandby, kTransition };

  /// Integrate energy from clock_ to `t`, resolving a transition that
  /// completes in between.
  void advance_to(TimeMs t);

  /// Account `dt` of time in the *current* mode ending at clock_ + dt.
  void accumulate(TimeMs dt);

  /// Advance through any in-flight transition; afterwards the mode is
  /// kSpinning or kStandby and clock_ >= previous transition end.
  void settle();

  /// Start a transition at clock_ (mode must be settled).
  void begin_transition(disk::PowerState bucket, TimeMs duration,
                        Joules energy, Mode after, int level_after);

  /// Start the standby -> spinning transition at clock_ (mode kStandby,
  /// settled), burning through any injected failed attempts (attempt time +
  /// capped exponential backoff each) before the final, successful spin-up
  /// is left in flight.
  void begin_spin_up();

  const disk::DiskParameters* params_;
  int id_;
  FaultModel* faults_;
  obs::EventTracer* tracer_ = nullptr;

  TimeMs clock_ = 0;
  Mode mode_ = Mode::kSpinning;
  int level_ = 0;  ///< physical RPM level while spinning

  // Valid while mode_ == kTransition:
  TimeMs trans_end_ = 0;
  Watts trans_power_ = 0;
  disk::PowerState trans_bucket_ = disk::PowerState::kRpmShift;
  Mode after_mode_ = Mode::kSpinning;
  int after_level_ = 0;

  TimeMs last_completion_ = 0;
  BlockNo next_sector_ = -1;  ///< head position for sequential detection

  disk::EnergyBreakdown breakdown_;
  std::vector<BusyPeriod> busy_;
  std::vector<TimeMs> level_residency_;
  std::int64_t services_ = 0;
  std::int64_t demand_spin_ups_ = 0;
  std::int64_t rpm_transitions_ = 0;
  std::int64_t spin_downs_ = 0;
  std::int64_t spin_up_retries_ = 0;
  std::int64_t media_errors_ = 0;
  std::int64_t remapped_sectors_ = 0;
  std::int64_t dropped_directives_ = 0;
};

}  // namespace sdpm::sim
