// Per-disk simulation unit: power-state machine + service model + energy
// integration.
//
// A DiskUnit is driven by timestamped power commands (spin_down / spin_up /
// set_rpm_level) and service calls.  Times must be non-decreasing per disk;
// the unit lazily integrates energy from its internal clock to each new
// timestamp, so a policy may issue a command "in the past" relative to the
// global simulation clock as long as it is not before the disk's own last
// event — exactly what a reactive timeout policy needs (the spin-down
// conceptually happened during an idle gap that is only examined when the
// next request arrives).
//
// Commands issued while a transition is in progress take effect when the
// transition settles (a physical spindle cannot abort a speed change
// mid-flight in this model).
//
// Hot/cold split: the scalars the replay loop touches per request (clock,
// mode, level, head position, completion time) live in a DiskArrayState
// slot (disk_state.h) shared by every disk of a simulated array; the unit
// itself keeps only the cold accounting (energy breakdown, residency,
// busy periods, fault counters).  A standalone unit owns a one-slot state,
// so direct construction behaves exactly as before.  The hot methods
// (advance_to / accumulate / the serve fast path) are defined inline here
// so the replay engine compiles them into its loop.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "disk/parameters.h"
#include "disk/power_state.h"
#include "ir/nest.h"
#include "layout/striping.h"
#include "sim/disk_state.h"
#include "sim/faults.h"
#include "util/error.h"
#include "util/units.h"

namespace sdpm::obs {
class EventTracer;
}

namespace sdpm::sim {

/// One serviced request interval (for oracle post-processing and
/// utilization statistics).
struct BusyPeriod {
  TimeMs start = 0;       ///< service start (after any wake-up wait)
  TimeMs completion = 0;  ///< service end
};

class DiskUnit {
 public:
  /// Standalone unit owning its own one-slot hot state.  `faults`
  /// (optional, not owned) injects spin-up failures, media errors, jitter
  /// and dropped directives; nullptr keeps the unit's behavior exactly
  /// fault-free.
  DiskUnit(const disk::DiskParameters& params, int id,
           FaultModel* faults = nullptr);

  /// Array member: hot scalars live in `state` slot `slot` (shared with
  /// the replay engine).  `state` must outlive the unit and have been
  /// built from the same `params`.
  DiskUnit(DiskArrayState& state, int slot,
           const disk::DiskParameters& params, int id,
           FaultModel* faults = nullptr);

  DiskUnit(DiskUnit&&) = default;
  DiskUnit& operator=(DiskUnit&&) = delete;

  int id() const { return id_; }
  const disk::DiskParameters& params() const { return *params_; }

  /// Attach the observability tracer (nullptr = untraced, the default).
  /// The unit then emits power-state segments, directive outcomes and
  /// fault events as it integrates — observation only, the simulated
  /// behavior is bit-identical either way.  The simulator resolves the
  /// tracer once per run; each emission site costs one null-pointer test.
  void set_tracer(obs::EventTracer* tracer) { tracer_ = tracer; }

  /// Record a BusyPeriod per serviced request.  On by default for
  /// standalone units (tests drive them directly); the simulator enables
  /// it only when SimOptions::capture_busy_periods asks for oracle or
  /// profile post-processing — the vector is O(requests).
  void set_capture_busy(bool capture) { capture_busy_ = capture; }

  // ---- power commands ----------------------------------------------------

  /// Begin spinning down at `t` into the deepest park.  No-op when already
  /// in standby.  A transition in progress completes first.  Under fault
  /// injection the command may be silently dropped.
  void spin_down(TimeMs t);

  /// Begin parking into `park` at `t` (ladder-backed disks; park 0 is the
  /// deepest, so spin_down(t) == park_to(t, default park)).  No-op when the
  /// disk is already at-or-below `park`; deepening from a shallower park
  /// follows the ladder's park->park descent edge, and is a no-op when the
  /// ladder has none.  Under fault injection the command may be dropped.
  void park_to(TimeMs t, int park);

  /// Begin spinning up at `t` (standby -> active at full RPM).  No-op when
  /// the disk is spinning.  A spin-down in progress completes first.
  void spin_up(TimeMs t);

  /// Begin an RPM transition towards `level` at `t`.  No-op when already at
  /// `level`.  Must not be called on a standby disk.
  void set_rpm_level(TimeMs t, int level);

  // ---- service -----------------------------------------------------------

  struct ServeResult {
    TimeMs start = 0;       ///< when service began (after any waits)
    TimeMs completion = 0;  ///< when the request finished
    bool demand_spin_up = false;     ///< had to wake a standby disk
    bool waited_transition = false;  ///< waited on an in-flight transition
  };

  /// Service a request arriving at `arrival`: waits out any in-flight
  /// transition, wakes the disk if it is in standby (demand spin-up), then
  /// transfers `size_bytes` starting at `sector` at the current RPM level.
  ServeResult serve(TimeMs arrival, BlockNo sector, Bytes size_bytes,
                    ir::AccessKind kind = ir::AccessKind::kRead);

  /// Integrate energy up to the end of simulation.
  void finish(TimeMs end);

  // ---- introspection -----------------------------------------------------

  /// RPM level the disk is at (or transitioning toward).
  int target_level() const;

  /// True when in standby or spinning down toward it.
  bool heading_to_standby() const;

  /// Park the disk is resident in (or transitioning toward); -1 while
  /// serviceable or heading back to a level.
  int current_park() const;

  /// The unit's internal clock: the last time up to which energy has been
  /// integrated.
  TimeMs clock() const { return core().clock; }

  /// Completion time of the last serviced request (start of the current
  /// idle period); 0 if never serviced.
  TimeMs last_completion() const { return core().last_completion; }

  const disk::EnergyBreakdown& breakdown() const { return breakdown_; }
  const std::vector<BusyPeriod>& busy_periods() const { return busy_; }

  /// Time spent spinning (idle or active) at each RPM level, indexed by
  /// level; the DRPM analogue of the active/idle/standby buckets.
  const std::vector<TimeMs>& level_residency_ms() const {
    return level_residency_;
  }

  std::int64_t services() const { return services_; }
  std::int64_t demand_spin_ups() const { return demand_spin_ups_; }
  std::int64_t rpm_transitions() const { return rpm_transitions_; }
  std::int64_t commanded_spin_downs() const { return spin_downs_; }

  // ---- fault outcomes (all zero when no FaultModel is attached) ----------

  /// Failed spin-up attempts (each paid attempt time + energy + backoff).
  std::int64_t spin_up_retries() const { return spin_up_retries_; }
  /// Transient media errors hit while servicing requests.
  std::int64_t media_errors() const { return media_errors_; }
  /// Sectors remapped to the spare area by this unit's media errors.
  std::int64_t remapped_sectors() const { return remapped_sectors_; }
  /// spin_down / set_rpm_level commands that silently did not take effect.
  std::int64_t dropped_directives() const { return dropped_directives_; }

 private:
  static constexpr TimeMs kTimeEps = 1e-9;

  DiskArrayState::Core& core() { return state_->core[slot_]; }
  const DiskArrayState::Core& core() const { return state_->core[slot_]; }
  DiskArrayState::Transition& trans() { return state_->trans[slot_]; }
  const DiskArrayState::Transition& trans() const {
    return state_->trans[slot_];
  }

  /// Integrate energy from the slot clock to `t`, resolving a transition
  /// that completes in between.
  void advance_to(TimeMs t) {
    DiskArrayState::Core& c = core();
    SDPM_ASSERT(t >= c.clock - kTimeEps,
                "disk commands must be time-ordered");
    if (t <= c.clock) return;
    if (c.mode == DiskMode::kTransition && trans().end <= t) {
      const DiskArrayState::Transition tr = trans();
      accumulate(tr.end - c.clock);
      c.clock = tr.end;
      c.mode = tr.after_mode;
      c.level = tr.after_level;
      c.park = tr.after_park;
    }
    if (t > c.clock) {
      accumulate(t - c.clock);
      c.clock = t;
    }
  }

  /// Account `dt` of time in the *current* mode ending at clock + dt.
  void accumulate(TimeMs dt) {
    if (dt <= 0) return;
    DiskArrayState::Core& c = core();
    disk::PowerState bucket = disk::PowerState::kIdle;
    Joules energy = 0;
    switch (c.mode) {
      case DiskMode::kSpinning:
        bucket = disk::PowerState::kIdle;
        energy = joules_from_watt_ms(state_->levels[c.level].idle_w, dt);
        level_residency_[static_cast<std::size_t>(c.level)] += dt;
        break;
      case DiskMode::kStandby:
        bucket = disk::PowerState::kStandby;
        energy = joules_from_watt_ms(state_->levels.park_w(c.park), dt);
        break;
      case DiskMode::kTransition:
        bucket = trans().bucket;
        energy = joules_from_watt_ms(trans().power, dt);
        break;
    }
    breakdown_.add(bucket, dt, energy);
    if (tracer_ != nullptr) emit_state_segment(bucket, dt, energy);
  }

  /// Advance through any in-flight transition; afterwards the mode is
  /// kSpinning or kStandby and the slot clock >= previous transition end.
  void settle() {
    if (core().mode == DiskMode::kTransition) advance_to(trans().end);
    SDPM_ASSERT(core().mode != DiskMode::kTransition,
                "settle left a transition open");
  }

  /// Start a transition at the slot clock (mode must be settled).
  void begin_transition(disk::PowerState bucket, TimeMs duration,
                        Joules energy, DiskMode after, int level_after,
                        int park_after = 0);

  /// Start the standby -> spinning transition at the slot clock (mode
  /// kStandby, settled), burning through any injected failed attempts
  /// (attempt time + capped exponential backoff each) before the final,
  /// successful spin-up is left in flight.
  void begin_spin_up();

  /// Rare serve() preamble: wait out an in-flight transition and/or wake a
  /// standby disk.  Out of line so the inlined fast path stays small.
  void serve_wake(ServeResult& result);

  /// Fault-model detours on the nominal service time (remap seek, media
  /// retry, jitter).  Only called when a FaultModel is attached.
  TimeMs faulted_service(BlockNo sector, Bytes size_bytes, TimeMs service);

  // Cold tracer emissions (observation only; never on the untraced path).
  void emit_state_segment(disk::PowerState bucket, TimeMs dt, Joules energy);
  void emit_service_segment(TimeMs t0, TimeMs t1, Joules energy, TimeMs dt);

  const disk::DiskParameters* params_;
  int id_;
  FaultModel* faults_;
  obs::EventTracer* tracer_ = nullptr;

  DiskArrayState* state_;
  std::size_t slot_;
  std::unique_ptr<DiskArrayState> owned_;  ///< standalone units only

  bool capture_busy_ = true;

  disk::EnergyBreakdown breakdown_;
  std::vector<BusyPeriod> busy_;
  std::vector<TimeMs> level_residency_;
  std::int64_t services_ = 0;
  std::int64_t demand_spin_ups_ = 0;
  std::int64_t rpm_transitions_ = 0;
  std::int64_t spin_downs_ = 0;
  std::int64_t spin_up_retries_ = 0;
  std::int64_t media_errors_ = 0;
  std::int64_t remapped_sectors_ = 0;
  std::int64_t dropped_directives_ = 0;
};

inline DiskUnit::ServeResult DiskUnit::serve(TimeMs arrival, BlockNo sector,
                                             Bytes size_bytes,
                                             ir::AccessKind kind) {
  (void)kind;  // reads and writes share the service model
  ServeResult result;
  DiskArrayState::Core& c = core();
  advance_to(std::max(arrival, c.clock));
  if (c.mode != DiskMode::kSpinning) serve_wake(result);
  SDPM_ASSERT(c.mode == DiskMode::kSpinning, "disk must spin to serve");

  const bool sequential = sector == c.next_sector;
  const LevelTable::Level& lv = state_->levels[c.level];
  // Same arithmetic as DiskParameters::service_time over the cached level
  // physics: optional positioning (skipped when sequential) + transfer.
  const TimeMs transfer = static_cast<double>(size_bytes) / lv.bytes_per_ms;
  TimeMs service =
      sequential ? transfer
                 : params_->average_seek_time + lv.rot_latency_ms + transfer;
  if (faults_ != nullptr) {
    service = faulted_service(sector, size_bytes, service);
  }
  result.start = c.clock;
  result.completion = c.clock + service;
  const Joules active_j = joules_from_watt_ms(lv.active_w, service);
  breakdown_.add(disk::PowerState::kActive, service, active_j);
  if (tracer_ != nullptr) {
    emit_service_segment(result.start, result.completion, active_j, service);
  }
  level_residency_[static_cast<std::size_t>(c.level)] += service;
  c.clock = result.completion;
  c.last_completion = c.clock;
  c.next_sector = sector + (size_bytes + layout::kSectorBytes - 1) /
                               layout::kSectorBytes;
  if (capture_busy_) {
    busy_.push_back(BusyPeriod{result.start, result.completion});
  }
  ++services_;
  return result;
}

}  // namespace sdpm::sim
