// Deterministic fault injection for the disk subsystem.
//
// The paper's evaluation assumes a perfectly behaved array: every power
// directive lands and every spin-up succeeds, so the only error source is
// gap misprediction (Table 3).  Real arrays also see failed spin-ups,
// transient media errors with bad-sector remapping, service-latency jitter,
// and commands that silently never reach the device.  FaultModel injects
// exactly those behaviors into DiskUnit, drawing from per-disk SplitMix64
// streams keyed by an explicit seed so a faulty run is bit-for-bit
// reproducible.  The default FaultConfig (all probabilities zero) leaves
// every existing result unchanged: the simulator only consults the model
// when a fault class is enabled, and consumes no random draws otherwise.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/units.h"

namespace sdpm::sim {

/// Per-run fault-injection configuration.  Default-constructed = no faults;
/// all probabilities are per-event and drawn independently per disk.
struct FaultConfig {
  /// Probability that one spin-up attempt (commanded pre-activation or
  /// demand wake) fails.  A failed attempt costs `spin_up_attempt_ms`
  /// (clamped to the disk's spin-up time when unset) billed at spin-up
  /// power, leaves the disk in standby, and is retried after a capped
  /// exponential backoff.  The attempt after `max_spin_up_retries` failures
  /// always succeeds (the controller's recovery path), so a simulation can
  /// never wedge.
  double spin_up_failure_prob = 0.0;
  int max_spin_up_retries = 4;
  /// Time a failed attempt consumes before being declared failed; <0 means
  /// the disk's full spin-up time.
  TimeMs spin_up_attempt_ms = -1.0;
  /// Backoff before retry k (0-based): base * factor^k, capped.
  TimeMs retry_backoff_base_ms = 100.0;
  double retry_backoff_factor = 2.0;
  TimeMs retry_backoff_cap_ms = 5'000.0;

  /// Probability that one request hits a transient media error.  The
  /// faulty sector is remapped to the spare area (once) and the transfer is
  /// retried from the remapped location: the request pays one extra
  /// non-sequential service at the current RPM level.  Later requests that
  /// touch an already-remapped sector pay a reposition penalty (seek +
  /// rotational latency) to reach the spare area.
  double media_error_prob = 0.0;

  /// Half-width of the multiplicative service-time jitter: each service is
  /// scaled by a uniform factor in [1 - jitter, 1 + jitter].  Must be < 1.
  double service_jitter = 0.0;

  /// Probability that a spin_down / set_rpm_level command silently does not
  /// take effect (lost on the way to the device).  Demand spin-ups are not
  /// directives and never drop.
  double dropped_directive_prob = 0.0;

  /// Seed for the per-disk fault streams.
  std::uint64_t seed = 0x5d12fa071f5ULL;

  /// The no-fault configuration (identical to a default-constructed one).
  static FaultConfig none() { return FaultConfig{}; }

  /// True when any fault class can fire.
  bool enabled() const {
    return spin_up_failure_prob > 0 || media_error_prob > 0 ||
           service_jitter > 0 || dropped_directive_prob > 0;
  }

  /// Throws sdpm::Error on out-of-range parameters.
  void validate() const;
};

/// Per-run fault state: one RNG stream and one bad-sector remap table per
/// disk.  Draw order within a disk is fixed by the simulation's per-disk
/// event order, so identical (trace, policy, config) runs produce identical
/// fault sequences regardless of how disks interleave globally.
class FaultModel {
 public:
  explicit FaultModel(const FaultConfig& config);

  const FaultConfig& config() const { return config_; }

  /// Outcome of the media-error check for one request.
  struct MediaOutcome {
    bool error = false;      ///< the transfer hit a transient media error
    bool new_remap = false;  ///< a spare-area remap entry was created
  };

  /// Draws for one disk.  Each consumes randomness only when its fault
  /// class is enabled, so e.g. enabling jitter does not perturb the media
  /// error sequence.
  bool spin_up_fails(int disk);
  bool drops_directive(int disk);
  MediaOutcome media_check(int disk, BlockNo sector);
  double service_jitter_factor(int disk);

  /// True when `sector` of `disk` has been remapped to the spare area.
  bool is_remapped(int disk, BlockNo sector) const;

  /// Backoff delay before retry `attempt` (0-based), capped.
  TimeMs backoff_ms(int attempt) const;

  /// Remap-table size of `disk` (== remapped_sectors of that disk).
  std::int64_t remapped_count(int disk) const;

 private:
  struct DiskState {
    SplitMix64 rng;
    std::unordered_map<BlockNo, BlockNo> remap;  ///< bad sector -> spare
    explicit DiskState(std::uint64_t seed) : rng(seed) {}
  };

  DiskState& state(int disk);

  FaultConfig config_;
  std::vector<DiskState> disks_;
};

}  // namespace sdpm::sim
