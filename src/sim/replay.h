// Batched replay engine, templated over the concrete policy type.
//
// Both dispatch paths run THIS template:
//
//   replay_run<PowerPolicy>   the generic engine — PolicyT is the abstract
//                             base, every hook is a virtual call (wrapper
//                             policies, fault-injected runs by default,
//                             custom policies), and
//   replay_run<TpmPolicy>     (etc.) the static kernels the built-in final
//                             policies return from replay_kernel() — the
//                             hooks devirtualize and inline into the loop.
//
// Because the two paths are one template instantiated twice, they execute
// the same statements in the same order on the same doubles; the
// equivalence suite pins the resulting reports bit for bit.
//
// The loop structure itself is the tentpole optimization: items arrive in
// blocks of SimOptions::replay_batch through RequestSource::next_batch
// (one virtual call per block instead of per item), input validation is
// hoisted to the block boundary, per-disk hot state is a DiskArrayState
// (structure of arrays, disk_state.h), and the block scratch uses
// small-buffer storage (no heap below the default batch size).
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "obs/tracer.h"
#include "sim/disk_state.h"
#include "sim/disk_unit.h"
#include "sim/policy.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "trace/source.h"
#include "util/error.h"

namespace sdpm::sim {

/// Everything a replay needs beyond the policy: the item source, the disk
/// model, the options, and the already-resolved fault model and tracer.
struct ReplayContext {
  trace::RequestSource* source = nullptr;
  const disk::DiskParameters* params = nullptr;
  const SimOptions* options = nullptr;
  FaultModel* faults = nullptr;      ///< nullptr = fault-free
  obs::EventTracer* tracer = nullptr;  ///< resolved; nullptr = untraced
};

namespace detail {

/// Per-block scratch with small-buffer storage: block sizes up to
/// kReplayBatchSize live on the stack, larger (fuzzing, tuning) fall back
/// to one heap allocation for the whole replay.
class ReplayBatch {
 public:
  explicit ReplayBatch(std::size_t capacity)
      : capacity_(std::max<std::size_t>(1, capacity)) {
    if (capacity_ > inline_.size()) {
      heap_ = std::make_unique<trace::TraceItem[]>(capacity_);
    }
  }

  trace::TraceItem* data() { return heap_ ? heap_.get() : inline_.data(); }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::array<trace::TraceItem, kReplayBatchSize> inline_;
  std::unique_ptr<trace::TraceItem[]> heap_;
};

/// Input validation hoisted to the block boundary: one pass checks every
/// target disk so the replay below can index unchecked.
inline void validate_batch(const trace::TraceItem* items, std::size_t n,
                           int total_disks) {
  for (std::size_t i = 0; i < n; ++i) {
    if (items[i].kind == trace::TraceItem::Kind::kPowerEvent) {
      const int d = items[i].power.directive.disk;
      SDPM_REQUIRE(d >= 0 && d < total_disks,
                   "power event targets unknown disk");
    } else {
      const int d = items[i].request.disk;
      SDPM_REQUIRE(d >= 0 && d < total_disks,
                   "request targets unknown disk");
    }
  }
}

/// Shared replay scaffolding: disk array + units + policy attachment.
struct ReplayRig {
  ReplayRig(const ReplayContext& ctx, int total_disks)
      : state(total_disks, *ctx.params) {
    units.reserve(static_cast<std::size_t>(total_disks));
    for (int d = 0; d < total_disks; ++d) {
      units.emplace_back(state, d, *ctx.params, d, ctx.faults);
      units.back().set_tracer(ctx.tracer);
      units.back().set_capture_busy(ctx.options->capture_busy_periods);
    }
  }

  DiskArrayState state;
  std::vector<DiskUnit> units;
};

/// Finalize energy at `end` and assemble the per-disk reports.
template <class PolicyT>
void finalize_report(PolicyT& policy, ReplayRig& rig, SimReport& report,
                     TimeMs end) {
  report.disks.reserve(rig.units.size());
  for (DiskUnit& unit : rig.units) {
    policy.finalize(unit, end);
    unit.finish(end);
    DiskReport dr = make_disk_report(unit);
    report.total_energy += dr.breakdown.total_j();
    report.disks.push_back(std::move(dr));
  }
}

template <class PolicyT>
SimReport replay_closed_loop(PolicyT& policy, const ReplayContext& ctx) {
  trace::RequestSource& source = *ctx.source;
  obs::EventTracer* const tracer = ctx.tracer;
  const int total_disks = source.total_disks();
  ReplayRig rig(ctx, total_disks);
  policy.set_tracer(tracer);
  for (DiskUnit& unit : rig.units) policy.attach(unit);

  SimReport report;
  report.policy_name = policy.name();
  obs::Span run_span(tracer, policy.name(), 0);

  const TimeMs compute_total = source.compute_total_ms();
  TimeMs compute_cursor = 0;  // compute-timeline position
  TimeMs app_clock = 0;       // real simulated time (compute + stalls)
  TimeMs* const last_issue = rig.state.last_issue.data();
  const bool capture_responses = ctx.options->capture_responses;

  // Think time is the delta between consecutive compute-timeline stamps;
  // a run of same-timestamp items advances nothing, so the guard below
  // batches it away.  (The monotonicity assert matches the historical
  // behavior in debug builds.)
  const auto advance_app = [&](TimeMs compute_time) {
    if (compute_time > compute_cursor) {
      app_clock += compute_time - compute_cursor;
      compute_cursor = compute_time;
    } else {
      SDPM_ASSERT(compute_time >= compute_cursor - 1e-9,
                  "compute timeline must be monotone");
    }
  };

  ReplayBatch batch(ctx.options->replay_batch);
  for (;;) {
    const std::size_t n = source.next_batch(batch.data(), batch.capacity());
    if (n == 0) break;
    validate_batch(batch.data(), n, total_disks);
    for (std::size_t i = 0; i < n; ++i) {
      const trace::TraceItem& item = batch.data()[i];
      if (item.kind == trace::TraceItem::Kind::kPowerEvent) {
        const trace::PowerEvent& ev = item.power;
        advance_app(ev.app_time_ms);
        const std::size_t d = static_cast<std::size_t>(ev.directive.disk);
        policy.on_power_event(rig.units[d], app_clock, ev.directive);
      } else {
        const trace::Request& req = item.request;
        advance_app(req.arrival_ms);
        const std::size_t d = static_cast<std::size_t>(req.disk);
        DiskUnit& unit = rig.units[d];
        // With a prefetch lead, the request was issued that much earlier
        // and its service overlaps the preceding compute; the application
        // only stalls for whatever remains at demand time.  The issue time
        // never precedes this disk's previous issue (per-disk FIFO
        // ordering).
        TimeMs issue = app_clock;
        if (req.prefetch_lead_ms > 0) {
          issue = std::max(app_clock - req.prefetch_lead_ms, last_issue[d]);
          issue = std::min(issue, app_clock);
          last_issue[d] = issue;
        } else {
          last_issue[d] = app_clock;
        }
        policy.before_service(unit, issue);
        const DiskUnit::ServeResult result =
            unit.serve(issue, req.start_sector, req.size_bytes, req.kind);
        const TimeMs stall = std::max(0.0, result.completion - app_clock);
        report.response_ms.add(stall);
        if (capture_responses) report.responses.push_back(stall);
        if (tracer != nullptr) {
          obs::Event ev;
          ev.kind = obs::EventKind::kService;
          ev.disk = req.disk;
          ev.t0 = issue;
          ev.t1 = result.completion;
          ev.value = stall;
          ev.value2 = static_cast<double>(req.size_bytes);
          tracer->emit(ev);
        }
        policy.after_service(unit, result.completion, stall);
        app_clock += stall;  // blocking only for the un-hidden remainder
        ++report.requests;
        report.bytes_transferred += req.size_bytes;
      }
    }
  }

  // Trailing compute after the last request / power call.
  advance_app(compute_total);
  const TimeMs end = app_clock;

  report.compute_ms = compute_total;
  report.execution_ms = end;
  report.io_stall_ms = end - compute_total;

  finalize_report(policy, rig, report, end);
  run_span.end(end);
  return report;
}

template <class PolicyT>
SimReport replay_open_loop(PolicyT& policy, const ReplayContext& ctx) {
  trace::RequestSource& source = *ctx.source;
  obs::EventTracer* const tracer = ctx.tracer;
  const int total_disks = source.total_disks();
  ReplayRig rig(ctx, total_disks);
  policy.set_tracer(tracer);
  for (DiskUnit& unit : rig.units) policy.attach(unit);

  SimReport report;
  report.policy_name = policy.name();
  obs::Span run_span(tracer, policy.name(), 0);

  // Requests and power events arrive merged by recorded timestamp; power
  // events win ties (they precede the iteration they annotate).
  const TimeMs compute_total = source.compute_total_ms();
  const bool capture_responses = ctx.options->capture_responses;
  TimeMs end = compute_total;

  ReplayBatch batch(ctx.options->replay_batch);
  for (;;) {
    const std::size_t n = source.next_batch(batch.data(), batch.capacity());
    if (n == 0) break;
    validate_batch(batch.data(), n, total_disks);
    for (std::size_t i = 0; i < n; ++i) {
      const trace::TraceItem& item = batch.data()[i];
      if (item.kind == trace::TraceItem::Kind::kPowerEvent) {
        const trace::PowerEvent& ev = item.power;
        const std::size_t d = static_cast<std::size_t>(ev.directive.disk);
        policy.on_power_event(rig.units[d], ev.app_time_ms, ev.directive);
      } else {
        const trace::Request& req = item.request;
        const std::size_t d = static_cast<std::size_t>(req.disk);
        DiskUnit& unit = rig.units[d];
        policy.before_service(unit, req.arrival_ms);
        const DiskUnit::ServeResult result = unit.serve(
            req.arrival_ms, req.start_sector, req.size_bytes, req.kind);
        const TimeMs response = result.completion - req.arrival_ms;
        report.response_ms.add(response);
        if (capture_responses) report.responses.push_back(response);
        if (tracer != nullptr) {
          obs::Event ev;
          ev.kind = obs::EventKind::kService;
          ev.disk = req.disk;
          ev.t0 = req.arrival_ms;
          ev.t1 = result.completion;
          ev.value = response;
          ev.value2 = static_cast<double>(req.size_bytes);
          tracer->emit(ev);
        }
        end = std::max(end, result.completion);
        ++report.requests;
        report.bytes_transferred += req.size_bytes;
      }
    }
  }

  report.compute_ms = compute_total;
  report.execution_ms = end;
  report.io_stall_ms = end - compute_total;

  finalize_report(policy, rig, report, end);
  run_span.end(end);
  return report;
}

}  // namespace detail

/// Replay `ctx` under `base`, which must actually be a PolicyT (the
/// engine downcasts — PowerPolicy itself is always valid).  Built-in
/// policies return &replay_run<Self> from replay_kernel().
template <class PolicyT>
SimReport replay_run(PowerPolicy& base, const ReplayContext& ctx) {
  PolicyT& policy = static_cast<PolicyT&>(base);
  return ctx.options->mode == ReplayMode::kClosedLoop
             ? detail::replay_closed_loop<PolicyT>(policy, ctx)
             : detail::replay_open_loop<PolicyT>(policy, ctx);
}

}  // namespace sdpm::sim
