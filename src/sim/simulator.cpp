#include "sim/simulator.h"

#include <chrono>
#include <optional>

#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/replay.h"
#include "util/error.h"
#include "util/perf_counters.h"

namespace sdpm::sim {

Simulator::Simulator(const trace::Trace& trace,
                     const disk::DiskParameters& params, PowerPolicy& policy,
                     ReplayMode mode, FaultConfig faults)
    : trace_(&trace), params_(params), policy_(policy) {
  options_.mode = mode;
  options_.faults = faults;
  SDPM_REQUIRE(trace.total_disks >= 1, "trace must name at least one disk");
  options_.faults.validate();
}

Simulator::Simulator(const trace::Trace& trace,
                     const disk::DiskParameters& params, PowerPolicy& policy,
                     const SimOptions& options)
    : trace_(&trace), params_(params), policy_(policy), options_(options) {
  SDPM_REQUIRE(trace.total_disks >= 1, "trace must name at least one disk");
  options_.faults.validate();
}

Simulator::Simulator(trace::RequestSource& source,
                     const disk::DiskParameters& params, PowerPolicy& policy,
                     const SimOptions& options)
    : source_(&source), params_(params), policy_(policy), options_(options) {
  SDPM_REQUIRE(source.total_disks() >= 1,
               "trace must name at least one disk");
  options_.faults.validate();
}

SimReport Simulator::run() {
  SDPM_REQUIRE(!ran_,
               "Simulator::run may only be called once per instance; "
               "construct a fresh Simulator (and policy) to replay again");
  ran_ = true;
  const auto started = std::chrono::steady_clock::now();
  FaultModel model(options_.faults);
  FaultModel* faults = options_.faults.enabled() ? &model : nullptr;

  // The materialized path replays through a cursor over the trace — the
  // cursor reproduces the historical merge of requests and power events
  // exactly, so both paths share one replay engine.
  std::optional<trace::TraceCursor> cursor;
  trace::RequestSource* source = source_;
  if (trace_ != nullptr) {
    cursor.emplace(*trace_);
    source = &*cursor;
  }

  // Resolve the tracer exactly once per run: nullptr when absent or
  // sink-less, so every emission site below is one predictable null test.
  obs::EventTracer* tracer = obs::effective_tracer(options_.tracer);

  ReplayContext ctx;
  ctx.source = source;
  ctx.params = &params_;
  ctx.options = &options_;
  ctx.faults = faults;
  ctx.tracer = tracer;

  // Dispatch matrix: the static kernel (replay_run<ConcretePolicy>) when
  // the policy provides one and the mode allows it, the generic virtual
  // engine (replay_run<PowerPolicy> — the same template) otherwise.
  PowerPolicy::ReplayFn engine = nullptr;
  switch (options_.dispatch) {
    case DispatchMode::kAuto:
      if (faults == nullptr) engine = policy_.replay_kernel();
      break;
    case DispatchMode::kForceKernel:
      engine = policy_.replay_kernel();
      SDPM_REQUIRE(engine != nullptr,
                   "dispatch=kForceKernel but the policy has no static "
                   "replay kernel");
      break;
    case DispatchMode::kForceVirtual:
      break;
  }
  if (engine == nullptr) engine = &replay_run<PowerPolicy>;

  SimReport report = engine(policy_, ctx);
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - started);
  PerfCounters::global().add_simulation(report.requests, elapsed.count());
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  metrics.add("sim.simulations");
  metrics.add("sim.requests", report.requests);
  return report;
}

SimReport simulate(const trace::Trace& trace,
                   const disk::DiskParameters& params, PowerPolicy& policy,
                   ReplayMode mode, FaultConfig faults) {
  return Simulator(trace, params, policy, mode, faults).run();
}

SimReport simulate(const trace::Trace& trace,
                   const disk::DiskParameters& params, PowerPolicy& policy,
                   const SimOptions& options) {
  return Simulator(trace, params, policy, options).run();
}

SimReport simulate(trace::RequestSource& source,
                   const disk::DiskParameters& params, PowerPolicy& policy,
                   const SimOptions& options) {
  return Simulator(source, params, policy, options).run();
}

}  // namespace sdpm::sim
