#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "obs/metrics.h"
#include "obs/tracer.h"
#include "util/error.h"
#include "util/perf_counters.h"

namespace sdpm::sim {

Simulator::Simulator(const trace::Trace& trace,
                     const disk::DiskParameters& params, PowerPolicy& policy,
                     ReplayMode mode, FaultConfig faults)
    : trace_(&trace), params_(params), policy_(policy) {
  options_.mode = mode;
  options_.faults = faults;
  SDPM_REQUIRE(trace.total_disks >= 1, "trace must name at least one disk");
  options_.faults.validate();
}

Simulator::Simulator(const trace::Trace& trace,
                     const disk::DiskParameters& params, PowerPolicy& policy,
                     const SimOptions& options)
    : trace_(&trace), params_(params), policy_(policy), options_(options) {
  SDPM_REQUIRE(trace.total_disks >= 1, "trace must name at least one disk");
  options_.faults.validate();
}

Simulator::Simulator(trace::RequestSource& source,
                     const disk::DiskParameters& params, PowerPolicy& policy,
                     const SimOptions& options)
    : source_(&source), params_(params), policy_(policy), options_(options) {
  SDPM_REQUIRE(source.total_disks() >= 1,
               "trace must name at least one disk");
  options_.faults.validate();
}

SimReport Simulator::run() {
  SDPM_REQUIRE(!ran_,
               "Simulator::run may only be called once per instance; "
               "construct a fresh Simulator (and policy) to replay again");
  ran_ = true;
  const auto started = std::chrono::steady_clock::now();
  FaultModel model(options_.faults);
  FaultModel* faults = options_.faults.enabled() ? &model : nullptr;

  // The materialized path replays through a cursor over the trace — the
  // cursor reproduces the historical merge of requests and power events
  // exactly, so both paths share one replay loop.
  std::optional<trace::TraceCursor> cursor;
  trace::RequestSource* source = source_;
  if (trace_ != nullptr) {
    cursor.emplace(*trace_);
    source = &*cursor;
  }

  // Resolve the tracer exactly once per run: nullptr when absent or
  // sink-less, so every emission site below is one predictable null test.
  obs::EventTracer* tracer = obs::effective_tracer(options_.tracer);

  SimReport report = options_.mode == ReplayMode::kClosedLoop
                         ? run_closed_loop(*source, faults, tracer)
                         : run_open_loop(*source, faults, tracer);
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - started);
  PerfCounters::global().add_simulation(report.requests, elapsed.count());
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  metrics.add("sim.simulations");
  metrics.add("sim.requests", report.requests);
  return report;
}

SimReport Simulator::run_closed_loop(trace::RequestSource& source,
                                     FaultModel* faults,
                                     obs::EventTracer* tracer) {
  const int total_disks = source.total_disks();
  std::vector<DiskUnit> units;
  units.reserve(static_cast<std::size_t>(total_disks));
  for (int d = 0; d < total_disks; ++d) {
    units.emplace_back(params_, d, faults);
    units.back().set_tracer(tracer);
  }
  policy_.set_tracer(tracer);
  for (DiskUnit& unit : units) policy_.attach(unit);

  SimReport report;
  report.policy_name = policy_.name();
  obs::Span run_span(tracer, policy_.name(), 0);

  const TimeMs compute_total = source.compute_total_ms();
  TimeMs compute_cursor = 0;  // compute-timeline position
  TimeMs app_clock = 0;       // real simulated time (compute + stalls)
  std::vector<TimeMs> last_issue(static_cast<std::size_t>(total_disks), 0.0);

  const auto advance_app = [&](TimeMs compute_time) {
    SDPM_ASSERT(compute_time >= compute_cursor - 1e-9,
                "compute timeline must be monotone");
    const TimeMs think = std::max(0.0, compute_time - compute_cursor);
    compute_cursor = std::max(compute_cursor, compute_time);
    app_clock += think;
  };

  // The source delivers requests and power events merged by compute-
  // timeline order; power events sit *before* the iteration they annotate,
  // so they win ties.
  trace::TraceItem item;
  while (source.next(item)) {
    if (item.kind == trace::TraceItem::Kind::kPowerEvent) {
      const trace::PowerEvent& ev = item.power;
      advance_app(ev.app_time_ms);
      const int d = ev.directive.disk;
      SDPM_REQUIRE(d >= 0 && d < total_disks,
                   "power event targets unknown disk");
      policy_.on_power_event(units[static_cast<std::size_t>(d)], app_clock,
                             ev.directive);
    } else {
      const trace::Request& req = item.request;
      advance_app(req.arrival_ms);
      SDPM_REQUIRE(req.disk >= 0 && req.disk < total_disks,
                   "request targets unknown disk");
      DiskUnit& unit = units[static_cast<std::size_t>(req.disk)];
      // With a prefetch lead, the request was issued that much earlier and
      // its service overlaps the preceding compute; the application only
      // stalls for whatever remains at demand time.  The issue time never
      // precedes this disk's previous issue (per-disk FIFO ordering).
      TimeMs issue = app_clock;
      if (req.prefetch_lead_ms > 0) {
        TimeMs& last = last_issue[static_cast<std::size_t>(req.disk)];
        issue = std::max(app_clock - req.prefetch_lead_ms, last);
        issue = std::min(issue, app_clock);
        last = issue;
      } else {
        last_issue[static_cast<std::size_t>(req.disk)] = app_clock;
      }
      policy_.before_service(unit, issue);
      const DiskUnit::ServeResult result =
          unit.serve(issue, req.start_sector, req.size_bytes, req.kind);
      const TimeMs stall = std::max(0.0, result.completion - app_clock);
      report.response_ms.add(stall);
      if (options_.capture_responses) report.responses.push_back(stall);
      if (tracer != nullptr) {
        obs::Event ev;
        ev.kind = obs::EventKind::kService;
        ev.disk = req.disk;
        ev.t0 = issue;
        ev.t1 = result.completion;
        ev.value = stall;
        ev.value2 = static_cast<double>(req.size_bytes);
        tracer->emit(ev);
      }
      policy_.after_service(unit, result.completion, stall);
      app_clock += stall;  // blocking only for the un-hidden remainder
      ++report.requests;
      report.bytes_transferred += req.size_bytes;
    }
  }

  // Trailing compute after the last request / power call.
  advance_app(compute_total);
  const TimeMs end = app_clock;

  report.compute_ms = compute_total;
  report.execution_ms = end;
  report.io_stall_ms = end - compute_total;

  report.disks.reserve(units.size());
  for (DiskUnit& unit : units) {
    policy_.finalize(unit, end);
    unit.finish(end);
    DiskReport dr = make_disk_report(unit);
    report.total_energy += dr.breakdown.total_j();
    report.disks.push_back(std::move(dr));
  }
  run_span.end(end);
  return report;
}

SimReport Simulator::run_open_loop(trace::RequestSource& source,
                                   FaultModel* faults,
                                   obs::EventTracer* tracer) {
  const int total_disks = source.total_disks();
  std::vector<DiskUnit> units;
  units.reserve(static_cast<std::size_t>(total_disks));
  for (int d = 0; d < total_disks; ++d) {
    units.emplace_back(params_, d, faults);
    units.back().set_tracer(tracer);
  }
  policy_.set_tracer(tracer);
  for (DiskUnit& unit : units) policy_.attach(unit);

  SimReport report;
  report.policy_name = policy_.name();
  obs::Span run_span(tracer, policy_.name(), 0);

  // Requests and power events arrive merged by recorded timestamp; power
  // events win ties (they precede the iteration they annotate).
  const TimeMs compute_total = source.compute_total_ms();
  TimeMs end = compute_total;
  trace::TraceItem item;
  while (source.next(item)) {
    if (item.kind == trace::TraceItem::Kind::kPowerEvent) {
      const trace::PowerEvent& ev = item.power;
      const int d = ev.directive.disk;
      SDPM_REQUIRE(d >= 0 && d < total_disks,
                   "power event targets unknown disk");
      policy_.on_power_event(units[static_cast<std::size_t>(d)],
                             ev.app_time_ms, ev.directive);
    } else {
      const trace::Request& req = item.request;
      SDPM_REQUIRE(req.disk >= 0 && req.disk < total_disks,
                   "request targets unknown disk");
      DiskUnit& unit = units[static_cast<std::size_t>(req.disk)];
      policy_.before_service(unit, req.arrival_ms);
      const DiskUnit::ServeResult result =
          unit.serve(req.arrival_ms, req.start_sector, req.size_bytes,
                     req.kind);
      const TimeMs response = result.completion - req.arrival_ms;
      report.response_ms.add(response);
      if (options_.capture_responses) report.responses.push_back(response);
      if (tracer != nullptr) {
        obs::Event ev;
        ev.kind = obs::EventKind::kService;
        ev.disk = req.disk;
        ev.t0 = req.arrival_ms;
        ev.t1 = result.completion;
        ev.value = response;
        ev.value2 = static_cast<double>(req.size_bytes);
        tracer->emit(ev);
      }
      end = std::max(end, result.completion);
      ++report.requests;
      report.bytes_transferred += req.size_bytes;
    }
  }

  report.compute_ms = compute_total;
  report.execution_ms = end;
  report.io_stall_ms = end - compute_total;

  report.disks.reserve(units.size());
  for (DiskUnit& unit : units) {
    policy_.finalize(unit, end);
    unit.finish(end);
    DiskReport dr = make_disk_report(unit);
    report.total_energy += dr.breakdown.total_j();
    report.disks.push_back(std::move(dr));
  }
  run_span.end(end);
  return report;
}

SimReport simulate(const trace::Trace& trace,
                   const disk::DiskParameters& params, PowerPolicy& policy,
                   ReplayMode mode, FaultConfig faults) {
  return Simulator(trace, params, policy, mode, faults).run();
}

SimReport simulate(const trace::Trace& trace,
                   const disk::DiskParameters& params, PowerPolicy& policy,
                   const SimOptions& options) {
  return Simulator(trace, params, policy, options).run();
}

SimReport simulate(trace::RequestSource& source,
                   const disk::DiskParameters& params, PowerPolicy& policy,
                   const SimOptions& options) {
  return Simulator(source, params, policy, options).run();
}

}  // namespace sdpm::sim
