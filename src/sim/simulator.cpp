#include "sim/simulator.h"

#include <algorithm>

#include "util/error.h"

namespace sdpm::sim {

Simulator::Simulator(const trace::Trace& trace,
                     const disk::DiskParameters& params, PowerPolicy& policy,
                     ReplayMode mode, FaultConfig faults)
    : trace_(trace), params_(params), policy_(policy), mode_(mode),
      faults_(faults) {
  SDPM_REQUIRE(trace.total_disks >= 1, "trace must name at least one disk");
  faults_.validate();
}

SimReport Simulator::run() {
  SDPM_REQUIRE(!ran_,
               "Simulator::run may only be called once per instance; "
               "construct a fresh Simulator (and policy) to replay again");
  ran_ = true;
  FaultModel model(faults_);
  FaultModel* faults = faults_.enabled() ? &model : nullptr;
  return mode_ == ReplayMode::kClosedLoop ? run_closed_loop(faults)
                                          : run_open_loop(faults);
}

SimReport Simulator::run_closed_loop(FaultModel* faults) {
  std::vector<DiskUnit> units;
  units.reserve(static_cast<std::size_t>(trace_.total_disks));
  for (int d = 0; d < trace_.total_disks; ++d) {
    units.emplace_back(params_, d, faults);
  }
  for (DiskUnit& unit : units) policy_.attach(unit);

  SimReport report;
  report.policy_name = policy_.name();

  // Merge requests and power events by compute-timeline order.  Power
  // events sit *before* the iteration they annotate, so they win ties.
  std::size_t ri = 0;
  std::size_t pi = 0;
  const auto& requests = trace_.requests;
  const auto& events = trace_.power_events;

  TimeMs compute_cursor = 0;  // compute-timeline position
  TimeMs app_clock = 0;       // real simulated time (compute + stalls)
  std::vector<TimeMs> last_issue(
      static_cast<std::size_t>(trace_.total_disks), 0.0);

  const auto advance_app = [&](TimeMs compute_time) {
    SDPM_ASSERT(compute_time >= compute_cursor - 1e-9,
                "compute timeline must be monotone");
    const TimeMs think = std::max(0.0, compute_time - compute_cursor);
    compute_cursor = std::max(compute_cursor, compute_time);
    app_clock += think;
  };

  while (ri < requests.size() || pi < events.size()) {
    const bool take_power =
        pi < events.size() &&
        (ri >= requests.size() ||
         events[pi].app_time_ms <= requests[ri].arrival_ms);
    if (take_power) {
      const trace::PowerEvent& ev = events[pi++];
      advance_app(ev.app_time_ms);
      const int d = ev.directive.disk;
      SDPM_REQUIRE(d >= 0 && d < trace_.total_disks,
                   "power event targets unknown disk");
      policy_.on_power_event(units[static_cast<std::size_t>(d)], app_clock,
                             ev.directive);
    } else {
      const trace::Request& req = requests[ri++];
      advance_app(req.arrival_ms);
      SDPM_REQUIRE(req.disk >= 0 && req.disk < trace_.total_disks,
                   "request targets unknown disk");
      DiskUnit& unit = units[static_cast<std::size_t>(req.disk)];
      // With a prefetch lead, the request was issued that much earlier and
      // its service overlaps the preceding compute; the application only
      // stalls for whatever remains at demand time.  The issue time never
      // precedes this disk's previous issue (per-disk FIFO ordering).
      TimeMs issue = app_clock;
      if (req.prefetch_lead_ms > 0) {
        TimeMs& last = last_issue[static_cast<std::size_t>(req.disk)];
        issue = std::max(app_clock - req.prefetch_lead_ms, last);
        issue = std::min(issue, app_clock);
        last = issue;
      } else {
        last_issue[static_cast<std::size_t>(req.disk)] = app_clock;
      }
      policy_.before_service(unit, issue);
      const DiskUnit::ServeResult result =
          unit.serve(issue, req.start_sector, req.size_bytes, req.kind);
      const TimeMs stall = std::max(0.0, result.completion - app_clock);
      report.response_ms.add(stall);
      report.responses.push_back(stall);
      policy_.after_service(unit, result.completion, stall);
      app_clock += stall;  // blocking only for the un-hidden remainder
      ++report.requests;
      report.bytes_transferred += req.size_bytes;
    }
  }

  // Trailing compute after the last request / power call.
  advance_app(trace_.compute_total_ms);
  const TimeMs end = app_clock;

  report.compute_ms = trace_.compute_total_ms;
  report.execution_ms = end;
  report.io_stall_ms = end - trace_.compute_total_ms;

  report.disks.reserve(units.size());
  for (DiskUnit& unit : units) {
    policy_.finalize(unit, end);
    unit.finish(end);
    DiskReport dr = make_disk_report(unit);
    report.total_energy += dr.breakdown.total_j();
    report.disks.push_back(std::move(dr));
  }
  return report;
}

SimReport Simulator::run_open_loop(FaultModel* faults) {
  std::vector<DiskUnit> units;
  units.reserve(static_cast<std::size_t>(trace_.total_disks));
  for (int d = 0; d < trace_.total_disks; ++d) {
    units.emplace_back(params_, d, faults);
  }
  for (DiskUnit& unit : units) policy_.attach(unit);

  SimReport report;
  report.policy_name = policy_.name();

  // Merge requests and power events by recorded timestamp; power events
  // win ties (they precede the iteration they annotate).
  std::size_t ri = 0;
  std::size_t pi = 0;
  TimeMs end = trace_.compute_total_ms;
  while (ri < trace_.requests.size() || pi < trace_.power_events.size()) {
    const bool take_power =
        pi < trace_.power_events.size() &&
        (ri >= trace_.requests.size() ||
         trace_.power_events[pi].app_time_ms <=
             trace_.requests[ri].arrival_ms);
    if (take_power) {
      const trace::PowerEvent& ev = trace_.power_events[pi++];
      const int d = ev.directive.disk;
      SDPM_REQUIRE(d >= 0 && d < trace_.total_disks,
                   "power event targets unknown disk");
      policy_.on_power_event(units[static_cast<std::size_t>(d)],
                             ev.app_time_ms, ev.directive);
    } else {
      const trace::Request& req = trace_.requests[ri++];
      SDPM_REQUIRE(req.disk >= 0 && req.disk < trace_.total_disks,
                   "request targets unknown disk");
      DiskUnit& unit = units[static_cast<std::size_t>(req.disk)];
      policy_.before_service(unit, req.arrival_ms);
      const DiskUnit::ServeResult result =
          unit.serve(req.arrival_ms, req.start_sector, req.size_bytes,
                     req.kind);
      const TimeMs response = result.completion - req.arrival_ms;
      report.response_ms.add(response);
      report.responses.push_back(response);
      end = std::max(end, result.completion);
      ++report.requests;
      report.bytes_transferred += req.size_bytes;
    }
  }

  report.compute_ms = trace_.compute_total_ms;
  report.execution_ms = end;
  report.io_stall_ms = end - trace_.compute_total_ms;

  report.disks.reserve(units.size());
  for (DiskUnit& unit : units) {
    policy_.finalize(unit, end);
    unit.finish(end);
    DiskReport dr = make_disk_report(unit);
    report.total_energy += dr.breakdown.total_j();
    report.disks.push_back(std::move(dr));
  }
  return report;
}

SimReport simulate(const trace::Trace& trace,
                   const disk::DiskParameters& params, PowerPolicy& policy,
                   ReplayMode mode, FaultConfig faults) {
  return Simulator(trace, params, policy, mode, faults).run();
}

}  // namespace sdpm::sim
