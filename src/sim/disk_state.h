// Structure-of-arrays hot state for the batched replay engine.
//
// The per-request replay loop touches a handful of per-disk scalars
// (clock, mode, RPM level, head position, last completion/issue times)
// millions of times per simulated second, while the per-disk statistics
// (energy breakdown, residency, fault counters, busy periods) are only
// read once at report time.  DiskArrayState splits the two: the hot
// scalars live here, packed contiguously and sized to the array's disk
// count, while DiskUnit keeps the cold accounting.  A standalone DiskUnit
// (tests, the multi-stream harness) owns a one-slot DiskArrayState of its
// own, so the split is invisible outside the simulator.
//
// LevelTable caches the derived per-RPM-level physics (idle/active power,
// rotational latency, transfer rate).  The uncached path evaluates
// pow(rpm_ratio, 2.8) per energy integration — by far the most expensive
// instruction stream in the hot loop.  Every cached value is produced by
// the same DiskParameters function the on-demand path used, so cached and
// uncached replays are bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "disk/parameters.h"
#include "disk/power_state.h"
#include "util/units.h"

namespace sdpm::sim {

/// Spindle operating mode (DiskUnit's power-state machine).
enum class DiskMode : std::uint8_t { kSpinning, kStandby, kTransition };

/// Per-ladder-state derived physics, precomputed once per replay: one
/// entry per serviceable level plus the resident power of every park.
class LevelTable {
 public:
  struct Level {
    Watts idle_w = 0;          ///< idle_power_at_level
    Watts active_w = 0;        ///< active_power_at_level
    TimeMs rot_latency_ms = 0; ///< rotational_latency_at_level
    double bytes_per_ms = 0;   ///< transfer_rate_at_level * 1e6 / 1e3
  };

  explicit LevelTable(const disk::DiskParameters& params) {
    levels_.resize(static_cast<std::size_t>(params.rpm_level_count()));
    for (int l = 0; l < params.rpm_level_count(); ++l) {
      Level& lv = levels_[static_cast<std::size_t>(l)];
      lv.idle_w = params.idle_power_at_level(l);
      lv.active_w = params.active_power_at_level(l);
      lv.rot_latency_ms = params.rotational_latency_at_level(l);
      // Same expression as DiskParameters::service_time so the cached
      // transfer times match the uncached ones bit for bit.
      lv.bytes_per_ms = params.transfer_rate_at_level(l) * 1'000'000.0 /
                        1'000.0;
    }
    parks_w_.resize(static_cast<std::size_t>(params.park_count()));
    for (int p = 0; p < params.park_count(); ++p) {
      parks_w_[static_cast<std::size_t>(p)] = params.park_power(p);
    }
  }

  const Level& operator[](int level) const {
    return levels_[static_cast<std::size_t>(level)];
  }

  /// Resident power of park `park` (park 0 the deepest; legacy disks have
  /// exactly the standby park).
  Watts park_w(int park) const {
    return parks_w_[static_cast<std::size_t>(park)];
  }

 private:
  std::vector<Level> levels_;
  std::vector<Watts> parks_w_;
};

/// Hot per-disk replay state for an array of `disks` units.
struct DiskArrayState {
  /// Scalars touched on every energy integration / service.
  struct Core {
    TimeMs clock = 0;            ///< energy integrated up to here
    TimeMs last_completion = 0;  ///< start of the current idle period
    BlockNo next_sector = -1;    ///< head position (sequential detection)
    std::int32_t level = 0;      ///< physical RPM level while spinning
    DiskMode mode = DiskMode::kSpinning;
    std::uint8_t park = 0;       ///< resident park while mode == kStandby
  };

  /// Valid only while the slot's mode is kTransition.
  struct Transition {
    TimeMs end = 0;
    Watts power = 0;
    std::int32_t after_level = 0;
    disk::PowerState bucket = disk::PowerState::kRpmShift;
    DiskMode after_mode = DiskMode::kSpinning;
    std::uint8_t after_park = 0;  ///< park entered when after_mode is kStandby
  };

  /// Validates `params` once for the whole array (the per-unit validation
  /// the standalone DiskUnit constructor performs).
  DiskArrayState(int disks, const disk::DiskParameters& params)
      : core(static_cast<std::size_t>(disks)),
        trans(static_cast<std::size_t>(disks)),
        last_issue(static_cast<std::size_t>(disks), 0.0),
        levels((params.validate(), params)) {
    const std::int32_t top = params.max_level();
    for (Core& c : core) c.level = top;
  }

  std::vector<Core> core;
  std::vector<Transition> trans;
  /// Closed-loop prefetch bookkeeping: per-disk last issue time.
  std::vector<TimeMs> last_issue;
  LevelTable levels;
};

}  // namespace sdpm::sim
