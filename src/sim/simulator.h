// Trace-driven, closed-loop disk-subsystem simulator.
//
// Replays a trace against a bank of DiskUnits under a PowerPolicy.  The
// application model matches the paper's benchmarks: a single thread that
// computes (think time = the gap between consecutive compute-timeline
// timestamps), issues one blocking I/O request at a time, and executes
// compiler-inserted power calls asynchronously (their Tm overhead is
// already folded into the trace's compute timeline).  Every I/O stall —
// queueing behind a transition, demand spin-up, slow service at reduced
// RPM — pushes the application's completion time out, which is how power
// management's performance cost (paper Fig. 4/6/8) arises.
//
// The replay engine consumes a trace::RequestSource — either a cursor over
// a materialized trace::Trace or the streaming generator — so large traces
// can be simulated with O(1) request memory.  Both delivery paths drive
// the identical replay loop and produce bit-identical reports.
#pragma once

#include "disk/parameters.h"
#include "sim/faults.h"
#include "sim/policy.h"
#include "sim/report.h"
#include "trace/request.h"
#include "trace/source.h"

namespace sdpm::obs {
class EventTracer;
}

namespace sdpm::sim {

/// Replay discipline.
enum class ReplayMode {
  /// The application blocks on each request; think times come from the
  /// compute-timeline deltas and every stall pushes later requests out
  /// (the paper's single-application model; the default).
  kClosedLoop,
  /// Requests fire at their recorded timestamps regardless of completion
  /// (classic DiskSim open-loop replay; disks queue FIFO).  Useful for
  /// replaying externally captured traces.
  kOpenLoop,
};

/// Default number of trace items pulled per RequestSource::next_batch
/// call: one virtual delivery call amortized over a block, with the block
/// small enough to stay resident in L1/L2.
inline constexpr std::size_t kReplayBatchSize = 256;

/// Which replay engine Simulator::run selects.
enum class DispatchMode {
  /// Static kernel when the policy provides one and fault injection is
  /// off; the generic virtual engine otherwise (the default).
  kAuto,
  /// Always the generic virtual engine (equivalence testing, debugging).
  kForceVirtual,
  /// Always the policy's static kernel — throws if the policy has none.
  /// Unlike kAuto this also takes the kernel under fault injection, which
  /// the equivalence suite uses to pin kernel×faults behavior.
  kForceKernel,
};

/// Replay configuration beyond the trace itself.
struct SimOptions {
  ReplayMode mode = ReplayMode::kClosedLoop;
  /// Fault-injection configuration; the default FaultConfig::none()
  /// reproduces the fault-free simulator bit for bit.
  FaultConfig faults = FaultConfig::none();
  /// Record the response time of every request in SimReport::responses
  /// (index-aligned with the trace's request order).  Off by default: the
  /// histogram statistics are always kept, but only consumers that need
  /// the full vector — measured per-nest timelines, per-request asserts in
  /// tests — should pay the O(requests) allocation.
  bool capture_responses = false;
  /// Record a BusyPeriod per serviced request in DiskReport::busy_periods.
  /// Off by default (it is a per-request push_back on the hot path); the
  /// oracle post-processors (ITPM/IDRPM) and the idle-gap profilers are
  /// the only consumers, and the runner enables it for the Base replay
  /// they read.
  bool capture_busy_periods = false;
  /// Engine selection; kAuto picks the static kernel for built-in
  /// policies on fault-free runs and the virtual engine otherwise.
  DispatchMode dispatch = DispatchMode::kAuto;
  /// Items per next_batch block (clamped to >= 1).  The default balances
  /// virtual-call amortization against scratch locality; the equivalence
  /// suite fuzzes it — results are identical for every value.
  std::size_t replay_batch = kReplayBatchSize;
  /// Observability tracer (not owned, may be nullptr or sink-less).  run()
  /// resolves it once via obs::effective_tracer(), so the untraced replay
  /// pays nothing beyond one null test per emission site and produces
  /// bit-identical results either way.
  obs::EventTracer* tracer = nullptr;
};

class Simulator {
 public:
  /// Replay a materialized trace.  `faults` selects the fault-injection
  /// configuration; the default FaultConfig::none() reproduces the
  /// fault-free simulator bit for bit.
  Simulator(const trace::Trace& trace, const disk::DiskParameters& params,
            PowerPolicy& policy, ReplayMode mode = ReplayMode::kClosedLoop,
            FaultConfig faults = FaultConfig::none());

  /// Replay a materialized trace with full options.
  Simulator(const trace::Trace& trace, const disk::DiskParameters& params,
            PowerPolicy& policy, const SimOptions& options);

  /// Replay from a streaming source (the trace is never materialized).
  /// The source must outlive the simulator and is consumed by run().
  Simulator(trace::RequestSource& source, const disk::DiskParameters& params,
            PowerPolicy& policy, const SimOptions& options = {});

  /// Run the replay to completion and produce the report.  A Simulator is
  /// single-shot: a second call throws sdpm::Error (the policy, fault and
  /// request streams carry state from the first replay, so rerunning would
  /// silently produce different results).
  SimReport run();

 private:
  const trace::Trace* trace_ = nullptr;     // materialized path
  trace::RequestSource* source_ = nullptr;  // streaming path
  const disk::DiskParameters& params_;
  PowerPolicy& policy_;
  SimOptions options_;
  bool ran_ = false;
};

/// Convenience: simulate `trace` under `policy` with `params`.
SimReport simulate(const trace::Trace& trace,
                   const disk::DiskParameters& params, PowerPolicy& policy,
                   ReplayMode mode = ReplayMode::kClosedLoop,
                   FaultConfig faults = FaultConfig::none());

/// Convenience with full options.
SimReport simulate(const trace::Trace& trace,
                   const disk::DiskParameters& params, PowerPolicy& policy,
                   const SimOptions& options);

/// Convenience: consume `source` under `policy` with `params`.
SimReport simulate(trace::RequestSource& source,
                   const disk::DiskParameters& params, PowerPolicy& policy,
                   const SimOptions& options = {});

}  // namespace sdpm::sim
