// Trace-driven, closed-loop disk-subsystem simulator.
//
// Replays a Trace against a bank of DiskUnits under a PowerPolicy.  The
// application model matches the paper's benchmarks: a single thread that
// computes (think time = the gap between consecutive compute-timeline
// timestamps), issues one blocking I/O request at a time, and executes
// compiler-inserted power calls asynchronously (their Tm overhead is
// already folded into the trace's compute timeline).  Every I/O stall —
// queueing behind a transition, demand spin-up, slow service at reduced
// RPM — pushes the application's completion time out, which is how power
// management's performance cost (paper Fig. 4/6/8) arises.
#pragma once

#include "disk/parameters.h"
#include "sim/faults.h"
#include "sim/policy.h"
#include "sim/report.h"
#include "trace/request.h"

namespace sdpm::sim {

/// Replay discipline.
enum class ReplayMode {
  /// The application blocks on each request; think times come from the
  /// compute-timeline deltas and every stall pushes later requests out
  /// (the paper's single-application model; the default).
  kClosedLoop,
  /// Requests fire at their recorded timestamps regardless of completion
  /// (classic DiskSim open-loop replay; disks queue FIFO).  Useful for
  /// replaying externally captured traces.
  kOpenLoop,
};

class Simulator {
 public:
  /// `faults` selects the fault-injection configuration; the default
  /// FaultConfig::none() reproduces the fault-free simulator bit for bit.
  Simulator(const trace::Trace& trace, const disk::DiskParameters& params,
            PowerPolicy& policy, ReplayMode mode = ReplayMode::kClosedLoop,
            FaultConfig faults = FaultConfig::none());

  /// Run the replay to completion and produce the report.  A Simulator is
  /// single-shot: a second call throws sdpm::Error (the policy and fault
  /// streams carry state from the first replay, so rerunning would silently
  /// produce different results).
  SimReport run();

 private:
  SimReport run_closed_loop(FaultModel* faults);
  SimReport run_open_loop(FaultModel* faults);

  const trace::Trace& trace_;
  const disk::DiskParameters& params_;
  PowerPolicy& policy_;
  ReplayMode mode_;
  FaultConfig faults_;
  bool ran_ = false;
};

/// Convenience: simulate `trace` under `policy` with `params`.
SimReport simulate(const trace::Trace& trace,
                   const disk::DiskParameters& params, PowerPolicy& policy,
                   ReplayMode mode = ReplayMode::kClosedLoop,
                   FaultConfig faults = FaultConfig::none());

}  // namespace sdpm::sim
