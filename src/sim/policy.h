// Abstract runtime power-management policy.
//
// The simulator calls these hooks while replaying a trace; concrete
// policies (reactive TPM, reactive DRPM, the compiler-directed proactive
// executor, and the no-op base) live in policy/.  A policy manipulates
// disks exclusively through the timestamped DiskUnit command API.
#pragma once

#include "ir/program.h"
#include "sim/disk_unit.h"
#include "util/units.h"

namespace sdpm::obs {
class EventTracer;
}

namespace sdpm::sim {

struct ReplayContext;  // sim/replay.h
struct SimReport;      // sim/report.h

class PowerPolicy {
 public:
  /// A statically dispatched replay kernel: the whole replay loop
  /// instantiated against a concrete policy type (sim/replay.h), so the
  /// per-item policy hooks compile to direct, inlinable calls.
  using ReplayFn = SimReport (*)(PowerPolicy&, const ReplayContext&);

  virtual ~PowerPolicy() = default;

  /// The policy's statically dispatched replay kernel, or nullptr to use
  /// the generic virtual-dispatch engine (the default).  Built-in final
  /// policies return sim::replay_run<Self>; wrapper/custom policies leave
  /// this alone.  Both engines are the same template, so the two dispatch
  /// paths produce bit-identical reports (pinned by the equivalence
  /// suite).
  virtual ReplayFn replay_kernel() const { return nullptr; }

  /// Attach the observability tracer for the coming replay (nullptr =
  /// untraced).  Called by the simulator before attach(); policies emit
  /// decision events (break-even examinations, RPM-window verdicts) when
  /// `tracer_` is set.  Wrapper policies must forward to their inner
  /// policies.  Observation only — a policy's decisions must be identical
  /// with tracing on or off.
  virtual void set_tracer(obs::EventTracer* tracer) { tracer_ = tracer; }

  /// Called once per disk before the replay starts.
  virtual void attach(DiskUnit& disk) { (void)disk; }

  /// Called when a request for `disk` arrives at `now`, before service.
  /// Reactive policies apply any state change that should have happened
  /// during the idle gap [disk.last_completion(), now) here.
  virtual void before_service(DiskUnit& disk, TimeMs now) {
    (void)disk;
    (void)now;
  }

  /// Called after the request completes.
  virtual void after_service(DiskUnit& disk, TimeMs completion,
                             TimeMs response_ms) {
    (void)disk;
    (void)completion;
    (void)response_ms;
  }

  /// Called when the application executes a compiler-inserted power call.
  virtual void on_power_event(DiskUnit& disk, TimeMs now,
                              const ir::PowerDirective& directive) {
    (void)disk;
    (void)now;
    (void)directive;
  }

  /// Called once per disk after the last request, before energy is
  /// finalized at `end`.
  virtual void finalize(DiskUnit& disk, TimeMs end) {
    (void)disk;
    (void)end;
  }

  virtual const char* name() const = 0;

 protected:
  obs::EventTracer* tracer_ = nullptr;
};

}  // namespace sdpm::sim
