#include "sim/multi_stream.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace sdpm::sim {

namespace {

/// Closed-loop replay state of one stream.
struct Stream {
  const trace::Trace* trace = nullptr;
  std::size_t next_request = 0;
  std::size_t next_power = 0;
  TimeMs compute_cursor = 0;  ///< position on the stream's compute timeline
  TimeMs app_clock = 0;       ///< simulated wall clock of this stream
  bool finished = false;

  /// Compute-timeline timestamp of the next event (request or power call),
  /// or the trailing compute end when both are exhausted.
  TimeMs next_event_compute_time(bool* is_power) const {
    const bool have_req = next_request < trace->requests.size();
    const bool have_pow = next_power < trace->power_events.size();
    if (have_pow &&
        (!have_req || trace->power_events[next_power].app_time_ms <=
                          trace->requests[next_request].arrival_ms)) {
      *is_power = true;
      return trace->power_events[next_power].app_time_ms;
    }
    if (have_req) {
      *is_power = false;
      return trace->requests[next_request].arrival_ms;
    }
    *is_power = false;
    return trace->compute_total_ms;  // trailing compute only
  }

  /// Wall-clock time at which the next event becomes ready.
  TimeMs ready_time() const {
    bool is_power = false;
    const TimeMs t = next_event_compute_time(&is_power);
    return app_clock + std::max(0.0, t - compute_cursor);
  }
};

}  // namespace

MultiStreamReport simulate_streams(std::span<const trace::Trace> traces,
                                   const disk::DiskParameters& params,
                                   PowerPolicy& policy,
                                   std::span<const std::string> names,
                                   FaultConfig faults) {
  SDPM_REQUIRE(!traces.empty(), "need at least one stream");
  const int disks = traces[0].total_disks;
  for (const trace::Trace& t : traces) {
    SDPM_REQUIRE(t.total_disks == disks,
                 "all streams must share the disk array");
  }
  faults.validate();
  FaultModel fault_model(faults);
  FaultModel* fault_ptr = faults.enabled() ? &fault_model : nullptr;

  std::vector<DiskUnit> units;
  units.reserve(static_cast<std::size_t>(disks));
  for (int d = 0; d < disks; ++d) units.emplace_back(params, d, fault_ptr);
  for (DiskUnit& unit : units) policy.attach(unit);

  MultiStreamReport report;
  report.streams.resize(traces.size());
  std::vector<Stream> streams(traces.size());
  for (std::size_t s = 0; s < traces.size(); ++s) {
    streams[s].trace = &traces[s];
    report.streams[s].name =
        s < names.size() ? names[s] : "stream" + std::to_string(s);
    report.streams[s].compute_ms = traces[s].compute_total_ms;
  }

  // Event loop: always advance the stream whose next event is ready
  // earliest in wall-clock time.  Serving a request only ever delays the
  // served stream, so this greedy order is the global arrival order.
  for (;;) {
    std::size_t best = streams.size();
    TimeMs best_ready = std::numeric_limits<TimeMs>::infinity();
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (streams[s].finished) continue;
      const TimeMs ready = streams[s].ready_time();
      if (ready < best_ready) {
        best_ready = ready;
        best = s;
      }
    }
    if (best == streams.size()) break;  // all finished

    Stream& stream = streams[best];
    bool is_power = false;
    const TimeMs event_compute = stream.next_event_compute_time(&is_power);
    // Think up to the event.
    stream.app_clock += std::max(0.0, event_compute - stream.compute_cursor);
    stream.compute_cursor = std::max(stream.compute_cursor, event_compute);

    if (is_power) {
      const trace::PowerEvent& ev =
          stream.trace->power_events[stream.next_power++];
      SDPM_REQUIRE(ev.directive.disk >= 0 && ev.directive.disk < disks,
                   "power event targets unknown disk");
      policy.on_power_event(units[static_cast<std::size_t>(ev.directive.disk)],
                            stream.app_clock, ev.directive);
      continue;
    }
    if (stream.next_request < stream.trace->requests.size()) {
      const trace::Request& req =
          stream.trace->requests[stream.next_request++];
      SDPM_REQUIRE(req.disk >= 0 && req.disk < disks,
                   "request targets unknown disk");
      DiskUnit& unit = units[static_cast<std::size_t>(req.disk)];
      policy.before_service(unit, stream.app_clock);
      const DiskUnit::ServeResult result = unit.serve(
          stream.app_clock, req.start_sector, req.size_bytes, req.kind);
      const TimeMs response = result.completion - stream.app_clock;
      report.streams[best].response_ms.add(response);
      ++report.streams[best].requests;
      policy.after_service(unit, result.completion, response);
      stream.app_clock = result.completion;  // blocking I/O
      continue;
    }
    // Trailing compute consumed: the stream is done.
    stream.finished = true;
    report.streams[best].completion_ms = stream.app_clock;
    report.makespan_ms = std::max(report.makespan_ms, stream.app_clock);
  }

  report.disks.reserve(units.size());
  for (DiskUnit& unit : units) {
    policy.finalize(unit, report.makespan_ms);
    unit.finish(report.makespan_ms);
    DiskReport dr = make_disk_report(unit);
    report.total_energy += dr.breakdown.total_j();
    report.disks.push_back(std::move(dr));
  }
  return report;
}

}  // namespace sdpm::sim
