// Generic power-state ladder: one device model for TPM, DRPM, multi-idle
// SCSI power conditions, and NVMe-style autonomous power states.
//
// A PowerLadder is an ordered set of power states plus an explicit
// transition-cost matrix.  States are listed in ascending capability:
// first the *parked* states (not serviceable; deepest/lowest-power first),
// then the *serviceable* levels (slowest first, full speed last).  The
// classic dichotomy the paper simulates is recovered as two degenerate
// instances:
//   - TPM: one park ("standby") + one or more levels; the park's entry and
//     wake edges carry the Table 1 spin-down/up costs.
//   - DRPM: the serviceable levels are the RPM ladder; level<->level edges
//     carry the RPM-shift costs (billed at the faster level's idle power,
//     the paper's conservative assumption).
// Datasheet-real devices compose both: SCSI power-condition timers
// (Idle_B/C, Standby_Y/Z — each a park with its own idleness timer and
// progressively cheaper power / costlier wake) and NVMe power states
// (several serviceable tiers plus parked states with ~ms wake).
//
// DiskParameters consumes a ladder through its generic accessors; the
// legacy TpmParameters/DrpmParameters structs survive as a thin
// constructor onto the ladder (from_legacy), and from_legacy's derived
// values are produced by the exact legacy formulas, so a ladder-built
// Ultrastar is bit-identical to the legacy path.
#pragma once

#include <string>
#include <vector>

#include "util/json.h"
#include "util/units.h"

namespace sdpm::disk {

struct DiskParameters;  // parameters.h (cyclic: DiskParameters holds a ladder)

/// One rung of the ladder.
struct LadderState {
  std::string name;
  /// True when the state can service requests (a "level"); false for
  /// parked states the disk must leave before serving.
  bool serviceable = false;
  /// Power while resident and not servicing (parked states: the resident
  /// power; levels: the idle power).
  Watts idle_power = 0;
  /// Power while servicing a request (levels only).
  Watts active_power = 0;
  /// Average rotational latency while servicing (levels only; 0 for
  /// non-rotating media).
  TimeMs rot_latency_ms = 0;
  /// Media transfer rate while servicing (levels only; must be > 0).
  double transfer_mb_per_s = 0;
  /// Nominal spindle speed (informational; 0 for non-rotating media).
  int rpm = 0;
  /// Idleness timer: a reactive policy enters this state once the disk has
  /// been idle this long.  < 0 means no timer (the deepest park then falls
  /// back to the break-even threshold).  Parked states only.
  TimeMs timer_ms = -1;

  friend bool operator==(const LadderState&, const LadderState&) = default;
};

/// One directed transition edge.  `time_ms < 0` marks an absent edge.
struct LadderEdge {
  TimeMs time_ms = -1;
  Joules energy_j = 0;

  bool present() const { return time_ms >= 0; }

  friend bool operator==(const LadderEdge&, const LadderEdge&) = default;
};

struct PowerLadder {
  inline static constexpr int kSchemaVersion = 1;

  std::string name;  ///< preset id / descriptor id
  std::string model;
  std::string interface;
  Bytes capacity = 0;
  TimeMs average_seek_time = 0;

  /// Fixed electronics power, drawn in every serviceable state (the floor
  /// of the Table 1 decomposition).  Deliberately independent of any
  /// park's power: a parked device may drop parts of the electronics, so
  /// the two are no longer coupled by convention.
  Watts electronics_power = 0;
  /// Spindle power at the top level for RPM-scaling ladders; < 0 when the
  /// ladder does not follow the RPM^e scaling law.  When set, the validator
  /// enforces the Table 1 decomposition top.idle = electronics + spindle.
  Watts spindle_power_at_max = -1;

  // Reactive-controller knobs (DRPM window heuristic).
  int window_size = 30;
  double lower_tolerance = 0.05;
  double upper_tolerance = 0.15;
  /// Reactive idleness threshold override; < 0 = per-state timers, with
  /// break-even as the deepest park's fallback.
  TimeMs idleness_threshold = -1;

  /// Ascending capability: parks (deepest first), then levels (slowest
  /// first).  The last state is the full-speed level ("top").
  std::vector<LadderState> states;
  /// Row-major states.size() x states.size() transition matrix.
  std::vector<LadderEdge> edges;

  friend bool operator==(const PowerLadder&, const PowerLadder&) = default;

  // ---- shape -------------------------------------------------------------

  int state_count() const { return static_cast<int>(states.size()); }
  /// Parked (non-serviceable) states; park p is state index p, p = 0 the
  /// deepest.
  int park_count() const;
  /// Serviceable levels; level l is state index park_count() + l.
  int level_count() const { return state_count() - park_count(); }
  int park_state(int park) const { return park; }
  int level_state(int level) const { return park_count() + level; }
  int top_state() const { return state_count() - 1; }

  const LadderEdge& edge(int from_state, int to_state) const;
  LadderEdge& edge_ref(int from_state, int to_state);
  /// Index of the named state; -1 when absent.
  int state_index(const std::string& state_name) const;

  // ---- validation / serialization ---------------------------------------

  /// Validate the descriptor; throws sdpm::Error with a message naming the
  /// offending state or edge and the violated rule.
  void validate() const;

  /// JSON document (sorted keys, absent edges omitted); round-trips
  /// through from_json bit for bit.
  Json to_json() const;
  static PowerLadder from_json(const Json& json);

  // ---- constructors -------------------------------------------------------

  /// Derive the ladder of a legacy (TpmParameters/DrpmParameters) disk.
  /// Every derived value is computed by the legacy formula it replaces, so
  /// a ladder-built disk reproduces the legacy disk bit for bit.
  static PowerLadder from_legacy(const DiskParameters& params,
                                 std::string ladder_name = "legacy");

  // ---- shipped presets ---------------------------------------------------

  /// Preset names, in presentation order:
  ///   ultrastar_36z15  the paper's disk (Table 1), derived from the
  ///                    legacy structs
  ///   scsi_multi_idle  enterprise SCSI power conditions: Idle_B/Idle_C
  ///                    head-unload parks + Standby_Y/Standby_Z, each with
  ///                    its own timer and wake cost
  ///   nvme_tiered      NVMe-style: three serviceable tiers (PS0..PS2)
  ///                    plus two autonomous parks (PS3/PS4) with ~ms wake
  static const std::vector<std::string>& preset_names();
  static bool is_preset(const std::string& preset);
  /// The named preset (validated); throws sdpm::Error for unknown names.
  static PowerLadder preset(const std::string& preset);
};

}  // namespace sdpm::disk
