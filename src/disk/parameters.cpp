#include "disk/parameters.h"

#include <cmath>
#include <cstdlib>

#include "disk/ladder.h"
#include "util/error.h"

namespace sdpm::disk {

DiskParameters DiskParameters::ultrastar_36z15() {
  return DiskParameters{};  // defaults are the Table 1 values
}

// ---- ladder backing --------------------------------------------------------

const PowerLadder& DiskParameters::ladder() const {
  SDPM_REQUIRE(native_ladder != nullptr, "disk has no ladder backing");
  return *native_ladder;
}

PowerLadder DiskParameters::to_ladder(std::string ladder_name) const {
  return PowerLadder::from_legacy(*this, std::move(ladder_name));
}

DiskParameters DiskParameters::from_ladder(const PowerLadder& ladder) {
  ladder.validate();
  DiskParameters params;
  params.model = ladder.model;
  params.interface = ladder.interface;
  params.capacity = ladder.capacity;
  params.average_seek_time = ladder.average_seek_time;
  const LadderState& top =
      ladder.states[static_cast<std::size_t>(ladder.top_state())];
  params.rpm = top.rpm;
  params.average_rotation_time = top.rot_latency_ms;
  params.internal_transfer_mb_per_s = top.transfer_mb_per_s;
  // Mirror the ladder's top level and default park into the legacy structs
  // so rendered summaries stay meaningful; all physics reads go through
  // the ladder-branching accessors, never these mirrors.
  params.tpm.active_power = top.active_power;
  params.tpm.idle_power = top.idle_power;
  params.tpm.standby_power = ladder.states[0].idle_power;
  const LadderEdge& down = ladder.edge(ladder.top_state(), 0);
  params.tpm.spin_down_time = down.time_ms;
  params.tpm.spin_down_energy = down.energy_j;
  const LadderEdge& up = ladder.edge(0, ladder.top_state());
  params.tpm.spin_up_time = up.time_ms;
  params.tpm.spin_up_energy = up.energy_j;
  params.tpm.idleness_threshold = ladder.idleness_threshold;
  params.drpm.window_size = ladder.window_size;
  params.drpm.lower_tolerance = ladder.lower_tolerance;
  params.drpm.upper_tolerance = ladder.upper_tolerance;
  params.drpm.electronics_power = ladder.electronics_power;
  params.drpm.spindle_power_at_max =
      ladder.spindle_power_at_max >= 0 ? ladder.spindle_power_at_max : 0;
  params.drpm.access_power_at_max = top.active_power - top.idle_power;
  params.native_ladder = std::make_shared<const PowerLadder>(ladder);
  return params;
}

DiskParameters DiskParameters::preset(const std::string& preset_name) {
  // The paper's disk stays legacy-backed (the two paths are proven
  // bit-identical; the legacy backing keeps default reports and traces
  // byte-stable).  Every other preset is ladder-backed.
  if (preset_name == "ultrastar_36z15") return ultrastar_36z15();
  return from_ladder(PowerLadder::preset(preset_name));
}

const std::vector<std::string>& DiskParameters::preset_names() {
  return PowerLadder::preset_names();
}

// ---- parked states ---------------------------------------------------------

int DiskParameters::park_count() const {
  return has_ladder() ? native_ladder->park_count() : 1;
}

const std::string& DiskParameters::park_name(int park) const {
  if (has_ladder()) {
    SDPM_REQUIRE(park >= 0 && park < native_ladder->park_count(),
                 "park index out of range");
    return native_ladder->states[static_cast<std::size_t>(park)].name;
  }
  SDPM_REQUIRE(park == 0, "park index out of range");
  static const std::string kStandbyName = "standby";
  return kStandbyName;
}

Watts DiskParameters::park_power(int park) const {
  if (has_ladder()) {
    SDPM_REQUIRE(park >= 0 && park < native_ladder->park_count(),
                 "park index out of range");
    return native_ladder->states[static_cast<std::size_t>(park)].idle_power;
  }
  SDPM_REQUIRE(park == 0, "park index out of range");
  return tpm.standby_power;
}

TimeMs DiskParameters::park_timer_ms(int park) const {
  if (has_ladder()) {
    SDPM_REQUIRE(park >= 0 && park < native_ladder->park_count(),
                 "park index out of range");
    return native_ladder->states[static_cast<std::size_t>(park)].timer_ms;
  }
  SDPM_REQUIRE(park == 0, "park index out of range");
  return -1;
}

bool DiskParameters::park_entry_possible(int level, int park) const {
  if (!has_ladder()) return park == 0;
  return native_ladder
      ->edge(native_ladder->level_state(level), native_ladder->park_state(park))
      .present();
}

TimeMs DiskParameters::park_entry_time(int level, int park) const {
  if (has_ladder()) {
    const LadderEdge& e = native_ladder->edge(
        native_ladder->level_state(level), native_ladder->park_state(park));
    SDPM_REQUIRE(e.present(), "no entry edge into the requested park");
    return e.time_ms;
  }
  SDPM_REQUIRE(park == 0, "park index out of range");
  (void)level;
  return tpm.spin_down_time;
}

Joules DiskParameters::park_entry_energy(int level, int park) const {
  if (has_ladder()) {
    const LadderEdge& e = native_ladder->edge(
        native_ladder->level_state(level), native_ladder->park_state(park));
    SDPM_REQUIRE(e.present(), "no entry edge into the requested park");
    return e.energy_j;
  }
  SDPM_REQUIRE(park == 0, "park index out of range");
  (void)level;
  return tpm.spin_down_energy;
}

bool DiskParameters::park_descent_possible(int from_park, int to_park) const {
  if (!has_ladder()) return false;
  return native_ladder
      ->edge(native_ladder->park_state(from_park),
             native_ladder->park_state(to_park))
      .present();
}

TimeMs DiskParameters::park_descent_time(int from_park, int to_park) const {
  const LadderEdge& e = ladder().edge(native_ladder->park_state(from_park),
                                      native_ladder->park_state(to_park));
  SDPM_REQUIRE(e.present(), "no descent edge between the requested parks");
  return e.time_ms;
}

Joules DiskParameters::park_descent_energy(int from_park, int to_park) const {
  const LadderEdge& e = ladder().edge(native_ladder->park_state(from_park),
                                      native_ladder->park_state(to_park));
  SDPM_REQUIRE(e.present(), "no descent edge between the requested parks");
  return e.energy_j;
}

TimeMs DiskParameters::wake_time(int park) const {
  if (has_ladder()) {
    return native_ladder
        ->edge(native_ladder->park_state(park), native_ladder->top_state())
        .time_ms;
  }
  SDPM_REQUIRE(park == 0, "park index out of range");
  return tpm.spin_up_time;
}

Joules DiskParameters::wake_energy(int park) const {
  if (has_ladder()) {
    return native_ladder
        ->edge(native_ladder->park_state(park), native_ladder->top_state())
        .energy_j;
  }
  SDPM_REQUIRE(park == 0, "park index out of range");
  return tpm.spin_up_energy;
}

// ---- levels ----------------------------------------------------------------

int DiskParameters::rpm_level_count() const {
  if (has_ladder()) return native_ladder->level_count();
  return (drpm.max_rpm - drpm.min_rpm) / drpm.rpm_step + 1;
}

int DiskParameters::rpm_of_level(int level) const {
  SDPM_REQUIRE(level >= 0 && level < rpm_level_count(),
               "RPM level out of range");
  if (has_ladder()) {
    return native_ladder
        ->states[static_cast<std::size_t>(native_ladder->level_state(level))]
        .rpm;
  }
  return drpm.min_rpm + level * drpm.rpm_step;
}

int DiskParameters::level_of_rpm(int target_rpm) const {
  if (has_ladder()) {
    for (int level = 0; level < native_ladder->level_count(); ++level) {
      if (native_ladder
              ->states[static_cast<std::size_t>(
                  native_ladder->level_state(level))]
              .rpm == target_rpm) {
        return level;
      }
    }
    throw Error("RPM value not on the ladder");
  }
  SDPM_REQUIRE(target_rpm >= drpm.min_rpm && target_rpm <= drpm.max_rpm &&
                   (target_rpm - drpm.min_rpm) % drpm.rpm_step == 0,
               "RPM value not on the ladder");
  return (target_rpm - drpm.min_rpm) / drpm.rpm_step;
}

Watts DiskParameters::idle_power_at_level(int level) const {
  if (has_ladder()) {
    SDPM_REQUIRE(level >= 0 && level < native_ladder->level_count(),
                 "RPM level out of range");
    return native_ladder
        ->states[static_cast<std::size_t>(native_ladder->level_state(level))]
        .idle_power;
  }
  const double ratio = static_cast<double>(rpm_of_level(level)) /
                       static_cast<double>(drpm.max_rpm);
  return drpm.electronics_power +
         drpm.spindle_power_at_max * std::pow(ratio, drpm.spindle_exponent);
}

Watts DiskParameters::active_power_at_level(int level) const {
  if (has_ladder()) {
    SDPM_REQUIRE(level >= 0 && level < native_ladder->level_count(),
                 "RPM level out of range");
    return native_ladder
        ->states[static_cast<std::size_t>(native_ladder->level_state(level))]
        .active_power;
  }
  const double ratio = static_cast<double>(rpm_of_level(level)) /
                       static_cast<double>(drpm.max_rpm);
  return idle_power_at_level(level) + drpm.access_power_at_max * ratio;
}

Watts DiskParameters::standby_power() const { return park_power(0); }

TimeMs DiskParameters::rotational_latency_at_level(int level) const {
  if (has_ladder()) {
    SDPM_REQUIRE(level >= 0 && level < native_ladder->level_count(),
                 "RPM level out of range");
    return native_ladder
        ->states[static_cast<std::size_t>(native_ladder->level_state(level))]
        .rot_latency_ms;
  }
  const double ratio = static_cast<double>(drpm.max_rpm) /
                       static_cast<double>(rpm_of_level(level));
  return average_rotation_time * ratio;
}

double DiskParameters::transfer_rate_at_level(int level) const {
  if (has_ladder()) {
    SDPM_REQUIRE(level >= 0 && level < native_ladder->level_count(),
                 "RPM level out of range");
    return native_ladder
        ->states[static_cast<std::size_t>(native_ladder->level_state(level))]
        .transfer_mb_per_s;
  }
  const double ratio = static_cast<double>(rpm_of_level(level)) /
                       static_cast<double>(drpm.max_rpm);
  return internal_transfer_mb_per_s * ratio;
}

TimeMs DiskParameters::service_time(Bytes request_bytes, int level,
                                    bool sequential) const {
  SDPM_ASSERT(request_bytes >= 0, "negative request size");
  const double rate_bytes_per_ms =
      transfer_rate_at_level(level) * 1'000'000.0 / 1'000.0;
  const TimeMs transfer = static_cast<double>(request_bytes) / rate_bytes_per_ms;
  if (sequential) return transfer;
  return average_seek_time + rotational_latency_at_level(level) + transfer;
}

TimeMs DiskParameters::rpm_transition_time(int from_level,
                                           int to_level) const {
  if (has_ladder()) {
    if (from_level == to_level) return 0.0;
    return native_ladder
        ->edge(native_ladder->level_state(from_level),
               native_ladder->level_state(to_level))
        .time_ms;
  }
  const int steps = std::abs(to_level - from_level);
  return static_cast<double>(steps) * drpm.transition_time_per_step;
}

Joules DiskParameters::rpm_transition_energy(int from_level,
                                             int to_level) const {
  if (from_level == to_level) return 0.0;
  if (has_ladder()) {
    return native_ladder
        ->edge(native_ladder->level_state(from_level),
               native_ladder->level_state(to_level))
        .energy_j;
  }
  const int faster = std::max(from_level, to_level);
  return joules_from_watt_ms(idle_power_at_level(faster),
                             rpm_transition_time(from_level, to_level));
}

// ---- TPM thresholds --------------------------------------------------------

TimeMs DiskParameters::break_even_time() const { return break_even_time(0); }

TimeMs DiskParameters::break_even_time(int park) const {
  if (!has_ladder()) {
    SDPM_REQUIRE(park == 0, "park index out of range");
    const Joules transition_cost =
        tpm.spin_down_energy + tpm.spin_up_energy -
        tpm.standby_power *
            seconds_from_ms(tpm.spin_down_time + tpm.spin_up_time);
    const Watts saving_rate = tpm.idle_power - tpm.standby_power;
    SDPM_REQUIRE(saving_rate > 0, "idle power must exceed standby power");
    return ms_from_seconds(transition_cost / saving_rate);
  }
  const int top = native_ladder->level_count() - 1;
  const TimeMs down_t = park_entry_time(top, park);
  const Joules down_e = park_entry_energy(top, park);
  const TimeMs up_t = wake_time(park);
  const Joules up_e = wake_energy(park);
  const Watts resident = park_power(park);
  const Joules transition_cost =
      down_e + up_e - resident * seconds_from_ms(down_t + up_t);
  const Watts saving_rate = idle_power_at_level(top) - resident;
  SDPM_REQUIRE(saving_rate > 0,
               "top-level idle power must exceed the park's resident power");
  return ms_from_seconds(transition_cost / saving_rate);
}

TimeMs DiskParameters::effective_idleness_threshold() const {
  const TimeMs configured =
      has_ladder() ? native_ladder->idleness_threshold : tpm.idleness_threshold;
  return configured >= 0 ? configured : break_even_time();
}

// ---- reactive-controller knobs --------------------------------------------

int DiskParameters::window_size() const {
  return has_ladder() ? native_ladder->window_size : drpm.window_size;
}

double DiskParameters::lower_tolerance() const {
  return has_ladder() ? native_ladder->lower_tolerance : drpm.lower_tolerance;
}

double DiskParameters::upper_tolerance() const {
  return has_ladder() ? native_ladder->upper_tolerance : drpm.upper_tolerance;
}

void DiskParameters::validate() const {
  if (has_ladder()) {
    native_ladder->validate();
    return;
  }
  SDPM_REQUIRE(rpm == drpm.max_rpm, "nominal RPM must equal the top level");
  SDPM_REQUIRE(drpm.min_rpm > 0 && drpm.min_rpm <= drpm.max_rpm,
               "bad RPM range");
  SDPM_REQUIRE((drpm.max_rpm - drpm.min_rpm) % drpm.rpm_step == 0,
               "RPM step must divide the RPM range");
  SDPM_REQUIRE(tpm.active_power >= tpm.idle_power &&
                   tpm.idle_power > tpm.standby_power,
               "power ordering must be active >= idle > standby");
  SDPM_REQUIRE(average_seek_time >= 0 && average_rotation_time >= 0,
               "negative positioning times");
  SDPM_REQUIRE(internal_transfer_mb_per_s > 0, "transfer rate must be > 0");
  SDPM_REQUIRE(drpm.window_size >= 1, "window size must be >= 1");
  // The TPM decomposition must reproduce Table 1 at the top level.
  const Watts idle_top = drpm.electronics_power + drpm.spindle_power_at_max;
  SDPM_REQUIRE(std::abs(idle_top - tpm.idle_power) < 1e-6,
               "electronics + spindle power must equal idle power");
}

}  // namespace sdpm::disk
