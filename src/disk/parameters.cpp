#include "disk/parameters.h"

#include <cmath>
#include <cstdlib>

#include "util/error.h"

namespace sdpm::disk {

DiskParameters DiskParameters::ultrastar_36z15() {
  return DiskParameters{};  // defaults are the Table 1 values
}

int DiskParameters::rpm_level_count() const {
  return (drpm.max_rpm - drpm.min_rpm) / drpm.rpm_step + 1;
}

int DiskParameters::rpm_of_level(int level) const {
  SDPM_REQUIRE(level >= 0 && level < rpm_level_count(),
               "RPM level out of range");
  return drpm.min_rpm + level * drpm.rpm_step;
}

int DiskParameters::level_of_rpm(int target_rpm) const {
  SDPM_REQUIRE(target_rpm >= drpm.min_rpm && target_rpm <= drpm.max_rpm &&
                   (target_rpm - drpm.min_rpm) % drpm.rpm_step == 0,
               "RPM value not on the ladder");
  return (target_rpm - drpm.min_rpm) / drpm.rpm_step;
}

Watts DiskParameters::idle_power_at_level(int level) const {
  const double ratio = static_cast<double>(rpm_of_level(level)) /
                       static_cast<double>(drpm.max_rpm);
  return drpm.electronics_power +
         drpm.spindle_power_at_max * std::pow(ratio, drpm.spindle_exponent);
}

Watts DiskParameters::active_power_at_level(int level) const {
  const double ratio = static_cast<double>(rpm_of_level(level)) /
                       static_cast<double>(drpm.max_rpm);
  return idle_power_at_level(level) + drpm.access_power_at_max * ratio;
}

TimeMs DiskParameters::rotational_latency_at_level(int level) const {
  const double ratio = static_cast<double>(drpm.max_rpm) /
                       static_cast<double>(rpm_of_level(level));
  return average_rotation_time * ratio;
}

double DiskParameters::transfer_rate_at_level(int level) const {
  const double ratio = static_cast<double>(rpm_of_level(level)) /
                       static_cast<double>(drpm.max_rpm);
  return internal_transfer_mb_per_s * ratio;
}

TimeMs DiskParameters::service_time(Bytes request_bytes, int level,
                                    bool sequential) const {
  SDPM_ASSERT(request_bytes >= 0, "negative request size");
  const double rate_bytes_per_ms =
      transfer_rate_at_level(level) * 1'000'000.0 / 1'000.0;
  const TimeMs transfer = static_cast<double>(request_bytes) / rate_bytes_per_ms;
  if (sequential) return transfer;
  return average_seek_time + rotational_latency_at_level(level) + transfer;
}

TimeMs DiskParameters::rpm_transition_time(int from_level,
                                           int to_level) const {
  const int steps = std::abs(to_level - from_level);
  return static_cast<double>(steps) * drpm.transition_time_per_step;
}

Joules DiskParameters::rpm_transition_energy(int from_level,
                                             int to_level) const {
  if (from_level == to_level) return 0.0;
  const int faster = std::max(from_level, to_level);
  return joules_from_watt_ms(idle_power_at_level(faster),
                             rpm_transition_time(from_level, to_level));
}

TimeMs DiskParameters::break_even_time() const {
  const Joules transition_cost =
      tpm.spin_down_energy + tpm.spin_up_energy -
      tpm.standby_power *
          seconds_from_ms(tpm.spin_down_time + tpm.spin_up_time);
  const Watts saving_rate = tpm.idle_power - tpm.standby_power;
  SDPM_REQUIRE(saving_rate > 0, "idle power must exceed standby power");
  return ms_from_seconds(transition_cost / saving_rate);
}

TimeMs DiskParameters::effective_idleness_threshold() const {
  return tpm.idleness_threshold >= 0 ? tpm.idleness_threshold
                                     : break_even_time();
}

void DiskParameters::validate() const {
  SDPM_REQUIRE(rpm == drpm.max_rpm, "nominal RPM must equal the top level");
  SDPM_REQUIRE(drpm.min_rpm > 0 && drpm.min_rpm <= drpm.max_rpm,
               "bad RPM range");
  SDPM_REQUIRE((drpm.max_rpm - drpm.min_rpm) % drpm.rpm_step == 0,
               "RPM step must divide the RPM range");
  SDPM_REQUIRE(tpm.active_power >= tpm.idle_power &&
                   tpm.idle_power > tpm.standby_power,
               "power ordering must be active >= idle > standby");
  SDPM_REQUIRE(average_seek_time >= 0 && average_rotation_time >= 0,
               "negative positioning times");
  SDPM_REQUIRE(internal_transfer_mb_per_s > 0, "transfer rate must be > 0");
  SDPM_REQUIRE(drpm.window_size >= 1, "window size must be >= 1");
  // The TPM decomposition must reproduce Table 1 at the top level.
  const Watts idle_top = drpm.electronics_power + drpm.spindle_power_at_max;
  SDPM_REQUIRE(std::abs(idle_top - tpm.idle_power) < 1e-6,
               "electronics + spindle power must equal idle power");
}

}  // namespace sdpm::disk
