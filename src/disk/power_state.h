// Disk power-state taxonomy and energy accounting buckets.
#pragma once

#include <string>

#include "util/error.h"
#include "util/units.h"

namespace sdpm::disk {

/// Operating condition a disk can be in at a point of simulated time.
enum class PowerState {
  kActive,        ///< servicing a request (at some RPM level)
  kIdle,          ///< spinning, no request in service (at some RPM level)
  kStandby,       ///< spun down (TPM low-power mode)
  kSpinningDown,  ///< TPM transition idle -> standby
  kSpinningUp,    ///< TPM transition standby -> active
  kRpmShift,      ///< DRPM transition between RPM levels
};

const char* to_string(PowerState state);

/// Per-disk time and energy decomposition across the states above; the
/// simulator reports one of these per disk plus the system-wide sum.
struct EnergyBreakdown {
  TimeMs active_ms = 0;
  TimeMs idle_ms = 0;
  TimeMs standby_ms = 0;
  TimeMs spin_down_ms = 0;
  TimeMs spin_up_ms = 0;
  TimeMs rpm_shift_ms = 0;

  Joules active_j = 0;
  Joules idle_j = 0;
  Joules standby_j = 0;
  Joules spin_down_j = 0;
  Joules spin_up_j = 0;
  Joules rpm_shift_j = 0;

  TimeMs total_ms() const {
    return active_ms + idle_ms + standby_ms + spin_down_ms + spin_up_ms +
           rpm_shift_ms;
  }
  Joules total_j() const {
    return active_j + idle_j + standby_j + spin_down_j + spin_up_j +
           rpm_shift_j;
  }

  // Inline: the simulator calls this once per energy segment, i.e. at
  // least once per serviced request — a cross-TU call here is measurable.
  void add(PowerState state, TimeMs duration, Joules energy) {
    SDPM_ASSERT(duration >= -1e-9 && energy >= -1e-9,
                "negative duration or energy");
    switch (state) {
      case PowerState::kActive:
        active_ms += duration;
        active_j += energy;
        break;
      case PowerState::kIdle:
        idle_ms += duration;
        idle_j += energy;
        break;
      case PowerState::kStandby:
        standby_ms += duration;
        standby_j += energy;
        break;
      case PowerState::kSpinningDown:
        spin_down_ms += duration;
        spin_down_j += energy;
        break;
      case PowerState::kSpinningUp:
        spin_up_ms += duration;
        spin_up_j += energy;
        break;
      case PowerState::kRpmShift:
        rpm_shift_ms += duration;
        rpm_shift_j += energy;
        break;
    }
  }

  EnergyBreakdown& operator+=(const EnergyBreakdown& other);

  std::string to_string() const;
};

}  // namespace sdpm::disk
