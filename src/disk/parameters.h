// Disk model parameters (paper Table 1) and derived physics.
//
// Defaults reproduce the IBM Ultrastar 36Z15 figures the paper extracted
// from the datasheet, plus the DRPM scaling laws from Gurumurthi et al.
// (ISCA'03) that the paper's simulator relies on:
//   - rotational latency scales as 1/RPM,
//   - media transfer rate scales linearly with RPM,
//   - spindle power scales as RPM^2.8 above a fixed electronics floor,
//   - RPM transitions cost time proportional to the RPM distance and are
//     billed at the faster level's power (the paper's stated conservative
//     assumption).
#pragma once

#include <string>
#include <vector>

#include "util/units.h"

namespace sdpm::disk {

/// TPM (traditional power management) spin-down/up characteristics.
struct TpmParameters {
  Watts active_power = 13.5;
  Watts idle_power = 10.2;
  Watts standby_power = 2.5;
  Joules spin_down_energy = 13.0;          ///< idle -> standby
  TimeMs spin_down_time = 1'500.0;         ///< 1.5 s
  Joules spin_up_energy = 135.0;           ///< standby -> active
  TimeMs spin_up_time = 10'900.0;          ///< 10.9 s
  /// Reactive TPM idleness threshold.  Default: the break-even time (the
  /// classic 2-competitive choice); see break_even_time().
  TimeMs idleness_threshold = -1.0;        ///< <0 means "use break-even"
};

/// DRPM (dynamic RPM) ladder and reactive-controller parameters.
struct DrpmParameters {
  int min_rpm = 3'000;
  int max_rpm = 15'000;
  int rpm_step = 1'200;
  int window_size = 30;  ///< requests per controller window (paper: 30)
  /// Reactive controller tolerances on the relative change of windowed
  /// average response time (Gurumurthi et al. heuristic).
  double lower_tolerance = 0.05;
  double upper_tolerance = 0.15;
  /// Time to move one RPM step (same for up and down).  Full swing
  /// (3,000 <-> 15,000) takes 10 steps = 50 ms, two orders of magnitude
  /// under the 10.9 s spin-up — the paper's premise that RPM modulation is
  /// "much smaller than typical spin-up/down times", and the regime in
  /// which the hypothetical DRPM disk can exploit the ~100 ms..1 s per-disk
  /// inter-access gaps these workloads produce at Table 2's ~10 ms request
  /// spacing over 8 disks.
  TimeMs transition_time_per_step = 5.0;
  /// Spindle power exponent (power ~ RPM^2.8, DRPM paper).
  double spindle_exponent = 2.8;
  /// Fixed electronics power, spinning or not while powered (equals the
  /// standby power so the decomposition is consistent with Table 1).
  Watts electronics_power = 2.5;
  /// Spindle power at max RPM: idle(15k) - electronics = 10.2 - 2.5.
  Watts spindle_power_at_max = 7.7;
  /// Additional power while servicing at max RPM: active - idle.
  Watts access_power_at_max = 3.3;
};

/// Full disk model (mechanics + TPM + DRPM).
struct DiskParameters {
  std::string model = "IBM Ultrastar 36Z15";
  std::string interface = "SCSI";
  Bytes capacity = gib(18);
  int rpm = 15'000;
  TimeMs average_seek_time = 3.4;
  TimeMs average_rotation_time = 2.0;  ///< avg rotational latency at max RPM
  double internal_transfer_mb_per_s = 55.0;

  TpmParameters tpm;
  DrpmParameters drpm;

  /// The paper's default disk.
  static DiskParameters ultrastar_36z15();

  // ---- DRPM ladder -------------------------------------------------------

  /// Number of discrete RPM levels; level 0 is min_rpm, the top level is
  /// max_rpm.
  int rpm_level_count() const;

  /// RPM of level `level`.
  int rpm_of_level(int level) const;

  /// Highest (fastest) level index.
  int max_level() const { return rpm_level_count() - 1; }

  /// Level whose RPM equals `target_rpm` (must be on the ladder).
  int level_of_rpm(int target_rpm) const;

  // ---- power -------------------------------------------------------------

  /// Power while spinning idle at `level`.
  Watts idle_power_at_level(int level) const;

  /// Power while servicing a request at `level`.
  Watts active_power_at_level(int level) const;

  /// Power while spun down (standby).
  Watts standby_power() const { return tpm.standby_power; }

  // ---- mechanics ---------------------------------------------------------

  /// Average rotational latency at `level` (scales with 1/RPM).
  TimeMs rotational_latency_at_level(int level) const;

  /// Media transfer rate at `level` in MB/s (scales with RPM).
  double transfer_rate_at_level(int level) const;

  /// Service time of one request at `level`: optional seek + rotational
  /// latency (skipped when `sequential`), plus transfer.
  TimeMs service_time(Bytes request_bytes, int level, bool sequential) const;

  // ---- transitions -------------------------------------------------------

  /// Time to move the spindle from `from_level` to `to_level`.
  TimeMs rpm_transition_time(int from_level, int to_level) const;

  /// Energy of an RPM transition: billed at the faster level's idle power
  /// for the transition duration (the paper's conservative assumption).
  Joules rpm_transition_energy(int from_level, int to_level) const;

  // ---- TPM thresholds ----------------------------------------------------

  /// Minimum idle-period length for which spinning down saves energy:
  /// (E_down + E_up - P_standby*(T_down + T_up)) / (P_idle - P_standby).
  TimeMs break_even_time() const;

  /// Effective reactive-TPM idleness threshold (configured value, or
  /// break-even when unset).
  TimeMs effective_idleness_threshold() const;

  /// Validate parameter consistency; throws sdpm::Error.
  void validate() const;
};

}  // namespace sdpm::disk
