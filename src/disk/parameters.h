// Disk model parameters (paper Table 1) and derived physics.
//
// Defaults reproduce the IBM Ultrastar 36Z15 figures the paper extracted
// from the datasheet, plus the DRPM scaling laws from Gurumurthi et al.
// (ISCA'03) that the paper's simulator relies on:
//   - rotational latency scales as 1/RPM,
//   - media transfer rate scales linearly with RPM,
//   - spindle power scales as RPM^2.8 above a fixed electronics floor,
//   - RPM transitions cost time proportional to the RPM distance and are
//     billed at the faster level's power (the paper's stated conservative
//     assumption).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/units.h"

namespace sdpm::disk {

struct PowerLadder;  // ladder.h

/// TPM (traditional power management) spin-down/up characteristics.
struct TpmParameters {
  Watts active_power = 13.5;
  Watts idle_power = 10.2;
  Watts standby_power = 2.5;
  Joules spin_down_energy = 13.0;          ///< idle -> standby
  TimeMs spin_down_time = 1'500.0;         ///< 1.5 s
  Joules spin_up_energy = 135.0;           ///< standby -> active
  TimeMs spin_up_time = 10'900.0;          ///< 10.9 s
  /// Reactive TPM idleness threshold.  Default: the break-even time (the
  /// classic 2-competitive choice); see break_even_time().
  TimeMs idleness_threshold = -1.0;        ///< <0 means "use break-even"
};

/// DRPM (dynamic RPM) ladder and reactive-controller parameters.
struct DrpmParameters {
  int min_rpm = 3'000;
  int max_rpm = 15'000;
  int rpm_step = 1'200;
  int window_size = 30;  ///< requests per controller window (paper: 30)
  /// Reactive controller tolerances on the relative change of windowed
  /// average response time (Gurumurthi et al. heuristic).
  double lower_tolerance = 0.05;
  double upper_tolerance = 0.15;
  /// Time to move one RPM step (same for up and down).  Full swing
  /// (3,000 <-> 15,000) takes 10 steps = 50 ms, two orders of magnitude
  /// under the 10.9 s spin-up — the paper's premise that RPM modulation is
  /// "much smaller than typical spin-up/down times", and the regime in
  /// which the hypothetical DRPM disk can exploit the ~100 ms..1 s per-disk
  /// inter-access gaps these workloads produce at Table 2's ~10 ms request
  /// spacing over 8 disks.
  TimeMs transition_time_per_step = 5.0;
  /// Spindle power exponent (power ~ RPM^2.8, DRPM paper).
  double spindle_exponent = 2.8;
  /// Fixed electronics power while serviceable (the floor of the Table 1
  /// decomposition).  The Ultrastar figures happen to match the standby
  /// power, but nothing requires that: standby draw is a property of the
  /// parked state, not of the electronics floor.
  Watts electronics_power = 2.5;
  /// Spindle power at max RPM: idle(15k) - electronics = 10.2 - 2.5.
  /// The Table 1 decomposition electronics + spindle_at_max == idle is
  /// enforced by validate(); electronics_power is otherwise independent of
  /// TpmParameters::standby_power (a parked device may keep more or less
  /// of its electronics alive than the spun-down floor suggests).
  Watts spindle_power_at_max = 7.7;
  /// Additional power while servicing at max RPM: active - idle.
  Watts access_power_at_max = 3.3;
};

/// Full disk model.  Two backings share one accessor surface:
///   - *legacy*: the TpmParameters/DrpmParameters structs below; every
///     derived quantity is computed by the original Table 1 formulas.
///     Mutating `tpm`/`drpm` fields directly keeps working.
///   - *ladder*: a generic PowerLadder descriptor (see ladder.h) with
///     arbitrary parked states, serviceable levels and an explicit
///     transition-cost matrix.  The legacy structs then only mirror the
///     ladder's top level for display.
/// from_ladder(PowerLadder::from_legacy(p)) reproduces a legacy disk `p`
/// bit for bit (each ladder value is produced by the formula it replaces).
struct DiskParameters {
  std::string model = "IBM Ultrastar 36Z15";
  std::string interface = "SCSI";
  Bytes capacity = gib(18);
  int rpm = 15'000;
  TimeMs average_seek_time = 3.4;
  TimeMs average_rotation_time = 2.0;  ///< avg rotational latency at max RPM
  double internal_transfer_mb_per_s = 55.0;

  TpmParameters tpm;
  DrpmParameters drpm;

  /// Ladder backing; null for legacy-backed disks.  Shared so copies of
  /// DiskParameters stay cheap (SweepEngine copies configs across threads).
  std::shared_ptr<const PowerLadder> native_ladder;

  /// The paper's default disk (legacy-backed Table 1 values).
  static DiskParameters ultrastar_36z15();

  // ---- ladder backing ----------------------------------------------------

  bool has_ladder() const { return native_ladder != nullptr; }
  /// The backing ladder; requires has_ladder().
  const PowerLadder& ladder() const;
  /// This disk as a ladder: the backing ladder, or the legacy model
  /// converted via PowerLadder::from_legacy.
  PowerLadder to_ladder(std::string ladder_name = "device") const;
  /// A ladder-backed disk (validates the ladder; mirrors its top level
  /// into the legacy structs for display).
  static DiskParameters from_ladder(const PowerLadder& ladder);
  /// Shipped device presets (see PowerLadder::preset_names).  The
  /// `ultrastar_36z15` preset is the legacy-backed paper disk; the others
  /// are ladder-backed.
  static DiskParameters preset(const std::string& preset_name);
  static const std::vector<std::string>& preset_names();

  // ---- parked states -----------------------------------------------------

  /// Number of parked (non-serviceable) states; park 0 is the deepest.
  /// Legacy disks have exactly one park ("standby").
  int park_count() const;
  /// The park a bare spin-down directive targets (the deepest).
  int default_park() const { return 0; }
  const std::string& park_name(int park) const;
  /// Resident power while parked in `park`.
  Watts park_power(int park) const;
  /// Idleness timer of `park` (< 0 = none; reactive policies then fall
  /// back to the break-even threshold for the default park).
  TimeMs park_timer_ms(int park) const;
  /// Entry cost from serviceable `level` into `park`; entry must be
  /// possible (check park_entry_possible for non-default parks).
  bool park_entry_possible(int level, int park) const;
  TimeMs park_entry_time(int level, int park) const;
  Joules park_entry_energy(int level, int park) const;
  /// Descent between parks (deepening while already parked).
  bool park_descent_possible(int from_park, int to_park) const;
  TimeMs park_descent_time(int from_park, int to_park) const;
  Joules park_descent_energy(int from_park, int to_park) const;
  /// Wake cost from `park` back to the top level.
  TimeMs wake_time(int park) const;
  Joules wake_energy(int park) const;

  // ---- DRPM ladder -------------------------------------------------------

  /// Number of discrete RPM levels; level 0 is min_rpm, the top level is
  /// max_rpm.
  int rpm_level_count() const;

  /// RPM of level `level`.
  int rpm_of_level(int level) const;

  /// Highest (fastest) level index.
  int max_level() const { return rpm_level_count() - 1; }

  /// Level whose RPM equals `target_rpm` (must be on the ladder).
  int level_of_rpm(int target_rpm) const;

  // ---- power -------------------------------------------------------------

  /// Power while spinning idle at `level`.
  Watts idle_power_at_level(int level) const;

  /// Power while servicing a request at `level`.
  Watts active_power_at_level(int level) const;

  /// Power while spun down into the deepest park.
  Watts standby_power() const;

  // ---- mechanics ---------------------------------------------------------

  /// Average rotational latency at `level` (scales with 1/RPM).
  TimeMs rotational_latency_at_level(int level) const;

  /// Media transfer rate at `level` in MB/s (scales with RPM).
  double transfer_rate_at_level(int level) const;

  /// Service time of one request at `level`: optional seek + rotational
  /// latency (skipped when `sequential`), plus transfer.
  TimeMs service_time(Bytes request_bytes, int level, bool sequential) const;

  // ---- transitions -------------------------------------------------------

  /// Time to move the spindle from `from_level` to `to_level`.
  TimeMs rpm_transition_time(int from_level, int to_level) const;

  /// Energy of an RPM transition: billed at the faster level's idle power
  /// for the transition duration (the paper's conservative assumption).
  Joules rpm_transition_energy(int from_level, int to_level) const;

  // ---- TPM thresholds ----------------------------------------------------

  /// Minimum idle-period length for which parking in the deepest park
  /// saves energy:
  /// (E_down + E_up - P_park*(T_down + T_up)) / (P_idle - P_park).
  TimeMs break_even_time() const;

  /// Break-even generalized to any park (entry from and wake back to the
  /// top level).
  TimeMs break_even_time(int park) const;

  /// Effective reactive-TPM idleness threshold (configured value, or
  /// break-even when unset).
  TimeMs effective_idleness_threshold() const;

  // ---- reactive-controller knobs ----------------------------------------

  int window_size() const;
  double lower_tolerance() const;
  double upper_tolerance() const;

  /// Validate parameter consistency; throws sdpm::Error.
  void validate() const;
};

}  // namespace sdpm::disk
