#include "disk/power_state.h"

#include "util/error.h"
#include "util/strings.h"

namespace sdpm::disk {

const char* to_string(PowerState state) {
  switch (state) {
    case PowerState::kActive:
      return "active";
    case PowerState::kIdle:
      return "idle";
    case PowerState::kStandby:
      return "standby";
    case PowerState::kSpinningDown:
      return "spin-down";
    case PowerState::kSpinningUp:
      return "spin-up";
    case PowerState::kRpmShift:
      return "rpm-shift";
  }
  return "?";
}

EnergyBreakdown& EnergyBreakdown::operator+=(const EnergyBreakdown& other) {
  active_ms += other.active_ms;
  idle_ms += other.idle_ms;
  standby_ms += other.standby_ms;
  spin_down_ms += other.spin_down_ms;
  spin_up_ms += other.spin_up_ms;
  rpm_shift_ms += other.rpm_shift_ms;
  active_j += other.active_j;
  idle_j += other.idle_j;
  standby_j += other.standby_j;
  spin_down_j += other.spin_down_j;
  spin_up_j += other.spin_up_j;
  rpm_shift_j += other.rpm_shift_j;
  return *this;
}

std::string EnergyBreakdown::to_string() const {
  return str_printf(
      "active %.1fJ/%.0fms idle %.1fJ/%.0fms standby %.1fJ/%.0fms "
      "down %.1fJ up %.1fJ shift %.1fJ",
      active_j, active_ms, idle_j, idle_ms, standby_j, standby_ms,
      spin_down_j, spin_up_j, rpm_shift_j);
}

}  // namespace sdpm::disk
