#include "disk/ladder.h"

#include <algorithm>
#include <deque>

#include "disk/parameters.h"
#include "util/error.h"
#include "util/strings.h"

namespace sdpm::disk {

namespace {

constexpr double kDecompositionTol = 1e-6;

[[noreturn]] void fail(const PowerLadder& ladder, const std::string& what) {
  throw Error("PowerLadder '" + (ladder.name.empty() ? "?" : ladder.name) +
              "': " + what);
}

}  // namespace

int PowerLadder::park_count() const {
  int parks = 0;
  for (const LadderState& s : states) {
    if (s.serviceable) break;
    ++parks;
  }
  return parks;
}

const LadderEdge& PowerLadder::edge(int from_state, int to_state) const {
  const int n = state_count();
  SDPM_REQUIRE(from_state >= 0 && from_state < n && to_state >= 0 &&
                   to_state < n,
               "ladder edge endpoint out of range");
  return edges[static_cast<std::size_t>(from_state * n + to_state)];
}

LadderEdge& PowerLadder::edge_ref(int from_state, int to_state) {
  const int n = state_count();
  SDPM_REQUIRE(from_state >= 0 && from_state < n && to_state >= 0 &&
                   to_state < n,
               "ladder edge endpoint out of range");
  return edges[static_cast<std::size_t>(from_state * n + to_state)];
}

int PowerLadder::state_index(const std::string& state_name) const {
  for (int i = 0; i < state_count(); ++i) {
    if (states[static_cast<std::size_t>(i)].name == state_name) return i;
  }
  return -1;
}

void PowerLadder::validate() const {
  const int n = state_count();
  if (n < 2) fail(*this, "needs at least one parked and one serviceable state");
  if (n > 64) fail(*this, "more than 64 states");
  if (edges.size() != static_cast<std::size_t>(n) * static_cast<std::size_t>(n)) {
    fail(*this, str_printf("edge matrix holds %zu entries, want %d x %d",
                           edges.size(), n, n));
  }

  // Shape: parks strictly before levels, at least one of each.
  const int parks = park_count();
  if (parks == 0) {
    fail(*this, "needs at least one parked (non-serviceable) state first");
  }
  if (parks == n) fail(*this, "needs at least one serviceable state");
  for (int i = parks; i < n; ++i) {
    if (!states[static_cast<std::size_t>(i)].serviceable) {
      fail(*this, "state '" + states[static_cast<std::size_t>(i)].name +
                      "': parked states must precede every serviceable state");
    }
  }

  // Per-state checks.
  for (int i = 0; i < n; ++i) {
    const LadderState& s = states[static_cast<std::size_t>(i)];
    if (s.name.empty()) fail(*this, str_printf("state %d has no name", i));
    for (int j = 0; j < i; ++j) {
      if (states[static_cast<std::size_t>(j)].name == s.name) {
        fail(*this, "duplicate state name '" + s.name + "'");
      }
    }
    if (s.idle_power < 0) fail(*this, "state '" + s.name + "': negative power");
    if (s.serviceable) {
      if (s.transfer_mb_per_s <= 0) {
        fail(*this, "state '" + s.name +
                        "': serviceable states need transfer_mb_per_s > 0");
      }
      if (s.rot_latency_ms < 0) {
        fail(*this, "state '" + s.name + "': negative rotational latency");
      }
      if (s.active_power < s.idle_power) {
        fail(*this, "state '" + s.name + "': active power below idle power");
      }
      if (s.idle_power + kDecompositionTol < electronics_power) {
        fail(*this,
             str_printf("state '%s': idle power %.6f W below the electronics "
                        "floor %.6f W (Table 1 decomposition)",
                        s.name.c_str(), s.idle_power, electronics_power));
      }
    } else if (s.timer_ms >= 0) {
      // A timer promises the device will sit in this state; it must be
      // able to leave it again.
      bool has_exit = false;
      for (int j = 0; j < n && !has_exit; ++j) {
        has_exit = j != i && edge(i, j).present();
      }
      if (!has_exit) {
        fail(*this, "state '" + s.name +
                        "': idleness timer on a non-serviceable state with "
                        "no outgoing transition");
      }
    }
  }

  // Monotone power ordering inside each band (ascending capability).
  for (int i = 1; i < parks; ++i) {
    if (states[static_cast<std::size_t>(i)].idle_power <
        states[static_cast<std::size_t>(i - 1)].idle_power) {
      fail(*this, "park '" + states[static_cast<std::size_t>(i)].name +
                      "': park powers must be non-decreasing (deepest first)");
    }
  }
  for (int i = parks + 1; i < n; ++i) {
    if (states[static_cast<std::size_t>(i)].idle_power <
        states[static_cast<std::size_t>(i - 1)].idle_power) {
      fail(*this, "level '" + states[static_cast<std::size_t>(i)].name +
                      "': level idle powers must be non-decreasing "
                      "(slowest first)");
    }
  }
  // Across the band boundary: parking must never cost more than idling at
  // the slowest level (the simulator's standby-floor invariant relies on
  // the deepest park being the global power minimum).
  if (states[static_cast<std::size_t>(parks)].idle_power <
      states[static_cast<std::size_t>(parks - 1)].idle_power) {
    fail(*this, "park '" + states[static_cast<std::size_t>(parks - 1)].name +
                    "': parked power exceeds the slowest level's idle power");
  }
  // Timers deepen with residence: deeper parks fire later.
  for (int i = 1; i < parks; ++i) {
    const TimeMs deep = states[static_cast<std::size_t>(i - 1)].timer_ms;
    const TimeMs shallow = states[static_cast<std::size_t>(i)].timer_ms;
    if (deep >= 0 && shallow >= 0 && deep < shallow) {
      fail(*this, "park '" + states[static_cast<std::size_t>(i - 1)].name +
                      "': a deeper park cannot have a shorter idleness timer "
                      "than a shallower one");
    }
  }

  // Edge costs.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const LadderEdge& e = edge(i, j);
      if (!e.present()) continue;
      if (e.energy_j < 0) {
        fail(*this, "edge " + states[static_cast<std::size_t>(i)].name +
                        " -> " + states[static_cast<std::size_t>(j)].name +
                        ": negative transition energy");
      }
    }
  }

  // Wake edges: every park must reach the top level directly (the demand
  // spin-up path), and every level must reach the default (deepest) park
  // (the spin-down directive path).
  const int top = top_state();
  for (int p = 0; p < parks; ++p) {
    if (!edge(p, top).present()) {
      fail(*this, "park '" + states[static_cast<std::size_t>(p)].name +
                      "': no wake edge to the top level '" +
                      states[static_cast<std::size_t>(top)].name + "'");
    }
  }
  for (int l = parks; l < n; ++l) {
    if (!edge(l, 0).present()) {
      fail(*this, "level '" + states[static_cast<std::size_t>(l)].name +
                      "': no entry edge to the default park '" +
                      states[0].name + "'");
    }
  }
  // Level mesh: an RPM/tier shift must be possible between any two levels.
  for (int i = parks; i < n; ++i) {
    for (int j = parks; j < n; ++j) {
      if (i != j && !edge(i, j).present()) {
        fail(*this, "levels '" + states[static_cast<std::size_t>(i)].name +
                        "' and '" + states[static_cast<std::size_t>(j)].name +
                        "' have no transition edge between them");
      }
    }
  }

  // Reachability: every state must be reachable from the top level, else
  // it can never be entered (a dead rung is almost certainly a typo).
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::deque<int> frontier{top};
  seen[static_cast<std::size_t>(top)] = true;
  while (!frontier.empty()) {
    const int s = frontier.front();
    frontier.pop_front();
    for (int j = 0; j < n; ++j) {
      if (!seen[static_cast<std::size_t>(j)] && edge(s, j).present()) {
        seen[static_cast<std::size_t>(j)] = true;
        frontier.push_back(j);
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    if (!seen[static_cast<std::size_t>(i)]) {
      fail(*this, "state '" + states[static_cast<std::size_t>(i)].name +
                      "': unreachable from the top level");
    }
  }

  // Mechanics + controller knobs.
  if (capacity <= 0) fail(*this, "capacity must be positive");
  if (average_seek_time < 0) fail(*this, "negative average seek time");
  if (electronics_power < 0) fail(*this, "negative electronics power");
  if (window_size < 1) fail(*this, "window size must be >= 1");
  if (lower_tolerance < 0 || upper_tolerance < lower_tolerance) {
    fail(*this, "controller tolerances must satisfy 0 <= lower <= upper");
  }

  // Explicit Table 1 decomposition for RPM-scaling ladders: the top
  // level's idle power must split into electronics + spindle exactly, so
  // an inconsistent descriptor fails here instead of skewing every
  // derived level power.
  if (spindle_power_at_max >= 0) {
    const Watts decomposed = electronics_power + spindle_power_at_max;
    const Watts idle_top = states[static_cast<std::size_t>(top)].idle_power;
    if (std::abs(decomposed - idle_top) > kDecompositionTol) {
      fail(*this,
           str_printf("Table 1 decomposition violated: electronics %.6f W + "
                      "spindle-at-max %.6f W = %.6f W, but the top level "
                      "'%s' idles at %.6f W",
                      electronics_power, spindle_power_at_max, decomposed,
                      states[static_cast<std::size_t>(top)].name.c_str(),
                      idle_top));
    }
  }
}

Json PowerLadder::to_json() const {
  Json states_json = Json::array();
  for (const LadderState& s : states) {
    Json state = Json::object();
    state.set("name", s.name)
        .set("serviceable", s.serviceable)
        .set("idle_power_w", s.idle_power)
        .set("active_power_w", s.active_power)
        .set("rot_latency_ms", s.rot_latency_ms)
        .set("transfer_mb_per_s", s.transfer_mb_per_s)
        .set("rpm", s.rpm)
        .set("timer_ms", s.timer_ms);
    states_json.push_back(std::move(state));
  }
  Json edges_json = Json::array();
  const int n = state_count();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const LadderEdge& e = edge(i, j);
      if (!e.present()) continue;
      Json entry = Json::object();
      entry.set("from", states[static_cast<std::size_t>(i)].name)
          .set("to", states[static_cast<std::size_t>(j)].name)
          .set("time_ms", e.time_ms)
          .set("energy_j", e.energy_j);
      edges_json.push_back(std::move(entry));
    }
  }
  Json json = Json::object();
  json.set("version", kSchemaVersion)
      .set("name", name)
      .set("model", model)
      .set("interface", interface)
      .set("capacity_bytes", capacity)
      .set("average_seek_time_ms", average_seek_time)
      .set("electronics_power_w", electronics_power)
      .set("spindle_power_at_max_w", spindle_power_at_max)
      .set("window_size", window_size)
      .set("lower_tolerance", lower_tolerance)
      .set("upper_tolerance", upper_tolerance)
      .set("idleness_threshold_ms", idleness_threshold)
      .set("states", std::move(states_json))
      .set("edges", std::move(edges_json));
  return json;
}

namespace {

void require_keys(const Json& json, std::initializer_list<const char*> known,
                  const char* what) {
  for (const auto& [key, value] : json.as_object()) {
    (void)value;
    if (std::find_if(known.begin(), known.end(), [&](const char* k) {
          return key == k;
        }) == known.end()) {
      throw Error(std::string("PowerLadder: unknown ") + what + " field '" +
                  key + "'");
    }
  }
}

double field_double(const Json& json, const char* key, double fallback) {
  const Json* f = json.find(key);
  return f == nullptr ? fallback : f->as_double();
}

std::int64_t field_int(const Json& json, const char* key,
                       std::int64_t fallback) {
  const Json* f = json.find(key);
  return f == nullptr ? fallback : f->as_int();
}

std::string field_string(const Json& json, const char* key,
                         const std::string& fallback) {
  const Json* f = json.find(key);
  return f == nullptr ? fallback : f->as_string();
}

}  // namespace

PowerLadder PowerLadder::from_json(const Json& json) {
  SDPM_REQUIRE(json.is_object(), "PowerLadder: expected a JSON object");
  require_keys(json,
               {"version", "name", "model", "interface", "capacity_bytes",
                "average_seek_time_ms", "electronics_power_w",
                "spindle_power_at_max_w", "window_size", "lower_tolerance",
                "upper_tolerance", "idleness_threshold_ms", "states", "edges"},
               "ladder");
  const std::int64_t version = field_int(json, "version", kSchemaVersion);
  SDPM_REQUIRE(version >= 1 && version <= kSchemaVersion,
               str_printf("PowerLadder: unsupported schema version %lld",
                          static_cast<long long>(version)));
  PowerLadder ladder;
  ladder.name = field_string(json, "name", "");
  ladder.model = field_string(json, "model", "");
  ladder.interface = field_string(json, "interface", "");
  ladder.capacity = field_int(json, "capacity_bytes", 0);
  ladder.average_seek_time = field_double(json, "average_seek_time_ms", 0);
  ladder.electronics_power = field_double(json, "electronics_power_w", 0);
  ladder.spindle_power_at_max =
      field_double(json, "spindle_power_at_max_w", -1);
  ladder.window_size =
      static_cast<int>(field_int(json, "window_size", ladder.window_size));
  ladder.lower_tolerance =
      field_double(json, "lower_tolerance", ladder.lower_tolerance);
  ladder.upper_tolerance =
      field_double(json, "upper_tolerance", ladder.upper_tolerance);
  ladder.idleness_threshold =
      field_double(json, "idleness_threshold_ms", ladder.idleness_threshold);

  for (const Json& state_json : json.at("states").as_array()) {
    SDPM_REQUIRE(state_json.is_object(),
                 "PowerLadder: each state must be an object");
    require_keys(state_json,
                 {"name", "serviceable", "idle_power_w", "active_power_w",
                  "rot_latency_ms", "transfer_mb_per_s", "rpm", "timer_ms"},
                 "state");
    LadderState s;
    s.name = state_json.at("name").as_string();
    if (const Json* f = state_json.find("serviceable")) {
      s.serviceable = f->as_bool();
    }
    s.idle_power = field_double(state_json, "idle_power_w", 0);
    s.active_power = field_double(state_json, "active_power_w", 0);
    s.rot_latency_ms = field_double(state_json, "rot_latency_ms", 0);
    s.transfer_mb_per_s = field_double(state_json, "transfer_mb_per_s", 0);
    s.rpm = static_cast<int>(field_int(state_json, "rpm", 0));
    s.timer_ms = field_double(state_json, "timer_ms", -1);
    ladder.states.push_back(std::move(s));
  }
  const int n = ladder.state_count();
  ladder.edges.assign(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n), LadderEdge{});
  for (const Json& edge_json : json.at("edges").as_array()) {
    SDPM_REQUIRE(edge_json.is_object(),
                 "PowerLadder: each edge must be an object");
    require_keys(edge_json, {"from", "to", "time_ms", "energy_j"}, "edge");
    const std::string& from = edge_json.at("from").as_string();
    const std::string& to = edge_json.at("to").as_string();
    const int fi = ladder.state_index(from);
    const int ti = ladder.state_index(to);
    SDPM_REQUIRE(fi >= 0, "PowerLadder: edge from unknown state '" + from + "'");
    SDPM_REQUIRE(ti >= 0, "PowerLadder: edge to unknown state '" + to + "'");
    LadderEdge& e = ladder.edge_ref(fi, ti);
    e.time_ms = edge_json.at("time_ms").as_double();
    e.energy_j = field_double(edge_json, "energy_j", 0);
    SDPM_REQUIRE(e.time_ms >= 0,
                 "PowerLadder: edge " + from + " -> " + to +
                     " has a negative transition time");
  }
  ladder.validate();
  return ladder;
}

PowerLadder PowerLadder::from_legacy(const DiskParameters& params,
                                     std::string ladder_name) {
  if (params.has_ladder()) {
    PowerLadder copy = params.ladder();
    copy.name = std::move(ladder_name);
    return copy;
  }
  PowerLadder ladder;
  ladder.name = std::move(ladder_name);
  ladder.model = params.model;
  ladder.interface = params.interface;
  ladder.capacity = params.capacity;
  ladder.average_seek_time = params.average_seek_time;
  ladder.electronics_power = params.drpm.electronics_power;
  ladder.spindle_power_at_max = params.drpm.spindle_power_at_max;
  ladder.window_size = params.drpm.window_size;
  ladder.lower_tolerance = params.drpm.lower_tolerance;
  ladder.upper_tolerance = params.drpm.upper_tolerance;
  ladder.idleness_threshold = params.tpm.idleness_threshold;

  LadderState standby;
  standby.name = "standby";
  standby.serviceable = false;
  standby.idle_power = params.tpm.standby_power;
  ladder.states.push_back(std::move(standby));
  const int levels = params.rpm_level_count();
  for (int l = 0; l < levels; ++l) {
    LadderState s;
    s.name = "rpm_" + std::to_string(params.rpm_of_level(l));
    s.serviceable = true;
    // Each derived value comes from the legacy formula it replaces, so the
    // stored doubles equal the on-the-fly values bit for bit.
    s.idle_power = params.idle_power_at_level(l);
    s.active_power = params.active_power_at_level(l);
    s.rot_latency_ms = params.rotational_latency_at_level(l);
    s.transfer_mb_per_s = params.transfer_rate_at_level(l);
    s.rpm = params.rpm_of_level(l);
    ladder.states.push_back(std::move(s));
  }
  const int n = ladder.state_count();
  ladder.edges.assign(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n), LadderEdge{});
  for (int i = 0; i < levels; ++i) {
    for (int j = 0; j < levels; ++j) {
      if (i == j) continue;
      LadderEdge& e = ladder.edge_ref(ladder.level_state(i),
                                      ladder.level_state(j));
      e.time_ms = params.rpm_transition_time(i, j);
      e.energy_j = params.rpm_transition_energy(i, j);
    }
    LadderEdge& down = ladder.edge_ref(ladder.level_state(i), 0);
    down.time_ms = params.tpm.spin_down_time;
    down.energy_j = params.tpm.spin_down_energy;
  }
  LadderEdge& up = ladder.edge_ref(0, ladder.top_state());
  up.time_ms = params.tpm.spin_up_time;
  up.energy_j = params.tpm.spin_up_energy;
  return ladder;
}

namespace {

PowerLadder make_scsi_multi_idle() {
  // Representative enterprise-SCSI power conditions (T10 power-condition
  // timers): one full-speed serviceable state plus the Idle_B / Idle_C
  // head-unload conditions and the Standby_Y / Standby_Z spun-down
  // conditions, each with its own idleness timer, power and wake cost.
  PowerLadder ladder;
  ladder.name = "scsi_multi_idle";
  ladder.model = "Enterprise SCSI (multi-idle power conditions)";
  ladder.interface = "SCSI";
  ladder.capacity = gib(300);
  ladder.average_seek_time = 3.5;
  ladder.electronics_power = 2.2;
  ladder.spindle_power_at_max = -1;  // single-speed spindle, no scaling law

  auto park = [](const char* name, Watts power, TimeMs timer) {
    LadderState s;
    s.name = name;
    s.serviceable = false;
    s.idle_power = power;
    s.timer_ms = timer;
    return s;
  };
  ladder.states.push_back(park("standby_z", 0.9, 300'000.0));
  ladder.states.push_back(park("standby_y", 1.6, 120'000.0));
  ladder.states.push_back(park("idle_c", 2.8, 15'000.0));
  ladder.states.push_back(park("idle_b", 5.4, 2'000.0));
  LadderState level;
  level.name = "active_idle";
  level.serviceable = true;
  level.idle_power = 11.6;
  level.active_power = 14.9;
  level.rot_latency_ms = 2.0;
  level.transfer_mb_per_s = 89.0;
  level.rpm = 15'000;
  ladder.states.push_back(std::move(level));

  const int n = ladder.state_count();
  ladder.edges.assign(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n), LadderEdge{});
  auto set = [&](const char* from, const char* to, TimeMs time, Joules energy) {
    LadderEdge& e = ladder.edge_ref(ladder.state_index(from),
                                    ladder.state_index(to));
    e.time_ms = time;
    e.energy_j = energy;
  };
  // Entries from full speed (head unload is quick; a full stop is not).
  set("active_idle", "idle_b", 500.0, 3.2);
  set("active_idle", "idle_c", 1'000.0, 5.5);
  set("active_idle", "standby_y", 4'000.0, 20.0);
  set("active_idle", "standby_z", 6'000.0, 26.0);
  // Progressive descent along the timer chain.
  set("idle_b", "idle_c", 600.0, 1.8);
  set("idle_c", "standby_y", 3'500.0, 11.0);
  set("standby_y", "standby_z", 2'500.0, 4.5);
  // Wakes (deeper parks pay more).
  set("idle_b", "active_idle", 500.0, 4.0);
  set("idle_c", "active_idle", 1'200.0, 9.0);
  set("standby_y", "active_idle", 7'000.0, 95.0);
  set("standby_z", "active_idle", 11'000.0, 140.0);
  return ladder;
}

PowerLadder make_nvme_tiered() {
  // NVMe-style power states: three serviceable tiers (PS0 fastest) and two
  // non-operational parks with millisecond-scale wake, modelled on typical
  // datacenter-SSD power-state tables.  No mechanics: zero seek and
  // rotational latency, throughput scales with the tier.
  PowerLadder ladder;
  ladder.name = "nvme_tiered";
  ladder.model = "Generic datacenter NVMe SSD";
  ladder.interface = "NVMe";
  ladder.capacity = gib(2'048);
  ladder.average_seek_time = 0.0;
  ladder.electronics_power = 0.3;
  ladder.spindle_power_at_max = -1;  // no spindle

  auto park = [](const char* name, Watts power, TimeMs timer) {
    LadderState s;
    s.name = name;
    s.serviceable = false;
    s.idle_power = power;
    s.timer_ms = timer;
    return s;
  };
  auto tier = [](const char* name, Watts idle, Watts active, double mb_per_s) {
    LadderState s;
    s.name = name;
    s.serviceable = true;
    s.idle_power = idle;
    s.active_power = active;
    s.transfer_mb_per_s = mb_per_s;
    return s;
  };
  ladder.states.push_back(park("ps4_deep_sleep", 0.005, 400.0));
  ladder.states.push_back(park("ps3_sleep", 0.05, 50.0));
  ladder.states.push_back(tier("ps2", 1.9, 3.3, 900.0));
  ladder.states.push_back(tier("ps1", 3.1, 5.4, 1'800.0));
  ladder.states.push_back(tier("ps0", 5.2, 8.5, 2'800.0));

  const int n = ladder.state_count();
  ladder.edges.assign(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n), LadderEdge{});
  auto set = [&](const char* from, const char* to, TimeMs time, Joules energy) {
    LadderEdge& e = ladder.edge_ref(ladder.state_index(from),
                                    ladder.state_index(to));
    e.time_ms = time;
    e.energy_j = energy;
  };
  // Tier shifts are electrical: tens of microseconds.
  for (const char* a : {"ps0", "ps1", "ps2"}) {
    for (const char* b : {"ps0", "ps1", "ps2"}) {
      if (std::string(a) != b) set(a, b, 0.05, 0.0003);
    }
  }
  // Park entries (autonomous power-state transitions).
  for (const char* l : {"ps0", "ps1", "ps2"}) {
    set(l, "ps3_sleep", 0.01, 0.0001);
    set(l, "ps4_deep_sleep", 0.01, 0.0001);
  }
  set("ps3_sleep", "ps4_deep_sleep", 0.1, 0.00001);
  // Millisecond-scale wakes, straight to PS0.
  set("ps3_sleep", "ps0", 5.0, 0.02);
  set("ps4_deep_sleep", "ps0", 14.0, 0.08);
  return ladder;
}

}  // namespace

const std::vector<std::string>& PowerLadder::preset_names() {
  static const std::vector<std::string> names = {
      "ultrastar_36z15", "scsi_multi_idle", "nvme_tiered"};
  return names;
}

bool PowerLadder::is_preset(const std::string& preset) {
  const std::vector<std::string>& names = preset_names();
  return std::find(names.begin(), names.end(), preset) != names.end();
}

PowerLadder PowerLadder::preset(const std::string& preset) {
  PowerLadder ladder;
  if (preset == "ultrastar_36z15") {
    ladder = from_legacy(DiskParameters::ultrastar_36z15(), preset);
  } else if (preset == "scsi_multi_idle") {
    ladder = make_scsi_multi_idle();
  } else if (preset == "nvme_tiered") {
    ladder = make_nvme_tiered();
  } else {
    throw Error("unknown device preset '" + preset + "' (have: " +
                join(preset_names(), ", ") + ")");
  }
  ladder.validate();
  return ladder;
}

}  // namespace sdpm::disk
