// The six Specfp2000-derived benchmark programs (paper §4.1, Table 2).
//
// Each benchmark is modelled as an affine loop-nest program whose disk
// behaviour reproduces the paper's Table 2 characteristics — dataset size,
// request count, base disk energy and execution time under the default
// 64 KB x 8-disk striping — together with the structural properties §6
// reports for the code transformations:
//
//   wupwise  176.7 MB, ~24.7k requests.  All sweep statements couple their
//            arrays (not fissionable).  The costliest nest (zmul) privately
//            owns two matrices, one stored column-major but accessed
//            row-wise (non-conforming) -> TL+DL wins.
//   swim      96.0 MB, ~3.2k requests.  Three independent field pairs in
//            each stencil sweep -> fissionable into 3 groups (LF+DL wins);
//            the sensitivity-study subject (Figs. 5-8).
//   mgrid     24.0 MB, ~12.3k requests.  Three grids smoothed
//            independently in 31 relaxation sweeps -> fissionable; arrays
//            shared by every nest -> tiling's layout step not applicable.
//   applu     54.8 MB, ~7.0k requests.  Quartered SSOR sweeps with two
//            independent statement groups (fissionable) plus a costly
//            Jacobian nest with a private, transpose-accessed matrix
//            -> both LF+DL and TL+DL win.
//   mesa      24.0 MB, ~3.1k requests.  Rasterization pipeline with four
//            independent buffer groups (fissionable) plus a private
//            texture-warp nest with transposed access -> both win.
//   galgel    16.0 MB, ~2.0k requests.  Every statement couples both
//            Galerkin matrices (not fissionable) and all accesses conform
//            to the storage layout -> no transformation helps.
#pragma once

#include <string>
#include <vector>

#include "ir/program.h"
#include "util/units.h"

namespace sdpm::workloads {

/// Table 2 reference values (what the paper reports), kept alongside each
/// generated program so benches can print paper-vs-measured columns.
struct PaperReference {
  double data_mb = 0;
  std::int64_t disk_requests = 0;
  double base_energy_j = 0;
  double execution_ms = 0;
};

struct Benchmark {
  std::string name;
  ir::Program program;
  PaperReference paper;
};

Benchmark make_wupwise();
Benchmark make_swim();
Benchmark make_mgrid();
Benchmark make_applu();
Benchmark make_mesa();
Benchmark make_galgel();

/// All six, in Table 2 order.
std::vector<Benchmark> all_benchmarks();

/// Look up one benchmark by name; throws sdpm::Error for unknown names.
Benchmark make_benchmark(const std::string& name);

/// Names in Table 2 order.
std::vector<std::string> benchmark_names();

}  // namespace sdpm::workloads
