#include "workloads/synthetic.h"

#include <algorithm>

#include "ir/builder.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"

namespace sdpm::workloads {

ir::Program make_synthetic(const SyntheticOptions& options) {
  SDPM_REQUIRE(options.min_arrays >= 1 &&
                   options.max_arrays >= options.min_arrays,
               "bad array count range");
  SDPM_REQUIRE(options.min_nests >= 1 &&
                   options.max_nests >= options.min_nests,
               "bad nest count range");
  SDPM_REQUIRE(options.min_extent >= 16 &&
                   options.max_extent >= options.min_extent,
               "bad extent range");

  SplitMix64 rng(options.seed);
  ir::ProgramBuilder pb(str_printf("synthetic-%llu",
                                   static_cast<unsigned long long>(
                                       options.seed)));

  const auto pick_extent = [&] {
    const std::int64_t span = options.max_extent - options.min_extent + 1;
    const std::int64_t raw =
        options.min_extent +
        static_cast<std::int64_t>(rng.next_below(
            static_cast<std::uint64_t>(span)));
    return (raw / 16) * 16;  // keep extents divisible for tiling
  };

  // --- arrays ---------------------------------------------------------------
  const int array_count =
      options.min_arrays +
      static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
          options.max_arrays - options.min_arrays + 1)));
  struct ArrayInfo {
    ir::ArrayId id;
    std::int64_t rows;
    std::int64_t cols;
  };
  std::vector<ArrayInfo> arrays;
  for (int a = 0; a < array_count; ++a) {
    std::int64_t rows = pick_extent();
    std::int64_t cols = pick_extent();
    // Square some arrays so transposed references stay in bounds.
    if (rng.next_double() < 0.5) cols = rows;
    const auto layout = rng.next_double() < options.col_major_probability
                            ? ir::StorageLayout::kColMajor
                            : ir::StorageLayout::kRowMajor;
    const ir::ArrayId id =
        pb.array("A" + std::to_string(a), {rows, cols}, 8, layout);
    arrays.push_back(ArrayInfo{id, rows, cols});
  }

  // --- nests -----------------------------------------------------------------
  const int nest_count =
      options.min_nests +
      static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
          options.max_nests - options.min_nests + 1)));
  for (int n = 0; n < nest_count; ++n) {
    // The nest iterates over the smallest shape among the arrays its
    // statements reference, so every subscript stays in bounds.
    const int stmt_count = 1 + static_cast<int>(rng.next_below(
                                   static_cast<std::uint64_t>(
                                       options.max_statements)));
    std::vector<std::vector<std::pair<int, bool>>> stmt_refs(
        static_cast<std::size_t>(stmt_count));  // (array index, transposed)
    std::int64_t rows = options.max_extent;
    std::int64_t cols = options.max_extent;
    for (auto& refs : stmt_refs) {
      const int refs_count = 1 + static_cast<int>(rng.next_below(2));
      for (int r = 0; r < refs_count; ++r) {
        const int ai = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(array_count)));
        const ArrayInfo& info = arrays[static_cast<std::size_t>(ai)];
        const bool transposed =
            info.rows == info.cols &&
            rng.next_double() < options.transpose_probability;
        refs.emplace_back(ai, transposed);
        rows = std::min(rows, transposed ? info.cols : info.rows);
        cols = std::min(cols, transposed ? info.rows : info.cols);
      }
    }

    const Cycles cycles =
        options.mean_cycles_per_iteration * rng.next_double(0.2, 1.8) /
        static_cast<double>(stmt_count);

    auto nb = pb.nest(str_printf("nest%02d", n));
    nb.loop("i", 0, rows).loop("j", 0, cols);
    for (const auto& refs : stmt_refs) {
      nb.stmt(std::max(cycles, 1.0));
      for (std::size_t r = 0; r < refs.size(); ++r) {
        const auto [ai, transposed] = refs[r];
        const ir::ArrayId id = arrays[static_cast<std::size_t>(ai)].id;
        const std::vector<ir::SymExpr> subs =
            transposed
                ? std::vector<ir::SymExpr>{ir::sym("j"), ir::sym("i")}
                : std::vector<ir::SymExpr>{ir::sym("i"), ir::sym("j")};
        if (r == 0 && rng.next_double() < 0.4) {
          nb.write(id, subs);
        } else {
          nb.read(id, subs);
        }
      }
    }
    nb.done();
  }
  return pb.build();
}

}  // namespace sdpm::workloads
