// Extra workloads beyond the paper's six benchmarks (extension).
//
// The paper's suite is fixed by its Table 2; these additional programs
// exercise access-pattern regimes the six do not cover and feed the
// multiprogramming and capacity studies:
//
//   transpose  — an out-of-core matrix transpose: every reference pair is
//                (row-order, column-order), the worst case for layout
//                conformance and the best case for the tiling pass.
//   checkpoint — long compute phases punctuated by bursty full-state dumps
//                (write-heavy), the classic HPC checkpoint/restart shape
//                with idle periods far above the TPM break-even.
//   scan       — a database-style repeated full scan with a tiny hot index:
//                maximal sequential throughput, minimal reuse, the regime
//                where reactive DRPM is strongest.
#pragma once

#include "workloads/benchmarks.h"

namespace sdpm::workloads {

Benchmark make_transpose();
Benchmark make_checkpoint();
Benchmark make_scan();

/// The three extra workloads.
std::vector<Benchmark> extra_benchmarks();

}  // namespace sdpm::workloads
