#include "workloads/benchmarks.h"

#include <array>

#include "ir/builder.h"
#include "trace/timeline.h"
#include "util/error.h"
#include "util/strings.h"

namespace sdpm::workloads {

namespace {

using ir::ProgramBuilder;
using ir::StorageLayout;
using ir::sym;

/// Per-iteration cycle cost that makes a nest of `iters` iterations take
/// `duration_ms` of compute on the 750 MHz reference machine.
Cycles cycles_for(TimeMs duration_ms, std::int64_t iters) {
  return duration_ms * trace::kDefaultClockHz / 1e3 /
         static_cast<double>(iters);
}

}  // namespace

Benchmark make_swim() {
  // Shallow-water stencil: three independent field pairs (U, V, P and their
  // previous-timestep copies), swept twice, plus a compute-only boundary
  // relaxation (calc3) whose working set stays in the buffer cache.
  ProgramBuilder pb("swim");
  const auto u = pb.array("U", {1024, 2048});
  const auto uold = pb.array("UOLD", {1024, 2048});
  const auto v = pb.array("V", {1024, 2048});
  const auto vold = pb.array("VOLD", {1024, 2048});
  const auto p = pb.array("P", {1024, 2048});
  const auto pold = pb.array("POLD", {1024, 2048});

  const std::int64_t sweep_iters = 1024 * 2048;
  const Cycles stmt_cycles = cycles_for(5000.0, sweep_iters) / 3.0;
  pb.nest("calc1")
      .loop("i", 0, 1024)
      .loop("j", 0, 2048)
      .stmt(stmt_cycles, "upd_u")
      .read(u, {sym("i"), sym("j")})
      .write(uold, {sym("i"), sym("j")})
      .stmt(stmt_cycles, "upd_v")
      .read(v, {sym("i"), sym("j")})
      .write(vold, {sym("i"), sym("j")})
      .stmt(stmt_cycles, "upd_p")
      .read(p, {sym("i"), sym("j")})
      .write(pold, {sym("i"), sym("j")})
      .done();
  // calc2 propagates the previous-timestep copies back — a *different*
  // textual loop from calc1 (reads the OLD fields, writes the current
  // ones), which keeps swim out of the tiling pass's reach: the fields are
  // shared between distinct nests, so no layout transformation applies.
  pb.nest("calc2")
      .loop("i", 0, 1024)
      .loop("j", 0, 2048)
      .stmt(stmt_cycles, "adv_u")
      .read(uold, {sym("i"), sym("j")})
      .write(u, {sym("i"), sym("j")})
      .stmt(stmt_cycles, "adv_v")
      .read(vold, {sym("i"), sym("j")})
      .write(v, {sym("i"), sym("j")})
      .stmt(stmt_cycles, "adv_p")
      .read(pold, {sym("i"), sym("j")})
      .write(p, {sym("i"), sym("j")})
      .done();
  pb.nest("calc3")
      .loop("t", 0, 4000)
      .loop("j", 0, 2048)
      .stmt(cycles_for(2000.0, 4000 * 2048), "boundary")
      .read(u, {ir::sym_const(0), sym("j")})
      .write(u, {ir::sym_const(0), sym("j")})
      .done();

  return Benchmark{"swim", pb.build(),
                   PaperReference{96.0, 3159, 2686.79, 32088.98}};
}

Benchmark make_mgrid() {
  // Multigrid relaxation: three grids smoothed independently, 31 sweeps.
  ProgramBuilder pb("mgrid");
  const auto a = pb.array("A", {1024, 1024});
  const auto b = pb.array("B", {1024, 1024});
  const auto c = pb.array("C", {1024, 1024});
  const std::int64_t iters = 1024 * 1024;
  const Cycles stmt_cycles = cycles_for(1580.0, iters) / 3.0;
  // The V-cycle visits the grids in a rotating order, so consecutive
  // sweeps are distinct textual nests (all referencing all three grids —
  // which is why the tiling pass's layout step has nothing private to
  // transform in mgrid).
  const std::array<ir::ArrayId, 3> grids = {a, b, c};
  const char* labels[3] = {"relax_a", "relax_b", "relax_c"};
  for (int k = 0; k < 31; ++k) {
    auto nb = pb.nest(str_printf("smooth%02d", k + 1));
    nb.loop("i", 0, 1024).loop("j", 0, 1024);
    for (int s = 0; s < 3; ++s) {
      const int g = (k + s) % 3;
      nb.stmt(stmt_cycles, labels[g])
          .read(grids[static_cast<std::size_t>(g)], {sym("i"), sym("j")})
          .write(grids[static_cast<std::size_t>(g)], {sym("i"), sym("j")});
    }
    nb.done();
  }
  return Benchmark{"mgrid", pb.build(),
                   PaperReference{24.7, 12288, 10600.54, 126651.12}};
}

Benchmark make_galgel() {
  // Galerkin FEM: every statement couples both matrices -> one array group,
  // single-statement nests -> not fissionable; accesses conform to the
  // row-major layout -> tiling's layout step is a no-op too.
  ProgramBuilder pb("galgel");
  const auto g1 = pb.array("G1", {1024, 1024});
  const auto g2 = pb.array("G2", {1024, 1024});
  const Cycles cycles = cycles_for(900.0, 1024 * 1024);
  for (int k = 1; k <= 8; ++k) {
    auto nb = pb.nest(str_printf("galerkin%d", k));
    nb.loop("i", 0, 1024).loop("j", 0, 1024);
    if (k % 2 == 1) {
      nb.stmt(cycles, "assemble")
          .read(g1, {sym("i"), sym("j")})
          .read(g2, {sym("i"), sym("j")})
          .write(g1, {sym("i"), sym("j")});
    } else {
      nb.stmt(cycles, "project")
          .read(g2, {sym("i"), sym("j")})
          .read(g1, {sym("i"), sym("j")})
          .write(g2, {sym("i"), sym("j")});
    }
    nb.done();
  }
  return Benchmark{"galgel", pb.build(),
                   PaperReference{16.0, 2048, 1715.37, 20478.80}};
}

Benchmark make_applu() {
  // SSOR solver: quartered right-hand-side sweeps with two independent
  // statement groups ({U,RSD} and {QA,QB}) plus a costly Jacobian nest that
  // privately owns W and reads it transposed.
  ProgramBuilder pb("applu");
  const auto u = pb.array("U", {1248, 1248});
  const auto rsd = pb.array("RSD", {1248, 1248});
  const auto qa = pb.array("QA", {1248, 1248});
  const auto qb = pb.array("QB", {1248, 1248});
  const auto w = pb.array("W", {576, 576});
  const auto wt = pb.array("WT", {576, 576});

  const std::int64_t quarter_iters = 312 * 1248;
  const Cycles rhs_cycles = cycles_for(200.0, quarter_iters) / 2.0;
  const Cycles jac_cycles = cycles_for(2500.0, 576 * 576);
  for (int k = 1; k <= 8; ++k) {
    for (int q = 0; q < 4; ++q) {
      pb.nest(str_printf("rhs%02d_q%d", k, q))
          .loop("i", 312 * q, 312 * (q + 1))
          .loop("j", 0, 1248)
          .stmt(rhs_cycles, "flux_u")
          .read(u, {sym("i"), sym("j")})
          .write(rsd, {sym("i"), sym("j")})
          .stmt(rhs_cycles, "flux_q")
          .read(qa, {sym("i"), sym("j")})
          .write(qb, {sym("i"), sym("j")})
          .done();
    }
    pb.nest(str_printf("jac%02d", k))
        .loop("i", 0, 576)
        .loop("j", 0, 576)
        .stmt(jac_cycles, "jacobian")
        .read(w, {sym("i"), sym("j")})
        .read(wt, {sym("j"), sym("i")})
        .write(w, {sym("i"), sym("j")})
        .done();
  }
  return Benchmark{"applu", pb.build(),
                   PaperReference{54.7, 7004, 5875.11, 70142.24}};
}

Benchmark make_mesa() {
  // Rasterization pipeline: four independent buffer groups per frame
  // ({FB,DEPTH}, {TEX}, {VTX}) in quartered sweeps, plus a private
  // texture-warp nest (STEX) with a transposed read.
  ProgramBuilder pb("mesa");
  const auto fb = pb.array("FB", {1024, 1024});
  const auto tex = pb.array("TEX", {1024, 640});
  const auto vtx = pb.array("VTX", {1024, 448});
  const auto depth = pb.array("DEPTH", {1024, 448});
  const auto stex = pb.array("STEX", {512, 512});
  const auto stext = pb.array("STEXT", {512, 512});

  const std::int64_t quarter_iters = 256 * 448;
  const Cycles pipe_cycles = cycles_for(170.0, quarter_iters) / 3.0;
  const Cycles warp_cycles = cycles_for(1000.0, 512 * 512);
  for (int k = 1; k <= 8; ++k) {
    for (int q = 0; q < 4; ++q) {
      pb.nest(str_printf("pipe%02d_q%d", k, q))
          .loop("i", 256 * q, 256 * (q + 1))
          .loop("j", 0, 448)
          .stmt(pipe_cycles, "raster")
          .read(fb, {sym("i"), sym("j")})
          .write(depth, {sym("i"), sym("j")})
          .stmt(pipe_cycles, "texture")
          .read(tex, {sym("i"), sym("j")})
          .write(tex, {sym("i"), sym("j")})
          .stmt(pipe_cycles, "vertex")
          .read(vtx, {sym("i"), sym("j")})
          .write(vtx, {sym("i"), sym("j")})
          .done();
    }
    pb.nest(str_printf("warp%02d", k))
        .loop("i", 0, 512)
        .loop("j", 0, 512)
        .stmt(warp_cycles, "warp")
        .read(stex, {sym("i"), sym("j")})
        .read(stext, {sym("j"), sym("i")})
        .write(stex, {sym("i"), sym("j")})
        .done();
  }
  return Benchmark{"mesa", pb.build(),
                   PaperReference{24.0, 3072, 2667.00, 31869.54}};
}

Benchmark make_wupwise() {
  // Lattice-QCD matrix sweeps: the su3 statements couple PSI, GAUGE, E and
  // TMP (one array group, single statement -> not fissionable).  The
  // costliest nest (zmul) privately owns M1 and the column-major M2, which
  // it reads row-wise (non-conforming) -> TL+DL's layout transformation
  // applies.
  ProgramBuilder pb("wupwise");
  const auto psi = pb.array("PSI", {2048, 3072});
  const auto gauge = pb.array("GAUGE", {2048, 3072});
  const auto tmp = pb.array("TMP", {2048, 2048});
  const auto e = pb.array("E", {2048, 1330});
  const auto m1 = pb.array("M1", {1536, 2048});
  const auto m2 = pb.array("M2", {1536, 320}, 8, StorageLayout::kColMajor);

  const Cycles su3_cycles = cycles_for(5600.0, 2048 * 1330);
  for (int k = 1; k <= 7; ++k) {
    pb.nest(str_printf("su3mul%d", k))
        .loop("i", 0, 2048)
        .loop("j", 0, 1330)
        .stmt(su3_cycles, "su3")
        .read(psi, {sym("i"), sym("j")})
        .read(gauge, {sym("i"), sym("j")})
        .read(e, {sym("i"), sym("j")})
        .write(tmp, {sym("i"), sym("j")})
        .done();
  }
  const Cycles zmul_cycles = cycles_for(24000.0, 5ll * 1536 * 320);
  for (int k = 1; k <= 4; ++k) {
    pb.nest(str_printf("zmul%d", k))
        .loop("t", 0, 5)
        .loop("i", 0, 1536)
        .loop("j", 0, 320)
        .stmt(zmul_cycles, "zmul")
        .read(m1, {sym("i"), sym("j")})
        .read(m2, {sym("i"), sym("j")})
        .write(m1, {sym("i"), sym("j")})
        .done();
  }
  return Benchmark{"wupwise", pb.build(),
                   PaperReference{176.7, 24718, 20835.96, 248790.00}};
}

std::vector<Benchmark> all_benchmarks() {
  std::vector<Benchmark> out;
  out.push_back(make_wupwise());
  out.push_back(make_swim());
  out.push_back(make_mgrid());
  out.push_back(make_applu());
  out.push_back(make_mesa());
  out.push_back(make_galgel());
  return out;
}

std::vector<std::string> benchmark_names() {
  return {"wupwise", "swim", "mgrid", "applu", "mesa", "galgel"};
}

Benchmark make_benchmark(const std::string& name) {
  if (name == "wupwise") return make_wupwise();
  if (name == "swim") return make_swim();
  if (name == "mgrid") return make_mgrid();
  if (name == "applu") return make_applu();
  if (name == "mesa") return make_mesa();
  if (name == "galgel") return make_galgel();
  throw Error("unknown benchmark '" + name + "'");
}

}  // namespace sdpm::workloads
