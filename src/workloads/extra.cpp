#include "workloads/extra.h"

#include "ir/builder.h"
#include "trace/timeline.h"
#include "util/strings.h"

namespace sdpm::workloads {

namespace {

using ir::ProgramBuilder;
using ir::StorageLayout;
using ir::sym;

Cycles cycles_for(TimeMs duration_ms, std::int64_t iters) {
  return duration_ms * trace::kDefaultClockHz / 1e3 /
         static_cast<double>(iters);
}

}  // namespace

Benchmark make_transpose() {
  // B = A^T over 2 x 8 MB matrices, two passes.  A is read row-wise
  // (conforming), B written column-wise (anti-conforming, and larger than
  // the buffer cache, so the writes thrash): the costly nest owns both
  // arrays, so TL+DL can block both layouts and collapse the thrash.
  ProgramBuilder pb("transpose");
  const auto a = pb.array("A", {1024, 1024});
  const auto b = pb.array("B", {1024, 1024});
  const Cycles cycles = cycles_for(2'000.0, 1024 * 1024);
  for (int pass = 1; pass <= 2; ++pass) {
    pb.nest(str_printf("transpose%d", pass))
        .loop("i", 0, 1024)
        .loop("j", 0, 1024)
        .stmt(cycles, "xpose")
        .read(a, {sym("i"), sym("j")})
        .write(b, {sym("j"), sym("i")})
        .done();
  }
  Benchmark bench;
  bench.name = "transpose";
  bench.program = pb.build();
  return bench;
}

Benchmark make_checkpoint() {
  // Three compute epochs on a cache-resident working row, each followed by
  // a full-state dump of a 48 MB STATE array.  The ~25 s compute epochs
  // leave every disk idle far beyond the 15.2 s break-even — TPM's home
  // turf without any code transformation.
  ProgramBuilder pb("checkpoint");
  const auto state = pb.array("STATE", {3072, 2048});  // 48 MB
  const Cycles compute_cycles = cycles_for(25'000.0, 4'000ll * 2'048);
  const Cycles dump_cycles = cycles_for(400.0, 3072 * 2048);
  for (int epoch = 1; epoch <= 3; ++epoch) {
    pb.nest(str_printf("compute%d", epoch))
        .loop("t", 0, 4'000)
        .loop("j", 0, 2'048)
        .stmt(compute_cycles, "step")
        .read(state, {ir::sym_const(0), sym("j")})
        .done();
    pb.nest(str_printf("dump%d", epoch))
        .loop("i", 0, 3072)
        .loop("j", 0, 2048)
        .stmt(dump_cycles, "dump")
        .write(state, {sym("i"), sym("j")})
        .done();
  }
  Benchmark bench;
  bench.name = "checkpoint";
  bench.program = pb.build();
  return bench;
}

Benchmark make_scan() {
  // Six sequential scans of a 64 MB TABLE with a cache-resident 1 MB
  // INDEX probed alongside: pure streaming with ~zero reuse.
  ProgramBuilder pb("scan");
  const auto table = pb.array("TABLE", {4096, 2048});  // 64 MB
  const auto index = pb.array("INDEX", {128, 1024});   // 1 MB
  const Cycles cycles = cycles_for(3'000.0, 4096 * 2048);
  for (int pass = 1; pass <= 6; ++pass) {
    pb.nest(str_printf("scan%d", pass))
        .loop("i", 0, 4096)
        .loop("j", 0, 2048)
        .stmt(cycles, "probe")
        .read(table, {sym("i"), sym("j")})
        .done();
    pb.nest(str_printf("lookup%d", pass))
        .loop("i", 0, 128)
        .loop("j", 0, 1024)
        .stmt(cycles_for(200.0, 128 * 1024), "index")
        .read(index, {sym("i"), sym("j")})
        .done();
  }
  Benchmark bench;
  bench.name = "scan";
  bench.program = pb.build();
  return bench;
}

std::vector<Benchmark> extra_benchmarks() {
  std::vector<Benchmark> out;
  out.push_back(make_transpose());
  out.push_back(make_checkpoint());
  out.push_back(make_scan());
  return out;
}

}  // namespace sdpm::workloads
