// Seeded synthetic workload generator.
//
// Produces random — but structurally valid — affine loop-nest programs for
// property-based testing and capacity studies: every pipeline invariant
// (trace determinism, energy conservation, oracle dominance, transform
// semantics) should hold for *any* program the IR can express, not just the
// six curated benchmarks.  Generation is fully deterministic in the seed.
#pragma once

#include <cstdint>

#include "ir/program.h"

namespace sdpm::workloads {

struct SyntheticOptions {
  std::uint64_t seed = 1;
  int min_arrays = 2;
  int max_arrays = 5;
  int min_nests = 2;
  int max_nests = 6;
  /// Per-dimension extents, in elements (rounded to multiples of 16 so
  /// tiling always finds divisors).
  std::int64_t min_extent = 64;
  std::int64_t max_extent = 512;
  /// Statements per nest.
  int max_statements = 3;
  /// Mean compute cost per iteration, in cycles; individual nests draw
  /// uniformly from [0.2x, 1.8x] of this.
  double mean_cycles_per_iteration = 400.0;
  /// Probability that a reference is transposed ([j][i]); transposed refs
  /// are only generated against square arrays.
  double transpose_probability = 0.25;
  /// Probability that an array is declared column-major.
  double col_major_probability = 0.25;
};

/// Generate a random program.  Throws sdpm::Error on contradictory options.
ir::Program make_synthetic(const SyntheticOptions& options);

}  // namespace sdpm::workloads
