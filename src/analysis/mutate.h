// Seeded schedule mutations for validating the analyzer.
//
// Each mutation injects one class of bug the static passes must catch; the
// tests (and the `sdpm_cli analyze --mutate` flag) run the analyzer over
// the mutated schedule and assert the corresponding rule fires:
//
//   kLatePreactivation  move every restore call to one iteration before
//                       its gap's end, so the wake-up cannot complete in
//                       time (SDPM-E040)
//   kShortGapSpinDown   spin a disk down inside a gap shorter than the
//                       break-even time (SDPM-E030)
//   kOverlappingFission collapse the layout-aware fission's disk
//                       partition so two array groups share disks
//                       (SDPM-E060)
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "core/schedule.h"
#include "layout/striping.h"

namespace sdpm::analysis {

enum class Mutation {
  kLatePreactivation,
  kShortGapSpinDown,
  kOverlappingFission,
};

const char* to_string(Mutation mutation);

/// Parse "late-preact" / "short-gap" / "overlap-fission"; empty otherwise.
std::optional<Mutation> mutation_from_name(std::string_view name);

/// Apply `mutation` in place.  `striping` is the per-array striping the
/// caller will rebuild its LayoutTable from (only kOverlappingFission
/// modifies it).  Throws sdpm::Error when the schedule offers no site for
/// the mutation (e.g. no restores to delay).
void apply_mutation(Mutation mutation, core::ScheduleResult& result,
                    std::vector<layout::Striping>& striping,
                    const disk::DiskParameters& params);

}  // namespace sdpm::analysis
