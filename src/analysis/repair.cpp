#include "analysis/repair.h"

#include <set>
#include <utility>

#include "core/schedule_edit.h"
#include "layout/layout_table.h"

namespace sdpm::analysis {

namespace {

/// Conflict key of one edit: what it mutates.  Inserts never conflict
/// (they name no existing entity).
enum class Touch { kDirective, kPlan, kArray };

void touched_keys(const core::ScheduleEdit& edit,
                  std::set<std::pair<Touch, int>>& keys) {
  switch (edit.kind) {
    case core::ScheduleEdit::Kind::kMoveDirective:
    case core::ScheduleEdit::Kind::kRemoveDirective:
    case core::ScheduleEdit::Kind::kRetargetLevel:
      keys.insert({Touch::kDirective, edit.directive_index});
      break;
    case core::ScheduleEdit::Kind::kInsertDirective:
      break;
    case core::ScheduleEdit::Kind::kSetPlanLevel:
    case core::ScheduleEdit::Kind::kSetPlanActed:
      keys.insert({Touch::kPlan, edit.plan_index});
      break;
    case core::ScheduleEdit::Kind::kRestripeArray:
      keys.insert({Touch::kArray, edit.array});
      break;
  }
}

}  // namespace

ApplyOutcome apply_fixits(const AnalysisReport& report,
                          core::ScheduleResult& result,
                          std::vector<layout::Striping>& striping) {
  ApplyOutcome outcome;
  std::set<std::pair<Touch, int>> claimed;
  std::vector<core::ScheduleEdit> batch;
  for (const Diagnostic& diag : report.diagnostics) {
    for (const FixIt& fixit : diag.fixits) {
      std::set<std::pair<Touch, int>> keys;
      for (const core::ScheduleEdit& edit : fixit.edits) {
        touched_keys(edit, keys);
      }
      bool conflict = false;
      for (const auto& key : keys) {
        if (claimed.count(key) > 0) {
          conflict = true;
          break;
        }
      }
      if (conflict) {
        ++outcome.skipped;
        continue;
      }
      claimed.insert(keys.begin(), keys.end());
      batch.insert(batch.end(), fixit.edits.begin(), fixit.edits.end());
      outcome.applied_ids.push_back(fixit.id);
      ++outcome.applied;
    }
  }
  if (!batch.empty()) {
    core::apply_schedule_edits(result, striping, batch);
  }
  return outcome;
}

RepairOutcome repair_schedule(core::ScheduleResult result,
                              std::vector<layout::Striping> striping,
                              int total_disks,
                              const disk::DiskParameters& params,
                              const AnalyzeOptions& options,
                              int max_rounds) {
  RepairOutcome out;
  AnalysisReport report;
  while (true) {
    const layout::LayoutTable table(result.program, striping, total_disks);
    report = analyze(result, table, params, options);
    if (report.fixit_count() == 0) {
      out.converged = true;
      break;
    }
    if (out.rounds >= max_rounds) break;
    const ApplyOutcome applied = apply_fixits(report, result, striping);
    if (applied.applied == 0) break;  // every fix-it conflicted: stuck
    ++out.rounds;
    out.fixits_applied += applied.applied;
    out.fixits_skipped += applied.skipped;
    out.applied_ids.insert(out.applied_ids.end(), applied.applied_ids.begin(),
                           applied.applied_ids.end());
  }
  out.final_report = std::move(report);
  out.result = std::move(result);
  out.striping = std::move(striping);
  return out;
}

}  // namespace sdpm::analysis
