#include "analysis/interval_domain.h"

#include <algorithm>

namespace sdpm::analysis {

void TimeIntervalSet::insert(TimeMs lo, TimeMs hi) {
  if (!(hi >= lo)) return;  // empty or NaN span
  TimeInterval iv{lo, hi};
  // Find the first interval that could touch [lo, hi].
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv,
      [](const TimeInterval& a, const TimeInterval& b) {
        return a.hi_ms < b.lo_ms;
      });
  auto last = first;
  while (last != intervals_.end() && last->lo_ms <= iv.hi_ms) {
    iv.lo_ms = std::min(iv.lo_ms, last->lo_ms);
    iv.hi_ms = std::max(iv.hi_ms, last->hi_ms);
    ++last;
  }
  first = intervals_.erase(first, last);
  intervals_.insert(first, iv);
}

TimeMs TimeIntervalSet::total_length() const {
  TimeMs sum = 0;
  for (const TimeInterval& iv : intervals_) sum += iv.hi_ms - iv.lo_ms;
  return sum;
}

bool TimeIntervalSet::contains(TimeMs t) const {
  auto it = std::lower_bound(intervals_.begin(), intervals_.end(), t,
                             [](const TimeInterval& iv, TimeMs x) {
                               return iv.hi_ms < x;
                             });
  return it != intervals_.end() && it->lo_ms <= t;
}

TimeIntervalSet TimeIntervalSet::complement_within(TimeMs lo,
                                                   TimeMs hi) const {
  TimeIntervalSet out;
  TimeMs cursor = lo;
  for (const TimeInterval& iv : intervals_) {
    if (iv.hi_ms < lo) continue;
    if (iv.lo_ms > hi) break;
    if (iv.lo_ms > cursor) out.insert(cursor, std::min(iv.lo_ms, hi));
    cursor = std::max(cursor, iv.hi_ms);
  }
  if (cursor < hi) out.insert(cursor, hi);
  return out;
}

}  // namespace sdpm::analysis
