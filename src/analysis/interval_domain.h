// Time-interval abstract domain for the schedule certifier.
//
// The certifier reasons about *when* each disk may be busy on the compute
// timeline, which is real-valued (milliseconds), so it needs an interval
// set over doubles — the int64 util::IntervalSet covers iteration/block
// coordinates.  TimeIntervalSet keeps a canonical sorted, merged list of
// closed intervals; insertion order never changes the result, which is
// what makes the certificate byte-deterministic.
#pragma once

#include <vector>

#include "analysis/certificate.h"
#include "util/units.h"

namespace sdpm::analysis {

/// Canonical set of closed time intervals [lo, hi], sorted and merged
/// (touching intervals coalesce).  Empty-or-negative spans are dropped.
class TimeIntervalSet {
 public:
  TimeIntervalSet() = default;

  /// Insert [lo, hi]; overlapping or touching intervals are merged.
  void insert(TimeMs lo, TimeMs hi);

  bool empty() const { return intervals_.empty(); }
  std::size_t size() const { return intervals_.size(); }

  /// Sum of interval lengths.
  TimeMs total_length() const;

  /// True when `t` lies inside some interval (inclusive bounds).
  bool contains(TimeMs t) const;

  /// The gaps: complement of this set clipped to [lo, hi].
  TimeIntervalSet complement_within(TimeMs lo, TimeMs hi) const;

  const std::vector<TimeInterval>& intervals() const { return intervals_; }

 private:
  std::vector<TimeInterval> intervals_;  // sorted, disjoint, merged
};

}  // namespace sdpm::analysis
