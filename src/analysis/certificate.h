// Certified schedule facts derived by abstract interpretation (bounds.h).
//
// A ScheduleCertificate is the analyzer's *proof object* for one
// (schedule, scheme) pair: per-disk may-access / guaranteed-idle interval
// sets over the compute timeline, sound energy bounds [E_lo, E_hi] that
// must bracket the simulator's measured energy, execution-time bounds,
// and two safety properties proved where they hold — "no demand spin-up
// possible" and "no wasted pre-activation".  Plain data; the derivation
// lives in analysis/bounds.cpp and the math in MODEL.md.
#pragma once

#include <vector>

#include "util/units.h"

namespace sdpm::analysis {

/// One closed time interval [lo_ms, hi_ms] on the compute timeline.
struct TimeInterval {
  TimeMs lo_ms = 0;
  TimeMs hi_ms = 0;

  friend bool operator==(const TimeInterval&, const TimeInterval&) = default;
};

/// Certified facts about one disk.
struct DiskCertificate {
  int disk = 0;
  Joules energy_lo_j = 0;  ///< no execution can consume less
  Joules energy_hi_j = 0;  ///< no execution can consume more
  /// Compute-timeline intervals during which the disk may be serving a
  /// request (arrival through worst-case completion); merged + sorted.
  std::vector<TimeInterval> may_access_ms;
  /// Complement of may_access within [0, compute_total]: intervals where
  /// the disk is guaranteed not to be accessed.
  std::vector<TimeInterval> guaranteed_idle_ms;
  /// Proved: no request can ever find this disk in (or heading to)
  /// standby, so no demand spin-up is possible.
  bool no_demand_spinup_proved = false;
  /// Proved: every restoring directive (spin_up / set_RPM back to a
  /// faster level) is followed by an access before the next degrade.
  bool no_wasted_preactivation_proved = false;
};

/// Whole-schedule certificate: per-disk bounds plus program-level totals.
struct ScheduleCertificate {
  Joules energy_lo_j = 0;   ///< sum of per-disk lower bounds
  Joules energy_hi_j = 0;   ///< sum of per-disk upper bounds
  TimeMs exec_lo_ms = 0;    ///< execution time lower bound
  TimeMs exec_hi_ms = 0;    ///< execution time upper bound
  TimeMs compute_total_ms = 0;
  int disks = 0;
  std::int64_t requests = 0;
  std::vector<DiskCertificate> per_disk;
  bool no_demand_spinup_proved = false;        ///< conjunction over disks
  bool no_wasted_preactivation_proved = false; ///< conjunction over disks
};

}  // namespace sdpm::analysis
