// Auto-repair engine for analyzer fix-its.
//
// The passes attach machine-applicable SDPM-F### fix-its (analysis/fixit.h)
// to their diagnostics; this engine drives them to a fixed point:
//
//   round:  analyze -> collect fix-its -> drop conflicting ones (two
//           fix-its touching the same directive, plan or array; first in
//           diagnostic order wins) -> apply the rest as one schedule-edit
//           batch -> rebuild the layout
//
// until a round yields no applicable fix-its or `max_rounds` is hit.
// Directive indices are only valid against the schedule a report was
// produced from, which is why edits are batched per round and the
// schedule re-analyzed in between.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/registry.h"
#include "core/schedule.h"
#include "disk/parameters.h"
#include "layout/striping.h"

namespace sdpm::analysis {

/// One round of fix-it application.
struct ApplyOutcome {
  int applied = 0;  ///< fix-its whose edits were applied
  int skipped = 0;  ///< fix-its dropped because they conflicted
  std::vector<std::string> applied_ids;  ///< e.g. "SDPM-F001", in order
};

/// Apply every non-conflicting fix-it of `report` to (`result`,
/// `striping`) in one batch.  `report` must have been produced by
/// analyzing exactly this schedule (directive and plan indices match).
ApplyOutcome apply_fixits(const AnalysisReport& report,
                          core::ScheduleResult& result,
                          std::vector<layout::Striping>& striping);

/// Full repair run: the schedule after the last round, the striping it
/// should be laid out with, and the report that proves (or disproves)
/// convergence.
struct RepairOutcome {
  core::ScheduleResult result;
  std::vector<layout::Striping> striping;
  int rounds = 0;          ///< analyze/apply rounds that applied something
  int fixits_applied = 0;  ///< total across rounds
  int fixits_skipped = 0;  ///< total conflicts across rounds
  bool converged = false;  ///< the final report carries no fix-its
  AnalysisReport final_report;  ///< report of the repaired schedule
  std::vector<std::string> applied_ids;  ///< every applied fix-it id
};

/// Repair `result` to a fixed point (at most `max_rounds` rounds).  The
/// layout is rebuilt from `striping` each round, so SDPM-F006 restriping
/// feeds back into the next round's access model.
RepairOutcome repair_schedule(core::ScheduleResult result,
                              std::vector<layout::Striping> striping,
                              int total_disks,
                              const disk::DiskParameters& params,
                              const AnalyzeOptions& options,
                              int max_rounds = 16);

}  // namespace sdpm::analysis
