#include "analysis/registry.h"

namespace sdpm::analysis {

namespace {

constexpr RuleInfo kCatalog[] = {
    {"SDPM-E001", Severity::kError, "wellformed",
     "directives out of program order"},
    {"SDPM-E002", Severity::kError, "wellformed",
     "directive targets a disk outside the layout"},
    {"SDPM-E003", Severity::kError, "wellformed",
     "directive placed outside every planned idle period"},
    {"SDPM-E004", Severity::kError, "wellformed",
     "spin_down on a disk already in standby"},
    {"SDPM-E005", Severity::kError, "wellformed",
     "spin_up on a disk that is not in standby"},
    {"SDPM-E006", Severity::kError, "wellformed",
     "set_RPM on a disk in standby"},
    {"SDPM-E007", Severity::kError, "wellformed",
     "RPM level outside the disk's ladder"},
    {"SDPM-E008", Severity::kError, "wellformed",
     "disk left degraded at a point where the program still uses it"},
    {"SDPM-E009", Severity::kError, "wellformed",
     "planned idle period is not contained in a DAP idle period"},
    {"SDPM-W020", Severity::kWarning, "redundancy",
     "set_RPM to the level the disk is already at (no-op)"},
    {"SDPM-W021", Severity::kWarning, "redundancy",
     "degrade directive overridden before the disk is next used"},
    {"SDPM-E022", Severity::kError, "redundancy",
     "TPM and DRPM directives mixed within one idle period"},
    {"SDPM-E030", Severity::kError, "break-even",
     "spin-down with less than the break-even time left in the gap"},
    {"SDPM-W031", Severity::kWarning, "break-even",
     "profitable idle period left unexploited"},
    {"SDPM-E040", Severity::kError, "preactivation",
     "pre-activation issued too late to hide the wake-up latency"},
    {"SDPM-W041", Severity::kWarning, "preactivation",
     "disk predicted to wake on demand (no pre-activation scheduled)"},
    {"SDPM-W042", Severity::kWarning, "preactivation",
     "pre-activation wasted (disk degraded again or never used)"},
    {"SDPM-N043", Severity::kNote, "preactivation",
     "pre-activation earlier than the transition needs"},
    {"SDPM-E050", Severity::kError, "misfit",
     "active interval served below the minimum serviceable RPM level"},
    {"SDPM-W051", Severity::kWarning, "misfit",
     "chosen RPM level's round trip does not fit the remaining gap"},
    {"SDPM-W052", Severity::kWarning, "misfit",
     "active interval starts with the disk below full speed"},
    {"SDPM-E060", Severity::kError, "fission",
     "fission groups map to overlapping disk sets"},
    {"SDPM-E070", Severity::kError, "dependence",
     "tiled/interchanged nest carries a permutation-unsafe dependence"},
    {"SDPM-N071", Severity::kNote, "dependence",
     "nest carries a permutation-unsafe dependence (not transformed)"},
    {"SDPM-N072", Severity::kNote, "dependence",
     "reference pairs not uniformly generated; legality unproven"},
    {"SDPM-E080", Severity::kError, "coverage",
     "subscript can address memory outside the array extent"},
    {"SDPM-W081", Severity::kWarning, "coverage",
     "disk holds data but is never accessed by the program"},
    {"SDPM-E090", Severity::kError, "registry",
     "analysis aborted: access model rejected the program"},
};

}  // namespace

std::span<const RuleInfo> rule_catalog() { return kCatalog; }

PassRegistry PassRegistry::with_default_passes() {
  PassRegistry registry;
  registry.add(make_wellformed_pass());
  registry.add(make_redundancy_pass());
  registry.add(make_break_even_pass());
  registry.add(make_preactivation_pass());
  registry.add(make_misfit_pass());
  registry.add(make_fission_pass());
  registry.add(make_dependence_pass());
  registry.add(make_coverage_pass());
  return registry;
}

void PassRegistry::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

AnalysisReport PassRegistry::run(const core::ScheduleResult& result,
                                 const layout::LayoutTable& layout,
                                 const disk::DiskParameters& params,
                                 const AnalyzeOptions& options) const {
  AnalysisContext ctx(result, layout, params, options);
  AnalysisReport report;
  report.directives_checked =
      static_cast<std::int64_t>(result.program.directives.size());
  for (const auto& pass : passes_) {
    report.passes_run.emplace_back(pass->name());
    pass->run(ctx, report.diagnostics);
  }
  if (ctx.dap_attempted() && !ctx.dap_error().empty()) {
    report.diagnostics.push_back(
        make_diagnostic("SDPM-E090", "registry", DiagLocation{},
                        "access model rejected the program: " +
                            ctx.dap_error()));
  }
  report.sort();
  return report;
}

AnalysisReport analyze(const core::ScheduleResult& result,
                       const layout::LayoutTable& layout,
                       const disk::DiskParameters& params,
                       const AnalyzeOptions& options) {
  return PassRegistry::with_default_passes().run(result, layout, params,
                                                 options);
}

}  // namespace sdpm::analysis
