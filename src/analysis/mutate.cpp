#include "analysis/mutate.h"

#include <algorithm>

#include "trace/iteration_space.h"
#include "util/error.h"

namespace sdpm::analysis {

namespace {

/// Delay every restore call (spin_up, or set_RPM back to the top level)
/// that has a later use to one iteration before its gap ends.
int mutate_late_preactivation(core::ScheduleResult& result,
                              const disk::DiskParameters& params) {
  const trace::IterationSpace space(result.program);
  const std::int64_t total = space.total();
  const int top = params.max_level();
  int moved = 0;
  for (const core::GapPlan& plan : result.plans) {
    if (!plan.acted || plan.end_iter >= total) continue;
    if (plan.end_iter <= plan.begin_iter + 1) continue;
    for (ir::PlacedDirective& pd : result.program.directives) {
      if (pd.directive.disk != plan.disk) continue;
      const std::int64_t g = space.global_of(pd.point);
      if (g < plan.begin_iter || g > plan.end_iter) continue;
      const bool restore =
          pd.directive.kind == ir::PowerDirective::Kind::kSpinUp ||
          (pd.directive.kind == ir::PowerDirective::Kind::kSetRpm &&
           pd.directive.rpm_level == top);
      if (!restore) continue;
      const std::int64_t target = plan.end_iter - 1;
      if (target <= g) continue;
      pd.point = space.point_of(target);
      ++moved;
    }
  }
  result.program.sort_directives();
  return moved;
}

/// Insert a spin_down/spin_up pair into the first idle period the
/// scheduler left alone because it is shorter than the break-even time.
int mutate_short_gap(core::ScheduleResult& result,
                     const disk::DiskParameters& params) {
  const trace::IterationSpace space(result.program);
  const TimeMs break_even = params.break_even_time();
  for (core::GapPlan& plan : result.plans) {
    if (plan.acted || plan.end_iter <= plan.begin_iter) continue;
    if (plan.estimated_ms >= break_even) continue;
    result.program.directives.push_back(
        {space.point_of(plan.begin_iter),
         {ir::PowerDirective::Kind::kSpinDown, plan.disk, 0}});
    result.program.directives.push_back(
        {space.point_of(plan.end_iter),
         {ir::PowerDirective::Kind::kSpinUp, plan.disk, 0}});
    plan.acted = true;
    plan.level = -1;
    result.calls_inserted += 2;
    result.program.sort_directives();
    return 1;
  }
  return 0;
}

/// Collapse the fission disk partition: every array striped like the
/// second distinct group is re-based onto the first group's disks.
int mutate_overlap_fission(std::vector<layout::Striping>& striping) {
  if (striping.empty()) return 0;
  const layout::Striping first = striping.front();
  const layout::Striping* second = nullptr;
  for (const layout::Striping& s : striping) {
    if (!(s == first)) {
      second = &s;
      break;
    }
  }
  if (second == nullptr) return 0;
  const layout::Striping target = *second;
  int retargeted = 0;
  for (layout::Striping& s : striping) {
    if (s == target) {
      s.starting_disk = first.starting_disk;
      ++retargeted;
    }
  }
  return retargeted;
}

}  // namespace

const char* to_string(Mutation mutation) {
  switch (mutation) {
    case Mutation::kLatePreactivation:
      return "late-preact";
    case Mutation::kShortGapSpinDown:
      return "short-gap";
    case Mutation::kOverlappingFission:
      return "overlap-fission";
  }
  return "?";
}

std::optional<Mutation> mutation_from_name(std::string_view name) {
  if (name == "late-preact") return Mutation::kLatePreactivation;
  if (name == "short-gap") return Mutation::kShortGapSpinDown;
  if (name == "overlap-fission") return Mutation::kOverlappingFission;
  return std::nullopt;
}

void apply_mutation(Mutation mutation, core::ScheduleResult& result,
                    std::vector<layout::Striping>& striping,
                    const disk::DiskParameters& params) {
  int sites = 0;
  switch (mutation) {
    case Mutation::kLatePreactivation:
      sites = mutate_late_preactivation(result, params);
      SDPM_REQUIRE(sites > 0,
                   "late-preact found no restore call to delay (is "
                   "pre-activation enabled and the schedule acted?)");
      break;
    case Mutation::kShortGapSpinDown:
      sites = mutate_short_gap(result, params);
      SDPM_REQUIRE(sites > 0,
                   "short-gap found no sub-break-even idle period to "
                   "corrupt");
      break;
    case Mutation::kOverlappingFission:
      sites = mutate_overlap_fission(striping);
      SDPM_REQUIRE(sites > 0,
                   "overlap-fission needs a layout-aware transform with "
                   "at least two disk groups (use --transform LFDL)");
      break;
  }
}

}  // namespace sdpm::analysis
