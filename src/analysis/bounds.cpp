#include "analysis/bounds.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "analysis/interval_domain.h"
#include "util/error.h"

namespace sdpm::analysis {

namespace {

/// One worst-case transition window.  `until` is a sound settle-by time on
/// the compute timeline: the real timeline advances at least as fast as
/// the compute timeline (stalls only add), so a transition chain started
/// at compute time t with total duration D is certainly settled once the
/// application reaches compute time t + D.
struct PendingTransition {
  TimeMs until = 0;     ///< settled by this compute time
  TimeMs duration = 0;  ///< worst-case real duration (bounds request waits)
  Watts power_hi = 0;   ///< max power during any phase of the chain
  bool to_standby = false;
};

/// Abstract state + per-disk accumulators.
struct AbstractDisk {
  std::vector<int> levels;  ///< possible settled spinning levels (sorted)
  bool standby = false;     ///< settled standby possible
  std::vector<PendingTransition> pending;
  TimeMs chain_ready = 0;  ///< latest settle-by among pending windows
  TimeMs billed_to = 0;    ///< compute time integrated so far

  Joules lo_j = 0;
  Joules hi_j = 0;
  TimeIntervalSet may_access;
  bool demand_spinup_possible = false;
  bool wasted_preactivation_possible = false;
};

/// Per-(disk-model) constants the inner loop reuses.
struct ModelTable {
  const disk::DiskParameters* params = nullptr;
  std::vector<Watts> idle_w;    ///< by level
  std::vector<Watts> active_w;  ///< by level
  Watts spin_up_w = 0;
  Watts spin_down_w = 0;
  Watts power_max = 0;  ///< global max power of any disk state
  Watts power_min = 0;  ///< global min power of any disk state

  explicit ModelTable(const disk::DiskParameters& p) : params(&p) {
    const int n = p.rpm_level_count();
    idle_w.reserve(static_cast<std::size_t>(n));
    active_w.reserve(static_cast<std::size_t>(n));
    for (int l = 0; l < n; ++l) {
      idle_w.push_back(p.idle_power_at_level(l));
      active_w.push_back(p.active_power_at_level(l));
    }
    // Directives only ever park into the default (deepest) park, so the
    // wake window is that park's edge; the entry window takes the worst
    // entry edge over all levels (legacy disks: the Table 1 constants).
    const int park = p.default_park();
    const TimeMs up_t = p.wake_time(park);
    const Joules up_e = p.wake_energy(park);
    spin_up_w = up_t > 0 ? up_e / seconds_from_ms(up_t) : 0;
    for (int l = 0; l < n; ++l) {
      const TimeMs down_t = p.park_entry_time(l, park);
      const Joules down_e = p.park_entry_energy(l, park);
      spin_down_w = std::max(
          spin_down_w, down_t > 0 ? down_e / seconds_from_ms(down_t) : 0);
    }
    power_max = std::max({active_w.back(), idle_w.back(), spin_up_w,
                          spin_down_w, p.standby_power()});
    power_min = p.standby_power();
    for (const Watts w : idle_w) power_min = std::min(power_min, w);
    for (const Watts w : active_w) power_min = std::min(power_min, w);
    power_min = std::min({power_min, spin_up_w, spin_down_w});
  }
};

bool standby_possible(const AbstractDisk& d) {
  if (d.standby) return true;
  for (const PendingTransition& p : d.pending) {
    if (p.to_standby) return true;
  }
  return false;
}

/// Upper bound on the disk's instantaneous power given its current
/// abstract state (stale pending windows only loosen the bound).
Watts ceil_power(const AbstractDisk& d, const ModelTable& m) {
  Watts w = d.standby ? m.params->standby_power() : 0;
  for (const int l : d.levels) w = std::max(w, m.idle_w[l]);
  for (const PendingTransition& p : d.pending) w = std::max(w, p.power_hi);
  return w;
}

/// Lower bound on the disk's instantaneous power: the global electronics
/// floor whenever the settled mode or a transition is uncertain, else the
/// idle power of the slowest possible level.
Watts floor_power(const AbstractDisk& d, const ModelTable& m) {
  if (d.standby || !d.pending.empty()) return m.power_min;
  Watts w = m.idle_w[m.params->max_level()];
  for (const int l : d.levels) w = std::min(w, m.idle_w[l]);
  return w;
}

/// Integrate the compute-timeline segment [billed_to, t) at the current
/// ceiling/floor, then drop transition windows that are certainly settled.
void bill_to(AbstractDisk& d, const ModelTable& m, TimeMs t) {
  if (t > d.billed_to) {
    const TimeMs dt = t - d.billed_to;
    d.hi_j += joules_from_watt_ms(ceil_power(d, m), dt);
    d.lo_j += joules_from_watt_ms(floor_power(d, m), dt);
    d.billed_to = t;
  }
  auto keep = std::remove_if(
      d.pending.begin(), d.pending.end(),
      [t](const PendingTransition& p) { return p.until <= t; });
  d.pending.erase(keep, d.pending.end());
  d.chain_ready = 0;
  for (const PendingTransition& p : d.pending) {
    d.chain_ready = std::max(d.chain_ready, p.until);
  }
}

void add_pending(AbstractDisk& d, TimeMs t, TimeMs duration, Watts power_hi,
                 bool to_standby) {
  if (duration <= 0) return;
  PendingTransition p;
  p.until = std::max(t, d.chain_ready) + duration;
  p.duration = duration;
  p.power_hi = power_hi;
  p.to_standby = to_standby;
  d.chain_ready = std::max(d.chain_ready, p.until);
  d.pending.push_back(p);
}

void set_levels(AbstractDisk& d, std::vector<int> levels) {
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  d.levels = std::move(levels);
}

/// Apply one power directive, mirroring policy::ProactivePolicy +
/// sim::DiskUnit over every state the disk may be in.
void apply_directive(AbstractDisk& d, const ModelTable& m, TimeMs t,
                     const ir::PowerDirective& dir) {
  const disk::DiskParameters& p = *m.params;
  switch (dir.kind) {
    case ir::PowerDirective::Kind::kSpinDown: {
      // No-op when already heading to standby; every spinning branch
      // transitions into the default park over its worst entry edge.
      if (!d.levels.empty()) {
        TimeMs down_t = 0;
        Joules down_e = 0;
        for (const int l : d.levels) {
          down_t = std::max(down_t, p.park_entry_time(l, p.default_park()));
          down_e = std::max(down_e, p.park_entry_energy(l, p.default_park()));
        }
        add_pending(d, t, down_t, m.spin_down_w,
                    /*to_standby=*/true);
        d.hi_j += down_e;  // covers tails past end-of-run
      }
      d.levels.clear();
      d.standby = true;
      break;
    }
    case ir::PowerDirective::Kind::kSpinUp: {
      // No-op when spinning or already spinning up; the standby branches
      // wake to the top level.
      if (standby_possible(d)) {
        add_pending(d, t, p.wake_time(p.default_park()), m.spin_up_w,
                    /*to_standby=*/false);
        d.hi_j += p.wake_energy(p.default_park());
        std::vector<int> levels = d.levels;
        levels.push_back(p.max_level());
        set_levels(d, std::move(levels));
        d.standby = false;
        for (PendingTransition& pd : d.pending) pd.to_standby = false;
      }
      break;
    }
    case ir::PowerDirective::Kind::kSetRpm: {
      // ProactivePolicy wakes a standby disk first (spin_up, then the
      // shift from the top level); a spinning disk shifts directly, and a
      // disk already at the target does nothing.  Every branch ends
      // settled at the target level.
      const int target = dir.rpm_level;
      TimeMs duration = 0;
      Watts power = 0;
      Joules lump = 0;
      if (standby_possible(d)) {
        const TimeMs shift = p.rpm_transition_time(p.max_level(), target);
        duration = p.wake_time(p.default_park()) + shift;
        power = std::max(m.spin_up_w, m.idle_w[p.max_level()]);
        lump = p.wake_energy(p.default_park()) +
               p.rpm_transition_energy(p.max_level(), target);
      }
      for (const int from : d.levels) {
        if (from == target) continue;
        duration = std::max(duration, p.rpm_transition_time(from, target));
        power = std::max(power, m.idle_w[std::max(from, target)]);
        lump = std::max(lump, p.rpm_transition_energy(from, target));
      }
      add_pending(d, t, duration, power, /*to_standby=*/false);
      d.hi_j += lump;
      set_levels(d, {target});
      d.standby = false;
      for (PendingTransition& pd : d.pending) pd.to_standby = false;
      break;
    }
  }
}

/// Memoized per-level service times for one request size.
struct ServiceTable {
  Bytes bytes = -1;
  std::vector<TimeMs> service_ms;   ///< seek + rotation + transfer
  std::vector<TimeMs> transfer_ms;  ///< transfer only (sequential case)

  void fill(const disk::DiskParameters& p, Bytes b) {
    if (b == bytes) return;
    bytes = b;
    const int n = p.rpm_level_count();
    service_ms.assign(static_cast<std::size_t>(n), 0);
    transfer_ms.assign(static_cast<std::size_t>(n), 0);
    for (int l = 0; l < n; ++l) {
      service_ms[static_cast<std::size_t>(l)] =
          p.service_time(b, l, /*sequential=*/false);
      transfer_ms[static_cast<std::size_t>(l)] =
          p.service_time(b, l, /*sequential=*/true);
    }
  }
};

/// A restoring directive brings the disk back to full speed ahead of a
/// use; a degrading one sends it to a low-power state.
bool restores(const ir::PowerDirective& dir, int top) {
  return dir.kind == ir::PowerDirective::Kind::kSpinUp ||
         (dir.kind == ir::PowerDirective::Kind::kSetRpm &&
          dir.rpm_level >= top);
}

bool degrades(const ir::PowerDirective& dir, int top) {
  return dir.kind == ir::PowerDirective::Kind::kSpinDown ||
         (dir.kind == ir::PowerDirective::Kind::kSetRpm &&
          dir.rpm_level < top);
}

}  // namespace

ScheduleCertificate certify_trace(const trace::Trace& trace,
                                  const disk::DiskParameters& params) {
  const int disks = trace.total_disks;
  SDPM_REQUIRE(disks > 0, "certify_trace: trace names no disks");
  const ModelTable model(params);
  const TimeMs compute_total = trace.compute_total_ms;

  std::vector<AbstractDisk> state(static_cast<std::size_t>(disks));
  for (AbstractDisk& d : state) {
    d.levels = {params.max_level()};
  }

  // Per-disk item sequences for the wasted-preactivation scan: directive
  // kinds and request markers in program order.
  struct DiskItem {
    bool is_request = false;
    ir::PowerDirective directive;
  };
  std::vector<std::vector<DiskItem>> items(static_cast<std::size_t>(disks));

  ServiceTable service;
  TimeMs stall_lo_total = 0;
  TimeMs stall_hi_total = 0;

  // Merge requests and power events by compute timestamp; power events win
  // ties — the same order the replay's item stream delivers.
  std::size_t ri = 0;
  std::size_t pi = 0;
  const auto& reqs = trace.requests;
  const auto& events = trace.power_events;
  while (ri < reqs.size() || pi < events.size()) {
    const bool take_power =
        pi < events.size() &&
        (ri >= reqs.size() || events[pi].app_time_ms <= reqs[ri].arrival_ms);
    if (take_power) {
      const trace::PowerEvent& ev = events[pi++];
      const int disk = ev.directive.disk;
      SDPM_REQUIRE(disk >= 0 && disk < disks,
                   "certify_trace: power event targets unknown disk");
      AbstractDisk& d = state[static_cast<std::size_t>(disk)];
      bill_to(d, model, ev.app_time_ms);
      apply_directive(d, model, ev.app_time_ms, ev.directive);
      items[static_cast<std::size_t>(disk)].push_back(
          DiskItem{false, ev.directive});
      continue;
    }
    const trace::Request& req = reqs[ri++];
    const int disk = req.disk;
    SDPM_REQUIRE(disk >= 0 && disk < disks,
                 "certify_trace: request targets unknown disk");
    const TimeMs t = req.arrival_ms;
    AbstractDisk& d = state[static_cast<std::size_t>(disk)];
    bill_to(d, model, t);
    service.fill(params, req.size_bytes);

    // Worst-case wait before service: settle whichever transitions may be
    // in flight, then a demand spin-up if standby is reachable.  Pending
    // windows model one serialized chain (add_pending chains settle-by
    // times), so the wait is bounded by the SUM of the durations — a
    // spin-up issued while the spin-down is still in flight really waits
    // for both.
    const bool may_standby = standby_possible(d);
    TimeMs wake_hi = 0;
    for (const PendingTransition& p : d.pending) {
      wake_hi += p.duration;
    }
    if (may_standby) wake_hi += params.wake_time(params.default_park());
    if (may_standby) d.demand_spinup_possible = true;

    // Service levels: any possible settled level; a woken disk serves at
    // the top level.
    TimeMs service_hi = 0;
    for (const int l : d.levels) {
      service_hi = std::max(
          service_hi, service.service_ms[static_cast<std::size_t>(l)]);
    }
    if (may_standby || d.levels.empty()) {
      service_hi = std::max(
          service_hi,
          service.service_ms[static_cast<std::size_t>(params.max_level())]);
    }
    const TimeMs stall_hi = wake_hi + service_hi;
    const TimeMs stall_lo =
        service.transfer_ms[static_cast<std::size_t>(params.max_level())];
    stall_hi_total += stall_hi;
    stall_lo_total += stall_lo;

    // In closed loop the whole wait is wall-clock stall shared by every
    // disk: bill the serving disk at the global max power, every other
    // disk at its own current ceiling.
    for (int e = 0; e < disks; ++e) {
      AbstractDisk& other = state[static_cast<std::size_t>(e)];
      const Watts w =
          e == disk ? model.power_max : ceil_power(other, model);
      other.hi_j += joules_from_watt_ms(w, stall_hi);
    }
    // Lower bound: only the serving disk's minimum active transfer energy
    // is certain.
    Joules active_lo = joules_from_watt_ms(
        model.active_w[0], service.transfer_ms[0]);
    for (int l = 1; l < params.rpm_level_count(); ++l) {
      active_lo = std::min(
          active_lo,
          joules_from_watt_ms(model.active_w[static_cast<std::size_t>(l)],
                              service.transfer_ms[static_cast<std::size_t>(l)]));
    }
    d.lo_j += active_lo;

    d.may_access.insert(t, t + stall_hi);

    // After service every transition has settled and the disk spins.
    std::vector<int> levels = d.levels;
    if (may_standby) levels.push_back(params.max_level());
    set_levels(d, std::move(levels));
    d.standby = false;
    d.pending.clear();
    d.chain_ready = 0;
    items[static_cast<std::size_t>(disk)].push_back(DiskItem{true, {}});
  }

  ScheduleCertificate cert;
  cert.disks = disks;
  cert.compute_total_ms = compute_total;
  cert.requests = trace.request_count();
  cert.exec_lo_ms = compute_total + stall_lo_total;
  cert.exec_hi_ms = compute_total + stall_hi_total;
  cert.no_demand_spinup_proved = true;
  cert.no_wasted_preactivation_proved = true;
  cert.per_disk.reserve(static_cast<std::size_t>(disks));
  const int top = params.max_level();
  for (int disk = 0; disk < disks; ++disk) {
    AbstractDisk& d = state[static_cast<std::size_t>(disk)];
    bill_to(d, model, compute_total);

    // Wasted-preactivation scan: every restore must reach a request before
    // the next degrade or the end of the run.
    const auto& seq = items[static_cast<std::size_t>(disk)];
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (seq[i].is_request || !restores(seq[i].directive, top)) continue;
      bool used = false;
      for (std::size_t j = i + 1; j < seq.size(); ++j) {
        if (seq[j].is_request) {
          used = true;
          break;
        }
        if (degrades(seq[j].directive, top)) break;
      }
      if (!used) d.wasted_preactivation_possible = true;
    }

    DiskCertificate dc;
    dc.disk = disk;
    dc.energy_lo_j = d.lo_j;
    dc.energy_hi_j = d.hi_j;
    dc.may_access_ms = d.may_access.intervals();
    dc.guaranteed_idle_ms =
        d.may_access.complement_within(0, compute_total).intervals();
    dc.no_demand_spinup_proved = !d.demand_spinup_possible;
    dc.no_wasted_preactivation_proved = !d.wasted_preactivation_possible;
    cert.energy_lo_j += dc.energy_lo_j;
    cert.energy_hi_j += dc.energy_hi_j;
    cert.no_demand_spinup_proved &= dc.no_demand_spinup_proved;
    cert.no_wasted_preactivation_proved &= dc.no_wasted_preactivation_proved;
    cert.per_disk.push_back(std::move(dc));
  }
  return cert;
}

ScheduleCertificate certify_schedule(const core::ScheduleResult& result,
                                     const layout::LayoutTable& layout,
                                     const disk::DiskParameters& params,
                                     const trace::GeneratorOptions& options) {
  trace::TraceGenerator gen(result.program, layout, options);
  return certify_trace(gen.generate(), params);
}

}  // namespace sdpm::analysis
