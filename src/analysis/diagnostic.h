// Structured diagnostics for the static schedule analyzer.
//
// Every finding carries a stable rule id ("SDPM-E030"), a severity derived
// from the id's letter (E = error, W = warning, N = note), a location in
// (disk, nest, iteration, directive) coordinates, and a deterministic
// message.  Reports render to plain text or byte-stable JSON, and known
// findings can be suppressed through a baseline file of fingerprints —
// the same workflow as clang-tidy's warning baseline.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/certificate.h"
#include "analysis/fixit.h"

namespace sdpm::analysis {

enum class Severity { kNote, kWarning, kError };

const char* to_string(Severity severity);

/// Severity encoded in a rule id's letter ("SDPM-E030" -> error).
Severity severity_of_rule(std::string_view rule_id);

/// Where a finding points.  Unset components are -1: a whole-program
/// finding (e.g. overlapping fission disk sets) has every field unset; a
/// directive finding carries all four.
struct DiagLocation {
  int disk = -1;
  int nest = -1;                  ///< nest index within the program
  std::int64_t iteration = -1;    ///< flat iteration within the nest
  int directive = -1;             ///< index into Program::directives

  friend bool operator==(const DiagLocation&, const DiagLocation&) = default;
};

struct Diagnostic {
  std::string rule;      ///< stable id, e.g. "SDPM-E030"
  Severity severity = Severity::kError;
  DiagLocation loc;
  std::string message;   ///< deterministic, human-readable
  std::string pass;      ///< name of the pass that produced it
  /// Machine-applicable repairs (SDPM-F### catalog); empty when the pass
  /// has no mechanical remedy for this finding.
  std::vector<FixIt> fixits;

  /// Stable identity for baseline suppression: rule + location (the
  /// directive index is excluded so unrelated insertions don't invalidate
  /// a baseline).
  std::string fingerprint() const;
};

/// Construct a diagnostic, deriving the severity from the rule id.
Diagnostic make_diagnostic(std::string rule, std::string pass,
                           DiagLocation loc, std::string message);

struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  std::vector<std::string> passes_run;
  std::int64_t directives_checked = 0;
  int suppressed = 0;  ///< findings removed by the baseline
  /// Certified energy/delay bounds (analysis/bounds.h); empty when the
  /// caller did not run the certifier (e.g. the access model rejected the
  /// program).
  std::optional<ScheduleCertificate> certificate;

  int count(Severity severity) const;
  int errors() const { return count(Severity::kError); }
  int warnings() const { return count(Severity::kWarning); }
  int notes() const { return count(Severity::kNote); }

  /// Total fix-its attached across all diagnostics.
  int fixit_count() const;

  /// True when any diagnostic carries `rule`.
  bool has(std::string_view rule) const;

  /// Highest severity present; empty when the report is clean.
  std::optional<Severity> worst() const;

  /// Sort diagnostics into the canonical deterministic order: disk, then
  /// program position (nest, iteration), then rule id — stable across
  /// pass-registration order.  Renderers expect sorted input.
  void sort();
};

/// One line per diagnostic plus a summary trailer.
std::string render_text(const AnalysisReport& report);

/// Byte-stable JSON: fixed key order, sorted diagnostics, no floating
/// point in the envelope.  Safe to diff across runs.
std::string render_json(const AnalysisReport& report);

/// A set of suppressed fingerprints, one per line ('#' comments allowed).
class Baseline {
 public:
  static Baseline parse(std::istream& in);

  bool contains(const std::string& fingerprint) const;
  std::size_t size() const { return fingerprints_.size(); }

 private:
  std::vector<std::string> fingerprints_;  // sorted, unique
};

/// Drop baselined diagnostics from `report`, counting them in
/// `report.suppressed`.
void apply_baseline(AnalysisReport& report, const Baseline& baseline);

/// Serialize the report's findings as a baseline file body.
std::string to_baseline(const AnalysisReport& report);

}  // namespace sdpm::analysis
