// Redundancy / conflict pass.
//
//   SDPM-W020  set_RPM to the level the disk is already at (no-op call
//              that still pays Tm)
//   SDPM-W021  a degrade directive overridden by another degrade in the
//              same idle period, with no use and no restore between — the
//              first call was wasted
//   SDPM-E022  TPM (spin_down/spin_up) and DRPM (set_RPM) directives mixed
//              within one idle period of one disk
//
// No-op set_RPM calls (W020) carry an SDPM-F003 fix-it that simply
// removes the directive.
#include <cstdint>
#include <vector>

#include "analysis/pass.h"
#include "analysis/registry.h"
#include "util/strings.h"

namespace sdpm::analysis {

namespace {

class RedundancyPass final : public Pass {
 public:
  const char* name() const override { return "redundancy"; }

  void run(AnalysisContext& ctx, std::vector<Diagnostic>& out) override {
    const ir::Program& program = ctx.program();
    const int top = ctx.top_level();

    for (int disk = 0; disk < ctx.total_disks(); ++disk) {
      const auto& plans = ctx.plans_of(disk);
      const auto& dirs = ctx.directives_of(disk);

      // Demand-wake-aware level/standby tracking, as in check_schedule.
      bool standby = false;
      int level = top;
      std::size_t di = 0;
      for (std::size_t pi = 0; pi < plans.size(); ++pi) {
        const core::GapPlan& plan = *plans[pi];
        // Accesses before this gap demand-wake the disk.
        while (di < dirs.size() && dirs[di].global < plan.begin_iter) {
          ++di;  // outside every gap: wellformed reports E003
        }
        if (pi > 0 && plans[pi - 1]->end_iter < plan.begin_iter) {
          standby = false;
          level = top;
        }

        bool saw_tpm = false;
        bool saw_drpm = false;
        int pending_degrade = -1;  // directive index of an unused degrade
        std::size_t first_in_gap = di;
        while (di < dirs.size() && dirs[di].global <= plan.end_iter) {
          const auto& ref = dirs[di];
          const ir::PowerDirective& d =
              program.directives[static_cast<std::size_t>(ref.index)]
                  .directive;
          switch (d.kind) {
            case ir::PowerDirective::Kind::kSpinDown:
              if (pending_degrade >= 0) {
                report_overridden(ctx, out, pending_degrade, disk);
              }
              pending_degrade = ref.index;
              standby = true;
              saw_tpm = true;
              break;
            case ir::PowerDirective::Kind::kSpinUp:
              pending_degrade = -1;
              standby = false;
              level = top;
              saw_tpm = true;
              break;
            case ir::PowerDirective::Kind::kSetRpm: {
              const int target = d.rpm_level;
              saw_drpm = true;
              if (target == level && !standby) {
                Diagnostic diag = make_diagnostic(
                    "SDPM-W020", name(),
                    ctx.loc_at(ref.global, disk, ref.index),
                    str_printf("set_RPM(%d) on disk %d is a no-op: the "
                               "disk is already at level %d",
                               target, disk, level));
                core::ScheduleEdit edit;
                edit.kind = core::ScheduleEdit::Kind::kRemoveDirective;
                edit.directive_index = ref.index;
                diag.fixits.push_back(FixIt{
                    "SDPM-F003", "remove the no-op set_RPM call", {edit}});
                out.push_back(std::move(diag));
              }
              if (target < level) {
                if (pending_degrade >= 0) {
                  report_overridden(ctx, out, pending_degrade, disk);
                }
                pending_degrade = ref.index;
              } else if (target >= top) {
                pending_degrade = -1;
              }
              if (target >= 0 && target <= top) level = target;
              standby = false;
              break;
            }
          }
          ++di;
        }
        if (saw_tpm && saw_drpm && di > first_in_gap) {
          const auto& first = dirs[first_in_gap];
          out.push_back(make_diagnostic(
              "SDPM-E022", name(),
              ctx.loc_at(first.global, disk, first.index),
              str_printf("idle period [%lld, %lld) of disk %d mixes TPM "
                         "and DRPM directives",
                         static_cast<long long>(plan.begin_iter),
                         static_cast<long long>(plan.end_iter), disk)));
        }
        // The access ending this gap wakes the disk on demand.
        if (plan.end_iter < ctx.space().total()) {
          standby = false;
          level = top;
        }
      }
    }
  }

 private:
  void report_overridden(AnalysisContext& ctx, std::vector<Diagnostic>& out,
                         int directive, int disk) {
    const ir::PlacedDirective& pd =
        ctx.program().directives[static_cast<std::size_t>(directive)];
    const std::int64_t g = ctx.space().global_of(pd.point);
    out.push_back(make_diagnostic(
        "SDPM-W021", name(), ctx.loc_at(g, disk, directive),
        str_printf("%s on disk %d is overridden by a later degrade before "
                   "the disk is used",
                   ir::to_string(pd.directive.kind), disk)));
  }
};

}  // namespace

std::unique_ptr<Pass> make_redundancy_pass() {
  return std::make_unique<RedundancyPass>();
}

}  // namespace sdpm::analysis
