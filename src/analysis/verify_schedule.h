// Static well-formedness verification of a power-call schedule.
//
// check_schedule() collects every violation as a structured diagnostic
// (rules SDPM-E001..E008), modelling the simulator's demand wake: an
// active interval (a planned gap's end) clears standby, so ablation
// schedules without pre-activation still verify.  verify_schedule() is the
// historical throwing interface: it runs the same checks, throws
// sdpm::Error summarizing *all* errors (not just the first), and returns
// the number of directives checked.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/diagnostic.h"
#include "core/schedule.h"

namespace sdpm::analysis {

/// Collect every well-formedness violation of `result` against its own gap
/// plans and the disk count.  Never throws on program-level problems.
std::vector<Diagnostic> check_schedule(const core::ScheduleResult& result,
                                       int total_disks,
                                       const disk::DiskParameters& params);

/// Throwing wrapper: runs check_schedule and throws sdpm::Error listing
/// the first error (with a "+N more" suffix when several were found).
/// Returns the number of directives checked.
std::int64_t verify_schedule(const core::ScheduleResult& result,
                             int total_disks,
                             const disk::DiskParameters& params);

}  // namespace sdpm::analysis
