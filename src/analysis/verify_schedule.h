// Static well-formedness verification of a power-call schedule.
//
// check_schedule() collects every violation as a structured diagnostic
// (rules SDPM-E001..E008), modelling the simulator's demand wake: an
// active interval (a planned gap's end) clears standby, so ablation
// schedules without pre-activation still verify.  The historical throwing
// core::verify_schedule interface has been removed; this is the only
// schedule-verification entry point.
#pragma once

#include <vector>

#include "analysis/diagnostic.h"
#include "core/schedule.h"

namespace sdpm::analysis {

/// Collect every well-formedness violation of `result` against its own gap
/// plans and the disk count.  Never throws on program-level problems.
std::vector<Diagnostic> check_schedule(const core::ScheduleResult& result,
                                       int total_disks,
                                       const disk::DiskParameters& params);

}  // namespace sdpm::analysis
