// Layout-coverage pass.
//
//   SDPM-E080  a subscript whose affine range can address an index outside
//              the array extent — the access model would fault or, worse,
//              silently touch another array's disk region
//   SDPM-W081  a disk that holds allocated data but is never accessed by
//              the program: its regions were laid out for nothing and it
//              idles at full power unless a directive parks it
#include <cstdint>
#include <vector>

#include "analysis/pass.h"
#include "analysis/registry.h"
#include "util/strings.h"

namespace sdpm::analysis {

namespace {

/// Minimum and maximum of an affine expression over the nest's iterator
/// ranges (each loop contributes its extreme value per coefficient sign).
struct ValueRange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

ValueRange subscript_range(const ir::AffineExpr& expr,
                           const ir::LoopNest& nest) {
  ValueRange range{expr.constant, expr.constant};
  for (int k = 0; k < nest.depth(); ++k) {
    const std::int64_t c = expr.coef(static_cast<std::size_t>(k));
    if (c == 0) continue;
    const ir::Loop& loop = nest.loops[static_cast<std::size_t>(k)];
    if (loop.trip_count() <= 0) continue;
    const std::int64_t first = loop.value_at(0);
    const std::int64_t last = loop.value_at(loop.trip_count() - 1);
    const std::int64_t a = c * first;
    const std::int64_t b = c * last;
    range.lo += a < b ? a : b;
    range.hi += a < b ? b : a;
  }
  return range;
}

class CoveragePass final : public Pass {
 public:
  const char* name() const override { return "coverage"; }

  void run(AnalysisContext& ctx, std::vector<Diagnostic>& out) override {
    const ir::Program& program = ctx.program();

    for (int n = 0; n < static_cast<int>(program.nests.size()); ++n) {
      const ir::LoopNest& nest = program.nests[static_cast<std::size_t>(n)];
      for (const ir::Statement& stmt : nest.body) {
        for (const ir::ArrayRef& ref : stmt.refs) {
          if (ref.array < 0 ||
              ref.array >= static_cast<ir::ArrayId>(program.arrays.size())) {
            continue;  // Program::validate reports dangling references
          }
          const ir::Array& array = program.array(ref.array);
          const int dims =
              static_cast<int>(ref.subscripts.size()) < array.rank()
                  ? static_cast<int>(ref.subscripts.size())
                  : array.rank();
          for (int d = 0; d < dims; ++d) {
            const ValueRange range =
                subscript_range(ref.subscripts[static_cast<std::size_t>(d)],
                                nest);
            const std::int64_t extent =
                array.extents[static_cast<std::size_t>(d)];
            if (range.lo < 0 || range.hi >= extent) {
              DiagLocation loc;
              loc.nest = n;
              out.push_back(make_diagnostic(
                  "SDPM-E080", name(), loc,
                  str_printf("nest %d subscript %d of array %d spans "
                             "[%lld, %lld] outside extent [0, %lld)",
                             n, d, ref.array,
                             static_cast<long long>(range.lo),
                             static_cast<long long>(range.hi),
                             static_cast<long long>(extent))));
            }
          }
        }
      }
    }

    const trace::DiskAccessPattern* dap = ctx.dap();
    if (dap == nullptr) return;  // registry reports SDPM-E090
    for (int disk = 0; disk < ctx.total_disks(); ++disk) {
      if (dap->never_accessed(disk) && ctx.layout().bytes_on_disk(disk) > 0) {
        DiagLocation loc;
        loc.disk = disk;
        out.push_back(make_diagnostic(
            "SDPM-W081", name(), loc,
            str_printf("disk %d holds %s of data but is never accessed",
                       disk,
                       fmt_bytes(ctx.layout().bytes_on_disk(disk)).c_str())));
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_coverage_pass() {
  return std::make_unique<CoveragePass>();
}

}  // namespace sdpm::analysis
