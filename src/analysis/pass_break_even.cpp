// Break-even pass (paper §2/§3 economics).
//
//   SDPM-E030  a spin_down whose remaining gap (after the call site) is
//              shorter than the disk's break-even time — the transition
//              energy cannot be recovered, the call wastes energy
//   SDPM-W031  an idle period the scheduler's own profitability rule says
//              is exploitable, but no directive acts on it
//
// The remaining gap is derived from the plan's *estimated* length scaled
// by the time fraction after the directive, so the check replicates the
// scheduler's decision basis rather than second-guessing its estimator.
//
// E030 carries an SDPM-F002 fix-it: when the whole gap clears break-even
// the spin_down is hoisted to the gap's first iteration; otherwise the
// spin_down and its paired wake-up are removed and the plan un-acted.
#include <cstdint>
#include <vector>

#include "analysis/pass.h"
#include "analysis/registry.h"
#include "policy/oracle.h"
#include "util/strings.h"

namespace sdpm::analysis {

namespace {

class BreakEvenPass final : public Pass {
 public:
  const char* name() const override { return "break-even"; }

  void run(AnalysisContext& ctx, std::vector<Diagnostic>& out) override {
    const ir::Program& program = ctx.program();
    const disk::DiskParameters& params = ctx.params();
    const TimeMs break_even = params.break_even_time();
    const std::optional<core::PowerMode> mode = ctx.inferred_mode();

    for (int disk = 0; disk < ctx.total_disks(); ++disk) {
      for (const core::GapPlan* plan : ctx.plans_of(disk)) {
        // E030: every spin_down inside this gap must leave at least the
        // break-even time before the gap's next access.
        for (const auto& ref : ctx.directives_of(disk)) {
          if (ref.global < plan->begin_iter || ref.global > plan->end_iter) {
            continue;
          }
          const ir::PowerDirective& d =
              program.directives[static_cast<std::size_t>(ref.index)]
                  .directive;
          if (d.kind != ir::PowerDirective::Kind::kSpinDown) continue;
          const TimeMs remaining = remaining_estimate(ctx, *plan, ref.global);
          if (remaining + 1e-9 < break_even) {
            Diagnostic diag = make_diagnostic(
                "SDPM-E030", name(), ctx.loc_at(ref.global, disk, ref.index),
                str_printf("spin_down on disk %d leaves %s of the gap, "
                           "below the %s break-even time",
                           disk, fmt_time_ms(remaining).c_str(),
                           fmt_time_ms(break_even).c_str()));
            attach_f002(ctx, *plan, ref, disk, break_even, diag);
            out.push_back(std::move(diag));
          }
        }

        // W031: the scheduler's own profitability rule, un-acted.
        if (plan->acted || !mode.has_value()) continue;
        if (plan->end_iter <= plan->begin_iter) continue;
        const TimeMs discounted =
            plan->estimated_ms * (1.0 - ctx.options().safety_margin);
        if (*mode == core::PowerMode::kTpm) {
          if (policy::tpm_gap_beneficial(discounted, params)) {
            out.push_back(make_diagnostic(
                "SDPM-W031", name(), ctx.loc_at(plan->begin_iter, disk),
                str_printf("idle period of disk %d (estimated %s) exceeds "
                           "the break-even time but no spin_down acts on it",
                           disk, fmt_time_ms(plan->estimated_ms).c_str())));
          }
        } else {
          const int best =
              policy::optimal_rpm_level(plan->estimated_ms, params);
          if (best < ctx.top_level()) {
            out.push_back(make_diagnostic(
                "SDPM-W031", name(), ctx.loc_at(plan->begin_iter, disk),
                str_printf("idle period of disk %d (estimated %s) profits "
                           "from RPM level %d but no set_RPM acts on it",
                           disk, fmt_time_ms(plan->estimated_ms).c_str(),
                           best)));
          }
        }
      }
    }
  }

 private:
  /// SDPM-F002: repair a sub-break-even spin_down.  If the whole gap is
  /// profitable the call is merely late — hoist it to the gap begin.
  /// Otherwise remove it together with its paired wake-up and mark the
  /// plan un-acted so later passes stop expecting directives in the gap.
  static void attach_f002(AnalysisContext& ctx, const core::GapPlan& plan,
                          const AnalysisContext::DirRef& ref, int disk,
                          TimeMs break_even, Diagnostic& diag) {
    std::vector<core::ScheduleEdit> edits;
    if (plan.estimated_ms >= break_even && ref.global > plan.begin_iter) {
      core::ScheduleEdit move;
      move.kind = core::ScheduleEdit::Kind::kMoveDirective;
      move.directive_index = ref.index;
      move.point = ctx.space().point_of(plan.begin_iter);
      edits.push_back(move);
      diag.fixits.push_back(FixIt{
          "SDPM-F002",
          "hoist the spin_down to the start of the gap",
          std::move(edits)});
      return;
    }
    core::ScheduleEdit remove_down;
    remove_down.kind = core::ScheduleEdit::Kind::kRemoveDirective;
    remove_down.directive_index = ref.index;
    edits.push_back(remove_down);
    // The paired wake-up: the first spin_up in the same gap after the
    // spin_down (the scheduler and the mutation engine both emit the
    // pair in that shape).
    const ir::Program& program = ctx.program();
    for (const auto& other : ctx.directives_of(disk)) {
      if (other.global < ref.global || other.global > plan.end_iter) continue;
      if (other.index == ref.index) continue;
      const ir::PowerDirective& od =
          program.directives[static_cast<std::size_t>(other.index)].directive;
      if (od.kind != ir::PowerDirective::Kind::kSpinUp) continue;
      core::ScheduleEdit remove_up;
      remove_up.kind = core::ScheduleEdit::Kind::kRemoveDirective;
      remove_up.directive_index = other.index;
      edits.push_back(remove_up);
      break;
    }
    core::ScheduleEdit unact;
    unact.kind = core::ScheduleEdit::Kind::kSetPlanActed;
    unact.plan_index = static_cast<int>(&plan - ctx.result().plans.data());
    unact.acted = false;
    edits.push_back(unact);
    diag.fixits.push_back(FixIt{
        "SDPM-F002",
        "remove the unprofitable spin_down/spin_up pair",
        std::move(edits)});
  }

  /// Estimated idle time left after a directive at `g`: the plan estimate
  /// scaled by the timeline fraction of the gap after `g`.
  static TimeMs remaining_estimate(const AnalysisContext& ctx,
                                   const core::GapPlan& plan,
                                   std::int64_t g) {
    if (g <= plan.begin_iter) return plan.estimated_ms;
    if (g >= plan.end_iter) return 0;
    const TimeMs whole = ctx.at(plan.end_iter) - ctx.at(plan.begin_iter);
    if (whole <= 0) return plan.estimated_ms;
    const TimeMs after = ctx.at(plan.end_iter) - ctx.at(g);
    return plan.estimated_ms * (after / whole);
  }
};

}  // namespace

std::unique_ptr<Pass> make_break_even_pass() {
  return std::make_unique<BreakEvenPass>();
}

}  // namespace sdpm::analysis
