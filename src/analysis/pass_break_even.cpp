// Break-even pass (paper §2/§3 economics).
//
//   SDPM-E030  a spin_down whose remaining gap (after the call site) is
//              shorter than the disk's break-even time — the transition
//              energy cannot be recovered, the call wastes energy
//   SDPM-W031  an idle period the scheduler's own profitability rule says
//              is exploitable, but no directive acts on it
//
// The remaining gap is derived from the plan's *estimated* length scaled
// by the time fraction after the directive, so the check replicates the
// scheduler's decision basis rather than second-guessing its estimator.
#include <cstdint>
#include <vector>

#include "analysis/pass.h"
#include "analysis/registry.h"
#include "policy/oracle.h"
#include "util/strings.h"

namespace sdpm::analysis {

namespace {

class BreakEvenPass final : public Pass {
 public:
  const char* name() const override { return "break-even"; }

  void run(AnalysisContext& ctx, std::vector<Diagnostic>& out) override {
    const ir::Program& program = ctx.program();
    const disk::DiskParameters& params = ctx.params();
    const TimeMs break_even = params.break_even_time();
    const std::optional<core::PowerMode> mode = ctx.inferred_mode();

    for (int disk = 0; disk < ctx.total_disks(); ++disk) {
      for (const core::GapPlan* plan : ctx.plans_of(disk)) {
        // E030: every spin_down inside this gap must leave at least the
        // break-even time before the gap's next access.
        for (const auto& ref : ctx.directives_of(disk)) {
          if (ref.global < plan->begin_iter || ref.global > plan->end_iter) {
            continue;
          }
          const ir::PowerDirective& d =
              program.directives[static_cast<std::size_t>(ref.index)]
                  .directive;
          if (d.kind != ir::PowerDirective::Kind::kSpinDown) continue;
          const TimeMs remaining = remaining_estimate(ctx, *plan, ref.global);
          if (remaining + 1e-9 < break_even) {
            out.push_back(make_diagnostic(
                "SDPM-E030", name(), ctx.loc_at(ref.global, disk, ref.index),
                str_printf("spin_down on disk %d leaves %s of the gap, "
                           "below the %s break-even time",
                           disk, fmt_time_ms(remaining).c_str(),
                           fmt_time_ms(break_even).c_str())));
          }
        }

        // W031: the scheduler's own profitability rule, un-acted.
        if (plan->acted || !mode.has_value()) continue;
        if (plan->end_iter <= plan->begin_iter) continue;
        const TimeMs discounted =
            plan->estimated_ms * (1.0 - ctx.options().safety_margin);
        if (*mode == core::PowerMode::kTpm) {
          if (policy::tpm_gap_beneficial(discounted, params)) {
            out.push_back(make_diagnostic(
                "SDPM-W031", name(), ctx.loc_at(plan->begin_iter, disk),
                str_printf("idle period of disk %d (estimated %s) exceeds "
                           "the break-even time but no spin_down acts on it",
                           disk, fmt_time_ms(plan->estimated_ms).c_str())));
          }
        } else {
          const int best =
              policy::optimal_rpm_level(plan->estimated_ms, params);
          if (best < ctx.top_level()) {
            out.push_back(make_diagnostic(
                "SDPM-W031", name(), ctx.loc_at(plan->begin_iter, disk),
                str_printf("idle period of disk %d (estimated %s) profits "
                           "from RPM level %d but no set_RPM acts on it",
                           disk, fmt_time_ms(plan->estimated_ms).c_str(),
                           best)));
          }
        }
      }
    }
  }

 private:
  /// Estimated idle time left after a directive at `g`: the plan estimate
  /// scaled by the timeline fraction of the gap after `g`.
  static TimeMs remaining_estimate(const AnalysisContext& ctx,
                                   const core::GapPlan& plan,
                                   std::int64_t g) {
    if (g <= plan.begin_iter) return plan.estimated_ms;
    if (g >= plan.end_iter) return 0;
    const TimeMs whole = ctx.at(plan.end_iter) - ctx.at(plan.begin_iter);
    if (whole <= 0) return plan.estimated_ms;
    const TimeMs after = ctx.at(plan.end_iter) - ctx.at(g);
    return plan.estimated_ms * (after / whole);
  }
};

}  // namespace

std::unique_ptr<Pass> make_break_even_pass() {
  return std::make_unique<BreakEvenPass>();
}

}  // namespace sdpm::analysis
