#include "analysis/pass.h"

#include <algorithm>
#include <exception>
#include <tuple>

namespace sdpm::analysis {

AnalysisContext::AnalysisContext(const core::ScheduleResult& result,
                                 const layout::LayoutTable& layout,
                                 const disk::DiskParameters& params,
                                 AnalyzeOptions options)
    : result_(&result),
      layout_(&layout),
      params_(&params),
      options_(options),
      space_(result.program),
      nominal_(result.program, options.access.clock_hz) {
  const int disks = layout.total_disks();
  directives_by_disk_.resize(static_cast<std::size_t>(disks));
  for (int i = 0; i < static_cast<int>(result.program.directives.size());
       ++i) {
    const ir::PlacedDirective& pd =
        result.program.directives[static_cast<std::size_t>(i)];
    const int disk = pd.directive.disk;
    if (disk < 0 || disk >= disks) continue;  // wellformed pass reports it
    directives_by_disk_[static_cast<std::size_t>(disk)].push_back(
        {space_.global_of(pd.point), i});
  }
  for (auto& dirs : directives_by_disk_) {
    std::stable_sort(dirs.begin(), dirs.end(),
                     [](const DirRef& a, const DirRef& b) {
                       return std::tie(a.global, a.index) <
                              std::tie(b.global, b.index);
                     });
  }

  plans_by_disk_.resize(static_cast<std::size_t>(disks));
  for (const core::GapPlan& plan : result.plans) {
    if (plan.disk < 0 || plan.disk >= disks) continue;
    plans_by_disk_[static_cast<std::size_t>(plan.disk)].push_back(&plan);
  }
  for (auto& plans : plans_by_disk_) {
    std::stable_sort(plans.begin(), plans.end(),
                     [](const core::GapPlan* a, const core::GapPlan* b) {
                       return a->begin_iter < b->begin_iter;
                     });
  }
}

TimeMs AnalysisContext::at(std::int64_t g) const {
  const std::int64_t clamped = std::clamp<std::int64_t>(g, 0, space_.total());
  if (options_.estimate != nullptr) {
    return options_.estimate->at_global(clamped);
  }
  return nominal_.at_global(clamped);
}

TimeMs AnalysisContext::iter_ms(std::int64_t g) const {
  if (g < 0 || g >= space_.total()) return 0;
  return at(g + 1) - at(g);
}

const trace::DiskAccessPattern* AnalysisContext::dap() {
  if (!dap_attempted_) {
    dap_attempted_ = true;
    try {
      dap_ = trace::DiskAccessPattern::analyze(result_->program, *layout_,
                                               options_.access);
    } catch (const std::exception& e) {
      dap_error_ = e.what();
    }
  }
  return dap_.has_value() ? &*dap_ : nullptr;
}

const std::vector<AnalysisContext::DirRef>& AnalysisContext::directives_of(
    int disk) const {
  return directives_by_disk_[static_cast<std::size_t>(disk)];
}

const std::vector<const core::GapPlan*>& AnalysisContext::plans_of(
    int disk) const {
  return plans_by_disk_[static_cast<std::size_t>(disk)];
}

std::optional<core::PowerMode> AnalysisContext::inferred_mode() const {
  for (const ir::PlacedDirective& pd : result_->program.directives) {
    if (pd.directive.kind == ir::PowerDirective::Kind::kSetRpm) {
      return core::PowerMode::kDrpm;
    }
    return core::PowerMode::kTpm;
  }
  return std::nullopt;
}

DiagLocation AnalysisContext::loc_at(std::int64_t g, int disk,
                                     int directive) const {
  const ir::IterationPoint point =
      space_.point_of(std::clamp<std::int64_t>(g, 0, space_.total()));
  DiagLocation loc;
  loc.disk = disk;
  loc.nest = point.nest_index;
  loc.iteration = point.flat_iteration;
  loc.directive = directive;
  return loc;
}

}  // namespace sdpm::analysis
