// Analysis pass interface and the shared per-run context.
//
// The analyzer consumes exactly what the compiler produced — a
// (ScheduleResult, LayoutTable, DiskParameters) triple — and never
// simulates.  The context lazily derives the views every pass walks: the
// global iteration space, the compiler's time estimate, per-disk directive
// and gap-plan indexes, and (guarded, because a malformed program can make
// the access model throw) the Disk Access Pattern.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "core/compiler.h"
#include "core/schedule.h"
#include "disk/parameters.h"
#include "layout/layout_table.h"
#include "trace/dap.h"
#include "trace/generator.h"
#include "trace/iteration_space.h"
#include "trace/timeline.h"

namespace sdpm::analysis {

struct AnalyzeOptions {
  /// Access-model options.  Must match the scheduler's, or the recomputed
  /// DAP will disagree with the plans (SDPM-E009).
  trace::GeneratorOptions access;
  /// The time estimate the schedule was planned against.  Non-owning; when
  /// null the nominal compute timeline is used — the same fallback as
  /// core::schedule_power_calls.
  const trace::TimeEstimate* estimate = nullptr;
  /// Mirrors SchedulerOptions::safety_margin for decision replication.
  double safety_margin = 0.25;
  /// The transformation that produced the program; selects the severity of
  /// the dependence-legality findings (error for tiled code).
  core::Transformation transform = core::Transformation::kNone;
};

/// Shared state of one analyzer run over one schedule.
class AnalysisContext {
 public:
  AnalysisContext(const core::ScheduleResult& result,
                  const layout::LayoutTable& layout,
                  const disk::DiskParameters& params,
                  AnalyzeOptions options);

  AnalysisContext(const AnalysisContext&) = delete;
  AnalysisContext& operator=(const AnalysisContext&) = delete;

  const core::ScheduleResult& result() const { return *result_; }
  const ir::Program& program() const { return result_->program; }
  const layout::LayoutTable& layout() const { return *layout_; }
  const disk::DiskParameters& params() const { return *params_; }
  const AnalyzeOptions& options() const { return options_; }

  int total_disks() const { return layout_->total_disks(); }
  int top_level() const { return params_->max_level(); }

  /// Per-call overhead Tm (paper Eq. 1).
  TimeMs tm() const { return options_.access.power_call_overhead_ms; }

  const trace::IterationSpace& space() const { return space_; }

  /// Estimated start time of global iteration `g` (clamped to the
  /// program).
  TimeMs at(std::int64_t g) const;

  /// Estimated duration of global iteration `g`.
  TimeMs iter_ms(std::int64_t g) const;

  /// The recomputed Disk Access Pattern, or nullptr when the access model
  /// rejected the program (see dap_error(); the registry reports it as
  /// SDPM-E090).
  const trace::DiskAccessPattern* dap();

  bool dap_attempted() const { return dap_attempted_; }
  const std::string& dap_error() const { return dap_error_; }

  /// One directive of one disk, in program order.
  struct DirRef {
    std::int64_t global = 0;  ///< global iteration of the placement point
    int index = 0;            ///< index into Program::directives
  };

  /// Directives targeting `disk`, sorted by (global, index).
  const std::vector<DirRef>& directives_of(int disk) const;

  /// Gap plans of `disk`, sorted by begin_iter.
  const std::vector<const core::GapPlan*>& plans_of(int disk) const;

  /// Power mode implied by the directive kinds; empty when the program
  /// carries no directives.
  std::optional<core::PowerMode> inferred_mode() const;

  /// Location helper: resolve a global iteration to (nest, iteration).
  DiagLocation loc_at(std::int64_t g, int disk, int directive = -1) const;

 private:
  const core::ScheduleResult* result_;
  const layout::LayoutTable* layout_;
  const disk::DiskParameters* params_;
  AnalyzeOptions options_;
  trace::IterationSpace space_;
  trace::Timeline nominal_;
  std::vector<std::vector<DirRef>> directives_by_disk_;
  std::vector<std::vector<const core::GapPlan*>> plans_by_disk_;
  std::optional<trace::DiskAccessPattern> dap_;
  bool dap_attempted_ = false;
  std::string dap_error_;
};

/// One analysis pass: appends diagnostics, never throws for program-level
/// problems (only for analyzer-internal bugs).
class Pass {
 public:
  virtual ~Pass() = default;

  virtual const char* name() const = 0;
  virtual void run(AnalysisContext& ctx, std::vector<Diagnostic>& out) = 0;
};

}  // namespace sdpm::analysis
