// Pass registry and the analyze() facade.
//
// The registry owns the ordered list of analysis passes and runs them over
// one (ScheduleResult, LayoutTable, DiskParameters) triple, collecting a
// sorted AnalysisReport.  The default registry holds every built-in pass;
// callers that want a subset (e.g. check_schedule, which runs only the
// well-formedness core) build their own.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "analysis/pass.h"

namespace sdpm::analysis {

/// Catalog entry for one rule, for `sdpm_cli analyze --list-rules` and the
/// documentation table.
struct RuleInfo {
  const char* id;
  Severity severity;
  const char* pass;
  const char* summary;
};

/// Every rule the built-in passes can emit, in id order.
std::span<const RuleInfo> rule_catalog();

// Built-in pass factories, in default registration order.
std::unique_ptr<Pass> make_wellformed_pass();
std::unique_ptr<Pass> make_redundancy_pass();
std::unique_ptr<Pass> make_break_even_pass();
std::unique_ptr<Pass> make_preactivation_pass();
std::unique_ptr<Pass> make_misfit_pass();
std::unique_ptr<Pass> make_fission_pass();
std::unique_ptr<Pass> make_dependence_pass();
std::unique_ptr<Pass> make_coverage_pass();

class PassRegistry {
 public:
  /// Registry with every built-in pass, in catalog order.
  static PassRegistry with_default_passes();

  void add(std::unique_ptr<Pass> pass);

  std::size_t size() const { return passes_.size(); }

  /// Run every registered pass and return the sorted report.  A DAP
  /// failure surfaces as SDPM-E090, not an exception.
  AnalysisReport run(const core::ScheduleResult& result,
                     const layout::LayoutTable& layout,
                     const disk::DiskParameters& params,
                     const AnalyzeOptions& options) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// Run the default registry.
AnalysisReport analyze(const core::ScheduleResult& result,
                       const layout::LayoutTable& layout,
                       const disk::DiskParameters& params,
                       const AnalyzeOptions& options = {});

}  // namespace sdpm::analysis
