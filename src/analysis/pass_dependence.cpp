// Transformation-legality pass (dependence directions).
//
//   SDPM-E070  a tiled/interchanged program (TL or TL+DL) whose nest
//              carries a permutation-unsafe dependence — the transformed
//              iteration order can run a sink before its source
//   SDPM-N071  the same condition on an untransformed program: harmless
//              now, but tiling this nest later would be illegal
//   SDPM-N072  reference pairs whose subscripts are not uniformly
//              generated: legality is unproven, not disproven
//
// Built on the constant-distance dependence solver in ir/dependence.h.
#include <cstddef>
#include <string>
#include <vector>

#include "analysis/pass.h"
#include "analysis/registry.h"
#include "ir/dependence.h"
#include "util/strings.h"

namespace sdpm::analysis {

namespace {

std::string distance_text(const ir::Dependence& dep) {
  std::string text = "(";
  for (std::size_t k = 0; k < dep.distance.size(); ++k) {
    if (k > 0) text += ",";
    if (dep.free_loop[k]) {
      text += "*";
    } else {
      text += std::to_string(dep.distance[k]);
    }
  }
  text += ")";
  return text;
}

class DependencePass final : public Pass {
 public:
  const char* name() const override { return "dependence"; }

  void run(AnalysisContext& ctx, std::vector<Diagnostic>& out) override {
    const ir::Program& program = ctx.program();
    const core::Transformation transform = ctx.options().transform;
    const bool tiled = transform == core::Transformation::kTL ||
                       transform == core::Transformation::kTLDL;

    for (int n = 0; n < static_cast<int>(program.nests.size()); ++n) {
      const ir::LoopNest& nest = program.nests[static_cast<std::size_t>(n)];
      const ir::DependenceSummary summary =
          ir::uniform_dependences(nest, program.arrays);

      int unsafe = 0;
      const ir::Dependence* first = nullptr;
      for (const ir::Dependence& dep : summary.dependences) {
        if (!ir::permits_permutation(dep)) {
          if (first == nullptr) first = &dep;
          ++unsafe;
        }
      }
      DiagLocation loc;
      loc.nest = n;
      if (unsafe > 0) {
        const std::string detail = str_printf(
            "nest %d carries %d permutation-unsafe dependence(s); first: "
            "array %d, statements %d->%d, distance %s",
            n, unsafe, first->array, first->stmt_a, first->stmt_b,
            distance_text(*first).c_str());
        if (tiled) {
          out.push_back(make_diagnostic(
              "SDPM-E070", name(), loc,
              detail + " — the applied tiling reorders across it"));
        } else {
          out.push_back(make_diagnostic(
              "SDPM-N071", name(), loc,
              detail + " — tiling or interchanging this nest is illegal"));
        }
      }
      if (summary.unanalyzed_pairs > 0) {
        out.push_back(make_diagnostic(
            "SDPM-N072", name(), loc,
            str_printf("nest %d has %d reference pair(s) with non-uniform "
                       "subscripts: transformation legality unproven",
                       n, summary.unanalyzed_pairs)));
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_dependence_pass() {
  return std::make_unique<DependencePass>();
}

}  // namespace sdpm::analysis
