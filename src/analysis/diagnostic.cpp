#include "analysis/diagnostic.h"

#include <algorithm>
#include <istream>
#include <tuple>

#include "util/error.h"
#include "util/strings.h"

namespace sdpm::analysis {

namespace {

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_printf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

auto sort_key(const Diagnostic& d) {
  return std::tuple(d.loc.nest, d.loc.iteration, d.loc.disk, d.loc.directive,
                    d.rule, d.message);
}

}  // namespace

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

Severity severity_of_rule(std::string_view rule_id) {
  // "SDPM-X###": the letter after the dash selects the severity.
  const std::size_t dash = rule_id.find('-');
  const char letter =
      dash != std::string_view::npos && dash + 1 < rule_id.size()
          ? rule_id[dash + 1]
          : 'E';
  switch (letter) {
    case 'N':
      return Severity::kNote;
    case 'W':
      return Severity::kWarning;
    default:
      return Severity::kError;
  }
}

std::string Diagnostic::fingerprint() const {
  return rule + "|d" + std::to_string(loc.disk) + "|n" +
         std::to_string(loc.nest) + "|i" + std::to_string(loc.iteration);
}

Diagnostic make_diagnostic(std::string rule, std::string pass,
                           DiagLocation loc, std::string message) {
  Diagnostic d;
  d.severity = severity_of_rule(rule);
  d.rule = std::move(rule);
  d.pass = std::move(pass);
  d.loc = loc;
  d.message = std::move(message);
  return d;
}

int AnalysisReport::count(Severity severity) const {
  int n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

bool AnalysisReport::has(std::string_view rule) const {
  for (const Diagnostic& d : diagnostics) {
    if (d.rule == rule) return true;
  }
  return false;
}

std::optional<Severity> AnalysisReport::worst() const {
  std::optional<Severity> w;
  for (const Diagnostic& d : diagnostics) {
    if (!w || static_cast<int>(d.severity) > static_cast<int>(*w)) {
      w = d.severity;
    }
  }
  return w;
}

void AnalysisReport::sort() {
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return sort_key(a) < sort_key(b);
                   });
}

namespace {

std::string location_text(const DiagLocation& loc) {
  std::string out;
  if (loc.disk >= 0) out += " disk " + std::to_string(loc.disk);
  if (loc.nest >= 0) out += " nest " + std::to_string(loc.nest);
  if (loc.iteration >= 0) out += " iter " + std::to_string(loc.iteration);
  if (loc.directive >= 0) {
    out += " directive " + std::to_string(loc.directive);
  }
  return out.empty() ? std::string(" <program>") : out;
}

}  // namespace

std::string render_text(const AnalysisReport& report) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    out += d.rule;
    out += " ";
    out += to_string(d.severity);
    out += " [" + d.pass + "]";
    out += location_text(d.loc);
    out += ": " + d.message + "\n";
  }
  out += str_printf(
      "analyze: %d error(s), %d warning(s), %d note(s); %lld directive(s) "
      "checked; %d suppressed\n",
      report.errors(), report.warnings(), report.notes(),
      static_cast<long long>(report.directives_checked), report.suppressed);
  return out;
}

std::string render_json(const AnalysisReport& report) {
  std::string out = "{\"version\":1,\"tool\":\"sdpm-analyze\",";
  out += str_printf(
      "\"summary\":{\"directives\":%lld,\"errors\":%d,\"warnings\":%d,"
      "\"notes\":%d,\"suppressed\":%d},",
      static_cast<long long>(report.directives_checked), report.errors(),
      report.warnings(), report.notes(), report.suppressed);
  out += "\"passes\":[";
  for (std::size_t i = 0; i < report.passes_run.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(report.passes_run[i]) + "\"";
  }
  out += "],\"diagnostics\":[";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i > 0) out += ",";
    out += "\n ";
    out += "{\"rule\":\"" + json_escape(d.rule) + "\",";
    out += std::string("\"severity\":\"") + to_string(d.severity) + "\",";
    out += "\"pass\":\"" + json_escape(d.pass) + "\",";
    out += str_printf(
        "\"disk\":%d,\"nest\":%d,\"iteration\":%lld,\"directive\":%d,",
        d.loc.disk, d.loc.nest, static_cast<long long>(d.loc.iteration),
        d.loc.directive);
    out += "\"message\":\"" + json_escape(d.message) + "\"}";
  }
  out += report.diagnostics.empty() ? "]}" : "\n]}";
  out += "\n";
  return out;
}

Baseline Baseline::parse(std::istream& in) {
  Baseline baseline;
  std::string line;
  while (std::getline(in, line)) {
    // Trim trailing CR and surrounding whitespace.
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t')) {
      line.pop_back();
    }
    std::size_t start = 0;
    while (start < line.size() &&
           (line[start] == ' ' || line[start] == '\t')) {
      ++start;
    }
    line = line.substr(start);
    if (line.empty() || line[0] == '#') continue;
    baseline.fingerprints_.push_back(line);
  }
  std::sort(baseline.fingerprints_.begin(), baseline.fingerprints_.end());
  baseline.fingerprints_.erase(
      std::unique(baseline.fingerprints_.begin(),
                  baseline.fingerprints_.end()),
      baseline.fingerprints_.end());
  return baseline;
}

bool Baseline::contains(const std::string& fingerprint) const {
  return std::binary_search(fingerprints_.begin(), fingerprints_.end(),
                            fingerprint);
}

void apply_baseline(AnalysisReport& report, const Baseline& baseline) {
  std::vector<Diagnostic> kept;
  kept.reserve(report.diagnostics.size());
  for (Diagnostic& d : report.diagnostics) {
    if (baseline.contains(d.fingerprint())) {
      ++report.suppressed;
    } else {
      kept.push_back(std::move(d));
    }
  }
  report.diagnostics = std::move(kept);
}

std::string to_baseline(const AnalysisReport& report) {
  std::string out = "# sdpm-analyze baseline: one fingerprint per line\n";
  std::vector<std::string> prints;
  prints.reserve(report.diagnostics.size());
  for (const Diagnostic& d : report.diagnostics) {
    prints.push_back(d.fingerprint());
  }
  std::sort(prints.begin(), prints.end());
  prints.erase(std::unique(prints.begin(), prints.end()), prints.end());
  for (const std::string& p : prints) out += p + "\n";
  return out;
}

}  // namespace sdpm::analysis
