#include "analysis/diagnostic.h"

#include <algorithm>
#include <istream>
#include <tuple>

#include "util/error.h"
#include "util/strings.h"

namespace sdpm::analysis {

namespace {

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_printf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

auto sort_key(const Diagnostic& d) {
  return std::tuple(d.loc.disk, d.loc.nest, d.loc.iteration, d.rule,
                    d.loc.directive, d.message);
}

}  // namespace

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

Severity severity_of_rule(std::string_view rule_id) {
  // "SDPM-X###": the letter after the dash selects the severity.
  const std::size_t dash = rule_id.find('-');
  const char letter =
      dash != std::string_view::npos && dash + 1 < rule_id.size()
          ? rule_id[dash + 1]
          : 'E';
  switch (letter) {
    case 'N':
      return Severity::kNote;
    case 'W':
      return Severity::kWarning;
    default:
      return Severity::kError;
  }
}

std::string Diagnostic::fingerprint() const {
  return rule + "|d" + std::to_string(loc.disk) + "|n" +
         std::to_string(loc.nest) + "|i" + std::to_string(loc.iteration);
}

Diagnostic make_diagnostic(std::string rule, std::string pass,
                           DiagLocation loc, std::string message) {
  Diagnostic d;
  d.severity = severity_of_rule(rule);
  d.rule = std::move(rule);
  d.pass = std::move(pass);
  d.loc = loc;
  d.message = std::move(message);
  return d;
}

int AnalysisReport::count(Severity severity) const {
  int n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

int AnalysisReport::fixit_count() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics) {
    n += static_cast<int>(d.fixits.size());
  }
  return n;
}

bool AnalysisReport::has(std::string_view rule) const {
  for (const Diagnostic& d : diagnostics) {
    if (d.rule == rule) return true;
  }
  return false;
}

std::optional<Severity> AnalysisReport::worst() const {
  std::optional<Severity> w;
  for (const Diagnostic& d : diagnostics) {
    if (!w || static_cast<int>(d.severity) > static_cast<int>(*w)) {
      w = d.severity;
    }
  }
  return w;
}

void AnalysisReport::sort() {
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return sort_key(a) < sort_key(b);
                   });
}

namespace {

std::string location_text(const DiagLocation& loc) {
  std::string out;
  if (loc.disk >= 0) out += " disk " + std::to_string(loc.disk);
  if (loc.nest >= 0) out += " nest " + std::to_string(loc.nest);
  if (loc.iteration >= 0) out += " iter " + std::to_string(loc.iteration);
  if (loc.directive >= 0) {
    out += " directive " + std::to_string(loc.directive);
  }
  return out.empty() ? std::string(" <program>") : out;
}

}  // namespace

std::string render_text(const AnalysisReport& report) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    out += d.rule;
    out += " ";
    out += to_string(d.severity);
    out += " [" + d.pass + "]";
    out += location_text(d.loc);
    out += ": " + d.message + "\n";
    for (const FixIt& f : d.fixits) {
      out += "  fix-it " + f.id + ": " + f.title + "\n";
    }
  }
  if (report.certificate.has_value()) {
    const ScheduleCertificate& c = *report.certificate;
    out += str_printf(
        "certificate: energy in [%.3f, %.3f] J, execution in "
        "[%.3f, %.3f] ms; no-demand-spin-up %s; "
        "no-wasted-preactivation %s\n",
        c.energy_lo_j, c.energy_hi_j, c.exec_lo_ms, c.exec_hi_ms,
        c.no_demand_spinup_proved ? "proved" : "unproven",
        c.no_wasted_preactivation_proved ? "proved" : "unproven");
  }
  out += str_printf(
      "analyze: %d error(s), %d warning(s), %d note(s); %lld directive(s) "
      "checked; %d suppressed\n",
      report.errors(), report.warnings(), report.notes(),
      static_cast<long long>(report.directives_checked), report.suppressed);
  return out;
}

namespace {

std::string point_json(const ir::IterationPoint& point) {
  return str_printf("\"nest\":%d,\"iteration\":%lld", point.nest_index,
                    static_cast<long long>(point.flat_iteration));
}

std::string edit_json(const core::ScheduleEdit& e) {
  std::string out = "{\"kind\":\"";
  out += core::to_string(e.kind);
  out += "\"";
  switch (e.kind) {
    case core::ScheduleEdit::Kind::kMoveDirective:
      out += str_printf(",\"directive\":%d,", e.directive_index);
      out += point_json(e.point);
      break;
    case core::ScheduleEdit::Kind::kRemoveDirective:
      out += str_printf(",\"directive\":%d", e.directive_index);
      break;
    case core::ScheduleEdit::Kind::kInsertDirective:
      out += ",";
      out += point_json(e.point);
      out += str_printf(",\"directive_kind\":\"%s\",\"disk\":%d,"
                        "\"rpm_level\":%d",
                        ir::to_string(e.directive.kind), e.directive.disk,
                        e.directive.rpm_level);
      break;
    case core::ScheduleEdit::Kind::kRetargetLevel:
      out += str_printf(",\"directive\":%d,\"level\":%d", e.directive_index,
                        e.level);
      break;
    case core::ScheduleEdit::Kind::kSetPlanLevel:
      out += str_printf(",\"plan\":%d,\"level\":%d", e.plan_index, e.level);
      break;
    case core::ScheduleEdit::Kind::kSetPlanActed:
      out += str_printf(",\"plan\":%d,\"acted\":%s", e.plan_index,
                        e.acted ? "true" : "false");
      break;
    case core::ScheduleEdit::Kind::kRestripeArray:
      out += str_printf(",\"array\":%d,\"starting_disk\":%d,"
                        "\"stripe_factor\":%d,\"stripe_size\":%lld",
                        static_cast<int>(e.array), e.striping.starting_disk,
                        e.striping.stripe_factor,
                        static_cast<long long>(e.striping.stripe_size));
      break;
  }
  out += "}";
  return out;
}

std::string certificate_json(const ScheduleCertificate& c) {
  std::string out = str_printf(
      "{\"energy_lo_j\":%.6f,\"energy_hi_j\":%.6f,\"exec_lo_ms\":%.6f,"
      "\"exec_hi_ms\":%.6f,\"compute_total_ms\":%.6f,\"disks\":%d,"
      "\"requests\":%lld,\"no_demand_spinup\":%s,"
      "\"no_wasted_preactivation\":%s,\"per_disk\":[",
      c.energy_lo_j, c.energy_hi_j, c.exec_lo_ms, c.exec_hi_ms,
      c.compute_total_ms, c.disks, static_cast<long long>(c.requests),
      c.no_demand_spinup_proved ? "true" : "false",
      c.no_wasted_preactivation_proved ? "true" : "false");
  for (std::size_t i = 0; i < c.per_disk.size(); ++i) {
    const DiskCertificate& d = c.per_disk[i];
    if (i > 0) out += ",";
    TimeMs idle_ms = 0;
    for (const TimeInterval& iv : d.guaranteed_idle_ms) {
      idle_ms += iv.hi_ms - iv.lo_ms;
    }
    out += str_printf(
        "{\"disk\":%d,\"energy_lo_j\":%.6f,\"energy_hi_j\":%.6f,"
        "\"may_access_intervals\":%zu,\"guaranteed_idle_intervals\":%zu,"
        "\"guaranteed_idle_ms\":%.6f,\"no_demand_spinup\":%s,"
        "\"no_wasted_preactivation\":%s}",
        d.disk, d.energy_lo_j, d.energy_hi_j, d.may_access_ms.size(),
        d.guaranteed_idle_ms.size(), idle_ms,
        d.no_demand_spinup_proved ? "true" : "false",
        d.no_wasted_preactivation_proved ? "true" : "false");
  }
  out += "]}";
  return out;
}

}  // namespace

std::string render_json(const AnalysisReport& report) {
  std::string out = "{\"version\":2,\"tool\":\"sdpm-analyze\",";
  out += str_printf(
      "\"summary\":{\"directives\":%lld,\"errors\":%d,\"warnings\":%d,"
      "\"notes\":%d,\"suppressed\":%d,\"fixits\":%d},",
      static_cast<long long>(report.directives_checked), report.errors(),
      report.warnings(), report.notes(), report.suppressed,
      report.fixit_count());
  // Passes render sorted so the byte stream is invariant under
  // registration order (the report keeps the run order).
  std::vector<std::string> passes = report.passes_run;
  std::sort(passes.begin(), passes.end());
  out += "\"passes\":[";
  for (std::size_t i = 0; i < passes.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(passes[i]) + "\"";
  }
  out += "],";
  if (report.certificate.has_value()) {
    out += "\"certificate\":" + certificate_json(*report.certificate) + ",";
  }
  out += "\"diagnostics\":[";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i > 0) out += ",";
    out += "\n ";
    out += "{\"rule\":\"" + json_escape(d.rule) + "\",";
    out += std::string("\"severity\":\"") + to_string(d.severity) + "\",";
    out += "\"pass\":\"" + json_escape(d.pass) + "\",";
    out += str_printf(
        "\"disk\":%d,\"nest\":%d,\"iteration\":%lld,\"directive\":%d,",
        d.loc.disk, d.loc.nest, static_cast<long long>(d.loc.iteration),
        d.loc.directive);
    out += "\"message\":\"" + json_escape(d.message) + "\"";
    if (!d.fixits.empty()) {
      out += ",\"fixits\":[";
      for (std::size_t fi = 0; fi < d.fixits.size(); ++fi) {
        const FixIt& f = d.fixits[fi];
        if (fi > 0) out += ",";
        out += "{\"id\":\"" + json_escape(f.id) + "\",";
        out += "\"title\":\"" + json_escape(f.title) + "\",";
        out += "\"edits\":[";
        for (std::size_t ei = 0; ei < f.edits.size(); ++ei) {
          if (ei > 0) out += ",";
          out += edit_json(f.edits[ei]);
        }
        out += "]}";
      }
      out += "]";
    }
    out += "}";
  }
  out += report.diagnostics.empty() ? "]}" : "\n]}";
  out += "\n";
  return out;
}

Baseline Baseline::parse(std::istream& in) {
  Baseline baseline;
  std::string line;
  while (std::getline(in, line)) {
    // Trim trailing CR and surrounding whitespace.
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t')) {
      line.pop_back();
    }
    std::size_t start = 0;
    while (start < line.size() &&
           (line[start] == ' ' || line[start] == '\t')) {
      ++start;
    }
    line = line.substr(start);
    if (line.empty() || line[0] == '#') continue;
    baseline.fingerprints_.push_back(line);
  }
  std::sort(baseline.fingerprints_.begin(), baseline.fingerprints_.end());
  baseline.fingerprints_.erase(
      std::unique(baseline.fingerprints_.begin(),
                  baseline.fingerprints_.end()),
      baseline.fingerprints_.end());
  return baseline;
}

bool Baseline::contains(const std::string& fingerprint) const {
  return std::binary_search(fingerprints_.begin(), fingerprints_.end(),
                            fingerprint);
}

void apply_baseline(AnalysisReport& report, const Baseline& baseline) {
  std::vector<Diagnostic> kept;
  kept.reserve(report.diagnostics.size());
  for (Diagnostic& d : report.diagnostics) {
    if (baseline.contains(d.fingerprint())) {
      ++report.suppressed;
    } else {
      kept.push_back(std::move(d));
    }
  }
  report.diagnostics = std::move(kept);
}

std::string to_baseline(const AnalysisReport& report) {
  std::string out = "# sdpm-analyze baseline: one fingerprint per line\n";
  std::vector<std::string> prints;
  prints.reserve(report.diagnostics.size());
  for (const Diagnostic& d : report.diagnostics) {
    prints.push_back(d.fingerprint());
  }
  std::sort(prints.begin(), prints.end());
  prints.erase(std::unique(prints.begin(), prints.end()), prints.end());
  for (const std::string& p : prints) out += p + "\n";
  return out;
}

}  // namespace sdpm::analysis
