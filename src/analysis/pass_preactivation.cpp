// Pre-activation pass (paper Eq. 1 economics, statically).
//
// Walks each disk's directives against the access points implied by the
// gap plans, tracking the in-flight wake-up transition the way the
// simulator's PreactivationAccountant classifies the real execution:
//
//   SDPM-E040  the pre-activation completes after the next access starts
//              (late: the application stalls on the wake-up)
//   SDPM-W041  the disk is still in standby when the next access arrives
//              and no wake-up is in flight (predicted demand spin-up)
//   SDPM-W042  a pre-activation whose disk is degraded again, re-awakened,
//              or never used before the program ends (wasted call)
//   SDPM-N043  the pre-activation completes earlier than one whole
//              transition before the access (overly conservative lead)
//
// Late pre-activations (E040) carry an SDPM-F001 fix-it that hoists the
// directive to the latest iteration whose wake-up still completes by the
// access; predicted demand spin-ups (W041) carry an SDPM-F005 fix-it that
// inserts the missing wake-up at that same latest-feasible point.
#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/pass.h"
#include "analysis/registry.h"
#include "util/strings.h"

namespace sdpm::analysis {

namespace {

class PreactivationPass final : public Pass {
 public:
  const char* name() const override { return "preactivation"; }

  void run(AnalysisContext& ctx, std::vector<Diagnostic>& out) override {
    for (int disk = 0; disk < ctx.total_disks(); ++disk) {
      walk_disk(ctx, disk, out);
    }
  }

 private:
  struct Pending {
    int directive = -1;
    std::int64_t global = 0;
    TimeMs ready = 0;     ///< when the transition completes
    TimeMs duration = 0;  ///< transition time (Tsu or RPM swing)
  };

  void walk_disk(AnalysisContext& ctx, int disk,
                 std::vector<Diagnostic>& out) {
    const ir::Program& program = ctx.program();
    const disk::DiskParameters& params = ctx.params();
    const int top = ctx.top_level();
    const std::int64_t total = ctx.space().total();

    std::vector<std::int64_t> active_starts;
    for (const core::GapPlan* plan : ctx.plans_of(disk)) {
      if (plan->end_iter < total) active_starts.push_back(plan->end_iter);
    }
    std::sort(active_starts.begin(), active_starts.end());

    bool standby = false;
    int level = top;
    std::optional<Pending> pending;
    std::size_t next_active = 0;

    // Latest global iteration in [`lo`, `a`] whose power call (issued at
    // at(g) + Tm) still completes a `duration`-long transition by at(a);
    // -1 when even `lo` is too late.  at() is monotone, so binary search.
    auto latest_feasible = [&](std::int64_t lo, std::int64_t a,
                               TimeMs duration) -> std::int64_t {
      const TimeMs deadline = ctx.at(a) + 1e-9;
      std::int64_t best = -1;
      std::int64_t lo_g = lo;
      std::int64_t hi_g = a;
      while (lo_g <= hi_g) {
        const std::int64_t mid = lo_g + (hi_g - lo_g) / 2;
        if (ctx.at(mid) + ctx.tm() + duration <= deadline) {
          best = mid;
          lo_g = mid + 1;
        } else {
          hi_g = mid - 1;
        }
      }
      return best;
    };

    // First iteration of the gap plan ending at access `a` (hoists must
    // stay inside the planned idle period).
    auto gap_begin = [&](std::int64_t a) -> std::int64_t {
      for (const core::GapPlan* plan : ctx.plans_of(disk)) {
        if (plan->end_iter == a) return plan->begin_iter;
      }
      return 0;
    };

    auto handle_access = [&](std::int64_t a) {
      const TimeMs t0 = ctx.at(a);
      if (pending.has_value()) {
        const TimeMs slack = ctx.iter_ms(a) + 1e-6;
        if (pending->ready > t0 + slack) {
          Diagnostic diag = make_diagnostic(
              "SDPM-E040", name(),
              ctx.loc_at(pending->global, disk, pending->directive),
              str_printf("pre-activation of disk %d completes %s after "
                         "its next access (global iteration %lld)",
                         disk,
                         fmt_time_ms(pending->ready - t0).c_str(),
                         static_cast<long long>(a)));
          const std::int64_t target =
              latest_feasible(gap_begin(a), a, pending->duration);
          if (target >= 0 && target != pending->global) {
            core::ScheduleEdit edit;
            edit.kind = core::ScheduleEdit::Kind::kMoveDirective;
            edit.directive_index = pending->directive;
            edit.point = ctx.space().point_of(target);
            diag.fixits.push_back(FixIt{
                "SDPM-F001",
                "hoist the pre-activation so the wake-up completes "
                "before the access",
                {edit}});
          }
          out.push_back(std::move(diag));
        } else if (t0 - pending->ready > pending->duration) {
          out.push_back(make_diagnostic(
              "SDPM-N043", name(),
              ctx.loc_at(pending->global, disk, pending->directive),
              str_printf("pre-activation of disk %d completes %s before "
                         "its next access; the lead exceeds a whole "
                         "transition",
                         disk,
                         fmt_time_ms(t0 - pending->ready).c_str())));
        }
        pending.reset();
        standby = false;
      } else if (standby) {
        Diagnostic diag = make_diagnostic(
            "SDPM-W041", name(), ctx.loc_at(a, disk),
            str_printf("disk %d is in standby at its next access (global "
                       "iteration %lld): demand spin-up predicted",
                       disk, static_cast<long long>(a)));
        const std::int64_t target =
            latest_feasible(gap_begin(a), a,
                            params.wake_time(params.default_park()));
        if (target >= 0) {
          core::ScheduleEdit edit;
          edit.kind = core::ScheduleEdit::Kind::kInsertDirective;
          edit.point = ctx.space().point_of(target);
          edit.directive = ir::PowerDirective{
              ir::PowerDirective::Kind::kSpinUp, disk, 0};
          diag.fixits.push_back(FixIt{
              "SDPM-F005",
              "insert the missing wake-up before the access",
              {edit}});
        }
        out.push_back(std::move(diag));
        standby = false;
        level = top;
      }
    };

    auto waste = [&](const char* why) {
      out.push_back(make_diagnostic(
          "SDPM-W042", name(),
          ctx.loc_at(pending->global, disk, pending->directive),
          str_printf("pre-activation of disk %d is wasted: %s", disk, why)));
      pending.reset();
    };

    for (const auto& ref : ctx.directives_of(disk)) {
      while (next_active < active_starts.size() &&
             active_starts[next_active] < ref.global) {
        handle_access(active_starts[next_active]);
        ++next_active;
      }
      const ir::PowerDirective& d =
          program.directives[static_cast<std::size_t>(ref.index)].directive;
      const TimeMs issue = ctx.at(ref.global) + ctx.tm();
      switch (d.kind) {
        case ir::PowerDirective::Kind::kSpinDown:
          if (pending.has_value()) {
            waste("the disk is degraded again before its next use");
          }
          standby = true;
          break;
        case ir::PowerDirective::Kind::kSpinUp:
          if (pending.has_value()) {
            waste("a second wake-up replaces it before any use");
          }
          if (standby) {
            const TimeMs wake = params.wake_time(params.default_park());
            pending = Pending{ref.index, ref.global, issue + wake, wake};
            standby = false;
            level = top;
          }
          break;
        case ir::PowerDirective::Kind::kSetRpm: {
          const int target = d.rpm_level;
          if (standby || target < 0 || target > top) break;  // wellformed
          if (target < level) {
            if (pending.has_value()) {
              waste("the disk is degraded again before its next use");
            }
            level = target;
          } else if (target > level) {
            if (pending.has_value()) {
              waste("a second wake-up replaces it before any use");
            }
            const TimeMs duration =
                params.rpm_transition_time(level, target);
            pending = Pending{ref.index, ref.global, issue + duration,
                              duration};
            level = target;
          }
          break;
        }
      }
    }
    while (next_active < active_starts.size()) {
      handle_access(active_starts[next_active]);
      ++next_active;
    }
    if (pending.has_value()) {
      waste("the program ends before the disk is used");
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_preactivation_pass() {
  return std::make_unique<PreactivationPass>();
}

}  // namespace sdpm::analysis
