// Fission disk-set pass (paper Figure 11).
//
//   SDPM-E060  two array groups of a layout-aware fissioned program map to
//              overlapping disk sets.  The entire point of LF+DL is that
//              while one group's loop runs, the other groups' disks idle;
//              a shared disk never idles and the transformation's energy
//              claim silently evaporates.
//
// Only checked for Transformation::kLFDL — layout-oblivious fission keeps
// every array on the full disk set by design, so overlap is expected there.
//
// The first E060 carries an SDPM-F006 fix-it that restripes every group
// onto contiguous, mutually disjoint disk ranges packed in group order
// (omitted when the groups need more disks than the subsystem has).
#include <algorithm>
#include <set>
#include <vector>

#include "analysis/pass.h"
#include "analysis/registry.h"
#include "core/fission.h"
#include "util/strings.h"

namespace sdpm::analysis {

namespace {

class FissionPass final : public Pass {
 public:
  const char* name() const override { return "fission"; }

  void run(AnalysisContext& ctx, std::vector<Diagnostic>& out) override {
    if (ctx.options().transform != core::Transformation::kLFDL) return;
    const std::vector<std::vector<ir::ArrayId>> groups =
        core::array_groups(ctx.program());
    if (groups.size() < 2) return;

    std::vector<std::set<int>> disk_sets;
    disk_sets.reserve(groups.size());
    for (const std::vector<ir::ArrayId>& group : groups) {
      std::set<int> disks;
      for (const ir::ArrayId array : group) {
        const std::vector<int> used = ctx.layout().disks_of(array);
        disks.insert(used.begin(), used.end());
      }
      disk_sets.push_back(std::move(disks));
    }

    bool fixit_attached = false;
    for (std::size_t i = 0; i < disk_sets.size(); ++i) {
      for (std::size_t j = i + 1; j < disk_sets.size(); ++j) {
        std::vector<int> shared;
        std::set_intersection(disk_sets[i].begin(), disk_sets[i].end(),
                              disk_sets[j].begin(), disk_sets[j].end(),
                              std::back_inserter(shared));
        if (shared.empty()) continue;
        Diagnostic diag = make_diagnostic(
            "SDPM-E060", name(), DiagLocation{},
            str_printf("array groups %zu and %zu of the layout-aware "
                       "fission share %zu disk(s), first disk %d: their "
                       "loops can never idle each other's disks",
                       i, j, shared.size(), shared.front()));
        if (!fixit_attached) {
          std::vector<core::ScheduleEdit> edits = restripe_edits(ctx, groups);
          if (!edits.empty()) {
            diag.fixits.push_back(FixIt{
                "SDPM-F006",
                "restripe the array groups onto disjoint disk ranges",
                std::move(edits)});
            fixit_attached = true;
          }
        }
        out.push_back(std::move(diag));
      }
    }
  }

 private:
  /// SDPM-F006 edit list: pack the groups onto contiguous disjoint disk
  /// ranges in group order, keeping each array's stripe size and each
  /// group's stripe factor.  Empty when the subsystem is too small to
  /// separate the groups.
  static std::vector<core::ScheduleEdit> restripe_edits(
      AnalysisContext& ctx,
      const std::vector<std::vector<ir::ArrayId>>& groups) {
    std::vector<core::ScheduleEdit> edits;
    int start = 0;
    for (const std::vector<ir::ArrayId>& group : groups) {
      int factor = 1;
      for (const ir::ArrayId array : group) {
        factor = std::max(
            factor, ctx.layout().layout_of(array).striping().stripe_factor);
      }
      if (start + factor > ctx.total_disks()) return {};
      for (const ir::ArrayId array : group) {
        core::ScheduleEdit edit;
        edit.kind = core::ScheduleEdit::Kind::kRestripeArray;
        edit.array = array;
        edit.striping = layout::Striping{
            start, factor, ctx.layout().layout_of(array).striping().stripe_size};
        edits.push_back(edit);
      }
      start += factor;
    }
    return edits;
  }
};

}  // namespace

std::unique_ptr<Pass> make_fission_pass() {
  return std::make_unique<FissionPass>();
}

}  // namespace sdpm::analysis
