// Well-formedness pass: the check_schedule core (SDPM-E001..E008) plus the
// layout-aware containment check SDPM-E009 — every planned idle period must
// lie inside a DAP idle period of its disk, i.e. the plans and the access
// pattern must describe the same program.
#include <iterator>

#include "analysis/pass.h"
#include "analysis/registry.h"
#include "analysis/verify_schedule.h"
#include "util/strings.h"

namespace sdpm::analysis {

namespace {

class WellformedPass final : public Pass {
 public:
  const char* name() const override { return "wellformed"; }

  void run(AnalysisContext& ctx, std::vector<Diagnostic>& out) override {
    std::vector<Diagnostic> core = check_schedule(
        ctx.result(), ctx.total_disks(), ctx.params());
    out.insert(out.end(), std::make_move_iterator(core.begin()),
               std::make_move_iterator(core.end()));

    const trace::DiskAccessPattern* dap = ctx.dap();
    if (dap == nullptr) return;  // registry reports SDPM-E090
    for (const core::GapPlan& plan : ctx.result().plans) {
      if (plan.disk < 0 || plan.disk >= ctx.total_disks()) continue;
      if (plan.end_iter <= plan.begin_iter) continue;
      const IntervalSet overlap =
          dap->active_iterations(plan.disk)
              .clipped(plan.begin_iter, plan.end_iter);
      if (!overlap.empty()) {
        out.push_back(make_diagnostic(
            "SDPM-E009", name(), ctx.loc_at(plan.begin_iter, plan.disk),
            str_printf("planned idle period [%lld, %lld) of disk %d "
                       "overlaps %lld accessed iteration(s)",
                       static_cast<long long>(plan.begin_iter),
                       static_cast<long long>(plan.end_iter), plan.disk,
                       static_cast<long long>(overlap.total_length()))));
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_wellformed_pass() {
  return std::make_unique<WellformedPass>();
}

}  // namespace sdpm::analysis
