// DRPM window-misfit pass.
//
//   SDPM-W051  an acted DRPM plan whose chosen level's round trip
//              (top -> level -> top) does not fit the estimated gap
//   SDPM-E050  an active interval begins with the disk at a level too slow
//              to keep up with the nest's request rate (queue grows without
//              bound: a performance bug, not just a latency hit)
//   SDPM-W052  an active interval begins with the disk below full speed
//              (serviceable, but every access pays the slower rate)
//
// The request rate is approximated per (nest, disk): bytes demanded per
// iteration across the nest's references striped onto the disk, and the
// smallest block size among those arrays as the request unit — the most
// demanding stream.  This mirrors the generator's access model closely
// enough for a static keep-up bound.
//
// W051 carries an SDPM-F004 fix-it that retargets the gap's degrade
// directive (and the plan) to the oracle-optimal level for the estimated
// idle length.
#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/pass.h"
#include "analysis/registry.h"
#include "policy/oracle.h"
#include "util/strings.h"

namespace sdpm::analysis {

namespace {

class MisfitPass final : public Pass {
 public:
  const char* name() const override { return "misfit"; }

  void run(AnalysisContext& ctx, std::vector<Diagnostic>& out) override {
    const disk::DiskParameters& params = ctx.params();
    const int top = ctx.top_level();

    for (int disk = 0; disk < ctx.total_disks(); ++disk) {
      // W051: round-trip feasibility of each acted DRPM choice.
      for (const core::GapPlan* plan : ctx.plans_of(disk)) {
        if (!plan->acted || plan->level < 0 || plan->level >= top) continue;
        if (!policy::drpm_level_feasible(plan->estimated_ms, plan->level,
                                         params)) {
          Diagnostic diag = make_diagnostic(
              "SDPM-W051", name(), ctx.loc_at(plan->begin_iter, disk),
              str_printf("RPM level %d round trip does not fit the "
                         "estimated %s idle period of disk %d",
                         plan->level,
                         fmt_time_ms(plan->estimated_ms).c_str(), disk));
          attach_f004(ctx, *plan, disk, diag);
          out.push_back(std::move(diag));
        }
      }
      walk_active_starts(ctx, disk, out);
    }
  }

 private:
  /// SDPM-F004: retarget the plan's degrade directive to the level the
  /// oracle deems optimal for the estimated gap length, and record the
  /// new level on the plan.  When the optimal level is the top level the
  /// retargeted call becomes a no-op and the redundancy pass's SDPM-F003
  /// removes it on the next repair round.
  static void attach_f004(AnalysisContext& ctx, const core::GapPlan& plan,
                          int disk, Diagnostic& diag) {
    const int best =
        policy::optimal_rpm_level(plan.estimated_ms, ctx.params());
    if (best == plan.level) return;
    const ir::Program& program = ctx.program();
    int degrade_index = -1;
    for (const auto& ref : ctx.directives_of(disk)) {
      if (ref.global < plan.begin_iter || ref.global > plan.end_iter) {
        continue;
      }
      const ir::PowerDirective& d =
          program.directives[static_cast<std::size_t>(ref.index)].directive;
      if (d.kind == ir::PowerDirective::Kind::kSetRpm &&
          d.rpm_level == plan.level) {
        degrade_index = ref.index;
        break;
      }
    }
    if (degrade_index < 0) return;
    std::vector<core::ScheduleEdit> edits;
    core::ScheduleEdit retarget;
    retarget.kind = core::ScheduleEdit::Kind::kRetargetLevel;
    retarget.directive_index = degrade_index;
    retarget.level = best;
    edits.push_back(retarget);
    core::ScheduleEdit set_level;
    set_level.kind = core::ScheduleEdit::Kind::kSetPlanLevel;
    set_level.plan_index = static_cast<int>(&plan - ctx.result().plans.data());
    set_level.level = best;
    edits.push_back(set_level);
    diag.fixits.push_back(FixIt{
        "SDPM-F004",
        str_printf("retarget the degrade to RPM level %d", best),
        std::move(edits)});
  }

  /// Track the level each active interval starts at, honouring in-flight
  /// restores (a restore whose transition completes by the access leaves
  /// the disk at its target level).
  void walk_active_starts(AnalysisContext& ctx, int disk,
                          std::vector<Diagnostic>& out) {
    const ir::Program& program = ctx.program();
    const disk::DiskParameters& params = ctx.params();
    const int top = ctx.top_level();
    const std::int64_t total = ctx.space().total();

    std::vector<std::int64_t> active_starts;
    for (const core::GapPlan* plan : ctx.plans_of(disk)) {
      if (plan->end_iter < total) active_starts.push_back(plan->end_iter);
    }
    std::sort(active_starts.begin(), active_starts.end());

    bool standby = false;
    int level = top;
    TimeMs ready = 0;     // completion time of the level's transition
    int ready_level = top;
    std::size_t next_active = 0;

    auto handle_access = [&](std::int64_t a) {
      const TimeMs t0 = ctx.at(a);
      int effective = level;
      if (ready > t0 + ctx.iter_ms(a) + 1e-6) {
        effective = std::min(level, ready_level);  // transition unfinished
      }
      if (standby) {
        // Demand spin-up: the preactivation pass reports it; the wake
        // restores full speed.
        standby = false;
        level = top;
        ready = 0;
        return;
      }
      if (effective >= top) {
        ready = 0;
        return;
      }
      const int needed = required_level(ctx, a, disk);
      if (effective < needed) {
        out.push_back(make_diagnostic(
            "SDPM-E050", name(), ctx.loc_at(a, disk),
            str_printf("disk %d enters an active interval at RPM level %d "
                       "but needs level %d to keep up with the request "
                       "rate",
                       disk, effective, needed)));
      } else {
        out.push_back(make_diagnostic(
            "SDPM-W052", name(), ctx.loc_at(a, disk),
            str_printf("disk %d enters an active interval at RPM level %d "
                       "(below full speed %d)",
                       disk, effective, top)));
      }
      ready = 0;
    };

    for (const auto& ref : ctx.directives_of(disk)) {
      while (next_active < active_starts.size() &&
             active_starts[next_active] < ref.global) {
        handle_access(active_starts[next_active]);
        ++next_active;
      }
      const ir::PowerDirective& d =
          program.directives[static_cast<std::size_t>(ref.index)].directive;
      switch (d.kind) {
        case ir::PowerDirective::Kind::kSpinDown:
          standby = true;
          break;
        case ir::PowerDirective::Kind::kSpinUp:
          standby = false;
          level = top;
          ready = 0;
          break;
        case ir::PowerDirective::Kind::kSetRpm: {
          const int target = d.rpm_level;
          if (standby || target < 0 || target > top) break;
          if (target > level) {
            ready_level = level;
            ready = ctx.at(ref.global) + ctx.tm() +
                    params.rpm_transition_time(level, target);
          } else {
            ready = 0;
          }
          level = target;
          break;
        }
      }
    }
    while (next_active < active_starts.size()) {
      handle_access(active_starts[next_active]);
      ++next_active;
    }
  }

  /// Minimum serviceable level for the nest containing global iteration
  /// `a`, from the nest's per-iteration byte demand on `disk`.
  int required_level(AnalysisContext& ctx, std::int64_t a, int disk) {
    const ir::Program& program = ctx.program();
    const ir::IterationPoint point = ctx.space().point_of(a);
    if (point.nest_index < 0 ||
        point.nest_index >= static_cast<int>(program.nests.size())) {
      return 0;
    }
    const ir::LoopNest& nest =
        program.nests[static_cast<std::size_t>(point.nest_index)];

    double bytes_per_iter = 0;
    Bytes min_block = 0;
    for (const ir::Statement& stmt : nest.body) {
      for (const ir::ArrayRef& ref : stmt.refs) {
        if (ref.array < 0 ||
            ref.array >= static_cast<ir::ArrayId>(program.arrays.size())) {
          continue;
        }
        const std::vector<int> disks = ctx.layout().disks_of(ref.array);
        if (std::find(disks.begin(), disks.end(), disk) == disks.end()) {
          continue;
        }
        const ir::Array& array = program.array(ref.array);
        bytes_per_iter += static_cast<double>(array.element_size) /
                          static_cast<double>(disks.size());
        const Bytes block =
            trace::block_size_for(ctx.layout(), ref.array,
                                  ctx.options().access);
        if (block > 0 && (min_block == 0 || block < min_block)) {
          min_block = block;
        }
      }
    }
    if (bytes_per_iter <= 0 || min_block <= 0) return 0;
    const TimeMs iter = ctx.iter_ms(a);
    if (iter <= 0) return 0;
    const TimeMs interarrival =
        static_cast<double>(min_block) / bytes_per_iter * iter;
    return policy::min_serviceable_level(min_block, interarrival,
                                         ctx.params());
  }
};

}  // namespace

std::unique_ptr<Pass> make_misfit_pass() {
  return std::make_unique<MisfitPass>();
}

}  // namespace sdpm::analysis
