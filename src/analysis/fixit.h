// Fix-its: machine-applicable repairs attached to diagnostics.
//
// Each fix-it carries a stable catalog id ("SDPM-F001"), a one-line human
// title, and the batch of schedule edits (core/schedule_edit.h) that
// implements the repair.  `sdpm_cli analyze --fix` applies fix-its to a
// fixed point (analysis/repair.h); the JSON renderer serializes them so
// external tooling can apply the same edits.
//
// Catalog:
//   SDPM-F001  hoist a late pre-activation to the latest safe point
//   SDPM-F002  drop a sub-break-even spin-down/spin-up pair
//   SDPM-F003  remove a no-op set_RPM directive
//   SDPM-F004  retarget a misfit set_RPM to the energy-optimal level
//   SDPM-F005  insert a missing pre-activation before a standby access
//   SDPM-F006  restripe overlapping fission groups onto disjoint disks
#pragma once

#include <string>
#include <vector>

#include "core/schedule_edit.h"

namespace sdpm::analysis {

struct FixIt {
  std::string id;     ///< stable catalog id, e.g. "SDPM-F001"
  std::string title;  ///< deterministic, human-readable summary
  std::vector<core::ScheduleEdit> edits;
};

}  // namespace sdpm::analysis
