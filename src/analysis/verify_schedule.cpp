#include "analysis/verify_schedule.h"

#include <algorithm>
#include <map>
#include <string>
#include <tuple>

#include "trace/iteration_space.h"
#include "util/strings.h"

namespace sdpm::analysis {

namespace {

constexpr const char* kPass = "wellformed";

DiagLocation loc_of(const trace::IterationSpace& space, std::int64_t g,
                    int disk, int directive) {
  const ir::IterationPoint point =
      space.point_of(std::clamp<std::int64_t>(g, 0, space.total()));
  DiagLocation loc;
  loc.disk = disk;
  loc.nest = point.nest_index;
  loc.iteration = point.flat_iteration;
  loc.directive = directive;
  return loc;
}

}  // namespace

std::vector<Diagnostic> check_schedule(const core::ScheduleResult& result,
                                       int total_disks,
                                       const disk::DiskParameters& params) {
  std::vector<Diagnostic> out;
  const trace::IterationSpace space(result.program);
  const std::int64_t total = space.total();
  const int top = params.max_level();

  std::map<int, std::vector<const core::GapPlan*>> plans_by_disk;
  for (const core::GapPlan& plan : result.plans) {
    plans_by_disk[plan.disk].push_back(&plan);
  }

  // SDPM-E001 / E002: program order and disk range, in directive order.
  struct DirEvent {
    std::int64_t global;
    int index;
  };
  std::map<int, std::vector<DirEvent>> dirs_by_disk;
  std::int64_t prev_global = -1;
  for (int i = 0; i < static_cast<int>(result.program.directives.size());
       ++i) {
    const ir::PlacedDirective& pd =
        result.program.directives[static_cast<std::size_t>(i)];
    const std::int64_t g = space.global_of(pd.point);
    if (g < prev_global) {
      out.push_back(make_diagnostic(
          "SDPM-E001", kPass, loc_of(space, g, pd.directive.disk, i),
          str_printf("directive %d at global iteration %lld is out of "
                     "program order",
                     i, static_cast<long long>(g))));
    }
    prev_global = std::max(prev_global, g);

    const int d = pd.directive.disk;
    if (d < 0 || d >= total_disks) {
      out.push_back(make_diagnostic(
          "SDPM-E002", kPass, loc_of(space, g, d, i),
          str_printf("directive targets disk %d of %d", d, total_disks)));
      continue;  // no per-disk walk for a disk outside the layout
    }
    dirs_by_disk[d].push_back({g, i});
  }

  // Per-disk walk: directives merged with the active-interval starts
  // implied by the gap plans (a plan's end_iter < total is the next
  // access, where the simulator demand-wakes a standby disk).
  for (auto& [d, dirs] : dirs_by_disk) {
    std::stable_sort(dirs.begin(), dirs.end(),
                     [](const DirEvent& a, const DirEvent& b) {
                       return std::tie(a.global, a.index) <
                              std::tie(b.global, b.index);
                     });
    std::vector<std::int64_t> active_starts;
    for (const core::GapPlan* plan : plans_by_disk[d]) {
      if (plan->end_iter < total) active_starts.push_back(plan->end_iter);
    }
    std::sort(active_starts.begin(), active_starts.end());

    bool standby = false;
    int level = top;
    std::size_t next_active = 0;
    for (const DirEvent& ev : dirs) {
      // Demand wake at every access point strictly before the directive.
      while (next_active < active_starts.size() &&
             active_starts[next_active] < ev.global) {
        standby = false;
        level = top;
        ++next_active;
      }
      const ir::PlacedDirective& pd =
          result.program.directives[static_cast<std::size_t>(ev.index)];

      bool contained = false;
      for (const core::GapPlan* plan : plans_by_disk[d]) {
        if (ev.global >= plan->begin_iter && ev.global <= plan->end_iter) {
          contained = true;
          break;
        }
      }
      if (!contained) {
        out.push_back(make_diagnostic(
            "SDPM-E003", kPass, loc_of(space, ev.global, d, ev.index),
            str_printf("directive at global iteration %lld outside every "
                       "planned idle period of disk %d",
                       static_cast<long long>(ev.global), d)));
      }

      switch (pd.directive.kind) {
        case ir::PowerDirective::Kind::kSpinDown:
          if (standby) {
            out.push_back(make_diagnostic(
                "SDPM-E004", kPass, loc_of(space, ev.global, d, ev.index),
                str_printf("spin_down on disk %d already in standby", d)));
          }
          standby = true;
          break;
        case ir::PowerDirective::Kind::kSpinUp:
          if (!standby) {
            out.push_back(make_diagnostic(
                "SDPM-E005", kPass, loc_of(space, ev.global, d, ev.index),
                str_printf("spin_up on disk %d that is not in standby", d)));
          }
          standby = false;
          break;
        case ir::PowerDirective::Kind::kSetRpm:
          if (standby) {
            out.push_back(make_diagnostic(
                "SDPM-E006", kPass, loc_of(space, ev.global, d, ev.index),
                str_printf("set_RPM on standby disk %d", d)));
          }
          if (pd.directive.rpm_level < 0 || pd.directive.rpm_level > top) {
            out.push_back(make_diagnostic(
                "SDPM-E007", kPass, loc_of(space, ev.global, d, ev.index),
                str_printf("set_RPM level %d outside [0, %d] on disk %d",
                           pd.directive.rpm_level, top, d)));
          } else {
            level = pd.directive.rpm_level;
          }
          break;
      }
    }

    // Demand wake only clears degraded state where an access follows; a
    // disk left degraded after its last access point is legal only when
    // its final planned gap runs to the end of the program.
    while (next_active < active_starts.size()) {
      standby = false;
      level = top;
      ++next_active;
    }
    if (standby || level != top) {
      bool trailing_gap = false;
      for (const core::GapPlan* plan : plans_by_disk[d]) {
        if (plan->end_iter >= total) trailing_gap = true;
      }
      if (!trailing_gap) {
        DiagLocation loc;
        loc.disk = d;
        out.push_back(make_diagnostic(
            "SDPM-E008", kPass, loc,
            str_printf("disk %d left %s but is used again later", d,
                       standby ? "in standby" : "below full speed")));
      }
    }
  }
  return out;
}

}  // namespace sdpm::analysis
