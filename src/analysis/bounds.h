// Certified energy/delay bounds by abstract interpretation of the trace.
//
// The certifier replays the *same* timestamped item stream the simulator
// consumes (requests merged with power events, power events winning ties)
// over an abstract per-disk state: the set of RPM levels the disk may be
// settled at, whether standby is possible, and a list of in-flight
// transition windows with sound settle-by times on the compute timeline.
// From that it derives, per disk,
//
//   E_lo <= measured closed-loop energy <= E_hi
//
// for the fault-free ProactivePolicy replay of the trace, plus execution
// time bounds, may-access / guaranteed-idle interval sets, and two proved
// safety properties ("no demand spin-up possible", "no wasted
// pre-activation").  The derivation and its soundness argument are
// documented in MODEL.md ("Certified energy bounds") and DESIGN.md §16.
#pragma once

#include "analysis/certificate.h"
#include "core/schedule.h"
#include "disk/parameters.h"
#include "layout/layout_table.h"
#include "trace/generator.h"
#include "trace/request.h"

namespace sdpm::analysis {

/// Certify a materialized trace against the disk model.  The bounds hold
/// for sim::simulate of this trace under policy::ProactivePolicy in
/// closed-loop mode with no fault injection.
ScheduleCertificate certify_trace(const trace::Trace& trace,
                                  const disk::DiskParameters& params);

/// Convenience overload: generate the trace a schedule produces (under
/// `options`, which carries the timing noise of the run being certified)
/// and certify it.
ScheduleCertificate certify_schedule(const core::ScheduleResult& result,
                                     const layout::LayoutTable& layout,
                                     const disk::DiskParameters& params,
                                     const trace::GeneratorOptions& options);

}  // namespace sdpm::analysis
