// Pre-activation accounting: the derived report that explains the paper's
// proactive-vs-reactive gap per event, not per aggregate.
//
// The compiler pre-activates a disk (a kSpinUp directive, paper Eq. 1's
// "insert the spin-up p iterations early") so the spindle is back at full
// speed exactly when the next request lands.  This accountant replays the
// event stream and classifies every commanded spin-up:
//
//   hit     the next request found the disk spinning; early-by = how long
//           the disk idled at full power waiting (0 = perfect timing),
//   late    the request arrived while the spin-up was still in flight;
//           late-by = the residual transition the application stalled on,
//   wasted  the disk was spun down again (or the run ended) before any
//           request arrived — pure transition energy wasted.
//
// It also rebuilds the per-disk energy-per-power-state matrix from the
// state-segment stream, which must reconcile exactly with the simulator's
// EnergyBreakdown (pinned by test_obs.cpp) — the timeline is trustworthy
// ground truth, not a parallel bookkeeping that can drift.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/tracer.h"
#include "util/histogram.h"

namespace sdpm::obs {

/// Per-disk pre-activation outcomes.
struct PreactivationDiskStats {
  std::int64_t issued = 0;  ///< commanded spin-ups that actually started
  std::int64_t hits = 0;
  std::int64_t late = 0;
  std::int64_t wasted = 0;
  std::int64_t demand_spin_ups = 0;  ///< reactive wakes (no pre-activation)
  std::int64_t dropped_directives = 0;
};

struct PreactivationReport {
  std::vector<PreactivationDiskStats> disks;
  Histogram early_by_ms;  ///< hit slack: request arrival - spin-up ready
  Histogram late_by_ms;   ///< residual transition the application stalled on
  /// Time and energy per power state per disk, rebuilt from the event
  /// stream (same layout as disk::EnergyBreakdown, as a 6-state table).
  struct StateEnergy {
    TimeMs ms[6] = {0, 0, 0, 0, 0, 0};
    Joules j[6] = {0, 0, 0, 0, 0, 0};
  };
  std::vector<StateEnergy> energy;

  std::int64_t issued() const;
  std::int64_t hits() const;
  std::int64_t late() const;
  std::int64_t wasted() const;
  std::int64_t demand_spin_ups() const;

  /// Human-readable multi-line summary.
  std::string to_string() const;
};

/// EventSink that derives a PreactivationReport from the stream.  Attach
/// alongside any other sink; read report() after EventTracer::close().
class PreactivationAccountant final : public EventSink {
 public:
  void on_event(const Event& event) override;
  void close() override;

  const PreactivationReport& report() const { return report_; }

 private:
  struct DiskState {
    bool pending = false;      ///< a commanded spin-up awaits its request
    bool demand_since = false; ///< a demand wake occurred while pending
    TimeMs ready_t = 0;        ///< end of the most recent spin-up segment
  };

  DiskState& state_of(int disk);
  PreactivationDiskStats& stats_of(int disk);

  std::vector<DiskState> state_;
  PreactivationReport report_;
  bool closed_ = false;
};

}  // namespace sdpm::obs
