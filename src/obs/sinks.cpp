#include "obs/sinks.h"

#include <algorithm>
#include <ostream>

#include "util/strings.h"

namespace sdpm::obs {

namespace {

constexpr TimeMs kMergeEps = 1e-6;

/// Deterministic shortest-ish double rendering: same bits in, same text
/// out, on every platform we build for (C locale, no hex floats).
std::string num(double v) { return str_printf("%.9g", v); }

/// Microsecond timestamp for the Chrome exporter (inputs are simulated or
/// wall milliseconds).
std::string ts_us(TimeMs ms) { return str_printf("%.3f", ms * 1000.0); }

std::string escape(const char* s) {
  std::string out;
  for (; s != nullptr && *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// JsonlSink

void JsonlSink::on_event(const Event& e) {
  os_ << "{\"kind\":\"" << to_string(e.kind) << "\",\"disk\":" << e.disk
      << ",\"t0\":" << num(e.t0) << ",\"t1\":" << num(e.t1) << ",\"state\":\""
      << disk::to_string(e.state) << "\",\"level\":" << e.level
      << ",\"energy_j\":" << num(e.energy_j) << ",\"value\":" << num(e.value)
      << ",\"value2\":" << num(e.value2) << ",\"label\":\"" << escape(e.label)
      << "\"";
  // Appended only when set, so untraced streams stay byte-identical to
  // the pre-trace_id format pinned in test_obs.
  if (e.trace_id != 0) {
    os_ << ",\"trace_id\":\"" << str_printf("%016llx",
                                            static_cast<unsigned long long>(
                                                e.trace_id))
        << "\"";
  }
  os_ << "}\n";
}

void JsonlSink::close() { os_.flush(); }

// ---------------------------------------------------------------------------
// ChromeTraceSink

void ChromeTraceSink::push(std::string line) {
  events_.push_back(std::move(line));
}

void ChromeTraceSink::on_event(const Event& e) {
  const int tid = e.disk >= 0 ? e.disk + 1 : 0;
  if (e.disk >= 0) {
    disk_tids_.insert(tid);
  }
  switch (e.kind) {
    case EventKind::kStateSegment:
      push(str_printf("{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,"
                      "\"dur\":%s,\"name\":\"%s\",\"cat\":\"power\","
                      "\"args\":{\"level\":%d,\"energy_j\":%s}}",
                      tid, ts_us(e.t0).c_str(), ts_us(e.t1 - e.t0).c_str(),
                      disk::to_string(e.state), e.level,
                      num(e.energy_j).c_str()));
      break;
    case EventKind::kService:
      push(str_printf("{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,"
                      "\"dur\":%s,\"name\":\"service\",\"cat\":\"io\","
                      "\"args\":{\"stall_ms\":%s,\"bytes\":%s}}",
                      tid, ts_us(e.t0).c_str(), ts_us(e.t1 - e.t0).c_str(),
                      num(e.value).c_str(), num(e.value2).c_str()));
      break;
    case EventKind::kDirective:
    case EventKind::kDirectiveDropped:
      push(str_printf("{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%s,"
                      "\"s\":\"t\",\"name\":\"%s%s\",\"cat\":\"directive\","
                      "\"args\":{\"level\":%d}}",
                      tid, ts_us(e.t0).c_str(), escape(e.label).c_str(),
                      e.kind == EventKind::kDirectiveDropped ? " (dropped)"
                                                             : "",
                      e.level));
      break;
    case EventKind::kDemandSpinUp:
      push(str_printf("{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%s,"
                      "\"s\":\"t\",\"name\":\"demand_spin_up\","
                      "\"cat\":\"power\",\"args\":{}}",
                      tid, ts_us(e.t0).c_str()));
      break;
    case EventKind::kSpinUpRetry:
      push(str_printf("{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%s,"
                      "\"s\":\"t\",\"name\":\"spin_up_retry\","
                      "\"cat\":\"fault\",\"args\":{\"backoff_ms\":%s}}",
                      tid, ts_us(e.t0).c_str(), num(e.value).c_str()));
      break;
    case EventKind::kMediaError:
      push(str_printf("{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%s,"
                      "\"s\":\"t\",\"name\":\"media_error\","
                      "\"cat\":\"fault\",\"args\":{\"new_remap\":%s}}",
                      tid, ts_us(e.t0).c_str(), num(e.value).c_str()));
      break;
    case EventKind::kBreakEven:
      push(str_printf("{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%s,"
                      "\"s\":\"t\",\"name\":\"break_even:%s\","
                      "\"cat\":\"policy\",\"args\":{\"idle_ms\":%s,"
                      "\"threshold_ms\":%s}}",
                      tid, ts_us(e.t0).c_str(), escape(e.label).c_str(),
                      num(e.value).c_str(), num(e.value2).c_str()));
      break;
    case EventKind::kRpmWindow:
      push(str_printf("{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%s,"
                      "\"s\":\"t\",\"name\":\"rpm_window:%s\","
                      "\"cat\":\"policy\",\"args\":{\"delta\":%s,"
                      "\"level\":%d}}",
                      tid, ts_us(e.t0).c_str(), escape(e.label).c_str(),
                      num(e.value).c_str(), e.level));
      break;
    case EventKind::kCacheHit:
    case EventKind::kCacheMiss:
      app_track_ = true;
      push(str_printf("{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":%s,"
                      "\"s\":\"t\",\"name\":\"%s:%s\",\"cat\":\"cache\","
                      "\"args\":{}}",
                      ts_us(e.t0).c_str(), to_string(e.kind),
                      escape(e.label).c_str()));
      break;
    case EventKind::kCellBegin:
    case EventKind::kCellEnd: {
      const int lane = static_cast<int>(e.value);
      sweep_tids_.insert(lane);
      push(str_printf("{\"ph\":\"%s\",\"pid\":2,\"tid\":%d,\"ts\":%s,"
                      "\"name\":\"%s\",\"cat\":\"sweep\"}",
                      e.kind == EventKind::kCellBegin ? "B" : "E",
                      1000 + lane, ts_us(e.t0).c_str(),
                      escape(e.label).c_str()));
      break;
    }
    case EventKind::kSpanBegin:
    case EventKind::kSpanEnd:
      app_track_ = true;
      if (e.trace_id != 0) {
        push(str_printf("{\"ph\":\"%s\",\"pid\":1,\"tid\":0,\"ts\":%s,"
                        "\"name\":\"%s\",\"cat\":\"span\","
                        "\"args\":{\"trace_id\":\"%016llx\"}}",
                        e.kind == EventKind::kSpanBegin ? "B" : "E",
                        ts_us(e.t0).c_str(), escape(e.label).c_str(),
                        static_cast<unsigned long long>(e.trace_id)));
      } else {
        push(str_printf("{\"ph\":\"%s\",\"pid\":1,\"tid\":0,\"ts\":%s,"
                        "\"name\":\"%s\",\"cat\":\"span\"}",
                        e.kind == EventKind::kSpanBegin ? "B" : "E",
                        ts_us(e.t0).c_str(), escape(e.label).c_str()));
      }
      break;
    case EventKind::kServiceStage: {
      const int lane = e.level;
      service_tids_.insert(lane);
      push(str_printf("{\"ph\":\"X\",\"pid\":3,\"tid\":%d,\"ts\":%s,"
                      "\"dur\":%s,\"name\":\"%s\",\"cat\":\"service\","
                      "\"args\":{\"job\":%lld,\"trace_id\":\"%016llx\"}}",
                      3000 + lane, ts_us(e.t0).c_str(),
                      ts_us(e.t1 - e.t0).c_str(), escape(e.label).c_str(),
                      static_cast<long long>(e.value),
                      static_cast<unsigned long long>(e.trace_id)));
      break;
    }
  }
}

void ChromeTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  os_ << "{\"traceEvents\":[";
  bool first = true;
  const auto emit_line = [&](const std::string& line) {
    if (!first) os_ << ",";
    first = false;
    os_ << "\n" << line;
  };
  emit_line("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
            "\"args\":{\"name\":\"simulation (simulated time)\"}}");
  if (app_track_) {
    emit_line("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
              "\"args\":{\"name\":\"application\"}}");
  }
  for (const int tid : disk_tids_) {
    emit_line(str_printf("{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                         "\"name\":\"thread_name\","
                         "\"args\":{\"name\":\"disk %d\"}}",
                         tid, tid - 1));
  }
  if (!sweep_tids_.empty()) {
    emit_line("{\"ph\":\"M\",\"pid\":2,\"tid\":1000,"
              "\"name\":\"process_name\","
              "\"args\":{\"name\":\"sweep (wall time)\"}}");
    for (const int lane : sweep_tids_) {
      emit_line(str_printf("{\"ph\":\"M\",\"pid\":2,\"tid\":%d,"
                           "\"name\":\"thread_name\","
                           "\"args\":{\"name\":\"worker %d\"}}",
                           1000 + lane, lane));
    }
  }
  if (!service_tids_.empty()) {
    emit_line("{\"ph\":\"M\",\"pid\":3,\"tid\":3000,"
              "\"name\":\"process_name\","
              "\"args\":{\"name\":\"service (wall time)\"}}");
    for (const int lane : service_tids_) {
      emit_line(str_printf("{\"ph\":\"M\",\"pid\":3,\"tid\":%d,"
                           "\"name\":\"thread_name\","
                           "\"args\":{\"name\":\"client lane %d\"}}",
                           3000 + lane, lane));
    }
  }
  for (const std::string& line : events_) emit_line(line);
  os_ << "\n],\"displayTimeUnit\":\"ms\"}\n";
  os_.flush();
  events_.clear();
}

// ---------------------------------------------------------------------------
// TimelineCsvSink

void TimelineCsvSink::on_event(const Event& e) {
  if (e.kind != EventKind::kStateSegment || e.disk < 0) return;
  std::vector<Row>& rows = rows_[e.disk];
  if (!rows.empty()) {
    Row& last = rows.back();
    if (last.state == e.state && last.level == e.level &&
        e.t0 <= last.end + kMergeEps) {
      last.end = std::max(last.end, e.t1);
      last.energy_j += e.energy_j;
      return;
    }
  }
  rows.push_back(Row{e.disk, e.state, e.level, e.t0, e.t1, e.energy_j});
}

void TimelineCsvSink::close() {
  if (closed_) return;
  closed_ = true;
  os_ << "disk,state,level,start_ms,end_ms,duration_ms,energy_j\n";
  for (auto& [disk_id, rows] : rows_) {
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row& a, const Row& b) { return a.start < b.start; });
    for (const Row& r : rows) {
      os_ << disk_id << "," << disk::to_string(r.state) << "," << r.level
          << "," << num(r.start) << "," << num(r.end) << ","
          << num(r.end - r.start) << "," << num(r.energy_j) << "\n";
    }
  }
  os_.flush();
  rows_.clear();
}

// ---------------------------------------------------------------------------
// CountingSink

void CountingSink::on_event(const Event& e) {
  ++counts_[e.kind];
  ++total_;
}

std::int64_t CountingSink::count(EventKind kind) const {
  const auto it = counts_.find(kind);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace sdpm::obs
