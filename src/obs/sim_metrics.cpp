#include "obs/sim_metrics.h"

namespace sdpm::obs {

void record_report_metrics(MetricsRegistry& registry,
                           const sim::SimReport& report) {
  registry.add("sim.reports_recorded");
  registry.add("sim.report_requests", report.requests);
  registry.add("sim.spin_up_retries", report.spin_up_retries());
  registry.add("sim.media_errors", report.media_errors());
  registry.add("sim.remapped_sectors", report.remapped_sectors());
  registry.add("sim.dropped_directives", report.dropped_directives());
  registry.set_gauge("sim.last_energy_j", report.total_energy);
  registry.set_gauge("sim.last_execution_ms", report.execution_ms);
  registry.set_gauge("sim.last_io_stall_ms", report.io_stall_ms);

  for (const sim::DiskReport& d : report.disks) {
    for (std::size_t i = 1; i < d.busy_periods.size(); ++i) {
      const TimeMs gap =
          d.busy_periods[i].start - d.busy_periods[i - 1].completion;
      if (gap > 0) registry.observe("sim.idle_gap_ms", gap);
    }
  }
  for (const TimeMs response : report.responses) {
    registry.observe("sim.response_ms", response);
  }
}

}  // namespace sdpm::obs
