#include "obs/prometheus.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/strings.h"

namespace sdpm::obs {

namespace {

std::string num(double v) { return str_printf("%.9g", v); }

std::string label_block(const std::map<std::string, std::string>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    out += k + "=\"" + v + "\"";
    first = false;
  }
  out += "}";
  return out;
}

std::string with_quantile(std::map<std::string, std::string> labels,
                          const char* q) {
  labels["quantile"] = q;
  return label_block(labels);
}

void render_summary(std::ostringstream& os, const std::string& name,
                    const std::map<std::string, std::string>& labels,
                    const LatencyHistogram::Quantiles& q, bool emit_type) {
  if (emit_type) os << "# TYPE " << name << " summary\n";
  os << name << with_quantile(labels, "0.5") << " " << num(q.p50) << "\n";
  os << name << with_quantile(labels, "0.9") << " " << num(q.p90) << "\n";
  os << name << with_quantile(labels, "0.99") << " " << num(q.p99) << "\n";
  os << name << with_quantile(labels, "0.999") << " " << num(q.p999) << "\n";
  os << name << "_sum" << label_block(labels) << " " << num(q.sum) << "\n";
  os << name << "_count" << label_block(labels) << " " << q.count << "\n";
}

}  // namespace

std::string prometheus_name(const std::string& dotted) {
  std::string out = "sdpm_";
  for (const char c : dotted) {
    const auto uc = static_cast<unsigned char>(c);
    out += (std::isalnum(uc) != 0) ? c : '_';
  }
  return out;
}

std::string render_prometheus(const MetricsRegistry::Snapshot& snapshot,
                              const std::vector<PromSummary>& extra) {
  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string pn = prometheus_name(name);
    os << "# TYPE " << pn << " counter\n" << pn << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string pn = prometheus_name(name);
    os << "# TYPE " << pn << " gauge\n" << pn << " " << num(value) << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    LatencyHistogram::Quantiles q;
    q.count = h.count;
    q.sum = h.sum;
    q.mean = h.mean;
    q.p50 = h.p50;
    q.p90 = h.p95;  // registry stats carry p95, the closest available
    q.p99 = h.p99;
    q.p999 = h.p99;
    q.max = h.max;
    // Registry histograms expose p95 rather than p90/p999; render the
    // quantiles the snapshot actually has instead of the summary helper's
    // fixed set.
    const std::string pn = prometheus_name(name);
    os << "# TYPE " << pn << " summary\n";
    os << pn << "{quantile=\"0.5\"} " << num(h.p50) << "\n";
    os << pn << "{quantile=\"0.95\"} " << num(h.p95) << "\n";
    os << pn << "{quantile=\"0.99\"} " << num(h.p99) << "\n";
    os << pn << "_sum " << num(h.sum) << "\n";
    os << pn << "_count " << h.count << "\n";
  }
  // `extra` summaries arrive grouped by name (the telemetry renderer emits
  // one PromSummary per stage, all sharing one metric name with distinct
  // labels); emit the TYPE line once per name.
  std::string last_name;
  for (const PromSummary& s : extra) {
    const std::string pn = prometheus_name(s.name);
    render_summary(os, pn, s.labels, s.quantiles, pn != last_name);
    last_name = pn;
  }
  return os.str();
}

}  // namespace sdpm::obs
