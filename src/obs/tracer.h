// EventTracer: the fan-out hub between instrumented code and sinks.
//
// Instrumentation sites hold an `EventTracer*` that is nullptr when no one
// is listening — the simulator resolves that pointer ONCE per run (a
// tracer with zero sinks collapses to nullptr as well), so the untraced
// hot path costs a single predictable null-pointer test per site and the
// simulation results are bit-identical with tracing on or off (sinks only
// observe; they can never steer the replay).
//
// emit() is serialized by a mutex: a tracer may be shared by concurrent
// sweep workers.  Within one simulation emission order is the replay
// order, which is what makes the exported streams deterministic.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/event.h"

namespace sdpm::obs {

/// Consumer of the event stream.  Sinks are owned by the caller that
/// attaches them and must outlive the tracer's last emit()/close().
class EventSink {
 public:
  virtual ~EventSink() = default;

  virtual void on_event(const Event& event) = 0;

  /// End of stream: flush buffered output.  Called by EventTracer::close();
  /// must be idempotent.
  virtual void close() {}
};

class EventTracer {
 public:
  EventTracer() = default;
  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  /// Attach a sink (not owned).  Attach all sinks before handing the
  /// tracer to instrumented code.
  void add_sink(EventSink& sink) { sinks_.push_back(&sink); }

  /// True when at least one sink is attached.  Instrumented code checks
  /// this once per run and carries nullptr instead of an inactive tracer.
  bool active() const { return !sinks_.empty(); }

  void emit(const Event& event) {
    std::lock_guard lock(mutex_);
    ++events_emitted_;
    for (EventSink* sink : sinks_) sink->on_event(event);
  }

  /// Flush every sink.  Emit nothing after close().
  void close() {
    std::lock_guard lock(mutex_);
    for (EventSink* sink : sinks_) sink->close();
  }

  std::int64_t events_emitted() const { return events_emitted_; }

 private:
  std::mutex mutex_;
  std::vector<EventSink*> sinks_;
  std::int64_t events_emitted_ = 0;
};

/// Scoped span on the simulated clock: emits kSpanBegin at construction
/// and kSpanEnd at end() or destruction (at the begin time if end() was
/// never reached — simulated time has no implicit "now").
class Span {
 public:
  Span(EventTracer* tracer, const char* label, TimeMs t0);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void end(TimeMs t1);

 private:
  EventTracer* tracer_;
  const char* label_;
  TimeMs t0_;
  bool ended_ = false;
};

/// Resolve a tracer for one run: nullptr unless `tracer` exists and has at
/// least one sink.  The per-run fast-path check the instrumentation
/// contract is written against.
inline EventTracer* effective_tracer(EventTracer* tracer) {
  return (tracer != nullptr && tracer->active()) ? tracer : nullptr;
}

}  // namespace sdpm::obs
