// Bridge from simulation reports to the metrics registry.
//
// The simulator's own registry reporting is O(1) per run (counters only)
// to keep the replay hot path untouched; distribution metrics — idle-gap
// lengths from the per-disk busy timelines, per-request stalls when the
// run captured them — are derived here, once, from the finished report by
// whichever consumer wants them (the CLI's --metrics-out, sweeps, tests).
#pragma once

#include "obs/metrics.h"
#include "sim/report.h"

namespace sdpm::obs {

/// Fold `report` into `registry`: counters ("sim.reports_recorded",
/// fault totals), gauges (energy, execution time of this report), the
/// "sim.idle_gap_ms" histogram (gaps between consecutive busy periods per
/// disk), and "sim.response_ms" (only when the run captured per-request
/// responses).
void record_report_metrics(MetricsRegistry& registry,
                           const sim::SimReport& report);

}  // namespace sdpm::obs
