#include "obs/rolling.h"

#include <cmath>

#include "util/error.h"

namespace sdpm::obs {

RollingWindow::RollingWindow(int capacity_s) : capacity_s_(capacity_s) {
  SDPM_REQUIRE(capacity_s > 0, "rolling window capacity must be positive");
  slots_.resize(static_cast<std::size_t>(capacity_s));
}

void RollingWindow::record(double now_ms, double value) {
  const std::int64_t sec =
      static_cast<std::int64_t>(std::floor(now_ms / 1000.0));
  if (sec < 0) return;
  std::lock_guard lock(mutex_);
  Slot& slot = slots_[static_cast<std::size_t>(sec % capacity_s_)];
  if (slot.second != sec) {
    // Either a fresh second (reclaim the expired slot) or a stale
    // timestamp whose second already rotated out; only the former keeps
    // the sample.
    if (slot.second > sec) return;
    slot.second = sec;
    slot.count = 0;
    slot.sum = 0;
  }
  ++slot.count;
  slot.sum += value;
}

RollingWindow::WindowStats RollingWindow::stats(double now_ms,
                                                double window_s) const {
  SDPM_REQUIRE(window_s > 0 && window_s <= capacity_s_,
               "window must be in (0, capacity_s]");
  WindowStats out;
  out.window_s = window_s;
  const std::int64_t now_sec =
      static_cast<std::int64_t>(std::floor(now_ms / 1000.0));
  const std::int64_t first_sec =
      now_sec - static_cast<std::int64_t>(std::ceil(window_s)) + 1;
  std::lock_guard lock(mutex_);
  for (const Slot& slot : slots_) {
    if (slot.second < first_sec || slot.second > now_sec) continue;
    out.count += slot.count;
    out.sum += slot.sum;
  }
  out.rate_per_sec = static_cast<double>(out.count) / window_s;
  out.mean = out.count == 0 ? 0.0 : out.sum / static_cast<double>(out.count);
  return out;
}

}  // namespace sdpm::obs
