// Concurrent, mergeable latency histogram.
//
// util::Histogram is single-threaded; the daemon records queue-wait and
// end-to-end latencies from accept, worker and watchdog threads at once.
// LatencyHistogram shards the samples across a small fixed set of
// mutex-guarded util::Histogram instances (thread hashed to shard, so
// steady-state recording is an uncontended lock + one bucket increment)
// and merges them exactly on snapshot — log-bucketed merging is lossless,
// so the merged view is indistinguishable from a single-writer histogram.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>

#include "util/histogram.h"

namespace sdpm::obs {

class LatencyHistogram {
 public:
  /// Bucketing matches util::Histogram: `min_value` sizes the first
  /// bucket (default 1e-3 → microsecond resolution for millisecond
  /// units), `growth` the geometric ratio (~4% relative quantile error).
  explicit LatencyHistogram(double min_value = 1e-3, double growth = 1.25);

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Record one sample.  Thread-safe; negative samples clamp to zero
  /// (scheduler jitter can make a steady-clock stage delta land at -0).
  void record(double value);

  /// Exact merge of every shard into one plain histogram.
  Histogram merged() const;

  struct Quantiles {
    std::int64_t count = 0;
    double sum = 0;
    double mean = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
    double p999 = 0;
    double max = 0;
  };
  Quantiles quantiles() const;

  /// Zero every shard (bucketing scheme survives).
  void reset();

 private:
  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    Histogram hist;
  };

  std::size_t shard_of_this_thread() const;

  double min_value_;
  double growth_;
  std::array<Shard, kShards> shards_;
};

/// Compute Quantiles from an already-merged plain histogram (shared by
/// LatencyHistogram::quantiles and per-client aggregates that keep a
/// single-writer util::Histogram under their own lock).
LatencyHistogram::Quantiles quantiles_of(const Histogram& hist);

}  // namespace sdpm::obs
