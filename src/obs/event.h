// Typed simulation events — the vocabulary of the observability layer.
//
// Every event is timestamped in *simulated* milliseconds (the replay's
// app/disk clocks), never wall-clock time, so a fixed-seed run produces a
// byte-identical event stream on every machine.  The one exception is the
// sweep-cell lifecycle pair, whose timestamps are wall milliseconds since
// the sweep started (cells run on pool workers; there is no shared
// simulated clock across cells) — consumers that require determinism
// should ignore those two kinds.
//
// Event is a flat POD rather than a variant: the tracer fast path copies
// it by value, sinks switch on `kind`, and unused fields stay at their
// zero defaults.  The field meaning per kind is documented on the enum.
#pragma once

#include <cstdint>

#include "disk/power_state.h"
#include "util/units.h"

namespace sdpm::obs {

enum class EventKind {
  /// Disk `disk` spent [t0, t1] in power state `state` (at RPM level
  /// `level` when spinning) consuming `energy_j`.  Emitted by DiskUnit as
  /// energy is integrated; adjacent segments of one state may be split
  /// across several events (sinks that build timelines merge them).
  /// `value` carries the exact duration the breakdown accumulated —
  /// recomputing t1 - t0 can differ in the last bits, and consumers that
  /// reconcile against EnergyBreakdown must match it exactly.
  kStateSegment,
  /// A power command took effect on `disk` at t0.  `label` is one of
  /// "spin_down", "spin_up", "set_rpm" (then `level` is the target).
  /// Commands that no-op (already in the target state) are not reported.
  kDirective,
  /// A spin_down / set_rpm command was silently dropped by fault injection
  /// before reaching `disk` at t0; `label` as for kDirective.
  kDirectiveDropped,
  /// A request found `disk` in standby at t0 and paid a demand spin-up.
  kDemandSpinUp,
  /// An injected spin-up failure on `disk`: the attempt started at t0 and
  /// the retry backs off for `value` ms.
  kSpinUpRetry,
  /// An injected transient media error on `disk` at t0; `value` is 1 when
  /// the faulty sector was newly remapped to the spare area.
  kMediaError,
  /// One serviced request on `disk`: issued at t0, completed at t1,
  /// stalling the application for `value` ms over `value2` bytes.
  kService,
  /// A reactive policy examined the idle gap of `disk` at t0: idle for
  /// `value` ms against a `value2` ms threshold; `label` is "spin_down"
  /// when the timeout fired, "hold" otherwise.
  kBreakEven,
  /// A DRPM window decision on `disk` at t0: the window-mean response
  /// delta was `value`; `label` is "raise", "lower" or "hold", and
  /// `level` is the resulting target level.
  kRpmWindow,
  /// A content-keyed cache lookup (`label` names the cache) hit or missed.
  kCacheHit,
  kCacheMiss,
  /// Sweep-cell task lifecycle: `label` is "cell/scheme", `value` is the
  /// dense worker-lane index, t0 is wall ms since the sweep started.
  kCellBegin,
  kCellEnd,
  /// Scoped span delimiters (`label` names the span), e.g. one "run" span
  /// wrapping each simulation on the simulated clock.
  kSpanBegin,
  kSpanEnd,
  /// One service-lifecycle stage of a daemon job: [t0, t1] are wall ms
  /// since the daemon started (like the sweep-cell pair, there is no
  /// simulated clock at the service layer), `label` is the stage
  /// ("queued", "eval", ...), `value` is the job id and `level` the
  /// client lane.  Carries `trace_id` so the wall-time service lane can
  /// be stitched to the simulated-time disk tracks of the same job.
  kServiceStage,
};

const char* to_string(EventKind kind);

/// One observability event.  Fields not listed for a kind above are zero.
struct Event {
  EventKind kind = EventKind::kStateSegment;
  int disk = -1;  ///< target disk; -1 for non-disk-scoped events
  TimeMs t0 = 0;  ///< event (or interval start) timestamp
  TimeMs t1 = 0;  ///< interval end; equals t0 for instantaneous events
  disk::PowerState state = disk::PowerState::kIdle;  ///< kStateSegment only
  int level = 0;        ///< RPM level where meaningful
  Joules energy_j = 0;  ///< kStateSegment only
  double value = 0;     ///< kind-specific scalar (see enum docs)
  double value2 = 0;    ///< second kind-specific scalar
  /// Static or emit-scoped C string; sinks must format it immediately and
  /// never retain the pointer.
  const char* label = nullptr;
  /// Client-propagated trace correlation id; 0 (the default) means
  /// untraced and sinks omit it, keeping pre-existing streams byte-stable.
  std::uint64_t trace_id = 0;
};

}  // namespace sdpm::obs
