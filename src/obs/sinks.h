// Concrete event sinks: JSONL structured log, Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing), and a per-disk power-state
// timeline CSV.
//
// All three write into a caller-owned std::ostream and buffer only what
// their format requires (the Chrome exporter and the CSV timeline need the
// whole stream to emit metadata / merged rows; the JSONL log streams line
// by line).  Output is a pure function of the event stream: no wall-clock
// timestamps, no pointers, doubles printed through fixed deterministic
// formats — a fixed-seed simulation exports byte-identical files on every
// run (see test_obs.cpp).
#pragma once

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/tracer.h"

namespace sdpm::obs {

/// One JSON object per event, one event per line, fixed field order.
class JsonlSink final : public EventSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(os) {}

  void on_event(const Event& event) override;
  void close() override;

 private:
  std::ostream& os_;
};

/// Chrome trace-event JSON ("trace event format", JSON array flavour).
///
/// Track layout: pid 1 is the simulation in *simulated* time — tid 0 is
/// the application track (run spans), tid d+1 is disk d (state segments
/// and services as complete events, directives/faults/decisions as instant
/// events).  pid 2 is the sweep in wall time — one track per worker lane
/// carrying cell begin/end pairs.  pid 3 is the service in wall time — one
/// track per client lane carrying job lifecycle stages, each stamped with
/// the client's trace_id so it can be stitched to the pid-1 simulated-time
/// run of the same job.  Thread-name metadata for every track is emitted
/// on close.
class ChromeTraceSink final : public EventSink {
 public:
  explicit ChromeTraceSink(std::ostream& os) : os_(os) {}

  void on_event(const Event& event) override;
  void close() override;

 private:
  void push(std::string line);

  std::ostream& os_;
  std::vector<std::string> events_;
  std::set<int> disk_tids_;     ///< disk tracks seen (tid = disk + 1)
  std::set<int> sweep_tids_;    ///< sweep worker lanes seen
  std::set<int> service_tids_;  ///< service client lanes seen (pid 3)
  bool app_track_ = false;    ///< tid 0 used (spans / global events)
  bool closed_ = false;
};

/// Per-disk power-state residency timeline:
///   disk,state,level,start_ms,end_ms,duration_ms,energy_j
/// Adjacent segments with the same (disk, state, level) are merged; rows
/// are sorted by (disk, start) on close.
class TimelineCsvSink final : public EventSink {
 public:
  explicit TimelineCsvSink(std::ostream& os) : os_(os) {}

  void on_event(const Event& event) override;
  void close() override;

 private:
  struct Row {
    int disk = 0;
    disk::PowerState state = disk::PowerState::kIdle;
    int level = 0;
    TimeMs start = 0;
    TimeMs end = 0;
    Joules energy_j = 0;
  };

  std::ostream& os_;
  std::map<int, std::vector<Row>> rows_;  ///< per disk, in emission order
  bool closed_ = false;
};

/// Counts events per kind; the test / bench sink.
class CountingSink final : public EventSink {
 public:
  void on_event(const Event& event) override;

  std::int64_t total() const { return total_; }
  std::int64_t count(EventKind kind) const;

 private:
  std::map<EventKind, std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace sdpm::obs
