// Leveled structured JSONL logger.
//
// The daemon's diagnostics were ad-hoc fprintf(stderr) lines; a service
// that runs unattended needs machine-parseable logs.  StructuredLog emits
// one JSON object per line — fixed leading fields (ts_ms, level, event)
// followed by the caller's fields in sorted order — serialized under a
// mutex so concurrent threads never interleave bytes.  `ts_ms` is wall
// (system) clock epoch milliseconds: log lines are operator-facing and
// correlated with external systems, unlike the deterministic simulated
// clocks everywhere else (tools/lint_determinism.sh allowlists this file).
#pragma once

#include <iosfwd>
#include <mutex>
#include <string>

#include "util/json.h"

namespace sdpm::obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* to_string(LogLevel level);

class StructuredLog {
 public:
  /// Logs at or above `min_level` go to `os` (not owned; must outlive the
  /// logger).  The stream is flushed per line so logs survive a crash.
  explicit StructuredLog(std::ostream& os, LogLevel min_level = LogLevel::kInfo);

  StructuredLog(const StructuredLog&) = delete;
  StructuredLog& operator=(const StructuredLog&) = delete;

  bool enabled(LogLevel level) const { return level >= min_level_; }

  /// Emit `{"ts_ms":...,"level":"...","event":"...",<fields>}`.
  /// `fields` must be a JSON object (or null for none).  Thread-safe.
  void log(LogLevel level, const std::string& event,
           const Json& fields = Json());

  void debug(const std::string& event, const Json& fields = Json()) {
    log(LogLevel::kDebug, event, fields);
  }
  void info(const std::string& event, const Json& fields = Json()) {
    log(LogLevel::kInfo, event, fields);
  }
  void warn(const std::string& event, const Json& fields = Json()) {
    log(LogLevel::kWarn, event, fields);
  }
  void error(const std::string& event, const Json& fields = Json()) {
    log(LogLevel::kError, event, fields);
  }

  /// Override the timestamp source (epoch ms) — tests pin it for
  /// byte-stable golden lines.
  void set_clock_for_testing(long long fixed_ts_ms);

 private:
  std::ostream& os_;
  LogLevel min_level_;
  std::mutex mutex_;
  bool fixed_ts_ = false;
  long long fixed_ts_ms_ = 0;
};

}  // namespace sdpm::obs
