#include "obs/log.h"

#include <chrono>
#include <ostream>

#include "util/error.h"

namespace sdpm::obs {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

StructuredLog::StructuredLog(std::ostream& os, LogLevel min_level)
    : os_(os), min_level_(min_level) {}

void StructuredLog::set_clock_for_testing(long long fixed_ts_ms) {
  std::lock_guard lock(mutex_);
  fixed_ts_ = true;
  fixed_ts_ms_ = fixed_ts_ms;
}

void StructuredLog::log(LogLevel level, const std::string& event,
                        const Json& fields) {
  if (!enabled(level)) return;
  SDPM_REQUIRE(fields.is_null() || fields.is_object(),
               "log fields must be a JSON object");
  Json line = Json::object();
  // Json::Object is a std::map, so dump() sorts keys; the ts/level/event
  // triple sorts after most payload keys but every line carries all three,
  // which is what parsers key on.
  if (fields.is_object()) {
    for (const auto& [key, value] : fields.as_object()) {
      line.set(key, value);
    }
  }
  line.set("level", to_string(level));
  line.set("event", event);
  std::lock_guard lock(mutex_);
  const long long ts =
      fixed_ts_ ? fixed_ts_ms_
                : std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
  line.set("ts_ms", static_cast<std::int64_t>(ts));
  os_ << line.dump() << "\n";
  os_.flush();
}

}  // namespace sdpm::obs
