#include "obs/metrics.h"

#include <sstream>

#include "util/strings.h"

namespace sdpm::obs {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(0);
  return *slot;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double sample) {
  std::lock_guard lock(mutex_);
  histograms_.try_emplace(name).first->second.add(sample);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->load(std::memory_order_relaxed);
  }
  snap.gauges = gauges_;
  for (const auto& [name, hist] : histograms_) {
    HistogramStats stats;
    stats.count = hist.count();
    stats.mean = hist.mean();
    stats.sum = hist.sum();
    stats.p50 = hist.median();
    stats.p95 = hist.p95();
    stats.p99 = hist.p99();
    stats.max = hist.max();
    snap.histograms[name] = stats;
  }
  return snap;
}

std::string MetricsRegistry::to_json() const {
  const Snapshot snap = snapshot();
  std::ostringstream os;
  const auto num = [](double v) { return str_printf("%.9g", v); };
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << num(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": "
       << h.count << ", \"mean\": " << num(h.mean) << ", \"p50\": "
       << num(h.p50) << ", \"p95\": " << num(h.p95) << ", \"p99\": "
       << num(h.p99) << ", \"max\": " << num(h.max) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}";
  return os.str();
}

void MetricsRegistry::reset_for_testing() {
  std::lock_guard lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->store(0, std::memory_order_relaxed);
  }
  for (auto& [name, value] : gauges_) value = 0;
  for (auto& [name, hist] : histograms_) hist = Histogram();
}

}  // namespace sdpm::obs
