#include "obs/preactivation.h"

#include <cstring>

#include "util/strings.h"

namespace sdpm::obs {

namespace {
constexpr TimeMs kEps = 1e-9;

bool label_is(const Event& e, const char* name) {
  return e.label != nullptr && std::strcmp(e.label, name) == 0;
}
}  // namespace

std::int64_t PreactivationReport::issued() const {
  std::int64_t n = 0;
  for (const auto& d : disks) n += d.issued;
  return n;
}
std::int64_t PreactivationReport::hits() const {
  std::int64_t n = 0;
  for (const auto& d : disks) n += d.hits;
  return n;
}
std::int64_t PreactivationReport::late() const {
  std::int64_t n = 0;
  for (const auto& d : disks) n += d.late;
  return n;
}
std::int64_t PreactivationReport::wasted() const {
  std::int64_t n = 0;
  for (const auto& d : disks) n += d.wasted;
  return n;
}
std::int64_t PreactivationReport::demand_spin_ups() const {
  std::int64_t n = 0;
  for (const auto& d : disks) n += d.demand_spin_ups;
  return n;
}

std::string PreactivationReport::to_string() const {
  static const char* kStateNames[6] = {"active",    "idle",    "standby",
                                       "spin-down", "spin-up", "rpm-shift"};
  std::string out = "pre-activation accounting\n";
  out += str_printf(
      "  issued %lld: hit %lld, late %lld, wasted %lld; demand spin-ups "
      "%lld\n",
      static_cast<long long>(issued()), static_cast<long long>(hits()),
      static_cast<long long>(late()), static_cast<long long>(wasted()),
      static_cast<long long>(demand_spin_ups()));
  if (early_by_ms.count() > 0) {
    out += "  early-by (ms): " + early_by_ms.summary() + "\n";
  }
  if (late_by_ms.count() > 0) {
    out += "  late-by  (ms): " + late_by_ms.summary() + "\n";
  }
  for (std::size_t d = 0; d < energy.size(); ++d) {
    out += str_printf("  disk %zu:", d);
    for (int s = 0; s < 6; ++s) {
      if (energy[d].ms[s] <= 0 && energy[d].j[s] <= 0) continue;
      out += str_printf(" %s %.1fJ/%.0fms", kStateNames[s], energy[d].j[s],
                        energy[d].ms[s]);
    }
    out += "\n";
  }
  return out;
}

PreactivationAccountant::DiskState& PreactivationAccountant::state_of(
    int disk) {
  if (static_cast<std::size_t>(disk) >= state_.size()) {
    state_.resize(static_cast<std::size_t>(disk) + 1);
  }
  return state_[static_cast<std::size_t>(disk)];
}

PreactivationDiskStats& PreactivationAccountant::stats_of(int disk) {
  if (static_cast<std::size_t>(disk) >= report_.disks.size()) {
    report_.disks.resize(static_cast<std::size_t>(disk) + 1);
    report_.energy.resize(static_cast<std::size_t>(disk) + 1);
  }
  return report_.disks[static_cast<std::size_t>(disk)];
}

void PreactivationAccountant::on_event(const Event& e) {
  if (e.disk < 0) return;
  switch (e.kind) {
    case EventKind::kStateSegment: {
      stats_of(e.disk);  // ensure sized
      const int s = static_cast<int>(e.state);
      auto& bucket = report_.energy[static_cast<std::size_t>(e.disk)];
      // `value` is the exact accumulated duration; t1 - t0 can differ in
      // the last floating-point bits and would break the exact
      // reconciliation with EnergyBreakdown.
      bucket.ms[s] += e.value;
      bucket.j[s] += e.energy_j;
      if (e.state == disk::PowerState::kSpinningUp) {
        state_of(e.disk).ready_t = e.t1;
      }
      break;
    }
    case EventKind::kDirective:
      if (label_is(e, "spin_up")) {
        ++stats_of(e.disk).issued;
        DiskState& st = state_of(e.disk);
        // Back-to-back commanded spin-ups without an intervening request
        // cannot happen (the second no-ops while the disk spins), so a
        // still-pending slot here means the tracker missed a spin-down;
        // classify the stale one as wasted to stay conservative.
        if (st.pending) ++stats_of(e.disk).wasted;
        st.pending = true;
        st.demand_since = false;
      } else if (label_is(e, "spin_down")) {
        DiskState& st = state_of(e.disk);
        if (st.pending) {
          ++stats_of(e.disk).wasted;
          st.pending = false;
        }
      }
      break;
    case EventKind::kDirectiveDropped:
      ++stats_of(e.disk).dropped_directives;
      break;
    case EventKind::kDemandSpinUp: {
      ++stats_of(e.disk).demand_spin_ups;
      DiskState& st = state_of(e.disk);
      if (st.pending) st.demand_since = true;
      break;
    }
    case EventKind::kService: {
      DiskState& st = state_of(e.disk);
      if (!st.pending) break;
      PreactivationDiskStats& stats = stats_of(e.disk);
      if (st.demand_since) {
        // The pre-activated disk was down again by the time the request
        // arrived (re-spun-down, or the wake itself failed past its
        // retries): the commanded spin-up bought nothing.
        ++stats.wasted;
      } else if (st.ready_t > e.t0 + kEps) {
        ++stats.late;
        report_.late_by_ms.add(st.ready_t - e.t0);
      } else {
        ++stats.hits;
        report_.early_by_ms.add(e.t0 - st.ready_t);
      }
      st.pending = false;
      break;
    }
    default:
      break;
  }
}

void PreactivationAccountant::close() {
  if (closed_) return;
  closed_ = true;
  for (std::size_t d = 0; d < state_.size(); ++d) {
    if (state_[d].pending) {
      ++stats_of(static_cast<int>(d)).wasted;
      state_[d].pending = false;
    }
  }
}

}  // namespace sdpm::obs
