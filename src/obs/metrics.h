// Named-metric registry: the generalization of util::PerfCounters.
//
// PerfCounters is a fixed struct of process-wide atomics; every new
// subsystem that wanted a number had to grow it.  MetricsRegistry instead
// registers metrics by name at first use:
//
//   counters   monotonically increasing int64 (atomic; hot sites cache the
//              returned reference, so steady-state increments are one
//              relaxed fetch_add with no lock),
//   gauges     last-write-wins doubles (peak RSS, last run's energy), and
//   histograms util::Histogram distributions (idle-period lengths,
//              service-latency stalls), guarded by the registry mutex.
//
// Thread-safety: every recording entry point (counter/add, set_gauge,
// observe) and snapshot() is safe to call concurrently — the daemon records
// from accept, worker and watchdog threads at once.  Counter increments on
// a cached handle are a single relaxed fetch_add; gauges and histograms
// take the registry mutex per call, so per-request histogram recording on
// a hot path should prefer obs::LatencyHistogram (sharded, see latency.h)
// and fold into the registry on snapshot instead.
//
// The simulator, trace cache, sweep engine and event tracer all report
// into global(); `sdpm_cli ... --metrics-out` snapshots it as JSON with
// deterministically sorted keys.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace sdpm::obs {

class MetricsRegistry {
 public:
  using Counter = std::atomic<std::int64_t>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry.
  static MetricsRegistry& global();

  /// Get-or-create the counter `name`.  The reference stays valid for the
  /// registry's lifetime (including across reset_for_testing, which zeroes
  /// values but never removes metrics), so call sites may cache it.
  Counter& counter(const std::string& name);

  /// Increment convenience for call sites too cold to cache the handle.
  void add(const std::string& name, std::int64_t delta = 1) {
    counter(name).fetch_add(delta, std::memory_order_relaxed);
  }

  /// Set gauge `name` (last write wins).
  void set_gauge(const std::string& name, double value);

  /// Record one sample into histogram `name` (created on first use).
  void observe(const std::string& name, double sample);

  /// Immutable copy of everything, keys sorted.
  struct HistogramStats {
    std::int64_t count = 0;
    double mean = 0;
    double sum = 0;  // populated in snapshot(); not part of to_json()
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    double max = 0;
  };
  struct Snapshot {
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramStats> histograms;
  };
  Snapshot snapshot() const;

  /// Render a snapshot as one deterministic JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}.
  std::string to_json() const;

  /// Zero every counter, gauge and histogram (names survive, handles stay
  /// valid).  Test-only: production code asserts deltas via snapshots.
  void reset_for_testing();

 private:
  mutable std::mutex mutex_;
  // unique_ptr gives counters a stable address across map growth.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace sdpm::obs
