// Rolling time-window aggregator.
//
// Lifetime histograms answer "what has p99 been since startup"; operators
// watching a live daemon want "what is the completion rate *right now*".
// RollingWindow keeps a ring of one-second slots (count + sum per slot)
// and aggregates the trailing 1s/10s/60s on demand.  The caller supplies
// the clock (the daemon's monotonic wall_ms), so the aggregator itself is
// deterministic and unit-testable without sleeping.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace sdpm::obs {

class RollingWindow {
 public:
  /// `capacity_s` bounds the longest queryable window (default one
  /// minute, matching the 1s/10s/60s views the telemetry op renders).
  explicit RollingWindow(int capacity_s = 60);

  RollingWindow(const RollingWindow&) = delete;
  RollingWindow& operator=(const RollingWindow&) = delete;

  /// Record one event of weight `value` at time `now_ms`.  Thread-safe.
  /// `now_ms` must be monotonic per caller (a stale timestamp older than
  /// the ring simply lands in an expired slot and is dropped).
  void record(double now_ms, double value = 1.0);

  struct WindowStats {
    std::int64_t count = 0;
    double sum = 0;
    double window_s = 0;
    double rate_per_sec = 0;  // count / window_s
    double mean = 0;          // sum / count (0 when empty)
  };

  /// Aggregate the trailing `window_s` seconds ending at `now_ms`.
  WindowStats stats(double now_ms, double window_s) const;

  int capacity_s() const { return capacity_s_; }

 private:
  struct Slot {
    std::int64_t second = -1;  // absolute second this slot holds, -1 empty
    std::int64_t count = 0;
    double sum = 0;
  };

  int capacity_s_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
};

}  // namespace sdpm::obs
