#include "obs/tracer.h"

namespace sdpm::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kStateSegment:
      return "state_segment";
    case EventKind::kDirective:
      return "directive";
    case EventKind::kDirectiveDropped:
      return "directive_dropped";
    case EventKind::kDemandSpinUp:
      return "demand_spin_up";
    case EventKind::kSpinUpRetry:
      return "spin_up_retry";
    case EventKind::kMediaError:
      return "media_error";
    case EventKind::kService:
      return "service";
    case EventKind::kBreakEven:
      return "break_even";
    case EventKind::kRpmWindow:
      return "rpm_window";
    case EventKind::kCacheHit:
      return "cache_hit";
    case EventKind::kCacheMiss:
      return "cache_miss";
    case EventKind::kCellBegin:
      return "cell_begin";
    case EventKind::kCellEnd:
      return "cell_end";
    case EventKind::kSpanBegin:
      return "span_begin";
    case EventKind::kSpanEnd:
      return "span_end";
    case EventKind::kServiceStage:
      return "service_stage";
  }
  return "?";
}

Span::Span(EventTracer* tracer, const char* label, TimeMs t0)
    : tracer_(tracer), label_(label), t0_(t0) {
  if (tracer_ == nullptr) return;
  Event e;
  e.kind = EventKind::kSpanBegin;
  e.t0 = e.t1 = t0_;
  e.label = label_;
  tracer_->emit(e);
}

void Span::end(TimeMs t1) {
  if (ended_) return;
  ended_ = true;
  if (tracer_ == nullptr) return;
  Event e;
  e.kind = EventKind::kSpanEnd;
  e.t0 = e.t1 = t1;
  e.label = label_;
  tracer_->emit(e);
}

Span::~Span() { end(t0_); }

}  // namespace sdpm::obs
