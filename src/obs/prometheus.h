// Prometheus text-exposition rendering for MetricsRegistry + histograms.
//
// The daemon's `telemetry` op (and `sdpm_cli client --op telemetry
// --prometheus`) serve this format so a stock Prometheus scraper — or a
// human with curl + socat — can ingest service metrics without a custom
// exporter.  Rendering is deterministic: names sort lexicographically and
// numbers use the same %.9g convention as the JSON sinks.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/latency.h"
#include "obs/metrics.h"

namespace sdpm::obs {

/// One pre-aggregated distribution rendered as a Prometheus summary
/// (quantile-labelled gauges + _count/_sum), e.g. service stage latencies
/// with labels {{"stage","eval"}}.
struct PromSummary {
  std::string name;  // dotted sdpm name, sanitized on render
  std::map<std::string, std::string> labels;
  LatencyHistogram::Quantiles quantiles;
};

/// Sanitize a dotted metric name ("service.jobs_completed") into a
/// Prometheus identifier ("sdpm_service_jobs_completed").
std::string prometheus_name(const std::string& dotted);

/// Render a registry snapshot plus extra summaries as Prometheus text
/// exposition format (counters -> counter, gauges -> gauge, registry
/// histograms and `extra` -> summary with quantile labels).
std::string render_prometheus(const MetricsRegistry::Snapshot& snapshot,
                              const std::vector<PromSummary>& extra = {});

}  // namespace sdpm::obs
