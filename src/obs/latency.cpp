#include "obs/latency.h"

#include <functional>
#include <thread>

namespace sdpm::obs {

LatencyHistogram::LatencyHistogram(double min_value, double growth)
    : min_value_(min_value), growth_(growth) {
  for (Shard& shard : shards_) shard.hist = Histogram(min_value, growth);
}

std::size_t LatencyHistogram::shard_of_this_thread() const {
  // One hash per call keeps the class free of thread_local state shared
  // across instances; the hash itself is a few arithmetic ops.
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
}

void LatencyHistogram::record(double value) {
  if (value < 0) value = 0;
  Shard& shard = shards_[shard_of_this_thread()];
  std::lock_guard lock(shard.mutex);
  shard.hist.add(value);
}

Histogram LatencyHistogram::merged() const {
  Histogram out(min_value_, growth_);
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    out.merge(shard.hist);
  }
  return out;
}

LatencyHistogram::Quantiles LatencyHistogram::quantiles() const {
  return quantiles_of(merged());
}

void LatencyHistogram::reset() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    shard.hist = Histogram(min_value_, growth_);
  }
}

LatencyHistogram::Quantiles quantiles_of(const Histogram& hist) {
  LatencyHistogram::Quantiles q;
  q.count = hist.count();
  q.sum = hist.sum();
  q.mean = hist.mean();
  q.p50 = hist.median();
  q.p90 = hist.p90();
  q.p99 = hist.p99();
  q.p999 = hist.p999();
  q.max = hist.max();
  return q;
}

}  // namespace sdpm::obs
