#include "ir/transform.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace sdpm::ir {

namespace {

/// Rewrite every subscript in `nest` by substituting each original loop
/// variable with an affine expression over the new loop list.
void substitute_body(LoopNest& nest, std::span<const AffineExpr> sub) {
  for (Statement& s : nest.body) {
    for (ArrayRef& ref : s.refs) {
      for (AffineExpr& e : ref.subscripts) {
        e = e.substituted(sub);
      }
    }
  }
}

}  // namespace

LoopNest strip_mine(const LoopNest& nest, int loop_index,
                    std::int64_t factor) {
  SDPM_REQUIRE(loop_index >= 0 && loop_index < nest.depth(),
               "strip_mine: loop index out of range");
  SDPM_REQUIRE(factor > 0, "strip_mine: factor must be positive");
  const Loop& target = nest.loops[static_cast<std::size_t>(loop_index)];
  SDPM_REQUIRE(target.step == 1, "strip_mine: loop must have unit step");
  const std::int64_t trips = target.trip_count();
  SDPM_REQUIRE(trips % factor == 0,
               "strip_mine: factor must divide the trip count");

  LoopNest out;
  out.name = nest.name;
  out.loop_overhead_cycles = nest.loop_overhead_cycles;
  out.body = nest.body;

  // New loop list: same loops, with `target` replaced by (tile, element).
  for (int k = 0; k < nest.depth(); ++k) {
    const Loop& loop = nest.loops[static_cast<std::size_t>(k)];
    if (k == loop_index) {
      out.loops.push_back(Loop{loop.var + "_t", 0, trips / factor, 1});
      out.loops.push_back(Loop{loop.var, 0, factor, 1});
    } else {
      out.loops.push_back(loop);
    }
  }

  // Substitution: old loop k -> expression over new loops.
  const std::size_t new_depth = out.loops.size();
  std::vector<AffineExpr> sub(static_cast<std::size_t>(nest.depth()));
  for (int k = 0; k < nest.depth(); ++k) {
    AffineExpr e;
    e.coefs.assign(new_depth, 0);
    const std::size_t new_k =
        static_cast<std::size_t>(k) + (k > loop_index ? 1 : 0);
    if (k == loop_index) {
      // original value = lower + tile*factor + element
      e.coefs[static_cast<std::size_t>(loop_index)] = factor;
      e.coefs[static_cast<std::size_t>(loop_index) + 1] = 1;
      e.constant = target.lower;
    } else {
      e.coefs[new_k] = 1;
    }
    sub[static_cast<std::size_t>(k)] = e;
  }
  substitute_body(out, sub);
  return out;
}

std::vector<LoopNest> fission(const LoopNest& nest,
                              const std::vector<std::vector<int>>& groups) {
  // Check that the groups partition the body.
  std::vector<bool> seen(nest.body.size(), false);
  for (const auto& group : groups) {
    SDPM_REQUIRE(!group.empty(), "fission: empty statement group");
    for (int si : group) {
      SDPM_REQUIRE(si >= 0 && si < static_cast<int>(nest.body.size()),
                   "fission: statement index out of range");
      SDPM_REQUIRE(!seen[static_cast<std::size_t>(si)],
                   "fission: statement assigned to two groups");
      seen[static_cast<std::size_t>(si)] = true;
    }
  }
  SDPM_REQUIRE(std::all_of(seen.begin(), seen.end(),
                           [](bool b) { return b; }),
               "fission: groups must cover every statement");

  std::vector<LoopNest> out;
  out.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    LoopNest part;
    part.name = nest.name + ".f" + std::to_string(g + 1);
    part.loops = nest.loops;
    part.loop_overhead_cycles = nest.loop_overhead_cycles;
    for (int si : groups[g]) {
      part.body.push_back(nest.body[static_cast<std::size_t>(si)]);
    }
    out.push_back(std::move(part));
  }
  return out;
}

LoopNest tile(const LoopNest& nest,
              const std::vector<std::int64_t>& tile_sizes, int first_loop) {
  const int tiled = static_cast<int>(tile_sizes.size());
  SDPM_REQUIRE(tiled >= 1 && first_loop >= 0 &&
                   first_loop + tiled <= nest.depth(),
               "tile: tiled loop range out of bounds");

  for (int k = 0; k < tiled; ++k) {
    const Loop& loop = nest.loops[static_cast<std::size_t>(first_loop + k)];
    SDPM_REQUIRE(loop.step == 1, "tile: loops must have unit step");
    SDPM_REQUIRE(tile_sizes[static_cast<std::size_t>(k)] > 0,
                 "tile: tile sizes must be positive");
    SDPM_REQUIRE(loop.trip_count() %
                         tile_sizes[static_cast<std::size_t>(k)] ==
                     0,
                 "tile: tile size must divide the trip count of loop '" +
                     loop.var + "'");
  }

  LoopNest out;
  out.name = nest.name + ".tiled";
  out.loop_overhead_cycles = nest.loop_overhead_cycles;
  out.body = nest.body;

  // Loops before the tiled range unchanged, then tile iterators (ii, jj,
  // ...), then element iterators (i, j, ...), then any remaining inner
  // loops.
  for (int k = 0; k < first_loop; ++k) {
    out.loops.push_back(nest.loops[static_cast<std::size_t>(k)]);
  }
  for (int k = 0; k < tiled; ++k) {
    const Loop& loop = nest.loops[static_cast<std::size_t>(first_loop + k)];
    out.loops.push_back(Loop{
        loop.var + loop.var, 0,
        loop.trip_count() / tile_sizes[static_cast<std::size_t>(k)], 1});
  }
  for (int k = 0; k < tiled; ++k) {
    const Loop& loop = nest.loops[static_cast<std::size_t>(first_loop + k)];
    out.loops.push_back(
        Loop{loop.var, 0, tile_sizes[static_cast<std::size_t>(k)], 1});
  }
  for (int k = first_loop + tiled; k < nest.depth(); ++k) {
    out.loops.push_back(nest.loops[static_cast<std::size_t>(k)]);
  }

  const std::size_t new_depth = out.loops.size();
  std::vector<AffineExpr> sub(static_cast<std::size_t>(nest.depth()));
  for (int k = 0; k < nest.depth(); ++k) {
    AffineExpr e;
    e.coefs.assign(new_depth, 0);
    if (k < first_loop) {
      e.coefs[static_cast<std::size_t>(k)] = 1;
    } else if (k < first_loop + tiled) {
      const Loop& loop = nest.loops[static_cast<std::size_t>(k)];
      const int j = k - first_loop;
      // original = lower + tile_iter*T + element_iter
      e.coefs[static_cast<std::size_t>(k)] =
          tile_sizes[static_cast<std::size_t>(j)];
      e.coefs[static_cast<std::size_t>(k + tiled)] = 1;
      e.constant = loop.lower;
    } else {
      e.coefs[static_cast<std::size_t>(k + tiled)] = 1;
    }
    sub[static_cast<std::size_t>(k)] = e;
  }
  substitute_body(out, sub);
  return out;
}

LoopNest interchange(const LoopNest& nest, int loop_a, int loop_b) {
  SDPM_REQUIRE(loop_a >= 0 && loop_a < nest.depth() && loop_b >= 0 &&
                   loop_b < nest.depth(),
               "interchange: loop index out of range");
  LoopNest out = nest;
  std::swap(out.loops[static_cast<std::size_t>(loop_a)],
            out.loops[static_cast<std::size_t>(loop_b)]);
  for (Statement& s : out.body) {
    for (ArrayRef& ref : s.refs) {
      for (AffineExpr& e : ref.subscripts) {
        const std::size_t need =
            static_cast<std::size_t>(std::max(loop_a, loop_b)) + 1;
        if (e.coefs.size() < need) e.coefs.resize(need, 0);
        std::swap(e.coefs[static_cast<std::size_t>(loop_a)],
                  e.coefs[static_cast<std::size_t>(loop_b)]);
      }
    }
  }
  return out;
}

LoopNest fuse(const LoopNest& first, const LoopNest& second) {
  SDPM_REQUIRE(first.loops.size() == second.loops.size(),
               "fuse: nests must have the same depth");
  for (std::size_t k = 0; k < first.loops.size(); ++k) {
    const Loop& a = first.loops[k];
    const Loop& b = second.loops[k];
    SDPM_REQUIRE(a.lower == b.lower && a.upper == b.upper && a.step == b.step,
                 "fuse: loop bounds must match");
  }
  LoopNest out = first;
  out.name = first.name + "+" + second.name;
  out.loop_overhead_cycles += second.loop_overhead_cycles;
  out.body.insert(out.body.end(), second.body.begin(), second.body.end());
  return out;
}

void transpose_layout(Program& program, ArrayId array) {
  Array& a = program.array(array);
  a.layout = a.layout == StorageLayout::kRowMajor
                 ? StorageLayout::kColMajor
                 : StorageLayout::kRowMajor;
}

std::vector<std::vector<int>> coupled_statement_components(
    const LoopNest& nest) {
  const int n = static_cast<int>(nest.body.size());
  // Union-find over statements, coupled through shared arrays.
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  auto unite = [&](int a, int b) {
    parent[static_cast<std::size_t>(find(a))] = find(b);
  };

  // Map array -> first statement seen using it.
  std::vector<std::pair<ArrayId, int>> owner;
  for (int si = 0; si < n; ++si) {
    for (const ArrayRef& ref :
         nest.body[static_cast<std::size_t>(si)].refs) {
      auto it = std::find_if(owner.begin(), owner.end(),
                             [&](const auto& p) { return p.first == ref.array; });
      if (it == owner.end()) {
        owner.emplace_back(ref.array, si);
      } else {
        unite(si, it->second);
      }
    }
  }

  std::vector<std::vector<int>> components;
  std::vector<int> root_to_component(static_cast<std::size_t>(n), -1);
  for (int si = 0; si < n; ++si) {
    const int root = find(si);
    int& slot = root_to_component[static_cast<std::size_t>(root)];
    if (slot == -1) {
      slot = static_cast<int>(components.size());
      components.emplace_back();
    }
    components[static_cast<std::size_t>(slot)].push_back(si);
  }
  return components;
}

}  // namespace sdpm::ir
