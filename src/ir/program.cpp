#include "ir/program.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace sdpm::ir {

const char* to_string(PowerDirective::Kind kind) {
  switch (kind) {
    case PowerDirective::Kind::kSpinDown:
      return "spin_down";
    case PowerDirective::Kind::kSpinUp:
      return "spin_up";
    case PowerDirective::Kind::kSetRpm:
      return "set_RPM";
  }
  return "?";
}

ArrayId Program::add_array(Array array) {
  SDPM_REQUIRE(!array.extents.empty(),
               "array '" + array.name + "' must have at least one dimension");
  SDPM_REQUIRE(array.element_size > 0, "element size must be positive");
  arrays.push_back(std::move(array));
  return static_cast<ArrayId>(arrays.size() - 1);
}

int Program::add_nest(LoopNest nest) {
  nests.push_back(std::move(nest));
  return static_cast<int>(nests.size() - 1);
}

const Array& Program::array(ArrayId id) const {
  SDPM_REQUIRE(id >= 0 && id < static_cast<ArrayId>(arrays.size()),
               "array id out of range");
  return arrays[static_cast<std::size_t>(id)];
}

Array& Program::array(ArrayId id) {
  SDPM_REQUIRE(id >= 0 && id < static_cast<ArrayId>(arrays.size()),
               "array id out of range");
  return arrays[static_cast<std::size_t>(id)];
}

std::optional<ArrayId> Program::find_array(
    const std::string& array_name) const {
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    if (arrays[i].name == array_name) return static_cast<ArrayId>(i);
  }
  return std::nullopt;
}

Bytes Program::total_data_bytes() const {
  Bytes total = 0;
  for (const Array& a : arrays) total += a.size_bytes();
  return total;
}

Cycles Program::total_cycles() const {
  Cycles total = 0;
  for (const LoopNest& nest : nests) total += nest.total_cycles();
  return total;
}

void Program::sort_directives() {
  std::stable_sort(directives.begin(), directives.end(),
                   [](const PlacedDirective& a, const PlacedDirective& b) {
                     return a.point < b.point;
                   });
}

void Program::validate() const {
  for (const LoopNest& nest : nests) nest.validate(arrays);
  for (const PlacedDirective& pd : directives) {
    SDPM_REQUIRE(pd.point.nest_index >= 0 &&
                     pd.point.nest_index < static_cast<int>(nests.size()),
                 "directive attached to unknown nest");
    const LoopNest& nest =
        nests[static_cast<std::size_t>(pd.point.nest_index)];
    SDPM_REQUIRE(pd.point.flat_iteration >= 0 &&
                     pd.point.flat_iteration <= nest.iteration_count(),
                 "directive iteration out of range in nest '" + nest.name +
                     "'");
    SDPM_REQUIRE(pd.directive.disk >= 0, "directive disk must be >= 0");
  }
}

std::string Program::to_string() const {
  std::ostringstream os;
  os << "program " << name << "\n";
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    const Array& a = arrays[i];
    os << "  array " << a.name << "[";
    for (std::size_t d = 0; d < a.extents.size(); ++d) {
      if (d != 0) os << "][";
      os << a.extents[d];
    }
    os << "] elem=" << a.element_size << "B " << ir::to_string(a.layout)
       << " (" << fmt_bytes(a.size_bytes()) << ")\n";
  }
  for (std::size_t n = 0; n < nests.size(); ++n) {
    const LoopNest& nest = nests[n];
    os << "  nest[" << n << "] " << nest.name << ": ";
    for (std::size_t k = 0; k < nest.loops.size(); ++k) {
      const Loop& loop = nest.loops[k];
      if (k != 0) os << " ";
      os << "for(" << loop.var << "=" << loop.lower << ".." << loop.upper;
      if (loop.step != 1) os << " step " << loop.step;
      os << ")";
    }
    os << "  [" << nest.cycles_per_iteration() << " cyc/iter]\n";
    const auto names = nest.loop_names();
    for (const Statement& s : nest.body) {
      os << "    " << (s.label.empty() ? "stmt" : s.label) << ":";
      for (const ArrayRef& ref : s.refs) {
        os << " " << (ref.kind == AccessKind::kWrite ? "W:" : "R:")
           << array(ref.array).name << "[";
        for (std::size_t d = 0; d < ref.subscripts.size(); ++d) {
          if (d != 0) os << "][";
          os << ref.subscripts[d].to_string(names);
        }
        os << "]";
      }
      os << "\n";
    }
  }
  if (!directives.empty()) {
    os << "  directives: " << directives.size() << "\n";
  }
  return os.str();
}

}  // namespace sdpm::ir
