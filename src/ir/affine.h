// Affine expressions over the loop iterators of a nest.
//
// A subscript of an array reference is an affine combination of the
// enclosing loop variables plus a constant: sum_k coef[k]*iter[k] + c.
// Coefficients are indexed outer-to-inner, matching LoopNest::loops.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sdpm::ir {

/// An affine function of the loop iterators of one nest.
struct AffineExpr {
  std::vector<std::int64_t> coefs;  ///< one per loop, outer-to-inner
  std::int64_t constant = 0;

  /// Evaluate at a concrete iteration vector (same length as coefs).
  std::int64_t eval(std::span<const std::int64_t> iters) const;

  /// Coefficient of loop `k`, treating missing entries as zero.
  std::int64_t coef(std::size_t k) const {
    return k < coefs.size() ? coefs[k] : 0;
  }

  /// True when the expression ignores all iterators (a constant subscript).
  bool is_constant() const;

  /// The innermost loop with a nonzero coefficient, or -1 if constant.
  int innermost_dependent_loop() const;

  /// Expression rewritten for a nest whose loop list was transformed by
  /// substituting loop k := sum_j sub[k].coefs[j]*new_iter[j] +
  /// sub[k].constant.  Used by strip-mining and tiling.
  AffineExpr substituted(std::span<const AffineExpr> sub) const;

  std::string to_string(std::span<const std::string> loop_names) const;

  friend bool operator==(const AffineExpr&, const AffineExpr&) = default;
};

/// Convenience constructors.
AffineExpr affine_const(std::int64_t c);
AffineExpr affine_var(std::size_t loop_index, std::size_t nest_depth,
                      std::int64_t coef = 1, std::int64_t constant = 0);

}  // namespace sdpm::ir
