// Constant-distance data-dependence analysis over one loop nest.
//
// The transformation legality lint needs to know, for a given (possibly
// already transformed) nest, whether reordering its loops could reverse a
// dependence.  We compute dependences for *uniformly generated* reference
// pairs — same array, identical per-dimension iterator coefficients,
// differing only in the constant terms — which covers every stencil-style
// reference the benchmarks produce.  Non-uniform pairs (e.g. a transposed
// access paired with a direct one) are counted, not analyzed; callers must
// treat them as "legality unproven", never as "legal".
#pragma once

#include <cstdint>
#include <vector>

#include "ir/nest.h"

namespace sdpm::ir {

/// One dependence between two references of a nest, as a per-loop constant
/// distance.  `distance[k]` is the iteration distance carried by loop `k`
/// (outer-to-inner); `free_loop[k]` marks loops that appear in neither
/// reference's subscripts, where the distance is unconstrained ('*' in
/// direction-vector notation).  Vectors are canonicalized so the leading
/// constrained nonzero entry is positive (source precedes sink).
struct Dependence {
  int stmt_a = 0;  ///< statement index of the first reference
  int ref_a = 0;   ///< reference index within stmt_a
  int stmt_b = 0;
  int ref_b = 0;
  ArrayId array = -1;
  std::vector<std::int64_t> distance;  ///< per loop, outer-to-inner
  std::vector<bool> free_loop;         ///< '*' positions (unconstrained)

  /// True when every constrained component is zero (the dependence never
  /// crosses an iteration of a subscript-determining loop).
  bool loop_independent() const;
};

struct DependenceSummary {
  std::vector<Dependence> dependences;
  /// Reference pairs sharing an array (with a write) whose subscripts are
  /// not uniformly generated — skipped, legality unproven.
  int unanalyzed_pairs = 0;
};

/// Compute the constant-distance dependences of `nest` against the owning
/// program's arrays: every ordered pair of references to one array where at
/// least one reference writes.
DependenceSummary uniform_dependences(const LoopNest& nest,
                                      std::span<const Array> arrays);

/// True when `dep` permits arbitrary loop interchange / tiling of the
/// nest: either it is loop-independent, or every constrained component is
/// non-negative and no unconstrained ('*') loop could realize a negative
/// component ahead of the carried level.  This is the classic
/// "direction vector contains no '>' (and no '*' before the first '<')"
/// sufficient condition.
bool permits_permutation(const Dependence& dep);

}  // namespace sdpm::ir
