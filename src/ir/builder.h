// Fluent builder for constructing Programs.
//
// Example (the paper's Figure 2(a) fragment):
//
//   ProgramBuilder pb("figure2");
//   ArrayId u1 = pb.array("U1", {4 * s}, 8);
//   ArrayId u2 = pb.array("U2", {2 * s}, 8);
//   pb.nest("nest1")
//       .loop("i", 1, 2 * s + 1)
//       .stmt(120.0)
//       .read(u1, {sym("i")})
//       .read(u2, {sym("i")})
//       .done();
//
// Subscripts are symbolic affine expressions over loop names (sym("i") + 1,
// 2 * sym("j"), ...), resolved against the nest's loops when the statement
// is finalized.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.h"

namespace sdpm::ir {

/// A symbolic affine expression over named loop variables, used only while
/// building; resolved to an AffineExpr when the enclosing nest is known.
struct SymExpr {
  struct Term {
    std::string var;
    std::int64_t coef = 1;
  };
  std::vector<Term> terms;
  std::int64_t constant = 0;

  /// Resolve against a nest's loop names (outer-to-inner).
  AffineExpr resolve(const std::vector<std::string>& loop_names) const;
};

/// A symbolic loop variable.
SymExpr sym(std::string var);
/// A constant subscript.
SymExpr sym_const(std::int64_t c);

SymExpr operator+(SymExpr lhs, const SymExpr& rhs);
SymExpr operator+(SymExpr lhs, std::int64_t c);
SymExpr operator-(SymExpr lhs, std::int64_t c);
SymExpr operator*(std::int64_t c, SymExpr rhs);

class ProgramBuilder;

/// Builder for one loop nest; obtained from ProgramBuilder::nest().
class NestBuilder {
 public:
  /// Append a loop level (outer-to-inner order).
  NestBuilder& loop(std::string var, std::int64_t lower, std::int64_t upper,
                    std::int64_t step = 1);

  /// Begin a new statement with the given per-execution cycle cost.
  NestBuilder& stmt(Cycles cycles, std::string label = "");

  /// Add a read reference to the current statement.
  NestBuilder& read(ArrayId array, std::vector<SymExpr> subscripts);

  /// Add a write reference to the current statement.
  NestBuilder& write(ArrayId array, std::vector<SymExpr> subscripts);

  /// Set per-iteration loop control overhead in cycles.
  NestBuilder& overhead(Cycles cycles);

  /// Finalize the nest into the program; returns its nest index.
  int done();

 private:
  friend class ProgramBuilder;
  NestBuilder(ProgramBuilder& parent, std::string name);

  NestBuilder& add_ref(ArrayId array, std::vector<SymExpr> subscripts,
                       AccessKind kind);

  ProgramBuilder& parent_;
  LoopNest nest_;
  std::vector<std::pair<Statement, std::vector<std::vector<SymExpr>>>>
      pending_;  // statement skeletons + unresolved subscripts per ref
  std::vector<std::vector<AccessKind>> pending_kinds_;
  std::vector<std::vector<ArrayId>> pending_arrays_;
};

/// Top-level program builder.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  /// Declare a disk-resident array; returns its id.
  ArrayId array(std::string name, std::vector<std::int64_t> extents,
                Bytes element_size = 8,
                StorageLayout layout = StorageLayout::kRowMajor);

  /// Start building a nest; call NestBuilder::done() to commit it.
  NestBuilder nest(std::string name);

  /// Validate and return the finished program.
  Program build();

 private:
  friend class NestBuilder;
  Program program_;
};

}  // namespace sdpm::ir
