#include "ir/builder.h"

#include <algorithm>

#include "util/error.h"

namespace sdpm::ir {

AffineExpr SymExpr::resolve(
    const std::vector<std::string>& loop_names) const {
  AffineExpr expr;
  expr.coefs.assign(loop_names.size(), 0);
  expr.constant = constant;
  for (const Term& term : terms) {
    const auto it =
        std::find(loop_names.begin(), loop_names.end(), term.var);
    SDPM_REQUIRE(it != loop_names.end(),
                 "subscript references unknown loop variable '" + term.var +
                     "'");
    expr.coefs[static_cast<std::size_t>(it - loop_names.begin())] +=
        term.coef;
  }
  return expr;
}

SymExpr sym(std::string var) {
  SymExpr e;
  e.terms.push_back({std::move(var), 1});
  return e;
}

SymExpr sym_const(std::int64_t c) {
  SymExpr e;
  e.constant = c;
  return e;
}

SymExpr operator+(SymExpr lhs, const SymExpr& rhs) {
  for (const SymExpr::Term& t : rhs.terms) lhs.terms.push_back(t);
  lhs.constant += rhs.constant;
  return lhs;
}

SymExpr operator+(SymExpr lhs, std::int64_t c) {
  lhs.constant += c;
  return lhs;
}

SymExpr operator-(SymExpr lhs, std::int64_t c) {
  lhs.constant -= c;
  return lhs;
}

SymExpr operator*(std::int64_t c, SymExpr rhs) {
  for (SymExpr::Term& t : rhs.terms) t.coef *= c;
  rhs.constant *= c;
  return rhs;
}

NestBuilder::NestBuilder(ProgramBuilder& parent, std::string name)
    : parent_(parent) {
  nest_.name = std::move(name);
}

NestBuilder& NestBuilder::loop(std::string var, std::int64_t lower,
                               std::int64_t upper, std::int64_t step) {
  SDPM_REQUIRE(pending_.empty(), "declare all loops before statements");
  nest_.loops.push_back(Loop{std::move(var), lower, upper, step});
  return *this;
}

NestBuilder& NestBuilder::stmt(Cycles cycles, std::string label) {
  Statement s;
  s.cycles = cycles;
  s.label = label.empty()
                ? "s" + std::to_string(pending_.size() + 1)
                : std::move(label);
  pending_.emplace_back(std::move(s), std::vector<std::vector<SymExpr>>{});
  pending_kinds_.emplace_back();
  pending_arrays_.emplace_back();
  return *this;
}

NestBuilder& NestBuilder::add_ref(ArrayId array,
                                  std::vector<SymExpr> subscripts,
                                  AccessKind kind) {
  SDPM_REQUIRE(!pending_.empty(), "call stmt() before adding references");
  pending_.back().second.push_back(std::move(subscripts));
  pending_kinds_.back().push_back(kind);
  pending_arrays_.back().push_back(array);
  return *this;
}

NestBuilder& NestBuilder::read(ArrayId array,
                               std::vector<SymExpr> subscripts) {
  return add_ref(array, std::move(subscripts), AccessKind::kRead);
}

NestBuilder& NestBuilder::write(ArrayId array,
                                std::vector<SymExpr> subscripts) {
  return add_ref(array, std::move(subscripts), AccessKind::kWrite);
}

NestBuilder& NestBuilder::overhead(Cycles cycles) {
  nest_.loop_overhead_cycles = cycles;
  return *this;
}

int NestBuilder::done() {
  const std::vector<std::string> names = nest_.loop_names();
  for (std::size_t si = 0; si < pending_.size(); ++si) {
    Statement stmt = std::move(pending_[si].first);
    const auto& ref_subs = pending_[si].second;
    for (std::size_t ri = 0; ri < ref_subs.size(); ++ri) {
      ArrayRef ref;
      ref.array = pending_arrays_[si][ri];
      ref.kind = pending_kinds_[si][ri];
      for (const SymExpr& sub : ref_subs[ri]) {
        ref.subscripts.push_back(sub.resolve(names));
      }
      stmt.refs.push_back(std::move(ref));
    }
    nest_.body.push_back(std::move(stmt));
  }
  pending_.clear();
  nest_.validate(parent_.program_.arrays);
  return parent_.program_.add_nest(std::move(nest_));
}

ProgramBuilder::ProgramBuilder(std::string name) {
  program_.name = std::move(name);
}

ArrayId ProgramBuilder::array(std::string name,
                              std::vector<std::int64_t> extents,
                              Bytes element_size, StorageLayout layout) {
  Array a;
  a.name = std::move(name);
  a.extents = std::move(extents);
  a.element_size = element_size;
  a.layout = layout;
  return program_.add_array(std::move(a));
}

NestBuilder ProgramBuilder::nest(std::string name) {
  return NestBuilder(*this, std::move(name));
}

Program ProgramBuilder::build() {
  program_.validate();
  return std::move(program_);
}

}  // namespace sdpm::ir
