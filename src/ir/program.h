// Whole-program IR: arrays + ordered loop nests + power directives.
//
// A Program is the unit consumed by every analysis and transformation in
// core/ and by the trace generator.  Power-management directives — the
// explicit spin_down / spin_up / set_RPM calls the compiler inserts (paper
// §3) — are attached to iteration points and executed by the simulated
// application immediately before the corresponding iteration.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/array.h"
#include "ir/nest.h"
#include "util/units.h"

namespace sdpm::ir {

/// A point in program execution order: immediately before flat iteration
/// `flat_iteration` of nest `nest_index`.  `flat_iteration ==
/// iteration_count()` denotes the point just after the nest completes.
struct IterationPoint {
  int nest_index = 0;
  std::int64_t flat_iteration = 0;

  friend auto operator<=>(const IterationPoint&,
                          const IterationPoint&) = default;
};

/// An explicit disk power-management call inserted by the compiler.
struct PowerDirective {
  enum class Kind {
    kSpinDown,  ///< TPM: active/idle -> standby
    kSpinUp,    ///< TPM: standby -> active (pre-activation)
    kSetRpm,    ///< DRPM: change rotation speed to rpm_level
  };

  Kind kind = Kind::kSpinDown;
  int disk = 0;
  int rpm_level = 0;  ///< target level index for kSetRpm; ignored otherwise
};

const char* to_string(PowerDirective::Kind kind);

/// A directive bound to its insertion point.
struct PlacedDirective {
  IterationPoint point;
  PowerDirective directive;
};

/// A whole program: disk-resident arrays and the loop nests that access
/// them, in execution order.
struct Program {
  std::string name;
  std::vector<Array> arrays;
  std::vector<LoopNest> nests;
  std::vector<PlacedDirective> directives;  ///< sorted by point

  ArrayId add_array(Array array);
  int add_nest(LoopNest nest);

  const Array& array(ArrayId id) const;
  Array& array(ArrayId id);

  /// Look up an array by name; empty when absent.
  std::optional<ArrayId> find_array(const std::string& array_name) const;

  /// Total bytes across all arrays (Table 2 "data size").
  Bytes total_data_bytes() const;

  /// Total compute cycles over all nests (excluding directive overhead).
  Cycles total_cycles() const;

  /// Sort directives into program order (stable).
  void sort_directives();

  /// Validate the whole program (array refs, subscript ranks, directive
  /// points).  Throws sdpm::Error on violation.
  void validate() const;

  /// Human-readable structural dump (for docs/examples/tests).
  std::string to_string() const;
};

}  // namespace sdpm::ir
