#include "ir/dependence.h"

#include <cstdlib>
#include <optional>

namespace sdpm::ir {

namespace {

/// One linear constraint sum_k coef[k] * delta[k] = rhs over the per-loop
/// iterator-value distances.
struct Constraint {
  std::vector<std::int64_t> coefs;  // per loop
  std::int64_t rhs = 0;
};

/// Solve the constraint system by repeated single-unknown elimination.
/// Returns the per-loop distances (in iterator-value units) for loops that
/// appear in some constraint, nullopt+solvable=false when a constraint with
/// several unknowns survives (not uniformly solvable), and nullopt+
/// solvable=true when the system is inconsistent (no dependence).
struct Solution {
  std::vector<std::optional<std::int64_t>> delta;  // nullopt = free loop
  bool exists = false;
  bool solvable = true;
};

Solution solve(std::vector<Constraint> constraints, int depth) {
  Solution sol;
  sol.delta.assign(static_cast<std::size_t>(depth), std::nullopt);
  std::vector<bool> done(constraints.size(), false);

  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      if (done[c]) continue;
      Constraint& eq = constraints[c];
      int unknowns = 0;
      int last = -1;
      for (int k = 0; k < depth; ++k) {
        if (eq.coefs[static_cast<std::size_t>(k)] == 0) continue;
        if (sol.delta[static_cast<std::size_t>(k)].has_value()) {
          eq.rhs -= eq.coefs[static_cast<std::size_t>(k)] *
                    *sol.delta[static_cast<std::size_t>(k)];
          eq.coefs[static_cast<std::size_t>(k)] = 0;
        } else {
          ++unknowns;
          last = k;
        }
      }
      if (unknowns == 0) {
        if (eq.rhs != 0) return sol;  // inconsistent: no dependence
        done[c] = true;
        progress = true;
      } else if (unknowns == 1) {
        const std::int64_t coef = eq.coefs[static_cast<std::size_t>(last)];
        if (eq.rhs % coef != 0) return sol;  // non-integral: no dependence
        sol.delta[static_cast<std::size_t>(last)] = eq.rhs / coef;
        done[c] = true;
        progress = true;
      }
    }
  }
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    if (!done[c]) {
      sol.solvable = false;  // coupled unknowns: not uniformly solvable
      return sol;
    }
  }
  sol.exists = true;
  return sol;
}

/// Pad an affine expression's coefficient for loop `k` (missing = 0).
std::int64_t coef_of(const AffineExpr& e, int k) {
  return e.coef(static_cast<std::size_t>(k));
}

/// True when the two references have identical iterator coefficients in
/// every dimension (uniformly generated pair).
bool uniform_pair(const ArrayRef& a, const ArrayRef& b, int depth) {
  if (a.subscripts.size() != b.subscripts.size()) return false;
  for (std::size_t d = 0; d < a.subscripts.size(); ++d) {
    for (int k = 0; k < depth; ++k) {
      if (coef_of(a.subscripts[d], k) != coef_of(b.subscripts[d], k)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

bool Dependence::loop_independent() const {
  for (std::size_t k = 0; k < distance.size(); ++k) {
    if (!free_loop[k] && distance[k] != 0) return false;
  }
  return true;
}

DependenceSummary uniform_dependences(const LoopNest& nest,
                                      std::span<const Array> arrays) {
  DependenceSummary summary;
  const int depth = nest.depth();

  struct RefSite {
    int stmt;
    int ref;
    const ArrayRef* site;
  };
  std::vector<RefSite> sites;
  for (int s = 0; s < static_cast<int>(nest.body.size()); ++s) {
    const Statement& stmt = nest.body[static_cast<std::size_t>(s)];
    for (int r = 0; r < static_cast<int>(stmt.refs.size()); ++r) {
      sites.push_back({s, r, &stmt.refs[static_cast<std::size_t>(r)]});
    }
  }

  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      const ArrayRef& a = *sites[i].site;
      const ArrayRef& b = *sites[j].site;
      if (a.array != b.array) continue;
      if (a.kind != AccessKind::kWrite && b.kind != AccessKind::kWrite) {
        continue;  // read-read: no dependence
      }
      if (a.array < 0 || a.array >= static_cast<ArrayId>(arrays.size())) {
        continue;  // malformed reference; program validation reports it
      }
      if (!uniform_pair(a, b, depth)) {
        ++summary.unanalyzed_pairs;
        continue;
      }

      // One constraint per dimension: c . delta = const_a - const_b.
      std::vector<Constraint> constraints;
      for (std::size_t d = 0; d < a.subscripts.size(); ++d) {
        Constraint eq;
        eq.coefs.resize(static_cast<std::size_t>(depth), 0);
        bool any = false;
        for (int k = 0; k < depth; ++k) {
          eq.coefs[static_cast<std::size_t>(k)] = coef_of(a.subscripts[d], k);
          any |= eq.coefs[static_cast<std::size_t>(k)] != 0;
        }
        eq.rhs = a.subscripts[d].constant - b.subscripts[d].constant;
        if (!any && eq.rhs != 0) {
          constraints.clear();
          constraints.push_back(eq);  // constant mismatch: unsatisfiable
          break;
        }
        if (any || eq.rhs != 0) constraints.push_back(eq);
      }

      const Solution sol = solve(std::move(constraints), depth);
      if (!sol.solvable) {
        ++summary.unanalyzed_pairs;
        continue;
      }
      if (!sol.exists) continue;  // provably no dependence

      Dependence dep;
      dep.stmt_a = sites[i].stmt;
      dep.ref_a = sites[i].ref;
      dep.stmt_b = sites[j].stmt;
      dep.ref_b = sites[j].ref;
      dep.array = a.array;
      dep.distance.assign(static_cast<std::size_t>(depth), 0);
      dep.free_loop.assign(static_cast<std::size_t>(depth), false);
      bool in_bounds = true;
      for (int k = 0; k < depth; ++k) {
        const Loop& loop = nest.loops[static_cast<std::size_t>(k)];
        if (!sol.delta[static_cast<std::size_t>(k)].has_value()) {
          dep.free_loop[static_cast<std::size_t>(k)] = true;
          continue;
        }
        const std::int64_t value_delta = *sol.delta[static_cast<std::size_t>(k)];
        if (value_delta % loop.step != 0) {
          in_bounds = false;  // distance not realizable on the step grid
          break;
        }
        const std::int64_t trips = value_delta / loop.step;
        if (std::llabs(trips) >= loop.trip_count()) {
          in_bounds = false;  // distance exceeds the loop extent
          break;
        }
        dep.distance[static_cast<std::size_t>(k)] = trips;
      }
      if (!in_bounds) continue;

      // Canonicalize: leading constrained nonzero positive (source first).
      for (int k = 0; k < depth; ++k) {
        if (dep.free_loop[static_cast<std::size_t>(k)] ||
            dep.distance[static_cast<std::size_t>(k)] == 0) {
          continue;
        }
        if (dep.distance[static_cast<std::size_t>(k)] < 0) {
          for (auto& v : dep.distance) v = -v;
        }
        break;
      }
      summary.dependences.push_back(std::move(dep));
    }
  }
  return summary;
}

bool permits_permutation(const Dependence& dep) {
  // Unsafe direction vectors are those with a realizable '>' component in
  // some lexicographically-positive expansion: any constrained negative
  // entry, two or more '*' loops, or a '*' loop after a constrained '<'.
  int stars = 0;
  int first_star = -1;
  int first_positive = -1;
  for (std::size_t k = 0; k < dep.distance.size(); ++k) {
    if (dep.free_loop[k]) {
      ++stars;
      if (first_star < 0) first_star = static_cast<int>(k);
      continue;
    }
    if (dep.distance[k] < 0) return false;
    if (dep.distance[k] > 0 && first_positive < 0) {
      first_positive = static_cast<int>(k);
    }
  }
  if (stars >= 2) return false;
  if (stars == 1 && first_positive >= 0 && first_positive < first_star) {
    return false;
  }
  return true;
}

}  // namespace sdpm::ir
