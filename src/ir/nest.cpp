#include "ir/nest.h"

#include "util/error.h"

namespace sdpm::ir {

const char* to_string(AccessKind kind) {
  return kind == AccessKind::kRead ? "read" : "write";
}

std::int64_t Loop::trip_count() const {
  SDPM_REQUIRE(step > 0, "loop step must be positive");
  if (upper <= lower) return 0;
  return (upper - lower + step - 1) / step;
}

std::vector<ArrayId> Statement::referenced_arrays() const {
  std::vector<ArrayId> ids;
  ids.reserve(refs.size());
  for (const ArrayRef& ref : refs) ids.push_back(ref.array);
  return ids;
}

std::int64_t LoopNest::iteration_count() const {
  std::int64_t count = 1;
  for (const Loop& loop : loops) count *= loop.trip_count();
  return count;
}

Cycles LoopNest::cycles_per_iteration() const {
  Cycles total = loop_overhead_cycles;
  for (const Statement& s : body) total += s.cycles;
  return total;
}

std::vector<std::int64_t> LoopNest::iteration_at(std::int64_t flat) const {
  SDPM_ASSERT(flat >= 0 && flat < iteration_count(),
              "flat iteration out of range");
  std::vector<std::int64_t> iters(loops.size());
  for (int k = depth() - 1; k >= 0; --k) {
    const auto idx = static_cast<std::size_t>(k);
    const std::int64_t trips = loops[idx].trip_count();
    iters[idx] = loops[idx].value_at(flat % trips);
    flat /= trips;
  }
  return iters;
}

std::int64_t LoopNest::flat_of_trips(
    std::span<const std::int64_t> trips) const {
  SDPM_ASSERT(trips.size() == loops.size(), "trip vector rank mismatch");
  std::int64_t flat = 0;
  for (std::size_t k = 0; k < loops.size(); ++k) {
    flat = flat * loops[k].trip_count() + trips[k];
  }
  return flat;
}

std::vector<std::string> LoopNest::loop_names() const {
  std::vector<std::string> names;
  names.reserve(loops.size());
  for (const Loop& loop : loops) names.push_back(loop.var);
  return names;
}

void LoopNest::validate(std::span<const Array> arrays) const {
  SDPM_REQUIRE(!loops.empty(), "nest '" + name + "' has no loops");
  for (const Loop& loop : loops) {
    SDPM_REQUIRE(loop.step > 0,
                 "nest '" + name + "': loop step must be positive");
    SDPM_REQUIRE(loop.trip_count() > 0,
                 "nest '" + name + "': empty loop '" + loop.var + "'");
  }
  for (const Statement& s : body) {
    for (const ArrayRef& ref : s.refs) {
      SDPM_REQUIRE(ref.array >= 0 &&
                       ref.array < static_cast<ArrayId>(arrays.size()),
                   "nest '" + name + "': reference to unknown array");
      const Array& arr = arrays[static_cast<std::size_t>(ref.array)];
      SDPM_REQUIRE(static_cast<int>(ref.subscripts.size()) == arr.rank(),
                   "nest '" + name + "': subscript rank mismatch for array '" +
                       arr.name + "'");
      for (const AffineExpr& sub : ref.subscripts) {
        SDPM_REQUIRE(sub.coefs.size() <= loops.size(),
                     "nest '" + name +
                         "': subscript references more loops than the nest "
                         "has");
      }
    }
  }
}

}  // namespace sdpm::ir
