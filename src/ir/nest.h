// Loop nests: loops, statements, and affine array references.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ir/affine.h"
#include "ir/array.h"
#include "util/units.h"

namespace sdpm::ir {

/// One loop level: `for (var = lower; var < upper; var += step)`.
struct Loop {
  std::string var;         ///< iterator name (for diagnostics)
  std::int64_t lower = 0;  ///< inclusive
  std::int64_t upper = 0;  ///< exclusive
  std::int64_t step = 1;

  std::int64_t trip_count() const;

  /// Iterator value at trip `t` (0 <= t < trip_count()).
  std::int64_t value_at(std::int64_t t) const { return lower + t * step; }
};

enum class AccessKind { kRead, kWrite };

const char* to_string(AccessKind kind);

/// One array reference inside a statement, e.g. U[i+1][2*j].
struct ArrayRef {
  ArrayId array = -1;
  std::vector<AffineExpr> subscripts;  ///< one per array dimension
  AccessKind kind = AccessKind::kRead;
};

/// A statement: a set of array references plus its compute cost.  The cost
/// is the per-execution cycle count attributed to this statement — the
/// "measured" quantity the paper obtains with gethrtime.
struct Statement {
  std::string label;
  std::vector<ArrayRef> refs;
  Cycles cycles = 0;

  /// Ids of all arrays referenced by this statement (with duplicates).
  std::vector<ArrayId> referenced_arrays() const;
};

/// A perfectly-nested loop with a body of statements executed every
/// innermost iteration.
struct LoopNest {
  std::string name;
  std::vector<Loop> loops;  ///< outer-to-inner
  std::vector<Statement> body;
  Cycles loop_overhead_cycles = 0;  ///< per-iteration control overhead

  int depth() const { return static_cast<int>(loops.size()); }

  /// Total innermost iterations (product of trip counts).
  std::int64_t iteration_count() const;

  /// Per-iteration compute cost: statement costs plus loop overhead.
  Cycles cycles_per_iteration() const;

  /// Total compute cycles of the nest.
  Cycles total_cycles() const {
    return cycles_per_iteration() * static_cast<double>(iteration_count());
  }

  /// Decode a flat iteration number (row-major over the loop trip counts)
  /// into concrete iterator values.
  std::vector<std::int64_t> iteration_at(std::int64_t flat) const;

  /// Inverse of iteration_at for trip indices.
  std::int64_t flat_of_trips(std::span<const std::int64_t> trips) const;

  /// Names of the loop variables, outer-to-inner.
  std::vector<std::string> loop_names() const;

  /// Validate internal consistency against the owning program's arrays.
  void validate(std::span<const Array> arrays) const;
};

}  // namespace sdpm::ir
