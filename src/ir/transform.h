// Mechanical loop transformations on the IR.
//
// These are the *mechanisms* (strip-mining, fission, tiling, layout
// transposition); the *policies* that decide where to apply them — the
// paper's Figure 11 and Figure 12 algorithms — live in core/.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.h"

namespace sdpm::ir {

/// Strip-mine loop `loop_index` of `nest` by `factor`, producing a nest of
/// depth+1 with a tile iterator outside the element iterator.  The paper
/// strip-mines loops so that power-management calls can be inserted at tile
/// boundaries without unrolling (§3).  `factor` must divide the loop's trip
/// count and the loop must have unit step.
LoopNest strip_mine(const LoopNest& nest, int loop_index,
                    std::int64_t factor);

/// Distribute (fission) a nest into one nest per statement group.  Each
/// group is a list of statement indices into `nest.body`; groups must
/// partition the body.  Loop structure and bounds are preserved; per-group
/// compute cost is the sum of the group's statement costs.  Legality
/// (absence of fission-preventing dependences) is the caller's
/// responsibility — core::FissionPass checks it.
std::vector<LoopNest> fission(const LoopNest& nest,
                              const std::vector<std::vector<int>>& groups);

/// Tile `tile_sizes.size()` consecutive loops of a nest starting at
/// `first_loop` (paper Fig. 10/12).  Produces a nest whose loop order is:
/// loops before `first_loop` unchanged, then the tile iterators, then the
/// element iterators, then any remaining inner loops; all subscripts are
/// rewritten via affine substitution.  Each tiled loop must have unit step
/// and a trip count divisible by its tile size.
LoopNest tile(const LoopNest& nest,
              const std::vector<std::int64_t>& tile_sizes,
              int first_loop = 0);

/// Interchange two loops of a nest (paper §6: "most of the other known
/// loop transformations can also be adapted to work with disk layouts").
/// Subscript coefficients are permuted to match the new loop order, so the
/// set of accesses is unchanged; legality (full permutability) is the
/// caller's responsibility.
LoopNest interchange(const LoopNest& nest, int loop_a, int loop_b);

/// Fuse two nests with identical loop structure into one (statements of
/// `first` precede statements of `second` in every iteration).  The duals
/// of fission: fusing loops shortens disk inter-access times, which is why
/// the paper's §6 transformation is a *distribution*.  Legality is the
/// caller's responsibility.
LoopNest fuse(const LoopNest& first, const LoopNest& second);

/// Flip an array's storage order in place (row- <-> column-major).  Models
/// the physical data-layout transformation the tiling algorithm performs
/// when the access pattern does not conform to the storage pattern.
void transpose_layout(Program& program, ArrayId array);

/// For each statement, true if every pair of statements it is grouped with
/// shares no written array — the conservative fission-legality test used by
/// the paper's algorithm (statements coupled through a common array must
/// stay together).  Returns the coupled-components partition of the body:
/// statements sharing any array end up in the same component.
std::vector<std::vector<int>> coupled_statement_components(
    const LoopNest& nest);

}  // namespace sdpm::ir
