// Disk-resident multi-dimensional arrays.
//
// Each array models one file on the parallel disk subsystem: a name, its
// extents, element size, and its storage order (row- or column-major).  The
// storage order determines the file offset of each element, which — combined
// with the striping description in layout/ — determines which disk an access
// touches.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/units.h"

namespace sdpm::ir {

/// Index of an array within its Program.
using ArrayId = int;

/// Linearization order of array elements within the backing file.
enum class StorageLayout {
  kRowMajor,  ///< last dimension contiguous (C order)
  kColMajor,  ///< first dimension contiguous (Fortran order)
};

const char* to_string(StorageLayout layout);

/// A disk-resident array (one file).
struct Array {
  std::string name;
  std::vector<std::int64_t> extents;  ///< size of each dimension
  Bytes element_size = 8;             ///< bytes per element (default double)
  StorageLayout layout = StorageLayout::kRowMajor;

  int rank() const { return static_cast<int>(extents.size()); }
  std::int64_t element_count() const;
  Bytes size_bytes() const { return element_count() * element_size; }

  /// Linear element index of a multi-dimensional index under this array's
  /// storage layout.  Bounds are validated in debug builds.
  std::int64_t linear_index(std::span<const std::int64_t> index) const;

  /// Byte offset of an element within the backing file.
  Bytes byte_offset(std::span<const std::int64_t> index) const {
    return linear_index(index) * element_size;
  }

  /// Element stride (in linear-index units) contributed by dimension `dim`
  /// under this array's layout.
  std::int64_t dim_stride(int dim) const;

  /// Copy of this array with the opposite storage order (used by the
  /// layout-transformation step of the tiling algorithm).
  Array with_layout(StorageLayout new_layout) const;
};

}  // namespace sdpm::ir
