#include "ir/array.h"

#include "util/error.h"

namespace sdpm::ir {

const char* to_string(StorageLayout layout) {
  switch (layout) {
    case StorageLayout::kRowMajor:
      return "row-major";
    case StorageLayout::kColMajor:
      return "col-major";
  }
  return "?";
}

std::int64_t Array::element_count() const {
  std::int64_t count = 1;
  for (std::int64_t extent : extents) {
    SDPM_ASSERT(extent > 0, "array extent must be positive");
    count *= extent;
  }
  return count;
}

std::int64_t Array::dim_stride(int dim) const {
  SDPM_ASSERT(dim >= 0 && dim < rank(), "dimension out of range");
  std::int64_t stride = 1;
  if (layout == StorageLayout::kRowMajor) {
    for (int d = rank() - 1; d > dim; --d) stride *= extents[static_cast<std::size_t>(d)];
  } else {
    for (int d = 0; d < dim; ++d) stride *= extents[static_cast<std::size_t>(d)];
  }
  return stride;
}

std::int64_t Array::linear_index(std::span<const std::int64_t> index) const {
  SDPM_ASSERT(static_cast<int>(index.size()) == rank(),
              "index rank mismatch");
  std::int64_t linear = 0;
  for (int d = 0; d < rank(); ++d) {
    const std::int64_t i = index[static_cast<std::size_t>(d)];
    SDPM_ASSERT(i >= 0 && i < extents[static_cast<std::size_t>(d)],
                "array index out of bounds");
    linear += i * dim_stride(d);
  }
  return linear;
}

Array Array::with_layout(StorageLayout new_layout) const {
  Array copy = *this;
  copy.layout = new_layout;
  return copy;
}

}  // namespace sdpm::ir
