#include "ir/affine.h"

#include <sstream>

#include "util/error.h"

namespace sdpm::ir {

std::int64_t AffineExpr::eval(std::span<const std::int64_t> iters) const {
  SDPM_ASSERT(coefs.size() <= iters.size(),
              "iteration vector shorter than coefficient vector");
  std::int64_t value = constant;
  for (std::size_t k = 0; k < coefs.size(); ++k) {
    value += coefs[k] * iters[k];
  }
  return value;
}

bool AffineExpr::is_constant() const {
  for (std::int64_t c : coefs) {
    if (c != 0) return false;
  }
  return true;
}

int AffineExpr::innermost_dependent_loop() const {
  for (int k = static_cast<int>(coefs.size()) - 1; k >= 0; --k) {
    if (coefs[static_cast<std::size_t>(k)] != 0) return k;
  }
  return -1;
}

AffineExpr AffineExpr::substituted(std::span<const AffineExpr> sub) const {
  SDPM_REQUIRE(sub.size() >= coefs.size(),
               "substitution must cover every original loop");
  AffineExpr out;
  out.constant = constant;
  for (std::size_t k = 0; k < coefs.size(); ++k) {
    if (coefs[k] == 0) continue;
    const AffineExpr& replacement = sub[k];
    out.constant += coefs[k] * replacement.constant;
    if (out.coefs.size() < replacement.coefs.size()) {
      out.coefs.resize(replacement.coefs.size(), 0);
    }
    for (std::size_t j = 0; j < replacement.coefs.size(); ++j) {
      out.coefs[j] += coefs[k] * replacement.coefs[j];
    }
  }
  return out;
}

std::string AffineExpr::to_string(
    std::span<const std::string> loop_names) const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t k = 0; k < coefs.size(); ++k) {
    if (coefs[k] == 0) continue;
    const std::string name =
        k < loop_names.size() ? loop_names[k] : "i" + std::to_string(k);
    if (!first) os << (coefs[k] > 0 ? "+" : "");
    if (coefs[k] == 1) {
      os << name;
    } else if (coefs[k] == -1) {
      os << "-" << name;
    } else {
      os << coefs[k] << "*" << name;
    }
    first = false;
  }
  if (constant != 0 || first) {
    if (!first && constant > 0) os << "+";
    os << constant;
  }
  return os.str();
}

AffineExpr affine_const(std::int64_t c) {
  AffineExpr e;
  e.constant = c;
  return e;
}

AffineExpr affine_var(std::size_t loop_index, std::size_t nest_depth,
                      std::int64_t coef, std::int64_t constant) {
  SDPM_REQUIRE(loop_index < nest_depth, "loop index out of range");
  AffineExpr e;
  e.coefs.assign(nest_depth, 0);
  e.coefs[loop_index] = coef;
  e.constant = constant;
  return e;
}

}  // namespace sdpm::ir
