#include "policy/adaptive_tpm.h"

#include <algorithm>

#include "obs/tracer.h"
#include "sim/replay.h"
#include "util/error.h"

namespace sdpm::policy {

void AdaptiveTpmPolicy::attach(sim::DiskUnit& disk) {
  SDPM_REQUIRE(options_.adjust > 1.0, "adjust factor must exceed 1");
  const TimeMs initial = options_.initial_threshold_ms >= 0
                             ? options_.initial_threshold_ms
                             : disk.params().break_even_time();
  threshold_[disk.id()] =
      std::clamp(initial, options_.min_threshold_ms,
                 options_.max_threshold_ms);
}

TimeMs AdaptiveTpmPolicy::threshold_of(int disk_id) const {
  const auto it = threshold_.find(disk_id);
  return it == threshold_.end() ? -1.0 : it->second;
}

void AdaptiveTpmPolicy::set_threshold(int disk_id, TimeMs threshold_ms) {
  threshold_[disk_id] = std::clamp(threshold_ms, options_.min_threshold_ms,
                                   options_.max_threshold_ms);
}

void AdaptiveTpmPolicy::maybe_spin_down(sim::DiskUnit& disk, TimeMs now) {
  if (disk.heading_to_standby()) return;
  TimeMs& threshold = threshold_[disk.id()];
  const TimeMs idle_start = disk.last_completion();
  const TimeMs gap = now - idle_start;
  if (tracer_ != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::kBreakEven;
    ev.disk = disk.id();
    ev.t0 = now;
    ev.t1 = now;
    ev.value = gap;
    ev.value2 = threshold;
    ev.label = gap > threshold ? "spin_down" : "hold";
    tracer_->emit(ev);
  }
  if (gap <= threshold) return;

  disk.spin_down(idle_start + threshold);

  // Judge the decision against the break-even length of the *remaining*
  // idleness (the part spent after the timeout): a wake-up soon after the
  // spin-down means the threshold was too eager.
  const TimeMs standby_span = gap - threshold;
  const TimeMs break_even = disk.params().break_even_time();
  if (standby_span < break_even) {
    threshold = std::min(threshold * options_.adjust,
                         options_.max_threshold_ms);
  } else {
    threshold = std::max(threshold / options_.adjust,
                         options_.min_threshold_ms);
  }
}

void AdaptiveTpmPolicy::before_service(sim::DiskUnit& disk, TimeMs now) {
  maybe_spin_down(disk, now);
}

void AdaptiveTpmPolicy::finalize(sim::DiskUnit& disk, TimeMs end) {
  maybe_spin_down(disk, end);
}


sim::PowerPolicy::ReplayFn AdaptiveTpmPolicy::replay_kernel() const {
  return &sim::replay_run<AdaptiveTpmPolicy>;
}

}  // namespace sdpm::policy
