// Reactive traditional power management (TPM).
//
// Spins a disk down once it has been idle longer than the idleness
// threshold (paper §2); the disk stays in standby until the next request,
// which then pays the full demand spin-up delay.  The threshold defaults to
// the break-even time — the classic 2-competitive fixed-threshold policy of
// Douglis et al.
#pragma once

#include "sim/policy.h"

namespace sdpm::policy {

class TpmPolicy final : public sim::PowerPolicy {
 public:
  /// `threshold_ms < 0` selects the disk's break-even time.
  explicit TpmPolicy(TimeMs threshold_ms = -1.0)
      : threshold_ms_(threshold_ms) {}

  void before_service(sim::DiskUnit& disk, TimeMs now) override;
  void finalize(sim::DiskUnit& disk, TimeMs end) override;

  const char* name() const override { return "TPM"; }
  ReplayFn replay_kernel() const override;

 private:
  TimeMs effective_threshold(const sim::DiskUnit& disk) const;
  // Non-const: examining the gap emits a kBreakEven decision event when a
  // tracer is attached.
  void maybe_spin_down(sim::DiskUnit& disk, TimeMs now);
  /// Ladder disks with per-park idleness timers (SCSI power conditions)
  /// descend the timer chain instead of the single-threshold spin-down.
  /// An explicit constructor threshold opts back into single-threshold.
  bool uses_park_timers(const disk::DiskParameters& params) const;
  void maybe_park_multi(sim::DiskUnit& disk, TimeMs now);

  TimeMs threshold_ms_;
};

}  // namespace sdpm::policy
