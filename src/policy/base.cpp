#include "policy/base.h"

#include "sim/replay.h"

namespace sdpm::policy {

sim::PowerPolicy::ReplayFn BasePolicy::replay_kernel() const {
  return &sim::replay_run<BasePolicy>;
}

}  // namespace sdpm::policy
