// Proactive policy: executes the compiler-inserted power calls.
//
// The runtime side of CMTPM/CMDRPM is deliberately trivial — all the
// intelligence is in the compiler passes (core/) that decided where to
// place spin_down / spin_up / set_RPM calls.  The policy merely translates
// each executed call into the corresponding DiskUnit command.
#pragma once

#include "sim/policy.h"

namespace sdpm::policy {

class ProactivePolicy final : public sim::PowerPolicy {
 public:
  /// `label` distinguishes CMTPM from CMDRPM in reports.
  explicit ProactivePolicy(const char* label = "CM") : label_(label) {}

  void on_power_event(sim::DiskUnit& disk, TimeMs now,
                      const ir::PowerDirective& directive) override;

  const char* name() const override { return label_; }
  ReplayFn replay_kernel() const override;

 private:
  const char* label_;
};

}  // namespace sdpm::policy
