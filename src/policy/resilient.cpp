#include "policy/resilient.h"

#include "util/error.h"

namespace sdpm::policy {

ResilientPolicy::ResilientPolicy(sim::PowerPolicy& inner,
                                 ResilientOptions options)
    : inner_(inner), fallback_(options.fallback), options_(options),
      label_(std::string("R+") + inner.name()) {
  SDPM_REQUIRE(options_.demote_score > 0, "demote_score must be positive");
  SDPM_REQUIRE(options_.stable_ms >= 0, "stable_ms must be non-negative");
  SDPM_REQUIRE(options_.retry_weight >= 0 && options_.miss_weight >= 0,
               "health weights must be non-negative");
}

void ResilientPolicy::attach(sim::DiskUnit& disk) {
  inner_.attach(disk);
  fallback_.attach(disk);
  Health& h = health_[disk.id()];
  h.prev_retries = disk.spin_up_retries();
  h.prev_demand = disk.demand_spin_ups();
}

void ResilientPolicy::observe(sim::DiskUnit& disk, TimeMs now) {
  Health& h = health_[disk.id()];
  const std::int64_t retries = disk.spin_up_retries() - h.prev_retries;
  const std::int64_t demand = disk.demand_spin_ups() - h.prev_demand;
  h.prev_retries = disk.spin_up_retries();
  h.prev_demand = disk.demand_spin_ups();

  double bad = static_cast<double>(retries) * options_.retry_weight;
  // Demand spin-ups are only evidence against the *plan*; under the
  // reactive fallback they are how TPM is supposed to work.
  if (!h.degraded) bad += static_cast<double>(demand) * options_.miss_weight;

  if (bad > 0) {
    // Forgive stale history before adding fresh evidence, so two faults
    // separated by a long healthy span do not compound.
    if (h.last_bad >= 0 && now - h.last_bad >= options_.stable_ms) {
      h.score = 0;
    }
    h.score += bad;
    h.last_bad = now;
    if (!h.degraded && h.score >= options_.demote_score) {
      h.degraded = true;
      h.demoted_at = now;
      // An unreliable disk must not be power-cycled eagerly: seed the
      // fallback at its conservative ceiling and let its adaptive rule
      // earn the threshold back down if spin-downs do pay off.
      fallback_.set_threshold(disk.id(), options_.fallback.max_threshold_ms);
      ++demotions_;
    }
    return;
  }

  if (h.degraded && h.last_bad >= 0 &&
      now - h.last_bad >= options_.stable_ms) {
    h.degraded = false;
    h.score = 0;
    ++promotions_;
  }
}

void ResilientPolicy::before_service(sim::DiskUnit& disk, TimeMs now) {
  observe(disk, now);
  if (health_[disk.id()].degraded) {
    fallback_.before_service(disk, now);
  } else {
    inner_.before_service(disk, now);
  }
}

void ResilientPolicy::after_service(sim::DiskUnit& disk, TimeMs completion,
                                    TimeMs response_ms) {
  // Route to the manager first (with the pre-service health state), then
  // fold in what this service revealed.
  if (health_[disk.id()].degraded) {
    fallback_.after_service(disk, completion, response_ms);
  } else {
    inner_.after_service(disk, completion, response_ms);
  }
  observe(disk, completion);
}

void ResilientPolicy::on_power_event(sim::DiskUnit& disk, TimeMs now,
                                     const ir::PowerDirective& directive) {
  observe(disk, now);
  if (health_[disk.id()].degraded) {
    // The plan lost this disk's trust: its directives are ignored until the
    // disk has been quiet long enough to be re-promoted.
    ++suppressed_directives_;
    return;
  }
  inner_.on_power_event(disk, now, directive);
}

void ResilientPolicy::finalize(sim::DiskUnit& disk, TimeMs end) {
  if (health_[disk.id()].degraded) {
    fallback_.finalize(disk, end);
  } else {
    inner_.finalize(disk, end);
  }
}

bool ResilientPolicy::degraded(int disk_id) const {
  const auto it = health_.find(disk_id);
  return it != health_.end() && it->second.degraded;
}

}  // namespace sdpm::policy
