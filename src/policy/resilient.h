// Resilient policy wrapper: graceful degradation when the plan is wrong.
//
// The compiler-directed proactive schemes assume the array obeys every
// directive and every spin-up succeeds.  When hardware misbehaves — failed
// spin-ups retried with backoff, dropped directives — a compile-time
// schedule keeps paying the same penalties over and over, because nothing
// in the loop observes that reality has drifted from the plan.  This
// wrapper is the runtime counterpart of the paper's Table 3 misprediction
// analysis: it composes any inner policy with an online per-disk health
// monitor and, once a disk has accumulated enough observable fault evidence
// (spin-up retries; unplanned demand spin-ups while under the inner
// policy), *demotes* that disk to a reactive adaptive-TPM fallback seeded
// at its conservative threshold ceiling — the demoted disk effectively
// stops power-cycling, and the fallback's adaptive rule earns the
// threshold back down only if spin-downs pay off.  After a configurable
// fault-free stable
// window the disk is *re-promoted* to the inner policy.  The demote score
// threshold sits well above the promote condition (score reset + minimum
// quiet time), so the wrapper does not flap between managers.
#pragma once

#include <string>
#include <unordered_map>

#include "policy/adaptive_tpm.h"
#include "sim/policy.h"

namespace sdpm::policy {

struct ResilientOptions {
  /// Health-score weight of one observed spin-up retry (each costs a
  /// spin-up attempt + backoff, so retries are weighted as hard evidence).
  double retry_weight = 1.0;
  /// Weight of one demand spin-up observed while the disk is governed by
  /// the inner policy (the plan said the disk would be up; it was not —
  /// either a misprediction or a silently dropped pre-activation).
  double miss_weight = 0.5;
  /// Demote a disk when its score reaches this value.  The default demotes
  /// on the first observed spin-up retry: one failed wake costs ~11 s of
  /// stall on the Ultrastar parameters, which dwarfs any TPM energy win,
  /// and the stable-window re-promotion below forgives a one-off.
  double demote_score = 1.0;
  /// Fault-free time after which a disk's score is forgiven and, if
  /// degraded, the disk is re-promoted to the inner policy.
  TimeMs stable_ms = 120'000.0;
  /// Tuning of the degraded-mode adaptive-TPM fallback.
  AdaptiveTpmOptions fallback{};
};

/// Composes an inner PowerPolicy with per-disk degradation to AdaptiveTpm.
/// The wrapper owns no disks and may be used with any simulator entry
/// point; like all policies it is single-run state.
class ResilientPolicy final : public sim::PowerPolicy {
 public:
  explicit ResilientPolicy(sim::PowerPolicy& inner,
                           ResilientOptions options = {});

  void set_tracer(obs::EventTracer* tracer) override {
    sim::PowerPolicy::set_tracer(tracer);
    inner_.set_tracer(tracer);
    fallback_.set_tracer(tracer);
  }

  void attach(sim::DiskUnit& disk) override;
  void before_service(sim::DiskUnit& disk, TimeMs now) override;
  void after_service(sim::DiskUnit& disk, TimeMs completion,
                     TimeMs response_ms) override;
  void on_power_event(sim::DiskUnit& disk, TimeMs now,
                      const ir::PowerDirective& directive) override;
  void finalize(sim::DiskUnit& disk, TimeMs end) override;

  const char* name() const override { return label_.c_str(); }

  // ---- introspection (tests / reports) -----------------------------------

  /// True while `disk_id` is governed by the adaptive-TPM fallback.
  bool degraded(int disk_id) const;
  /// Demotions and re-promotions across all disks.
  std::int64_t demotions() const { return demotions_; }
  std::int64_t promotions() const { return promotions_; }
  /// Compiler directives swallowed while their disk was degraded.
  std::int64_t suppressed_directives() const {
    return suppressed_directives_;
  }

 private:
  struct Health {
    double score = 0.0;
    bool degraded = false;
    TimeMs last_bad = -1.0;       ///< time of the last observed fault
    TimeMs demoted_at = 0.0;
    std::int64_t prev_retries = 0;
    std::int64_t prev_demand = 0;
  };

  /// Fold the counter deltas since the last observation into the score and
  /// apply the demote / promote transitions at time `now`.
  void observe(sim::DiskUnit& disk, TimeMs now);

  sim::PowerPolicy& inner_;
  AdaptiveTpmPolicy fallback_;
  ResilientOptions options_;
  std::string label_;
  std::unordered_map<int, Health> health_;
  std::int64_t demotions_ = 0;
  std::int64_t promotions_ = 0;
  std::int64_t suppressed_directives_ = 0;
};

}  // namespace sdpm::policy
