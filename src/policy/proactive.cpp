#include "policy/proactive.h"

#include "sim/replay.h"

namespace sdpm::policy {

void ProactivePolicy::on_power_event(sim::DiskUnit& disk, TimeMs now,
                                     const ir::PowerDirective& directive) {
  switch (directive.kind) {
    case ir::PowerDirective::Kind::kSpinDown:
      disk.spin_down(now);
      break;
    case ir::PowerDirective::Kind::kSpinUp:
      disk.spin_up(now);
      break;
    case ir::PowerDirective::Kind::kSetRpm:
      // A mispredicted timeline can ask for a speed change while the disk
      // is (still) heading to standby under a CMTPM-style schedule; wake it
      // first so the command remains meaningful.
      if (disk.heading_to_standby()) {
        disk.spin_up(now);
      }
      disk.set_rpm_level(now, directive.rpm_level);
      break;
  }
}


sim::PowerPolicy::ReplayFn ProactivePolicy::replay_kernel() const {
  return &sim::replay_run<ProactivePolicy>;
}

}  // namespace sdpm::policy
