// Adaptive-threshold TPM (extension).
//
// The paper notes that reactive TPM can choose its idleness threshold "by
// making use of either fixed or adaptive threshold based strategies" (§2)
// but only evaluates the fixed break-even threshold.  This policy
// implements the classic multiplicative-adjustment rule of Douglis et
// al.'s adaptive spin-down work: after each spin-down, if the disk was
// woken again quickly (the gap did not recoup the transition cost) the
// threshold is increased; after a spin-down that paid off, the threshold is
// decreased toward an aggressive floor.  Exposed as an ablation against
// the paper's fixed-threshold TPM.
#pragma once

#include <unordered_map>

#include "sim/policy.h"

namespace sdpm::policy {

struct AdaptiveTpmOptions {
  /// Initial threshold; <0 selects the disk's break-even time.
  TimeMs initial_threshold_ms = -1.0;
  /// Threshold bounds (floor keeps the policy from thrashing on bursty
  /// request runs; ceiling keeps it responsive).
  TimeMs min_threshold_ms = 1'000.0;
  TimeMs max_threshold_ms = 120'000.0;
  /// Multiplicative adjustment factor (> 1).
  double adjust = 2.0;
};

class AdaptiveTpmPolicy final : public sim::PowerPolicy {
 public:
  explicit AdaptiveTpmPolicy(AdaptiveTpmOptions options = {})
      : options_(options) {}

  void attach(sim::DiskUnit& disk) override;
  void before_service(sim::DiskUnit& disk, TimeMs now) override;
  void finalize(sim::DiskUnit& disk, TimeMs end) override;

  const char* name() const override { return "ATPM"; }
  ReplayFn replay_kernel() const override;

  /// Current threshold of `disk_id` (for tests/inspection).
  TimeMs threshold_of(int disk_id) const;

  /// Override `disk_id`'s threshold (clamped to the configured bounds).
  /// Used by ResilientPolicy to start a demoted disk at the conservative
  /// ceiling; the adaptive rule relaxes it again if spin-downs pay off.
  void set_threshold(int disk_id, TimeMs threshold_ms);

 private:
  void maybe_spin_down(sim::DiskUnit& disk, TimeMs now);

  AdaptiveTpmOptions options_;
  std::unordered_map<int, TimeMs> threshold_;
};

}  // namespace sdpm::policy
