#include "policy/oracle.h"

#include <algorithm>

#include "util/error.h"

namespace sdpm::policy {

bool drpm_level_feasible(TimeMs gap_ms, int level,
                         const disk::DiskParameters& params) {
  const int top = params.max_level();
  if (level == top) return true;
  const TimeMs round_trip = params.rpm_transition_time(top, level) +
                            params.rpm_transition_time(level, top);
  return round_trip <= gap_ms;
}

Joules drpm_gap_energy(TimeMs gap_ms, int level,
                       const disk::DiskParameters& params) {
  SDPM_REQUIRE(gap_ms >= 0, "negative gap");
  const int top = params.max_level();
  if (level == top) {
    return joules_from_watt_ms(params.idle_power_at_level(top), gap_ms);
  }
  SDPM_REQUIRE(drpm_level_feasible(gap_ms, level, params),
               "RPM round trip does not fit in the gap");
  const TimeMs down = params.rpm_transition_time(top, level);
  const TimeMs up = params.rpm_transition_time(level, top);
  return params.rpm_transition_energy(top, level) +
         params.rpm_transition_energy(level, top) +
         joules_from_watt_ms(params.idle_power_at_level(level),
                             gap_ms - down - up);
}

int optimal_rpm_level(TimeMs gap_ms, const disk::DiskParameters& params) {
  const int top = params.max_level();
  int best = top;
  Joules best_energy = drpm_gap_energy(gap_ms, top, params);
  for (int level = top - 1; level >= 0; --level) {
    if (!drpm_level_feasible(gap_ms, level, params)) break;
    const Joules e = drpm_gap_energy(gap_ms, level, params);
    if (e < best_energy - 1e-12) {
      best_energy = e;
      best = level;
    }
  }
  return best;
}

bool tpm_gap_beneficial(TimeMs gap_ms, const disk::DiskParameters& params) {
  if (!params.has_ladder()) {
    const TimeMs fit =
        params.tpm.spin_down_time + params.tpm.spin_up_time;
    return gap_ms >= fit && gap_ms > params.break_even_time();
  }
  // Ladder: beneficial when any park's round trip fits and pays off.
  const int top = params.max_level();
  for (int park = 0; park < params.park_count(); ++park) {
    if (!params.park_entry_possible(top, park)) continue;
    const TimeMs fit =
        params.park_entry_time(top, park) + params.wake_time(park);
    if (gap_ms >= fit && gap_ms > params.break_even_time(park)) return true;
  }
  return false;
}

int min_serviceable_level(Bytes request_bytes, TimeMs interarrival_ms,
                          const disk::DiskParameters& params) {
  const int top = params.max_level();
  for (int level = 0; level < top; ++level) {
    if (params.service_time(request_bytes, level, true) <= interarrival_ms) {
      return level;
    }
  }
  return top;
}

Joules tpm_gap_energy(TimeMs gap_ms, const disk::DiskParameters& params) {
  if (!params.has_ladder()) {
    const Joules stay =
        joules_from_watt_ms(params.tpm.idle_power, gap_ms);
    if (!tpm_gap_beneficial(gap_ms, params)) return stay;
    const TimeMs residence =
        gap_ms - params.tpm.spin_down_time - params.tpm.spin_up_time;
    const Joules spin = params.tpm.spin_down_energy +
                        params.tpm.spin_up_energy +
                        joules_from_watt_ms(params.tpm.standby_power,
                                            residence);
    return std::min(stay, spin);
  }
  // Ladder: the oracle picks the cheapest qualifying park for the gap.
  // Each park's cost is the exact legacy expression with that park's entry,
  // wake and resident figures, so a one-park ladder reproduces the legacy
  // result bit for bit.
  const int top = params.max_level();
  Joules best = joules_from_watt_ms(params.idle_power_at_level(top), gap_ms);
  for (int park = 0; park < params.park_count(); ++park) {
    if (!params.park_entry_possible(top, park)) continue;
    const TimeMs down_t = params.park_entry_time(top, park);
    const TimeMs up_t = params.wake_time(park);
    if (!(gap_ms >= down_t + up_t &&
          gap_ms > params.break_even_time(park))) {
      continue;
    }
    const TimeMs residence = gap_ms - down_t - up_t;
    const Joules spin = params.park_entry_energy(top, park) +
                        params.wake_energy(park) +
                        joules_from_watt_ms(params.park_power(park),
                                            residence);
    best = std::min(best, spin);
  }
  return best;
}

namespace {

/// Enumerate the idle gaps of one disk within [0, end] and apply `fn(start,
/// length)` to each; returns the total active-service energy meanwhile.
template <typename GapFn>
Joules for_each_gap(const sim::DiskReport& disk_report, TimeMs end,
                    const disk::DiskParameters& params, GapFn&& fn) {
  const Watts active = params.active_power_at_level(params.max_level());
  Joules active_energy = 0;
  TimeMs cursor = 0;
  for (const sim::BusyPeriod& bp : disk_report.busy_periods) {
    if (bp.start > cursor) fn(cursor, bp.start - cursor);
    active_energy += joules_from_watt_ms(active, bp.completion - bp.start);
    cursor = bp.completion;
  }
  if (end > cursor) fn(cursor, end - cursor);
  return active_energy;
}

}  // namespace

OracleReport ideal_tpm(const sim::SimReport& base,
                       const disk::DiskParameters& params) {
  OracleReport report;
  report.policy_name = "ITPM";
  report.execution_ms = base.execution_ms;
  for (int d = 0; d < base.disk_count(); ++d) {
    const sim::DiskReport& dr = base.disks[static_cast<std::size_t>(d)];
    Joules energy = 0;
    const Joules active = for_each_gap(
        dr, base.execution_ms, params, [&](TimeMs start, TimeMs gap) {
          const bool down = tpm_gap_beneficial(gap, params);
          report.choices.push_back(
              OracleChoice{d, start, gap, down ? -1 : params.max_level()});
          energy += tpm_gap_energy(gap, params);
        });
    energy += active;
    report.disk_energy.push_back(energy);
    report.total_energy += energy;
  }
  return report;
}

OracleReport ideal_drpm(const sim::SimReport& base,
                        const disk::DiskParameters& params) {
  OracleReport report;
  report.policy_name = "IDRPM";
  report.execution_ms = base.execution_ms;
  for (int d = 0; d < base.disk_count(); ++d) {
    const sim::DiskReport& dr = base.disks[static_cast<std::size_t>(d)];
    Joules energy = 0;
    const Joules active = for_each_gap(
        dr, base.execution_ms, params, [&](TimeMs start, TimeMs gap) {
          const int level = optimal_rpm_level(gap, params);
          report.choices.push_back(OracleChoice{d, start, gap, level});
          energy += drpm_gap_energy(gap, level, params);
        });
    energy += active;
    report.disk_energy.push_back(energy);
    report.total_energy += energy;
  }
  return report;
}

}  // namespace sdpm::policy
