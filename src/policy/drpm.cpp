#include "policy/drpm.h"

#include "obs/tracer.h"
#include "sim/replay.h"

namespace sdpm::policy {

void DrpmPolicy::attach(sim::DiskUnit& disk) {
  state_.emplace(disk.id(), DiskState{});
}

void DrpmPolicy::apply_idle_steps(sim::DiskUnit& disk, TimeMs now) const {
  if (idle_step_ms_ <= 0) return;
  const TimeMs idle_start = disk.last_completion();
  // One step per full idle_step_ms of observed idleness, each applied at
  // the instant its threshold fired.
  int level = disk.target_level();
  for (TimeMs t = idle_start + idle_step_ms_; t <= now && level > 0;
       t += idle_step_ms_) {
    --level;
    disk.set_rpm_level(t, level);
  }
}

void DrpmPolicy::before_service(sim::DiskUnit& disk, TimeMs now) {
  apply_idle_steps(disk, now);
}

void DrpmPolicy::finalize(sim::DiskUnit& disk, TimeMs end) {
  apply_idle_steps(disk, end);
}

void DrpmPolicy::after_service(sim::DiskUnit& disk, TimeMs completion,
                               TimeMs response_ms) {
  DiskState& st = state_[disk.id()];
  st.window_sum += response_ms;
  ++st.window_count;
  const int n = disk.params().window_size();
  if (st.window_count < n) return;

  const double mean = st.window_sum / static_cast<double>(st.window_count);
  st.window_sum = 0;
  st.window_count = 0;

  if (st.prev_mean < 0) {
    // First full window: establish the reference, keep the speed.
    st.prev_mean = mean;
    return;
  }

  const double delta = (mean - st.prev_mean) / st.prev_mean;
  st.prev_mean = mean;
  const auto& params = disk.params();
  const int level = disk.target_level();
  const bool raise = delta > params.upper_tolerance();
  const bool lower =
      !raise && delta < params.lower_tolerance() && level > 0;
  if (tracer_ != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::kRpmWindow;
    ev.disk = disk.id();
    ev.t0 = completion;
    ev.t1 = completion;
    ev.value = delta;
    ev.level = raise ? params.max_level() : (lower ? level - 1 : level);
    ev.label = raise ? "raise" : (lower ? "lower" : "hold");
    tracer_->emit(ev);
  }
  if (raise) {
    // Response times degraded beyond tolerance: restore full speed.
    disk.set_rpm_level(completion, params.max_level());
  } else if (lower) {
    // Load is light; drop one RPM step.
    disk.set_rpm_level(completion, level - 1);
  }
}


sim::PowerPolicy::ReplayFn DrpmPolicy::replay_kernel() const {
  return &sim::replay_run<DrpmPolicy>;
}

}  // namespace sdpm::policy
