#include "policy/tpm.h"

#include "obs/tracer.h"
#include "sim/replay.h"

namespace sdpm::policy {

TimeMs TpmPolicy::effective_threshold(const sim::DiskUnit& disk) const {
  return threshold_ms_ >= 0 ? threshold_ms_
                            : disk.params().break_even_time();
}

void TpmPolicy::maybe_park_multi(sim::DiskUnit& disk, TimeMs now) {
  const disk::DiskParameters& params = disk.params();
  const TimeMs idle_start = disk.last_completion();
  // Walk the timer chain shallowest park first (the validator guarantees
  // deeper parks never have shorter timers); each expired timer deepens
  // one rung, applied retroactively at the exact timer instant.
  for (int park = params.park_count() - 1; park >= 0; --park) {
    TimeMs timer = params.park_timer_ms(park);
    if (timer < 0) {
      // Only the deepest park falls back to the break-even threshold.
      if (park != 0) continue;
      timer = params.effective_idleness_threshold();
    }
    const bool fire = now - idle_start > timer;
    if (tracer_ != nullptr) {
      obs::Event ev;
      ev.kind = obs::EventKind::kBreakEven;
      ev.disk = disk.id();
      ev.t0 = now;
      ev.t1 = now;
      ev.value = now - idle_start;
      ev.value2 = timer;
      ev.label = fire ? params.park_name(park).c_str() : "hold";
      tracer_->emit(ev);
    }
    if (!fire) break;  // deeper timers are no shorter; none of them fired
    disk.park_to(idle_start + timer, park);
  }
}

bool TpmPolicy::uses_park_timers(const disk::DiskParameters& params) const {
  if (!params.has_ladder() || threshold_ms_ >= 0) return false;
  for (int park = 0; park < params.park_count(); ++park) {
    if (params.park_timer_ms(park) >= 0) return true;
  }
  return false;
}

void TpmPolicy::maybe_spin_down(sim::DiskUnit& disk, TimeMs now) {
  if (uses_park_timers(disk.params())) {
    maybe_park_multi(disk, now);
    return;
  }
  if (disk.heading_to_standby()) return;
  const TimeMs idle_start = disk.last_completion();
  const TimeMs threshold = effective_threshold(disk);
  const bool fire = now - idle_start > threshold;
  if (tracer_ != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::kBreakEven;
    ev.disk = disk.id();
    ev.t0 = now;
    ev.t1 = now;
    ev.value = now - idle_start;
    ev.value2 = threshold;
    ev.label = fire ? "spin_down" : "hold";
    tracer_->emit(ev);
  }
  if (fire) {
    // The timeout fired during the idle gap; apply it retroactively at the
    // exact timeout instant.
    disk.spin_down(idle_start + threshold);
  }
}

void TpmPolicy::before_service(sim::DiskUnit& disk, TimeMs now) {
  maybe_spin_down(disk, now);
}

void TpmPolicy::finalize(sim::DiskUnit& disk, TimeMs end) {
  maybe_spin_down(disk, end);
}


sim::PowerPolicy::ReplayFn TpmPolicy::replay_kernel() const {
  return &sim::replay_run<TpmPolicy>;
}

}  // namespace sdpm::policy
