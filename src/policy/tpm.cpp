#include "policy/tpm.h"

#include "obs/tracer.h"
#include "sim/replay.h"

namespace sdpm::policy {

TimeMs TpmPolicy::effective_threshold(const sim::DiskUnit& disk) const {
  return threshold_ms_ >= 0 ? threshold_ms_
                            : disk.params().break_even_time();
}

void TpmPolicy::maybe_spin_down(sim::DiskUnit& disk, TimeMs now) {
  if (disk.heading_to_standby()) return;
  const TimeMs idle_start = disk.last_completion();
  const TimeMs threshold = effective_threshold(disk);
  const bool fire = now - idle_start > threshold;
  if (tracer_ != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::kBreakEven;
    ev.disk = disk.id();
    ev.t0 = now;
    ev.t1 = now;
    ev.value = now - idle_start;
    ev.value2 = threshold;
    ev.label = fire ? "spin_down" : "hold";
    tracer_->emit(ev);
  }
  if (fire) {
    // The timeout fired during the idle gap; apply it retroactively at the
    // exact timeout instant.
    disk.spin_down(idle_start + threshold);
  }
}

void TpmPolicy::before_service(sim::DiskUnit& disk, TimeMs now) {
  maybe_spin_down(disk, now);
}

void TpmPolicy::finalize(sim::DiskUnit& disk, TimeMs end) {
  maybe_spin_down(disk, end);
}


sim::PowerPolicy::ReplayFn TpmPolicy::replay_kernel() const {
  return &sim::replay_run<TpmPolicy>;
}

}  // namespace sdpm::policy
