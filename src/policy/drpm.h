// Reactive DRPM (Gurumurthi et al., ISCA'03) window heuristic.
//
// Each disk monitors the average response time of consecutive n-request
// windows (n = DrpmParameters::window_size; the paper uses 30).  At each
// window boundary the controller compares the window's average against the
// previous window's:
//   - if response time degraded by more than the *upper tolerance*, the
//     disk is ramped back to full speed to recover performance;
//   - if the change stayed below the *lower tolerance* (the workload is
//     light), the disk drops one RPM step;
//   - otherwise the speed is held.
// This reproduces the paper's observed dynamics: the controller lowers RPM
// when a disk looks lightly loaded, pays "a slowdown in response times for
// the next n requests", then restores the level — which is exactly why
// reactive DRPM degrades as the stripe size grows (Fig. 6).
#pragma once

#include <unordered_map>

#include "sim/policy.h"
#include "util/stats.h"

namespace sdpm::policy {

class DrpmPolicy final : public sim::PowerPolicy {
 public:
  /// `idle_step_ms`: in addition to the window heuristic, the disk steps
  /// one RPM level down for every `idle_step_ms` of continuous idleness
  /// (the DRPM disk's autonomous idle-time speed reduction).  This is the
  /// mechanism behind paper Fig. 5/6: larger stripes send longer request
  /// runs to one disk and leave the others idle longer, so the reactive
  /// scheme parks them lower — conserving energy but paying response-time
  /// penalties when the run returns.
  explicit DrpmPolicy(TimeMs idle_step_ms = 500.0)
      : idle_step_ms_(idle_step_ms) {}

  void attach(sim::DiskUnit& disk) override;
  void before_service(sim::DiskUnit& disk, TimeMs now) override;
  void after_service(sim::DiskUnit& disk, TimeMs completion,
                     TimeMs response_ms) override;
  void finalize(sim::DiskUnit& disk, TimeMs end) override;

  const char* name() const override { return "DRPM"; }
  ReplayFn replay_kernel() const override;

 private:
  void apply_idle_steps(sim::DiskUnit& disk, TimeMs now) const;

  struct DiskState {
    double window_sum = 0;
    int window_count = 0;
    double prev_mean = -1;  ///< previous window's average response time
  };

  TimeMs idle_step_ms_;
  std::unordered_map<int, DiskState> state_;
};

}  // namespace sdpm::policy
