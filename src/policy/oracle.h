// Ideal (oracle) power management: ITPM and IDRPM.
//
// The paper's ITPM/IDRPM assume "the existence of an oracle predictor for
// detecting idle periods" and act optimally on each one with no performance
// penalty (§4.2) — they are not implementable, and serve as the upper bound
// the compiler-directed schemes are measured against.  Because an oracle by
// definition never perturbs the execution, we evaluate it analytically on
// the Base run's per-disk busy timeline instead of re-simulating: every
// request is serviced exactly as in Base, and each idle gap is billed at
// its energy-optimal treatment.
//
// The per-gap primitives below are shared with the compiler passes in
// core/: CMDRPM calls optimal_rpm_level() with the *estimated* gap length
// while IDRPM uses the *actual* one — the disagreement rate between the two
// is precisely the paper's Table 3.
#pragma once

#include <string>
#include <vector>

#include "disk/parameters.h"
#include "sim/report.h"
#include "util/units.h"

namespace sdpm::policy {

// ---- per-gap primitives ----------------------------------------------------

/// Energy of an idle gap of `gap_ms` spent at RPM `level`: both transitions
/// (billed at the faster level's idle power) plus residence at `level`.
/// For the top level this is simply idle power x gap.  The round trip must
/// fit in the gap.
Joules drpm_gap_energy(TimeMs gap_ms, int level,
                       const disk::DiskParameters& params);

/// True when the round trip max -> level -> max fits within the gap.
bool drpm_level_feasible(TimeMs gap_ms, int level,
                         const disk::DiskParameters& params);

/// The energy-optimal feasible RPM level for an idle gap (top level when
/// the gap is too short to profit from any reduction).  Ties break toward
/// the higher (faster) level.
int optimal_rpm_level(TimeMs gap_ms, const disk::DiskParameters& params);

/// Energy of an idle gap under an optimal spin-down decision (TPM).
Joules tpm_gap_energy(TimeMs gap_ms, const disk::DiskParameters& params);

/// Smallest RPM level at which a sequential request of `request_bytes`
/// completes within the request interarrival time (sustained service
/// without queue growth); the top level when even full speed cannot keep
/// up.  Used by the static analyzer's DRPM-misfit check.
int min_serviceable_level(Bytes request_bytes, TimeMs interarrival_ms,
                          const disk::DiskParameters& params);

/// True when spinning down for this gap saves energy versus idling.
bool tpm_gap_beneficial(TimeMs gap_ms, const disk::DiskParameters& params);

// ---- whole-run oracles -------------------------------------------------

/// Treatment chosen for one idle gap.
struct OracleChoice {
  int disk = 0;
  TimeMs gap_start = 0;
  TimeMs gap_ms = 0;
  /// RPM level for IDRPM; -1 denotes "spun down" (ITPM).  The top level /
  /// "stay up" means no action was worthwhile.
  int level = 0;
};

struct OracleReport {
  std::string policy_name;
  Joules total_energy = 0;
  TimeMs execution_ms = 0;  ///< identical to the Base run by construction
  std::vector<Joules> disk_energy;
  std::vector<OracleChoice> choices;  ///< every idle gap, in time order
};

/// Ideal TPM on the Base run `base`.
OracleReport ideal_tpm(const sim::SimReport& base,
                       const disk::DiskParameters& params);

/// Ideal DRPM on the Base run `base`.
OracleReport ideal_drpm(const sim::SimReport& base,
                        const disk::DiskParameters& params);

}  // namespace sdpm::policy
