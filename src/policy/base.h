// Base policy: no power management (the paper's normalization baseline).
#pragma once

#include "sim/policy.h"

namespace sdpm::policy {

class BasePolicy final : public sim::PowerPolicy {
 public:
  const char* name() const override { return "Base"; }
  ReplayFn replay_kernel() const override;
};

}  // namespace sdpm::policy
