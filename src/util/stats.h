// Streaming statistics accumulators.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace sdpm {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  void reset() { *this = RunningStats{}; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sliding window over the most recent N samples; used by the reactive DRPM
/// controller (n-request response-time windows).
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity) : capacity_(capacity) {}

  void add(double x) {
    if (values_.size() == capacity_) {
      sum_ -= values_[head_];
      values_[head_] = x;
      head_ = (head_ + 1) % capacity_;
    } else {
      values_.push_back(x);
    }
    sum_ += x;
  }

  bool full() const { return values_.size() == capacity_; }
  std::size_t size() const { return values_.size(); }
  std::size_t capacity() const { return capacity_; }
  double mean() const {
    return values_.empty() ? 0.0 : sum_ / static_cast<double>(values_.size());
  }
  void clear() {
    values_.clear();
    head_ = 0;
    sum_ = 0.0;
  }

 private:
  std::size_t capacity_;
  std::vector<double> values_;
  std::size_t head_ = 0;
  double sum_ = 0.0;
};

}  // namespace sdpm
