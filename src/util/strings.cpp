#include "util/strings.h"

#include <cstdio>

namespace sdpm {

std::string str_printf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string fmt_double(double value, int precision) {
  return str_printf("%.*f", precision, value);
}

std::string fmt_bytes(std::int64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes >= (std::int64_t{1} << 30)) {
    return str_printf("%.1f GB", b / (1 << 30));
  }
  if (bytes >= (std::int64_t{1} << 20)) {
    return str_printf("%.1f MB", b / (1 << 20));
  }
  if (bytes >= 1024) {
    return str_printf("%.0f KB", b / 1024);
  }
  return str_printf("%lld B", static_cast<long long>(bytes));
}

std::string fmt_time_ms(double ms) {
  if (ms >= 1000.0) return str_printf("%.2f s", ms / 1000.0);
  if (ms >= 1.0) return str_printf("%.2f ms", ms);
  return str_printf("%.1f us", ms * 1000.0);
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace sdpm
