// CRC32 (IEEE 802.3, polynomial 0xEDB88320) for on-disk record integrity.
//
// Used by the service's write-ahead journal and persistent store to detect
// torn writes and bit rot.  Not cryptographic: it guards against
// corruption, not adversaries — matching the threat model of a local
// state directory.
#pragma once

#include <cstdint>
#include <string_view>

namespace sdpm {

/// CRC32 of `bytes`, with the conventional ~0 pre/post conditioning
/// (crc32("") == 0; matches zlib's crc32).
std::uint32_t crc32(std::string_view bytes);

/// Streaming form: feed `bytes` into a running crc (start from 0).
std::uint32_t crc32_update(std::uint32_t crc, std::string_view bytes);

}  // namespace sdpm
