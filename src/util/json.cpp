#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/error.h"
#include "util/strings.h"

namespace sdpm {
namespace {

const char* type_name(Json::Type type) {
  switch (type) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "bool";
    case Json::Type::kInt: return "int";
    case Json::Type::kDouble: return "double";
    case Json::Type::kString: return "string";
    case Json::Type::kArray: return "array";
    case Json::Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* wanted, Json::Type got) {
  throw Error(str_printf("json: expected %s, got %s", wanted,
                         type_name(got)));
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_printf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Shortest decimal that parses back to exactly `value` — deterministic
/// and free of trailing noise ("0.2" rather than "0.20000000000000001").
std::string shortest_double(double value) {
  if (!std::isfinite(value)) {
    throw Error("json: cannot serialize a non-finite number");
  }
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw Error(str_printf("json parse error at offset %zu: %s", pos_,
                           message.c_str()));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(str_printf("expected '%c'", c));
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Json(nullptr);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (!object.emplace(std::move(key), parse_value()).second) {
        fail("duplicate object key");
      }
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Json(std::move(object));
  }

  Json parse_array() {
    expect('[');
    Json::Array array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Json(std::move(array));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) fail("truncated \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed by any producer in this repo and are rejected).
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    bool integral = true;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      fail("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      const std::size_t frac = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac) fail("invalid number: missing fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const std::size_t exp = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp) fail("invalid number: missing exponent digits");
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long value = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<std::int64_t>(value));
      }
      // Out of int64 range: fall through to double.
    }
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_to(const Json& value, std::string& out);

void dump_to(const Json& value, std::string& out) {
  switch (value.type()) {
    case Json::Type::kNull: out += "null"; break;
    case Json::Type::kBool: out += value.as_bool() ? "true" : "false"; break;
    case Json::Type::kInt: out += std::to_string(value.as_int()); break;
    case Json::Type::kDouble: out += shortest_double(value.as_double()); break;
    case Json::Type::kString: append_escaped(out, value.as_string()); break;
    case Json::Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : value.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_to(item, out);
      }
      out += ']';
      break;
    }
    case Json::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, item] : value.as_object()) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, key);
        out += ':';
        dump_to(item, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

std::int64_t Json::as_int() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) {
    const auto as_integer = static_cast<std::int64_t>(double_);
    if (static_cast<double>(as_integer) == double_) return as_integer;
    throw Error(str_printf("json: %g is not an integer", double_));
  }
  type_error("int", type_);
}

double Json::as_double() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  if (type_ == Type::kDouble) return double_;
  type_error("number", type_);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ != Type::kObject) type_error("object", type_);
  object_[key] = std::move(value);
  return *this;
}

Json& Json::push_back(Json value) {
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
  return *this;
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::kObject && object_.count(key) > 0;
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  const auto it = object_.find(key);
  if (it == object_.end()) {
    throw Error("json: missing field '" + key + "'");
  }
  return it->second;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string Json::dump() const {
  std::string out;
  dump_to(*this, out);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace sdpm
