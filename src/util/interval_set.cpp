#include "util/interval_set.h"

#include <algorithm>
#include <ostream>

#include "util/error.h"

namespace sdpm {

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << "[" << iv.lo << "," << iv.hi << ")";
}

IntervalSet::IntervalSet(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  normalize();
}

void IntervalSet::normalize() {
  std::erase_if(intervals_, [](const Interval& iv) { return iv.empty(); });
  std::sort(intervals_.begin(), intervals_.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> merged;
  merged.reserve(intervals_.size());
  for (const Interval& iv : intervals_) {
    if (!merged.empty() && iv.lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  intervals_ = std::move(merged);
}

void IntervalSet::insert(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return;
  // Find the first interval that could touch [lo, hi).
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), lo,
      [](const Interval& iv, std::int64_t x) { return iv.hi < x; });
  Interval merged{lo, hi};
  auto erase_begin = it;
  while (it != intervals_.end() && it->lo <= merged.hi) {
    merged.lo = std::min(merged.lo, it->lo);
    merged.hi = std::max(merged.hi, it->hi);
    ++it;
  }
  it = intervals_.erase(erase_begin, it);
  intervals_.insert(it, merged);
}

void IntervalSet::merge(const IntervalSet& other) {
  for (const Interval& iv : other.intervals_) insert(iv);
}

bool IntervalSet::contains(std::int64_t x) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), x,
      [](std::int64_t v, const Interval& iv) { return v < iv.lo; });
  if (it == intervals_.begin()) return false;
  --it;
  return it->contains(x);
}

std::int64_t IntervalSet::total_length() const {
  std::int64_t total = 0;
  for (const Interval& iv : intervals_) total += iv.length();
  return total;
}

IntervalSet IntervalSet::gaps_within(std::int64_t lo, std::int64_t hi) const {
  IntervalSet result;
  if (hi <= lo) return result;
  std::int64_t cursor = lo;
  for (const Interval& iv : intervals_) {
    if (iv.hi <= lo) continue;
    if (iv.lo >= hi) break;
    if (iv.lo > cursor) result.insert(cursor, std::min(iv.lo, hi));
    cursor = std::max(cursor, iv.hi);
    if (cursor >= hi) break;
  }
  if (cursor < hi) result.insert(cursor, hi);
  return result;
}

IntervalSet IntervalSet::clipped(std::int64_t lo, std::int64_t hi) const {
  IntervalSet result;
  for (const Interval& iv : intervals_) {
    const std::int64_t l = std::max(iv.lo, lo);
    const std::int64_t h = std::min(iv.hi, hi);
    if (l < h) result.insert(l, h);
  }
  return result;
}

bool IntervalSet::intersects(const IntervalSet& other) const {
  auto a = intervals_.begin();
  auto b = other.intervals_.begin();
  while (a != intervals_.end() && b != other.intervals_.end()) {
    if (a->hi <= b->lo) {
      ++a;
    } else if (b->hi <= a->lo) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& set) {
  os << "{";
  bool first = true;
  for (const Interval& iv : set.intervals()) {
    if (!first) os << ", ";
    first = false;
    os << iv;
  }
  return os << "}";
}

}  // namespace sdpm
