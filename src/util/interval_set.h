// Sorted disjoint half-open interval sets over int64 coordinates.
//
// Used for iteration-space footprints (which iterations touch a disk) and
// block ranges.  Intervals are half-open [lo, hi); adjacent intervals are
// coalesced on insertion, so the representation is canonical and two sets
// covering the same points compare equal.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace sdpm {

/// A half-open interval [lo, hi) of 64-bit coordinates.  Empty when
/// hi <= lo.
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  bool empty() const { return hi <= lo; }
  std::int64_t length() const { return empty() ? 0 : hi - lo; }
  bool contains(std::int64_t x) const { return x >= lo && x < hi; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

/// A canonical set of disjoint, sorted, coalesced half-open intervals.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Construct from arbitrary (possibly overlapping, unsorted) intervals.
  explicit IntervalSet(std::vector<Interval> intervals);

  /// Insert [lo, hi); overlapping/adjacent intervals are merged.
  void insert(std::int64_t lo, std::int64_t hi);
  void insert(const Interval& iv) { insert(iv.lo, iv.hi); }

  /// Union with another set.
  void merge(const IntervalSet& other);

  bool contains(std::int64_t x) const;
  bool empty() const { return intervals_.empty(); }

  /// Total number of covered points.
  std::int64_t total_length() const;

  /// Number of disjoint intervals.
  std::size_t size() const { return intervals_.size(); }

  const std::vector<Interval>& intervals() const { return intervals_; }

  /// The complement of this set within [lo, hi): the "gaps".
  IntervalSet gaps_within(std::int64_t lo, std::int64_t hi) const;

  /// Intersection with [lo, hi).
  IntervalSet clipped(std::int64_t lo, std::int64_t hi) const;

  /// True if this set and `other` share any point.
  bool intersects(const IntervalSet& other) const;

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  void normalize();

  std::vector<Interval> intervals_;  // sorted, disjoint, non-adjacent
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& set);

}  // namespace sdpm
