#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace sdpm {

Histogram::Histogram(double min_value, double growth)
    : min_value_(min_value), growth_(growth) {
  SDPM_REQUIRE(min_value > 0, "min_value must be positive");
  SDPM_REQUIRE(growth > 1.0, "growth must exceed 1");
}

std::size_t Histogram::bucket_of(double value) const {
  if (value <= min_value_) return 0;
  return static_cast<std::size_t>(
             std::floor(std::log(value / min_value_) / std::log(growth_))) +
         1;
}

double Histogram::bucket_lower(std::size_t b) const {
  return b == 0 ? 0.0 : min_value_ * std::pow(growth_, static_cast<double>(b - 1));
}

double Histogram::bucket_upper(std::size_t b) const {
  return min_value_ * std::pow(growth_, static_cast<double>(b));
}

void Histogram::add(double value) {
  SDPM_ASSERT(value >= 0, "histogram values must be non-negative");
  const std::size_t b = bucket_of(value);
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  ++buckets_[b];
  if (count_ == 0) {
    min_seen_ = max_seen_ = value;
  } else {
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  SDPM_REQUIRE(min_value_ == other.min_value_ && growth_ == other.growth_,
               "histogram merge requires identical bucketing");
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t b = 0; b < other.buckets_.size(); ++b) {
    buckets_[b] += other.buckets_[b];
  }
  if (count_ == 0) {
    min_seen_ = other.min_seen_;
    max_seen_ = other.max_seen_;
  } else {
    min_seen_ = std::min(min_seen_, other.min_seen_);
    max_seen_ = std::max(max_seen_, other.max_seen_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_seen_; }
double Histogram::max() const { return count_ == 0 ? 0.0 : max_seen_; }

double Histogram::quantile(double q) const {
  SDPM_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double cumulative = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    const double next = cumulative + static_cast<double>(buckets_[b]);
    if (next >= target) {
      const double frac =
          buckets_[b] == 0
              ? 0.0
              : (target - cumulative) / static_cast<double>(buckets_[b]);
      const double lo = std::max(bucket_lower(b), min_seen_);
      const double hi = std::min(bucket_upper(b), max_seen_);
      return lo + std::clamp(frac, 0.0, 1.0) * std::max(0.0, hi - lo);
    }
    cumulative = next;
  }
  return max_seen_;
}

std::string Histogram::summary() const {
  return str_printf("n=%lld mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
                    static_cast<long long>(count_), mean(), median(), p95(),
                    p99(), max());
}

std::string Histogram::to_string(int max_width) const {
  std::ostringstream os;
  std::int64_t peak = 0;
  for (const std::int64_t c : buckets_) peak = std::max(peak, c);
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    const int width = peak == 0
                          ? 0
                          : static_cast<int>(static_cast<double>(buckets_[b]) *
                                             max_width / static_cast<double>(peak));
    os << str_printf("[%9.3f, %9.3f) %8lld |", bucket_lower(b),
                     bucket_upper(b), static_cast<long long>(buckets_[b]))
       << std::string(static_cast<std::size_t>(std::max(width, 1)), '#')
       << "\n";
  }
  return os.str();
}

}  // namespace sdpm
