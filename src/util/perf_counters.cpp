#include "util/perf_counters.h"

#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace sdpm {

double PerfSnapshot::requests_per_sec() const {
  if (sim_wall_us <= 0) return 0.0;
  return static_cast<double>(requests_simulated) * 1e6 /
         static_cast<double>(sim_wall_us);
}

double PerfSnapshot::trace_cache_hit_rate() const {
  const std::int64_t lookups = trace_cache_hits + trace_cache_misses;
  if (lookups <= 0) return 0.0;
  return static_cast<double>(trace_cache_hits) /
         static_cast<double>(lookups);
}

double PerfSnapshot::wall_ms_per_cell() const {
  if (cells_completed <= 0) return 0.0;
  return static_cast<double>(cell_wall_us) / 1000.0 /
         static_cast<double>(cells_completed);
}

PerfSnapshot PerfSnapshot::since(const PerfSnapshot& earlier) const {
  PerfSnapshot d;
  d.simulations = simulations - earlier.simulations;
  d.requests_simulated = requests_simulated - earlier.requests_simulated;
  d.sim_wall_us = sim_wall_us - earlier.sim_wall_us;
  d.traces_generated = traces_generated - earlier.traces_generated;
  d.requests_streamed = requests_streamed - earlier.requests_streamed;
  d.trace_cache_hits = trace_cache_hits - earlier.trace_cache_hits;
  d.trace_cache_misses = trace_cache_misses - earlier.trace_cache_misses;
  d.timeline_cache_hits = timeline_cache_hits - earlier.timeline_cache_hits;
  d.cells_completed = cells_completed - earlier.cells_completed;
  d.cell_wall_us = cell_wall_us - earlier.cell_wall_us;
  return d;
}

PerfCounters& PerfCounters::global() {
  static PerfCounters counters;
  return counters;
}

void PerfCounters::add_simulation(std::int64_t requests,
                                  std::int64_t wall_us) {
  simulations_.fetch_add(1, kRelaxed);
  requests_simulated_.fetch_add(requests, kRelaxed);
  sim_wall_us_.fetch_add(wall_us, kRelaxed);
}

void PerfCounters::add_cell(std::int64_t wall_us) {
  cells_completed_.fetch_add(1, kRelaxed);
  cell_wall_us_.fetch_add(wall_us, kRelaxed);
}

PerfSnapshot PerfCounters::snapshot() const {
  PerfSnapshot s;
  s.simulations = simulations_.load(kRelaxed);
  s.requests_simulated = requests_simulated_.load(kRelaxed);
  s.sim_wall_us = sim_wall_us_.load(kRelaxed);
  s.traces_generated = traces_generated_.load(kRelaxed);
  s.requests_streamed = requests_streamed_.load(kRelaxed);
  s.trace_cache_hits = trace_cache_hits_.load(kRelaxed);
  s.trace_cache_misses = trace_cache_misses_.load(kRelaxed);
  s.timeline_cache_hits = timeline_cache_hits_.load(kRelaxed);
  s.cells_completed = cells_completed_.load(kRelaxed);
  s.cell_wall_us = cell_wall_us_.load(kRelaxed);
  return s;
}

void PerfCounters::reset_for_testing() {
  simulations_.store(0, kRelaxed);
  requests_simulated_.store(0, kRelaxed);
  sim_wall_us_.store(0, kRelaxed);
  traces_generated_.store(0, kRelaxed);
  requests_streamed_.store(0, kRelaxed);
  trace_cache_hits_.store(0, kRelaxed);
  trace_cache_misses_.store(0, kRelaxed);
  timeline_cache_hits_.store(0, kRelaxed);
  cells_completed_.store(0, kRelaxed);
  cell_wall_us_.store(0, kRelaxed);
}

std::int64_t peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(usage.ru_maxrss) / 1024;  // bytes
#else
  return static_cast<std::int64_t>(usage.ru_maxrss);  // KiB
#endif
#else
  return 0;
#endif
}

std::string perf_json(const PerfSnapshot& snap, double wall_ms,
                      unsigned jobs) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "{\n"
     << "  \"jobs\": " << jobs << ",\n"
     << "  \"wall_ms\": " << wall_ms << ",\n"
     << "  \"simulations\": " << snap.simulations << ",\n"
     << "  \"requests_simulated\": " << snap.requests_simulated << ",\n"
     << "  \"requests_per_sec\": " << snap.requests_per_sec() << ",\n"
     << "  \"traces_generated\": " << snap.traces_generated << ",\n"
     << "  \"requests_streamed\": " << snap.requests_streamed << ",\n"
     << "  \"trace_cache_hits\": " << snap.trace_cache_hits << ",\n"
     << "  \"trace_cache_misses\": " << snap.trace_cache_misses << ",\n"
     << "  \"trace_cache_hit_rate\": " << snap.trace_cache_hit_rate()
     << ",\n"
     << "  \"timeline_cache_hits\": " << snap.timeline_cache_hits << ",\n"
     << "  \"cells_completed\": " << snap.cells_completed << ",\n"
     << "  \"wall_ms_per_cell\": " << snap.wall_ms_per_cell() << ",\n"
     << "  \"peak_rss_kib\": " << peak_rss_kib() << "\n"
     << "}";
  return os.str();
}

}  // namespace sdpm
