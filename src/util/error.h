// Error handling primitives for the sdpm library.
//
// The library reports contract violations and invalid configurations by
// throwing sdpm::Error (a std::runtime_error).  Hot simulation paths use
// SDPM_ASSERT, which compiles to nothing in NDEBUG builds.
#pragma once

#include <stdexcept>
#include <string>

namespace sdpm {

/// Exception type thrown for all recoverable sdpm errors (bad configuration,
/// malformed programs, out-of-range arguments).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const char* cond,
                              const std::string& message);
}  // namespace detail

}  // namespace sdpm

/// Validate a precondition; throws sdpm::Error with source location when the
/// condition is false.  Always active (also in release builds) — use for API
/// boundaries and configuration validation.
#define SDPM_REQUIRE(cond, message)                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::sdpm::detail::throw_error(__FILE__, __LINE__, #cond, (message));   \
    }                                                                      \
  } while (false)

/// Internal invariant check; disabled in NDEBUG builds.  Use inside hot
/// simulation loops.
#ifdef NDEBUG
#define SDPM_ASSERT(cond, message) ((void)0)
#else
#define SDPM_ASSERT(cond, message) SDPM_REQUIRE(cond, message)
#endif
