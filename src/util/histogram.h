// Log-bucketed histogram for latency-like quantities.
//
// Buckets grow geometrically from a configurable resolution, so a single
// histogram covers microsecond service times and ten-second spin-ups with
// bounded memory and ~4% relative quantile error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sdpm {

class Histogram {
 public:
  /// `min_value` sizes the first bucket; values at or below it land in
  /// bucket 0.  `growth` is the geometric bucket ratio (> 1).
  explicit Histogram(double min_value = 1e-3, double growth = 1.25);

  void add(double value);

  /// Fold `other` into this histogram.  Both sides must share the same
  /// bucketing scheme (min_value, growth); merging is then exact — the
  /// merged histogram is indistinguishable from one that saw every sample
  /// directly, so per-thread shards can be combined on snapshot.
  void merge(const Histogram& other);

  std::int64_t count() const { return count_; }
  double min() const;
  double max() const;
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  double min_value() const { return min_value_; }
  double growth() const { return growth_; }

  /// Quantile in [0, 1]; linear interpolation inside the winning bucket.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double p90() const { return quantile(0.90); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }

  /// Render a compact one-line summary ("n=... mean=... p50/p95/p99=...").
  std::string summary() const;

  /// Render an ASCII bar chart of the non-empty buckets.
  std::string to_string(int max_width = 40) const;

 private:
  std::size_t bucket_of(double value) const;
  double bucket_lower(std::size_t b) const;
  double bucket_upper(std::size_t b) const;

  double min_value_;
  double growth_;
  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  double sum_ = 0;
  double min_seen_ = 0;
  double max_seen_ = 0;
};

}  // namespace sdpm
