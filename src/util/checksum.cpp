#include "util/checksum.h"

#include <array>

namespace sdpm {
namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = make_table();
  crc = ~crc;
  for (const char ch : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32(std::string_view bytes) { return crc32_update(0, bytes); }

}  // namespace sdpm
