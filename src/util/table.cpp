#include "util/table.h"

#include <algorithm>
#include <ostream>

#include "util/error.h"

namespace sdpm {

void Table::set_header(std::vector<std::string> header) {
  SDPM_REQUIRE(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  SDPM_REQUIRE(header_.empty() || row.size() == header_.size(),
               "row width must match header width");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << cell << std::string(widths[i] - cell.size(), ' ');
      os << (i + 1 < widths.size() ? " | " : " |");
    }
    os << "\n";
  };
  auto print_rule = [&] {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  print_rule();
  if (!header_.empty()) {
    print_row(header_);
    print_rule();
  }
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ",";
      os << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  table.print(os);
  return os;
}

}  // namespace sdpm
