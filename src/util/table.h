// Console table / CSV rendering for benchmark harness output.
//
// Every bench binary prints the paper's rows through this writer so the
// regenerated tables and figures have a uniform, diffable layout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sdpm {

/// A simple column-aligned text table with an optional title, rendered to a
/// stream, plus CSV export for plotting.
class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  /// Set the header row; must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Append a data row; must match the header width.
  void add_row(std::vector<std::string> row);

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }
  const std::vector<std::string>& header() const { return header_; }

  /// Render as an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Render as CSV (header + rows).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace sdpm
