// Physical units used throughout the library.
//
// Simulated time is carried as double *milliseconds* (the unit of the
// paper's trace format); energies in joules; powers in watts.  Free helper
// functions convert explicitly — there are no implicit unit conversions
// anywhere in the code base.
#pragma once

#include <cstdint>

namespace sdpm {

/// Simulated wall-clock time in milliseconds.
using TimeMs = double;

/// Energy in joules.
using Joules = double;

/// Power in watts.
using Watts = double;

/// Processor cycles (application compute cost).
using Cycles = double;

/// Byte counts / byte offsets on disk and in files.
using Bytes = std::int64_t;

/// Logical block number on a single disk.
using BlockNo = std::int64_t;

constexpr TimeMs ms_from_seconds(double s) { return s * 1e3; }
constexpr double seconds_from_ms(TimeMs ms) { return ms * 1e-3; }
constexpr TimeMs ms_from_us(double us) { return us * 1e-3; }

/// watts * milliseconds -> joules.
constexpr Joules joules_from_watt_ms(Watts w, TimeMs ms) {
  return w * seconds_from_ms(ms);
}

constexpr Bytes kib(std::int64_t n) { return n * 1024; }
constexpr Bytes mib(std::int64_t n) { return n * 1024 * 1024; }
constexpr Bytes gib(std::int64_t n) { return n * 1024 * 1024 * 1024; }

/// Cycles -> milliseconds at a given clock rate (Hz).
constexpr TimeMs ms_from_cycles(Cycles cycles, double clock_hz) {
  return cycles / clock_hz * 1e3;
}

/// Milliseconds -> cycles at a given clock rate (Hz).
constexpr Cycles cycles_from_ms(TimeMs ms, double clock_hz) {
  return ms * 1e-3 * clock_hz;
}

}  // namespace sdpm
