#include "util/error.h"

#include <sstream>

namespace sdpm::detail {

void throw_error(const char* file, int line, const char* cond,
                 const std::string& message) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement failed (" << cond << "): "
     << message;
  throw Error(os.str());
}

}  // namespace sdpm::detail
