// Small string formatting helpers (libstdc++ 12 has no <format>).
#pragma once

#include <cstdarg>
#include <string>
#include <vector>

namespace sdpm {

/// printf-style formatting into std::string.
std::string str_printf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Fixed-precision double, e.g. fmt_double(3.14159, 2) == "3.14".
std::string fmt_double(double value, int precision);

/// Human-readable byte count ("64 KB", "176.7 MB").
std::string fmt_bytes(std::int64_t bytes);

/// Human-readable duration from milliseconds ("3.40 ms", "10.9 s").
std::string fmt_time_ms(double ms);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

}  // namespace sdpm
