// Minimal JSON value, parser and deterministic writer.
//
// One representation serves three consumers that must agree byte for byte:
// the api::JobSpec round-trip (CLI spec files), the service wire protocol
// (length-prefixed JSON frames), and JobSpec canonicalization (the string
// the daemon batches and fingerprints on).  Objects are std::map, so
// dump() is deterministic: keys come out sorted regardless of insertion
// order, and a parse/dump round trip of a canonical document is the
// identity.  Numbers are stored as int64 when the source text (or the
// constructing code) is integral, double otherwise; doubles print with the
// shortest representation that round-trips, so no precision is invented or
// lost.  The parser is strict UTF-8-agnostic RFC 8259: no comments, no
// trailing commas, no NaN/Infinity.  All errors throw sdpm::Error with a
// byte offset.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sdpm {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;  // sorted -> stable dump()

  Json() = default;  // null
  Json(std::nullptr_t) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(int value) : type_(Type::kInt), int_(value) {}
  Json(std::int64_t value) : type_(Type::kInt), int_(value) {}
  Json(double value) : type_(Type::kDouble), double_(value) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(Array value) : type_(Type::kArray), array_(std::move(value)) {}
  Json(Object value) : type_(Type::kObject), object_(std::move(value)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw sdpm::Error on a type mismatch.  as_double
  /// accepts both number representations; as_int additionally accepts a
  /// double with an exact integral value.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Mutable object/array access for building documents.  set() on a
  /// non-object and push_back() on a non-array throw.
  Json& set(const std::string& key, Json value);
  Json& push_back(Json value);

  /// Object field lookup: true when this is an object holding `key`.
  bool contains(const std::string& key) const;
  /// The field, which must exist (throws otherwise, naming the key).
  const Json& at(const std::string& key) const;
  /// The field or nullptr when absent (or when this is not an object).
  const Json* find(const std::string& key) const;

  friend bool operator==(const Json&, const Json&) = default;

  /// Compact deterministic serialization (sorted keys, no whitespace).
  std::string dump() const;

  /// Strict parse; throws sdpm::Error("json parse error at offset N: ...").
  static Json parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace sdpm
