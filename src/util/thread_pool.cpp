#include "util/thread_pool.h"

#include <algorithm>

namespace sdpm {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    all_done_.notify_all();
  }
}

void run_parallel(std::vector<std::function<void()>> tasks, unsigned threads) {
  ThreadPool pool(threads);
  for (auto& task : tasks) pool.submit(std::move(task));
  pool.wait_idle();
}

}  // namespace sdpm
