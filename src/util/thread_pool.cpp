#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace sdpm {

namespace {

std::atomic<unsigned> g_default_jobs{0};

unsigned jobs_from_env() {
  const char* env = std::getenv("SDPM_JOBS");
  if (env == nullptr || env[0] == '\0') return 0;
  const long value = std::strtol(env, nullptr, 10);
  return value > 0 ? static_cast<unsigned>(value) : 0;
}

}  // namespace

unsigned default_jobs() {
  const unsigned forced = g_default_jobs.load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  const unsigned env = jobs_from_env();
  if (env != 0) return env;
  return std::max(1u, std::thread::hardware_concurrency());
}

void set_default_jobs(unsigned jobs) {
  g_default_jobs.store(jobs, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_jobs();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    all_done_.notify_all();
  }
}

void run_parallel(std::vector<std::function<void()>> tasks, unsigned threads) {
  ThreadPool pool(threads);
  for (auto& task : tasks) pool.submit(std::move(task));
  pool.wait_idle();
}

}  // namespace sdpm
