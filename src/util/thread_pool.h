// Minimal work-queue thread pool used by the experiment runner to evaluate
// independent (benchmark, scheme, configuration) cells in parallel.
//
// The discrete-event simulator itself stays single-threaded for determinism;
// parallelism lives strictly at the granularity of independent simulations.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sdpm {

class ThreadPool {
 public:
  /// Create a pool with `threads` workers (defaults to hardware
  /// concurrency, at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task.  Tasks must not throw; wrap exceptions at call sites.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void wait_idle();

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  unsigned in_flight_ = 0;
  bool stopping_ = false;
};

/// Run `tasks` on a transient pool and wait for completion.  Convenience
/// wrapper for fan-out/fan-in experiment sweeps.
void run_parallel(std::vector<std::function<void()>> tasks,
                  unsigned threads = 0);

}  // namespace sdpm
