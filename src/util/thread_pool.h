// Minimal work-queue thread pool used by the experiment runner and the
// sweep engine to evaluate independent (benchmark, scheme, configuration)
// cells in parallel.
//
// The discrete-event simulator itself stays single-threaded for determinism;
// parallelism lives strictly at the granularity of independent simulations.
//
// Exception safety: a task that throws does not take down the worker or
// hang the pool.  The first exception thrown by any task is captured and
// rethrown from the next wait_idle() (and therefore from run_parallel()),
// after all in-flight tasks have drained — a failing sweep cell surfaces as
// an ordinary exception at the fan-in point instead of std::terminate.
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sdpm {

class ThreadPool {
 public:
  /// Create a pool with `threads` workers (defaults to default_jobs(), at
  /// least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task.  Tasks may throw; see wait_idle().
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.  If any task threw,
  /// rethrows the first captured exception (subsequent exceptions are
  /// dropped) and clears it, so the pool remains usable.
  void wait_idle();

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::exception_ptr first_error_;
  unsigned in_flight_ = 0;
  bool stopping_ = false;
};

/// Run `tasks` on a transient pool and wait for completion.  Convenience
/// wrapper for fan-out/fan-in experiment sweeps.  Rethrows the first task
/// exception after the pool drains.
void run_parallel(std::vector<std::function<void()>> tasks,
                  unsigned threads = 0);

/// Worker count used when a ThreadPool (or the sweep engine) is created
/// with `threads == 0`: the last set_default_jobs() value if nonzero, else
/// the SDPM_JOBS environment variable, else std::thread::hardware_concurrency.
unsigned default_jobs();

/// Override default_jobs() process-wide (0 restores automatic detection).
/// Used by the CLI's --jobs flag.
void set_default_jobs(unsigned jobs);

}  // namespace sdpm
