#include "util/rng.h"

#include <cmath>

namespace sdpm {

double SplitMix64::next_gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = next_double(-1.0, 1.0);
    v = next_double(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  has_spare_ = true;
  return u * m;
}

std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) {
  SplitMix64 mixer(parent ^ (0x9e3779b97f4a7c15ULL + stream * 0xbf58476d1ce4e5b9ULL));
  return mixer.next_u64();
}

}  // namespace sdpm
