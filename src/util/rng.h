// Deterministic random number generation.
//
// All stochastic components (cycle-estimation error, workload jitter) draw
// from SplitMix64 streams keyed by explicit seeds so every experiment is
// exactly reproducible, independent of platform or standard library.
#pragma once

#include <cstdint>

namespace sdpm {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG.  Used both directly and
/// to seed derived streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) {
    // Modulo bias is negligible for the small n used in this library.
    return n == 0 ? 0 : next_u64() % n;
  }

  /// Standard normal via Marsaglia polar method.
  double next_gaussian();

 private:
  std::uint64_t state_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Derive a child seed from a parent seed and a stream label; used to give
/// each (benchmark, nest) pair its own deterministic stream.
std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream);

}  // namespace sdpm
