// Process-wide performance counters for the simulation substrate.
//
// Every Simulator run, trace generation, and cache lookup reports into the
// global() instance; the sweep engine and `sdpm_cli bench --json` snapshot
// it to surface a perf trajectory (simulated requests/sec, trace cache hit
// rate, peak RSS, wall time per cell) that CI archives per commit.
// Counters are atomics: producers on pool workers increment concurrently,
// and incrementing once per simulation (not per request) keeps the hot
// path untouched.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace sdpm {

/// Immutable copy of the counters at one instant (plain integers, safe to
/// pass around and diff).
struct PerfSnapshot {
  std::int64_t simulations = 0;        ///< Simulator::run completions
  std::int64_t requests_simulated = 0; ///< requests replayed across all runs
  std::int64_t sim_wall_us = 0;        ///< wall time inside Simulator::run
  std::int64_t traces_generated = 0;   ///< full trace generations (cache misses included)
  std::int64_t requests_streamed = 0;  ///< requests produced by streaming sources
  std::int64_t trace_cache_hits = 0;
  std::int64_t trace_cache_misses = 0;
  std::int64_t timeline_cache_hits = 0;
  std::int64_t cells_completed = 0;    ///< sweep cells finished
  std::int64_t cell_wall_us = 0;       ///< cumulative task time across cells

  /// Simulated requests per second of simulator wall time.
  double requests_per_sec() const;

  /// Trace cache hit rate in [0, 1]; 0 when the cache was never consulted.
  double trace_cache_hit_rate() const;

  /// Mean task wall time per completed sweep cell, in milliseconds.
  double wall_ms_per_cell() const;

  /// Difference (this - earlier), counter by counter.
  PerfSnapshot since(const PerfSnapshot& earlier) const;
};

/// Counter-by-counter difference; `after - before` reads naturally at call
/// sites that bracket a region of interest with two snapshots.
inline PerfSnapshot operator-(const PerfSnapshot& after,
                              const PerfSnapshot& before) {
  return after.since(before);
}

class PerfCounters {
 public:
  static PerfCounters& global();

  void add_simulation(std::int64_t requests, std::int64_t wall_us);
  void add_trace_generated() { traces_generated_.fetch_add(1, kRelaxed); }
  void add_requests_streamed(std::int64_t n) {
    requests_streamed_.fetch_add(n, kRelaxed);
  }
  void add_trace_cache_hit() { trace_cache_hits_.fetch_add(1, kRelaxed); }
  void add_trace_cache_miss() { trace_cache_misses_.fetch_add(1, kRelaxed); }
  void add_timeline_cache_hit() { timeline_cache_hits_.fetch_add(1, kRelaxed); }
  void add_cell(std::int64_t wall_us);

  PerfSnapshot snapshot() const;

  /// Zero every counter.  Test-only: production consumers (the CLI, the
  /// sweep engine) must bracket their region with two snapshot() calls and
  /// diff them — a global reset would race with concurrent producers and
  /// destroy the process-wide perf trajectory.
  void reset_for_testing();

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  std::atomic<std::int64_t> simulations_{0};
  std::atomic<std::int64_t> requests_simulated_{0};
  std::atomic<std::int64_t> sim_wall_us_{0};
  std::atomic<std::int64_t> traces_generated_{0};
  std::atomic<std::int64_t> requests_streamed_{0};
  std::atomic<std::int64_t> trace_cache_hits_{0};
  std::atomic<std::int64_t> trace_cache_misses_{0};
  std::atomic<std::int64_t> timeline_cache_hits_{0};
  std::atomic<std::int64_t> cells_completed_{0};
  std::atomic<std::int64_t> cell_wall_us_{0};
};

/// Peak resident set size of this process in KiB (getrusage; 0 when
/// unavailable on the platform).
std::int64_t peak_rss_kib();

/// Render a snapshot plus sweep-level context as a JSON object (the
/// BENCH_simulator.json schema consumed by CI).
std::string perf_json(const PerfSnapshot& snap, double wall_ms,
                      unsigned jobs);

}  // namespace sdpm
