// Layout table: per-array file layouts plus physical region allocation.
//
// Maps (array, file byte offset) to an absolute location on a disk.  Each
// array's per-disk region is allocated sequentially by a per-disk cursor, so
// distinct arrays never overlap and sequential file access translates to
// sequential disk access.  This is the "disk layout information" the
// compiler consumes (paper §3) — either taken from file-creation parameters
// or supplied externally.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.h"
#include "layout/striping.h"

namespace sdpm::layout {

/// Absolute physical position of a byte: disk id + byte offset from the
/// start of that disk.
struct PhysicalLocation {
  int disk = 0;
  Bytes disk_byte = 0;

  BlockNo sector() const { return disk_byte / kSectorBytes; }
  friend bool operator==(const PhysicalLocation&,
                         const PhysicalLocation&) = default;
};

/// Per-array striping plus physical base addresses on every disk.
class LayoutTable {
 public:
  /// Build a table giving every array in `program` the same striping.
  LayoutTable(const ir::Program& program, const Striping& striping,
              int total_disks);

  /// Build a table with per-array striping (one entry per array, in array
  /// id order).  Used by the layout-aware transformations, which assign
  /// array groups to disjoint disk subsets.
  LayoutTable(const ir::Program& program,
              std::vector<Striping> per_array_striping, int total_disks);

  int total_disks() const { return total_disks_; }
  std::size_t array_count() const { return layouts_.size(); }

  const FileLayout& layout_of(ir::ArrayId array) const;

  /// Absolute physical location of byte `offset` of array `array`.
  PhysicalLocation locate(ir::ArrayId array, Bytes offset) const;

  /// Disks holding any part of `array`.
  std::vector<int> disks_of(ir::ArrayId array) const {
    return layout_of(array).disks_used();
  }

  /// Bytes stored on `disk` across all arrays.
  Bytes bytes_on_disk(int disk) const;

 private:
  void allocate_regions();

  int total_disks_;
  std::vector<FileLayout> layouts_;              // by array id
  std::vector<std::vector<Bytes>> region_base_;  // [array][disk] base byte
};

}  // namespace sdpm::layout
