#include "layout/striping.h"

#include <algorithm>

#include "util/error.h"
#include "util/strings.h"

namespace sdpm::layout {

std::string Striping::to_string() const {
  return str_printf("(start=%d, factor=%d, stripe=%s)", starting_disk,
                    stripe_factor, fmt_bytes(stripe_size).c_str());
}

FileLayout::FileLayout(Striping striping, Bytes file_size, int total_disks)
    : striping_(striping), file_size_(file_size), total_disks_(total_disks) {
  SDPM_REQUIRE(total_disks >= 1, "need at least one disk");
  SDPM_REQUIRE(striping_.stripe_factor >= 1 &&
                   striping_.stripe_factor <= total_disks,
               "stripe factor must be in [1, total disks]");
  SDPM_REQUIRE(striping_.starting_disk >= 0 &&
                   striping_.starting_disk < total_disks,
               "starting disk out of range");
  SDPM_REQUIRE(striping_.stripe_size > 0, "stripe size must be positive");
  SDPM_REQUIRE(file_size_ >= 0, "file size must be non-negative");
}

std::int64_t FileLayout::stripe_count() const {
  return (file_size_ + striping_.stripe_size - 1) / striping_.stripe_size;
}

int FileLayout::disk_of(Bytes offset) const {
  SDPM_ASSERT(offset >= 0 && offset < file_size_, "file offset out of range");
  const std::int64_t stripe = offset / striping_.stripe_size;
  return (striping_.starting_disk +
          static_cast<int>(stripe % striping_.stripe_factor)) %
         total_disks_;
}

DiskLocation FileLayout::locate(Bytes offset) const {
  SDPM_ASSERT(offset >= 0 && offset < file_size_, "file offset out of range");
  const std::int64_t stripe = offset / striping_.stripe_size;
  const Bytes within = offset % striping_.stripe_size;
  DiskLocation loc;
  loc.disk = (striping_.starting_disk +
              static_cast<int>(stripe % striping_.stripe_factor)) %
             total_disks_;
  loc.offset = (stripe / striping_.stripe_factor) * striping_.stripe_size +
               within;
  return loc;
}

std::vector<DiskExtent> FileLayout::extents(Bytes offset,
                                            Bytes length) const {
  SDPM_REQUIRE(offset >= 0 && length >= 0 && offset + length <= file_size_,
               "file range out of bounds");
  std::vector<DiskExtent> out;
  Bytes cursor = offset;
  const Bytes end = offset + length;
  while (cursor < end) {
    const Bytes stripe_end =
        (cursor / striping_.stripe_size + 1) * striping_.stripe_size;
    const Bytes piece = std::min(end, stripe_end) - cursor;
    const DiskLocation loc = locate(cursor);
    // Coalesce with the previous extent when physically contiguous on the
    // same disk.
    if (!out.empty() && out.back().disk == loc.disk &&
        out.back().offset + out.back().length == loc.offset) {
      out.back().length += piece;
    } else {
      out.push_back(DiskExtent{loc.disk, loc.offset, piece});
    }
    cursor += piece;
  }
  return out;
}

Bytes FileLayout::bytes_on_disk(int disk) const {
  Bytes total = 0;
  const std::int64_t stripes = stripe_count();
  for (int k = 0; k < striping_.stripe_factor; ++k) {
    const int d = (striping_.starting_disk + k) % total_disks_;
    if (d != disk) continue;
    // Stripes k, k+factor, k+2*factor, ... land on disk d.
    if (stripes > k) {
      const std::int64_t count =
          (stripes - k + striping_.stripe_factor - 1) /
          striping_.stripe_factor;
      total += count * striping_.stripe_size;
    }
  }
  return total;
}

std::vector<int> FileLayout::disks_used() const {
  std::vector<int> disks;
  const std::int64_t stripes = stripe_count();
  for (int k = 0;
       k < striping_.stripe_factor && static_cast<std::int64_t>(k) < stripes;
       ++k) {
    disks.push_back((striping_.starting_disk + k) % total_disks_);
  }
  return disks;
}

}  // namespace sdpm::layout
