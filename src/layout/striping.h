// Disk striping model.
//
// The paper specifies a file's placement on the disk subsystem with the
// PVFS-style 3-tuple (starting disk, stripe factor, stripe size): the file
// is cut into stripe-size units distributed round-robin over `stripe
// factor` consecutive disks beginning at `starting disk` (paper §3, Table 1
// "Striping Information").  One I/O node == one disk; no nested striping.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace sdpm::layout {

/// Sector size used for trace block numbers (DiskSim convention).
inline constexpr Bytes kSectorBytes = 512;

/// The (starting disk, stripe factor, stripe size) placement tuple.
struct Striping {
  int starting_disk = 0;    ///< first I/O node used ("base" in PVFS)
  int stripe_factor = 8;    ///< number of disks used ("pcount")
  Bytes stripe_size = 64 * 1024;  ///< stripe unit in bytes ("ssize")

  std::string to_string() const;
  friend bool operator==(const Striping&, const Striping&) = default;
};

/// A physical location: byte offset within one disk's region of a file.
struct DiskLocation {
  int disk = 0;
  Bytes offset = 0;  ///< offset within this file's region on that disk
  friend bool operator==(const DiskLocation&, const DiskLocation&) = default;
};

/// A contiguous piece of a file access landing on a single disk.
struct DiskExtent {
  int disk = 0;
  Bytes offset = 0;  ///< offset within the file's region on that disk
  Bytes length = 0;
};

/// Striped placement of one file (one array) over the disk subsystem.
class FileLayout {
 public:
  /// `total_disks` is the number of disks in the subsystem; the stripe
  /// window [starting_disk, starting_disk + stripe_factor) wraps modulo
  /// `total_disks`.
  FileLayout(Striping striping, Bytes file_size, int total_disks);

  const Striping& striping() const { return striping_; }
  Bytes file_size() const { return file_size_; }
  int total_disks() const { return total_disks_; }

  /// The disk holding file byte `offset`.
  int disk_of(Bytes offset) const;

  /// Physical location (disk + per-disk offset) of file byte `offset`.
  DiskLocation locate(Bytes offset) const;

  /// Decompose a file range [offset, offset+length) into single-disk
  /// extents, in file order.
  std::vector<DiskExtent> extents(Bytes offset, Bytes length) const;

  /// Bytes of this file stored on `disk` (for region allocation).
  Bytes bytes_on_disk(int disk) const;

  /// Disks actually used by this file, in stripe order.
  std::vector<int> disks_used() const;

  /// Inverse mapping: file offset of the first byte of stripe `s`.
  Bytes stripe_start(std::int64_t stripe) const {
    return stripe * striping_.stripe_size;
  }

  /// Stripe index containing file byte `offset`.
  std::int64_t stripe_of(Bytes offset) const {
    return offset / striping_.stripe_size;
  }

  std::int64_t stripe_count() const;

 private:
  Striping striping_;
  Bytes file_size_;
  int total_disks_;
};

}  // namespace sdpm::layout
