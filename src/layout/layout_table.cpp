#include "layout/layout_table.h"

#include "util/error.h"

namespace sdpm::layout {

LayoutTable::LayoutTable(const ir::Program& program, const Striping& striping,
                         int total_disks)
    : total_disks_(total_disks) {
  layouts_.reserve(program.arrays.size());
  for (const ir::Array& a : program.arrays) {
    layouts_.emplace_back(striping, a.size_bytes(), total_disks);
  }
  allocate_regions();
}

LayoutTable::LayoutTable(const ir::Program& program,
                         std::vector<Striping> per_array_striping,
                         int total_disks)
    : total_disks_(total_disks) {
  SDPM_REQUIRE(per_array_striping.size() == program.arrays.size(),
               "need exactly one striping per array");
  layouts_.reserve(program.arrays.size());
  for (std::size_t i = 0; i < program.arrays.size(); ++i) {
    layouts_.emplace_back(per_array_striping[i],
                          program.arrays[i].size_bytes(), total_disks);
  }
  allocate_regions();
}

void LayoutTable::allocate_regions() {
  std::vector<Bytes> cursor(static_cast<std::size_t>(total_disks_), 0);
  region_base_.assign(layouts_.size(),
                      std::vector<Bytes>(static_cast<std::size_t>(total_disks_), 0));
  for (std::size_t a = 0; a < layouts_.size(); ++a) {
    for (int d = 0; d < total_disks_; ++d) {
      const Bytes used = layouts_[a].bytes_on_disk(d);
      region_base_[a][static_cast<std::size_t>(d)] =
          cursor[static_cast<std::size_t>(d)];
      cursor[static_cast<std::size_t>(d)] += used;
    }
  }
}

const FileLayout& LayoutTable::layout_of(ir::ArrayId array) const {
  SDPM_REQUIRE(array >= 0 && array < static_cast<ir::ArrayId>(layouts_.size()),
               "array id out of range in layout table");
  return layouts_[static_cast<std::size_t>(array)];
}

PhysicalLocation LayoutTable::locate(ir::ArrayId array, Bytes offset) const {
  const DiskLocation loc = layout_of(array).locate(offset);
  PhysicalLocation phys;
  phys.disk = loc.disk;
  phys.disk_byte = region_base_[static_cast<std::size_t>(array)]
                               [static_cast<std::size_t>(loc.disk)] +
                   loc.offset;
  return phys;
}

Bytes LayoutTable::bytes_on_disk(int disk) const {
  SDPM_REQUIRE(disk >= 0 && disk < total_disks_, "disk out of range");
  Bytes total = 0;
  for (const FileLayout& layout : layouts_) {
    total += layout.bytes_on_disk(disk);
  }
  return total;
}

}  // namespace sdpm::layout
