#include "service/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/protocol.h"
#include "util/error.h"
#include "util/strings.h"

namespace sdpm::service {
namespace {

bool connect_retryable(int err) {
  // The daemon is down or still replaying its journal: the socket file is
  // missing or nobody is listening yet.  Anything else (permissions, path
  // too long surfaced as EINVAL, ...) is permanent.
  return err == ECONNREFUSED || err == ENOENT;
}

}  // namespace

Client::Client(const std::string& socket_path, ClientOptions options)
    : socket_path_(socket_path),
      options_(options),
      jitter_(options.jitter_seed) {
  SDPM_REQUIRE(options_.connect_attempts > 0,
               "connect_attempts must be positive");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    throw Error(str_printf("socket path too long: %s", socket_path_.c_str()));
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  int err = 0;
  for (int attempt = 0; attempt < options_.connect_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms(attempt - 1)));
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      throw Error(str_printf("socket() failed: %s", std::strerror(errno)));
    }
    int rc;
    do {
      rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) return;
    err = errno;
    ::close(fd_);
    fd_ = -1;
    if (!connect_retryable(err)) break;
  }
  throw Error(str_printf("cannot connect to sdpm_serviced at %s: %s",
                         socket_path_.c_str(), std::strerror(err)));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

double Client::backoff_ms(int attempt) {
  const double base =
      std::min(options_.backoff_base_ms * std::pow(2.0, attempt),
               options_.backoff_cap_ms);
  // Up to +50% decorrelation jitter, from a seeded stream — a fleet of
  // retrying clients spreads out without any wall-clock entropy.
  return base * (1.0 + 0.5 * jitter_.next_double());
}

Json Client::request(const Json& message) {
  write_message(fd_, message);
  Json response;
  if (!read_message(fd_, response)) {
    throw Error("daemon closed the connection before responding");
  }
  return response;
}

Json Client::expect_ok(Json response) const {
  if (!response.contains("ok") || !response.at("ok").as_bool()) {
    const std::string error = response.contains("error")
                                  ? response.at("error").as_string()
                                  : std::string("unspecified daemon error");
    if (response.contains("code")) {
      throw Error(str_printf("daemon error [%s]: %s",
                             response.at("code").as_string().c_str(),
                             error.c_str()));
    }
    throw Error(str_printf("daemon error: %s", error.c_str()));
  }
  return response;
}

Json Client::ping() {
  Json message = Json::object();
  message.set("op", "ping");
  return expect_ok(request(message));
}

std::int64_t Client::try_submit(const api::JobSpec& spec, std::string& error,
                                bool& retryable, const TraceContext& trace) {
  Json message = Json::object();
  message.set("op", "submit").set("spec", spec.to_json());
  if (trace.active()) {
    message.set("trace_id", trace_hex(trace.trace_id));
    if (trace.span_id != 0) message.set("span_id", trace_hex(trace.span_id));
  }
  const Json response = request(message);
  if (response.contains("ok") && response.at("ok").as_bool()) {
    error.clear();
    retryable = false;
    return response.at("id").as_int();
  }
  error = response.contains("error") ? response.at("error").as_string()
                                     : std::string("unspecified daemon error");
  retryable =
      response.contains("retryable") && response.at("retryable").as_bool();
  return 0;
}

std::int64_t Client::submit(const api::JobSpec& spec, int max_attempts,
                            const TraceContext& trace) {
  std::string error;
  bool retryable = false;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const std::int64_t id = try_submit(spec, error, retryable, trace);
    if (id > 0) return id;
    if (!retryable) {
      throw Error(str_printf("submit rejected: %s", error.c_str()));
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms(attempt)));
  }
  throw Error(str_printf("submit still rejected after %d attempts: %s",
                         max_attempts, error.c_str()));
}

Json Client::status(std::int64_t id) {
  Json message = Json::object();
  message.set("op", "status").set("id", id);
  return expect_ok(request(message)).at("job");
}

Json Client::result(std::int64_t id, bool wait) {
  Json message = Json::object();
  message.set("op", "result").set("id", id).set("wait", wait);
  return expect_ok(request(message)).at("job");
}

void Client::cancel(std::int64_t id) {
  Json message = Json::object();
  message.set("op", "cancel").set("id", id);
  expect_ok(request(message));
}

Json Client::stats() {
  Json message = Json::object();
  message.set("op", "stats");
  return expect_ok(request(message));
}

Json Client::telemetry(bool prometheus) {
  Json message = Json::object();
  message.set("op", "telemetry");
  if (prometheus) message.set("prometheus", true);
  return expect_ok(request(message));
}

void Client::drain() {
  Json message = Json::object();
  message.set("op", "drain");
  expect_ok(request(message));
}

void Client::shutdown() {
  Json message = Json::object();
  message.set("op", "shutdown");
  expect_ok(request(message));
}

}  // namespace sdpm::service
