#include "service/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/protocol.h"
#include "util/error.h"
#include "util/strings.h"

namespace sdpm::service {

Client::Client(const std::string& socket_path) : socket_path_(socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    throw Error(str_printf("socket path too long: %s", socket_path_.c_str()));
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw Error(str_printf("socket() failed: %s", std::strerror(errno)));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error(str_printf("cannot connect to sdpm_serviced at %s: %s",
                           socket_path_.c_str(), std::strerror(err)));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Json Client::request(const Json& message) {
  write_message(fd_, message);
  Json response;
  if (!read_message(fd_, response)) {
    throw Error("daemon closed the connection before responding");
  }
  return response;
}

Json Client::expect_ok(Json response) const {
  if (!response.contains("ok") || !response.at("ok").as_bool()) {
    const std::string error = response.contains("error")
                                  ? response.at("error").as_string()
                                  : std::string("unspecified daemon error");
    throw Error(str_printf("daemon error: %s", error.c_str()));
  }
  return response;
}

Json Client::ping() {
  Json message = Json::object();
  message.set("op", "ping");
  return expect_ok(request(message));
}

std::int64_t Client::try_submit(const api::JobSpec& spec, std::string& error,
                                bool& retryable) {
  Json message = Json::object();
  message.set("op", "submit").set("spec", spec.to_json());
  const Json response = request(message);
  if (response.contains("ok") && response.at("ok").as_bool()) {
    error.clear();
    retryable = false;
    return response.at("id").as_int();
  }
  error = response.contains("error") ? response.at("error").as_string()
                                     : std::string("unspecified daemon error");
  retryable =
      response.contains("retryable") && response.at("retryable").as_bool();
  return 0;
}

std::int64_t Client::submit(const api::JobSpec& spec, int max_attempts) {
  std::string error;
  bool retryable = false;
  auto backoff = std::chrono::milliseconds(5);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const std::int64_t id = try_submit(spec, error, retryable);
    if (id > 0) return id;
    if (!retryable) {
      throw Error(str_printf("submit rejected: %s", error.c_str()));
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(500));
  }
  throw Error(str_printf("submit still rejected after %d attempts: %s",
                         max_attempts, error.c_str()));
}

Json Client::status(std::int64_t id) {
  Json message = Json::object();
  message.set("op", "status").set("id", id);
  return expect_ok(request(message)).at("job");
}

Json Client::result(std::int64_t id, bool wait) {
  Json message = Json::object();
  message.set("op", "result").set("id", id).set("wait", wait);
  return expect_ok(request(message)).at("job");
}

void Client::cancel(std::int64_t id) {
  Json message = Json::object();
  message.set("op", "cancel").set("id", id);
  expect_ok(request(message));
}

Json Client::stats() {
  Json message = Json::object();
  message.set("op", "stats");
  return expect_ok(request(message));
}

void Client::drain() {
  Json message = Json::object();
  message.set("op", "drain");
  expect_ok(request(message));
}

void Client::shutdown() {
  Json message = Json::object();
  message.set("op", "shutdown");
  expect_ok(request(message));
}

}  // namespace sdpm::service
