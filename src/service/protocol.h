// Wire protocol of sdpm_serviced: length-prefixed JSON frames over a Unix
// domain stream socket.
//
// FRAME SPEC (version 1):
//   +----------------+---------------------+
//   | 4 bytes        | N bytes             |
//   | N, big-endian  | UTF-8 JSON document |
//   +----------------+---------------------+
// N is the payload length in bytes, unsigned, big-endian, and must be
// <= kMaxFrameBytes (a malformed or hostile prefix tears the connection
// down instead of allocating gigabytes).  One request frame yields exactly
// one response frame; requests on one connection are processed in order.
//
// REQUESTS are JSON objects with an "op" field:
//   {"op":"ping"}
//   {"op":"submit","spec":{...JobSpec...}}
//   {"op":"status","id":7}
//   {"op":"result","id":7,"wait":true}      wait: block until terminal
//   {"op":"cancel","id":7}
//   {"op":"stats"}
//   {"op":"drain"}                          stop admitting, finish queued
//   {"op":"shutdown"}                       drain, then exit the daemon
//
// RESPONSES always carry "ok":
//   {"ok":true, ...op-specific fields...}
//   {"ok":false,"error":"message","retryable":true|false}
// "retryable":true marks backpressure (admission queue full): the job was
// NOT admitted and the client should resubmit after a backoff.  Every
// other error is permanent for that request.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.h"

namespace sdpm::service {

inline constexpr int kProtocolVersion = 1;

/// Upper bound on one frame's payload; larger prefixes are a protocol
/// error.  16 MB fits any result batch the daemon produces by orders of
/// magnitude.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Read one frame into `payload`.  Returns false on clean EOF at a frame
/// boundary; throws sdpm::Error on a truncated frame, oversized prefix, or
/// socket error.
bool read_frame(int fd, std::string& payload);

/// Write one frame; throws sdpm::Error on a socket error (EPIPE included:
/// callers treat a vanished peer as a dropped connection, not a crash).
void write_frame(int fd, std::string_view payload);

/// Convenience: frame + parse / dump + frame for JSON documents.
bool read_message(int fd, Json& message);
void write_message(int fd, const Json& message);

/// Response envelope helpers.
Json ok_response();
Json error_response(const std::string& message, bool retryable = false);

}  // namespace sdpm::service
