// Wire protocol of sdpm_serviced: length-prefixed JSON frames over a Unix
// domain stream socket.
//
// FRAME SPEC (version 1):
//   +----------------+---------------------+
//   | 4 bytes        | N bytes             |
//   | N, big-endian  | UTF-8 JSON document |
//   +----------------+---------------------+
// N is the payload length in bytes, unsigned, big-endian, and must be
// <= kMaxFrameBytes.  The daemon answers an oversized prefix with a
// structured {"ok":false,"code":"FRAME_TOO_LARGE"} frame — discarding the
// payload to stay aligned when that is affordable, closing the connection
// when it is not (see read_frame_limited); it never allocates gigabytes
// for a hostile prefix.  One request frame yields exactly one response
// frame; requests on one connection are processed in order.
//
// REQUESTS are JSON objects with an "op" field:
//   {"op":"ping"}
//   {"op":"submit","spec":{...JobSpec...}}
//     optional "trace_id"/"span_id": 16 lowercase hex digits each, a
//     client-generated trace context propagated into the daemon's event
//     tracer so one Chrome trace stitches the service lifecycle to the
//     job's simulated-time disk tracks.
//   {"op":"analyze","spec":{...JobSpec...}}  synchronous static analysis
//     (no job queued): optional "mode" ("CMTPM"/"CMDRPM", default
//     CMDRPM), "mutate" (seeded bug class) and "fix" (apply SDPM-F###
//     fix-its to a fixed point).  Responds with "report" (the v2
//     analyzer JSON: diagnostics, fix-its, certified energy bounds) and,
//     with fix, a "repair" summary {rounds, fixits_applied,
//     fixits_skipped, converged, applied}.
//   {"op":"status","id":7}
//   {"op":"result","id":7,"wait":true}      wait: block until terminal
//   {"op":"cancel","id":7}
//   {"op":"stats"}
//   {"op":"telemetry"}                      per-stage latency histograms,
//     rolling 1s/10s/60s rates and per-client aggregates; with
//     "prometheus":true the response adds a "text" field holding the
//     Prometheus exposition rendering.
//   {"op":"drain"}                          stop admitting, finish queued
//   {"op":"shutdown"}                       drain, then exit the daemon
//
// RESPONSES always carry "ok":
//   {"ok":true, ...op-specific fields...}
//   {"ok":false,"error":"message","retryable":true|false}
// "retryable":true marks backpressure (admission queue full): the job was
// NOT admitted and the client should resubmit after a backoff.  Every
// other error is permanent for that request.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.h"

namespace sdpm::service {

inline constexpr int kProtocolVersion = 1;

/// Upper bound on one frame's payload; larger prefixes are a protocol
/// error.  16 MB fits any result batch the daemon produces by orders of
/// magnitude.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Oversized frames up to this many bytes are read and DISCARDED so the
/// stream stays aligned and the connection can carry a structured error
/// frame and keep serving.  Beyond it (including "negative" prefixes with
/// the high bit set) the stream cannot be resynchronized at an acceptable
/// cost: the caller sends the error frame and closes.
inline constexpr std::uint32_t kMaxDiscardBytes = 64u << 20;

/// Outcome of a bounded frame read.
struct FrameRead {
  enum class Status {
    kFrame,     ///< payload holds one complete frame
    kEof,       ///< clean close at a frame boundary
    kTooLarge,  ///< prefix exceeded `max_bytes`; payload untouched
  };
  Status status = Status::kFrame;
  std::uint32_t length = 0;  ///< the announced length (kTooLarge)
  /// kTooLarge only: the oversized payload was consumed and the stream is
  /// aligned at the next frame; false means the connection must close.
  bool resynced = false;
};

/// Read one frame of at most `max_bytes` payload into `payload`.  Never
/// throws for oversized prefixes — those come back as kTooLarge so the
/// daemon can answer with a structured error frame instead of tearing the
/// connection down.  Still throws sdpm::Error on a truncated frame or
/// socket error (there is nothing left to answer on).
FrameRead read_frame_limited(int fd, std::string& payload,
                             std::uint32_t max_bytes);

/// Read one frame into `payload`.  Returns false on clean EOF at a frame
/// boundary; throws sdpm::Error on a truncated frame, oversized prefix, or
/// socket error.  (The strict client-side flavor of read_frame_limited.)
bool read_frame(int fd, std::string& payload);

/// Write one frame; throws sdpm::Error on a socket error (EPIPE included:
/// callers treat a vanished peer as a dropped connection, not a crash).
void write_frame(int fd, std::string_view payload);

/// Convenience: frame + parse / dump + frame for JSON documents.
bool read_message(int fd, Json& message);
void write_message(int fd, const Json& message);

/// Response envelope helpers.  `code` (when non-empty) is a stable
/// machine-readable failure code (api::ErrorCode wire string) carried as
/// the "code" field next to the human-readable "error".
Json ok_response();
Json error_response(const std::string& message, bool retryable = false,
                    const std::string& code = "");

/// Client-generated trace correlation carried on submit.  trace_id == 0
/// means untraced (the fields are omitted from the wire).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool active() const { return trace_id != 0; }
};

/// 16 lowercase hex digits, the wire spelling of trace/span ids.
std::string trace_hex(std::uint64_t id);
/// Parse a 1..16-digit hex id; 0 on malformed input (0 is "untraced", so
/// a bad id degrades to an untraced submit rather than an error).
std::uint64_t parse_trace_hex(std::string_view hex);

}  // namespace sdpm::service
