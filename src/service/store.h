// Persistent content-addressed store: the durable layer under the
// in-memory TraceCache/result path of sdpm_serviced.
//
// Entries are keyed by a 128-bit content fingerprint (the same
// SplitMix64-lane mixing discipline as experiments::TraceKey, applied to a
// job's canonical JSON) and live as individual files under
// `<dir>/objects/<32-hex>.bin`.  Three durability properties the store
// tests pin down:
//
//   ATOMICITY    a put writes to a temp file in the same directory and
//                rename(2)s it into place, so a reader (or a crash) never
//                observes a half-written entry.
//   INTEGRITY    every entry carries a magic header, a CRC32 of the
//                payload and the payload length; a get that fails any
//                check QUARANTINES the file (renamed to `<key>.corrupt`),
//                counts store.corrupt_evictions, and reports a miss — a
//                flipped bit costs a recomputation, never a wrong result.
//   BOUNDEDNESS  total payload bytes are capped; puts evict
//                least-recently-used entries (recency is rebuilt from file
//                mtimes at open and tracked in memory afterwards).
//
// All operations are thread-safe.  Lookups report into the metrics
// registry as store.{hits,misses,corrupt_evictions,evictions} plus
// store.{entries,bytes} gauges.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace sdpm::service {

class ServiceTelemetry;

/// 128-bit content key, printed as 32 lowercase hex digits.
struct StoreKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const StoreKey&, const StoreKey&) = default;
  friend auto operator<=>(const StoreKey&, const StoreKey&) = default;

  std::string hex() const;
  /// Parse 32 hex digits; empty optional on malformed input.
  static std::optional<StoreKey> from_hex(std::string_view hex);
};

/// Fingerprint arbitrary bytes (a JobSpec's canonical JSON) into a
/// StoreKey using the same two-lane SplitMix64 mixer as the trace cache's
/// TraceKey, so the service and the trace layer share one keying
/// discipline.
StoreKey fingerprint_bytes(std::string_view bytes);

struct StoreOptions {
  std::string directory;                       ///< created if missing
  std::int64_t max_bytes = 256ll << 20;        ///< payload-byte budget
  /// When set (not owned), get/put self-time into the store_get /
  /// store_put latency stages.
  ServiceTelemetry* telemetry = nullptr;
};

struct StoreStats {
  std::size_t entries = 0;
  std::int64_t bytes = 0;        ///< payload bytes currently stored
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t corrupt_evictions = 0;
};

class PersistentStore {
 public:
  /// Open (creating directories as needed) and index every existing
  /// entry.  Malformed filenames are ignored; stale temp files from a
  /// crashed writer are removed.  Throws sdpm::Error when the directory
  /// cannot be created or scanned.
  explicit PersistentStore(StoreOptions options);

  PersistentStore(const PersistentStore&) = delete;
  PersistentStore& operator=(const PersistentStore&) = delete;

  /// The payload stored under `key`, or nullopt on a miss.  A corrupt
  /// entry is quarantined and reported as a miss.
  std::optional<std::string> get(const StoreKey& key);

  /// Store `value` under `key` (no-op when the key is already present —
  /// content-addressed entries never change).  Values larger than the
  /// whole budget are skipped.  Evicts LRU entries to stay within budget.
  void put(const StoreKey& key, std::string_view value);

  bool contains(const StoreKey& key) const;

  StoreStats stats() const;
  const std::string& directory() const { return options_.directory; }

 private:
  struct Entry {
    StoreKey key;
    std::int64_t bytes = 0;
  };

  std::string object_path(const StoreKey& key) const;
  void quarantine_locked(const StoreKey& key);
  void erase_index_locked(const StoreKey& key);
  void evict_to_budget_locked();
  void publish_gauges_locked() const;

  StoreOptions options_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<StoreKey, std::list<Entry>::iterator> index_;
  std::int64_t bytes_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t corrupt_ = 0;
  std::uint64_t temp_seq_ = 0;
};

}  // namespace sdpm::service
