#include "service/queue.h"

#include "util/error.h"
#include "util/strings.h"

namespace sdpm::service {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

bool is_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

AdmissionQueue::AdmissionQueue(std::size_t capacity) : capacity_(capacity) {
  SDPM_REQUIRE(capacity_ > 0, "admission queue capacity must be positive");
}

std::int64_t AdmissionQueue::submit(std::uint64_t session, api::JobSpec spec,
                                    std::string& error, bool& retryable,
                                    double now_ms, std::uint64_t trace_id,
                                    std::uint64_t span_id) {
  std::lock_guard lock(mutex_);
  if (draining_ || stopped_) {
    error = "daemon is draining; admission is closed";
    retryable = false;
    ++rejected_;
    return 0;
  }
  if (queued_ >= capacity_) {
    error = str_printf("admission queue full (%zu jobs); retry later",
                       capacity_);
    retryable = true;
    ++rejected_;
    return 0;
  }
  auto job = std::make_shared<Job>();
  job->id = next_id_++;
  job->session = session;
  job->spec = std::move(spec);
  job->label = job->spec.display_label();
  job->admit_ms = now_ms;
  job->trace_id = trace_id;
  job->span_id = span_id;
  jobs_.emplace(job->id, job);
  pending_[session].push_back(job);
  ++queued_;
  ++submitted_;
  work_cv_.notify_all();
  return job->id;
}

std::vector<std::shared_ptr<Job>> AdmissionQueue::pop_batch(std::size_t max,
                                                            double now_ms) {
  std::unique_lock lock(mutex_);
  work_cv_.wait(lock, [this] {
    if (stopped_) return true;
    if (paused_) return false;
    if (queued_ > 0) return true;
    return draining_;  // nothing queued while draining: dispatcher exits
  });
  std::vector<std::shared_ptr<Job>> batch;
  if (stopped_ || queued_ == 0) return batch;

  // Round-robin: walk sessions in id order starting strictly after the
  // session the previous rotation ended at, taking one job per session per
  // rotation until `max` jobs are in hand or the queue is empty.
  while (batch.size() < max && queued_ > 0) {
    auto it = pending_.upper_bound(rr_cursor_);
    if (it == pending_.end()) it = pending_.begin();
    rr_cursor_ = it->first;
    std::deque<std::shared_ptr<Job>>& line = it->second;
    std::shared_ptr<Job> job = line.front();
    line.pop_front();
    if (line.empty()) pending_.erase(it);
    --queued_;
    ++running_;
    job->state = JobState::kRunning;
    job->dispatch_seq = next_dispatch_seq_++;
    job->started_ms = now_ms;
    ++job->runs;
    batch.push_back(std::move(job));
  }
  return batch;
}

bool AdmissionQueue::complete(const std::shared_ptr<Job>& job,
                              api::JobResult result, double wall_ms) {
  std::lock_guard lock(mutex_);
  SDPM_REQUIRE(job->state != JobState::kQueued,
               "complete() on a job that was never dispatched");
  // The watchdog (or a concurrent cancel during recovery) may have beaten
  // a slow worker to the terminal transition; the late result is dropped.
  if (is_terminal(job->state)) return false;
  job->state = JobState::kDone;
  job->result = std::move(result);
  job->wall_ms = wall_ms;
  --running_;
  ++completed_;
  done_cv_.notify_all();
  work_cv_.notify_all();  // drained_locked() may have become true
  return true;
}

bool AdmissionQueue::fail(const std::shared_ptr<Job>& job, std::string error,
                          double wall_ms, std::string error_code) {
  std::lock_guard lock(mutex_);
  SDPM_REQUIRE(job->state != JobState::kQueued,
               "fail() on a job that was never dispatched");
  if (is_terminal(job->state)) return false;
  job->state = JobState::kFailed;
  job->error = std::move(error);
  job->error_code = std::move(error_code);
  job->wall_ms = wall_ms;
  --running_;
  ++failed_;
  done_cv_.notify_all();
  work_cv_.notify_all();
  return true;
}

std::vector<std::shared_ptr<Job>> AdmissionQueue::expire_overdue(
    double now_ms, double timeout_ms) {
  std::lock_guard lock(mutex_);
  std::vector<std::shared_ptr<Job>> expired;
  for (auto& [id, job] : jobs_) {
    if (job->state != JobState::kRunning) continue;
    if (job->started_ms < 0) continue;  // dispatcher opted out of deadlines
    const double elapsed = now_ms - job->started_ms;
    if (elapsed <= timeout_ms) continue;
    job->state = JobState::kFailed;
    job->error = str_printf("job exceeded its %.0f ms deadline (ran %.0f ms)",
                            timeout_ms, elapsed);
    job->error_code = "JOB_TIMEOUT";
    job->wall_ms = elapsed;
    --running_;
    ++failed_;
    ++timed_out_;
    expired.push_back(job);
  }
  if (!expired.empty()) {
    done_cv_.notify_all();
    work_cv_.notify_all();
  }
  return expired;
}

std::shared_ptr<Job> AdmissionQueue::restore_locked(std::int64_t id,
                                                    std::uint64_t session,
                                                    api::JobSpec spec) {
  SDPM_REQUIRE(id > 0, "restored job ids must be positive");
  SDPM_REQUIRE(jobs_.find(id) == jobs_.end(),
               "restore of a job id that already exists");
  auto job = std::make_shared<Job>();
  job->id = id;
  job->session = session;
  job->spec = std::move(spec);
  job->label = job->spec.display_label();
  jobs_.emplace(id, job);
  if (next_id_ <= id) next_id_ = id + 1;
  ++submitted_;
  return job;
}

std::int64_t AdmissionQueue::restore_queued(std::int64_t id,
                                            std::uint64_t session,
                                            api::JobSpec spec,
                                            std::int64_t prior_runs) {
  std::lock_guard lock(mutex_);
  auto job = restore_locked(id, session, std::move(spec));
  job->runs = prior_runs;
  pending_[session].push_back(job);
  ++queued_;
  ++recovered_;
  work_cv_.notify_all();
  return job->id;
}

void AdmissionQueue::restore_done(std::int64_t id, std::uint64_t session,
                                  api::JobSpec spec, api::JobResult result) {
  std::lock_guard lock(mutex_);
  auto job = restore_locked(id, session, std::move(spec));
  job->state = JobState::kDone;
  job->result = std::move(result);
  ++completed_;
}

void AdmissionQueue::restore_failed(std::int64_t id, std::uint64_t session,
                                    api::JobSpec spec, std::string error,
                                    std::string error_code) {
  std::lock_guard lock(mutex_);
  auto job = restore_locked(id, session, std::move(spec));
  job->state = JobState::kFailed;
  job->error = std::move(error);
  job->error_code = std::move(error_code);
  ++failed_;
}

void AdmissionQueue::restore_cancelled(std::int64_t id, std::uint64_t session,
                                       api::JobSpec spec) {
  std::lock_guard lock(mutex_);
  auto job = restore_locked(id, session, std::move(spec));
  job->state = JobState::kCancelled;
  ++cancelled_;
}

bool AdmissionQueue::cancel(std::int64_t id, std::string& error) {
  std::lock_guard lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    error = str_printf("no such job %lld", static_cast<long long>(id));
    return false;
  }
  Job& job = *it->second;
  if (job.state != JobState::kQueued) {
    error = str_printf("job %lld is %s; only queued jobs can be cancelled",
                       static_cast<long long>(id), to_string(job.state));
    return false;
  }
  auto line = pending_.find(job.session);
  if (line != pending_.end()) {
    auto& deque = line->second;
    for (auto jt = deque.begin(); jt != deque.end(); ++jt) {
      if ((*jt)->id == id) {
        deque.erase(jt);
        break;
      }
    }
    if (deque.empty()) pending_.erase(line);
  }
  job.state = JobState::kCancelled;
  --queued_;
  ++cancelled_;
  done_cv_.notify_all();
  work_cv_.notify_all();
  return true;
}

JobSnapshot AdmissionQueue::snapshot_locked(const Job& job) const {
  JobSnapshot snap;
  snap.id = job.id;
  snap.session = job.session;
  snap.label = job.label;
  snap.state = job.state;
  snap.error = job.error;
  snap.error_code = job.error_code;
  snap.result = job.result;
  snap.dispatch_seq = job.dispatch_seq;
  snap.wall_ms = job.wall_ms;
  return snap;
}

std::optional<JobSnapshot> AdmissionQueue::snapshot(std::int64_t id) const {
  std::lock_guard lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return snapshot_locked(*it->second);
}

std::optional<JobSnapshot> AdmissionQueue::wait_terminal(std::int64_t id) {
  std::unique_lock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const std::shared_ptr<Job>& job = it->second;
  done_cv_.wait(lock,
                [this, &job] { return stopped_ || is_terminal(job->state); });
  return snapshot_locked(*job);
}

void AdmissionQueue::begin_drain() {
  std::lock_guard lock(mutex_);
  draining_ = true;
  work_cv_.notify_all();
  done_cv_.notify_all();
}

bool AdmissionQueue::draining() const {
  std::lock_guard lock(mutex_);
  return draining_;
}

bool AdmissionQueue::drained_locked() const {
  return draining_ && queued_ == 0 && running_ == 0;
}

void AdmissionQueue::wait_drained() {
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return stopped_ || drained_locked(); });
}

void AdmissionQueue::stop() {
  std::lock_guard lock(mutex_);
  stopped_ = true;
  work_cv_.notify_all();
  done_cv_.notify_all();
}

void AdmissionQueue::pause(bool paused) {
  std::lock_guard lock(mutex_);
  paused_ = paused;
  if (!paused_) work_cv_.notify_all();
}

QueueStats AdmissionQueue::stats() const {
  std::lock_guard lock(mutex_);
  QueueStats stats;
  stats.depth = queued_;
  stats.running = running_;
  stats.capacity = capacity_;
  stats.submitted = submitted_;
  stats.completed = completed_;
  stats.failed = failed_;
  stats.cancelled = cancelled_;
  stats.rejected = rejected_;
  stats.recovered = recovered_;
  stats.timed_out = timed_out_;
  stats.draining = draining_;
  return stats;
}

}  // namespace sdpm::service
