#include "service/store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <chrono>

#include "obs/metrics.h"
#include "service/telemetry.h"
#include "util/checksum.h"
#include "util/error.h"
#include "util/strings.h"

namespace sdpm::service {
namespace {

/// Records the enclosing scope's wall duration into a telemetry stage
/// (no-op with null telemetry — the standalone-store fast path).
class StageTimer {
 public:
  StageTimer(ServiceTelemetry* telemetry, Stage stage)
      : telemetry_(telemetry), stage_(stage),
        t0_(telemetry == nullptr ? std::chrono::steady_clock::time_point{}
                                 : std::chrono::steady_clock::now()) {}
  ~StageTimer() {
    if (telemetry_ == nullptr) return;
    telemetry_->record(stage_,
                       std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0_)
                           .count());
  }

 private:
  ServiceTelemetry* telemetry_;
  Stage stage_;
  std::chrono::steady_clock::time_point t0_;
};

// Entry file layout: 8-byte magic, 4-byte big-endian CRC32 of the payload,
// 4-byte big-endian payload length, payload bytes.
constexpr char kMagic[8] = {'S', 'D', 'P', 'M', 'S', 'T', 'O', '1'};
constexpr std::size_t kHeaderBytes = 16;

void put_u32_be(char* out, std::uint32_t v) {
  out[0] = static_cast<char>(v >> 24);
  out[1] = static_cast<char>(v >> 16);
  out[2] = static_cast<char>(v >> 8);
  out[3] = static_cast<char>(v);
}

std::uint32_t get_u32_be(const char* in) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(in[0]))
          << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[1]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[2]))
          << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[3]));
}

/// mkdir -p: create every missing component of `path`.
void make_dirs(const std::string& path) {
  std::string partial;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') continue;
    partial = path.substr(0, i);
    if (partial.empty() || partial == ".") continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      throw Error(str_printf("store: cannot create directory %s: %s",
                             partial.c_str(), std::strerror(errno)));
    }
  }
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    throw Error(str_printf("store: cannot create directory %s: %s",
                           path.c_str(), std::strerror(errno)));
  }
}

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::string data;
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    data.append(buffer, got);
  }
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  if (!ok) return std::nullopt;
  return data;
}

char hex_digit(unsigned v) {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return 10 + (c - 'a');
  if (c >= 'A' && c <= 'F') return 10 + (c - 'A');
  return -1;
}

std::string hex_u64(std::uint64_t v) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex_digit(v & 0xfu);
    v >>= 4;
  }
  return out;
}

}  // namespace

std::string StoreKey::hex() const { return hex_u64(hi) + hex_u64(lo); }

std::optional<StoreKey> StoreKey::from_hex(std::string_view hex) {
  if (hex.size() != 32) return std::nullopt;
  StoreKey key;
  for (int i = 0; i < 32; ++i) {
    const int v = hex_value(hex[static_cast<std::size_t>(i)]);
    if (v < 0) return std::nullopt;
    if (i < 16) {
      key.hi = (key.hi << 4) | static_cast<std::uint64_t>(v);
    } else {
      key.lo = (key.lo << 4) | static_cast<std::uint64_t>(v);
    }
  }
  return key;
}

StoreKey fingerprint_bytes(std::string_view bytes) {
  // Two SplitMix64-style lanes with distinct constants, the same mixing
  // discipline as experiments::trace_key_of; the byte length is mixed
  // first so "a" + "" and "" + "a" cannot collide via padding.
  const auto finalize = [](std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  std::uint64_t a = 0x243f6a8885a308d3ULL;
  std::uint64_t b = 0x13198a2e03707344ULL;
  const auto mix = [&](std::uint64_t v) {
    a = finalize((a ^ v) + 0x9e3779b97f4a7c15ULL);
    b = finalize((b + v) ^ 0xc2b2ae3d27d4eb4fULL);
  };
  mix(static_cast<std::uint64_t>(bytes.size()));
  std::size_t i = 0;
  while (i + 8 <= bytes.size()) {
    std::uint64_t word = 0;
    for (int k = 0; k < 8; ++k) {
      word |= static_cast<std::uint64_t>(
                  static_cast<unsigned char>(bytes[i + static_cast<std::size_t>(k)]))
              << (8 * k);
    }
    mix(word);
    i += 8;
  }
  std::uint64_t tail = 0;
  for (int k = 0; i + static_cast<std::size_t>(k) < bytes.size(); ++k) {
    tail |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(bytes[i + static_cast<std::size_t>(k)]))
            << (8 * k);
  }
  mix(tail);
  return StoreKey{a, b};
}

PersistentStore::PersistentStore(StoreOptions options)
    : options_(std::move(options)) {
  SDPM_REQUIRE(!options_.directory.empty(),
               "PersistentStore needs a directory");
  SDPM_REQUIRE(options_.max_bytes > 0, "store budget must be positive");
  const std::string objects = options_.directory + "/objects";
  make_dirs(objects);

  // Index existing entries, oldest-mtime first so the LRU list ends up
  // most-recent at the front.  Stale temp files from a crashed writer are
  // removed; anything else unrecognized is left alone.
  struct Found {
    StoreKey key;
    std::int64_t bytes = 0;
    std::int64_t mtime = 0;
    std::string name;  // mtime tie-breaker: deterministic order
  };
  std::vector<Found> found;
  DIR* dir = ::opendir(objects.c_str());
  if (dir == nullptr) {
    throw Error(str_printf("store: cannot scan %s: %s", objects.c_str(),
                           std::strerror(errno)));
  }
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    const std::string path = objects + "/" + name;
    if (name.rfind(".tmp_", 0) == 0) {
      ::unlink(path.c_str());
      continue;
    }
    if (name.size() != 36 || name.substr(32) != ".bin") continue;
    const auto key = StoreKey::from_hex(name.substr(0, 32));
    if (!key.has_value()) continue;
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) continue;
    const std::int64_t payload =
        std::max<std::int64_t>(0, st.st_size -
                                      static_cast<std::int64_t>(kHeaderBytes));
    found.push_back(Found{*key, payload, st.st_mtime, name});
  }
  ::closedir(dir);
  std::sort(found.begin(), found.end(), [](const Found& x, const Found& y) {
    return x.mtime != y.mtime ? x.mtime < y.mtime : x.name < y.name;
  });
  for (const Found& f : found) {
    lru_.push_front(Entry{f.key, f.bytes});
    index_.emplace(f.key, lru_.begin());
    bytes_ += f.bytes;
  }
  std::lock_guard lock(mutex_);
  evict_to_budget_locked();
  publish_gauges_locked();
}

std::string PersistentStore::object_path(const StoreKey& key) const {
  return options_.directory + "/objects/" + key.hex() + ".bin";
}

std::optional<std::string> PersistentStore::get(const StoreKey& key) {
  const StageTimer timer(options_.telemetry, Stage::kStoreGet);
  std::lock_guard lock(mutex_);
  auto& metrics = obs::MetricsRegistry::global();
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    metrics.add("store.misses");
    return std::nullopt;
  }
  const auto data = read_file(object_path(key));
  bool valid = data.has_value() && data->size() >= kHeaderBytes &&
               std::memcmp(data->data(), kMagic, sizeof(kMagic)) == 0;
  if (valid) {
    const std::uint32_t crc = get_u32_be(data->data() + 8);
    const std::uint32_t length = get_u32_be(data->data() + 12);
    valid = data->size() == kHeaderBytes + length &&
            crc32(std::string_view(*data).substr(kHeaderBytes)) == crc;
  }
  if (!valid) {
    quarantine_locked(key);
    ++misses_;
    metrics.add("store.misses");
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  metrics.add("store.hits");
  return data->substr(kHeaderBytes);
}

void PersistentStore::put(const StoreKey& key, std::string_view value) {
  const StageTimer timer(options_.telemetry, Stage::kStorePut);
  std::lock_guard lock(mutex_);
  const auto existing = index_.find(key);
  if (existing != index_.end()) {
    lru_.splice(lru_.begin(), lru_, existing->second);
    return;  // content-addressed: an entry's payload never changes
  }
  if (static_cast<std::int64_t>(value.size()) > options_.max_bytes) {
    return;  // larger than the whole budget: never storable
  }

  // Write temp-then-rename so a crash mid-write leaves no visible entry.
  const std::string temp = options_.directory + "/objects/" +
                           str_printf(".tmp_%ld_%llu",
                                      static_cast<long>(::getpid()),
                                      static_cast<unsigned long long>(
                                          ++temp_seq_));
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) {
    throw Error(str_printf("store: cannot create %s: %s", temp.c_str(),
                           std::strerror(errno)));
  }
  char header[kHeaderBytes];
  std::memcpy(header, kMagic, sizeof(kMagic));
  put_u32_be(header + 8, crc32(value));
  put_u32_be(header + 12, static_cast<std::uint32_t>(value.size()));
  bool ok = std::fwrite(header, 1, sizeof(header), file) == sizeof(header);
  ok = ok && (value.empty() ||
              std::fwrite(value.data(), 1, value.size(), file) ==
                  value.size());
  ok = std::fflush(file) == 0 && ok;
  std::fclose(file);
  if (!ok || ::rename(temp.c_str(), object_path(key).c_str()) != 0) {
    ::unlink(temp.c_str());
    throw Error(str_printf("store: cannot write entry %s: %s",
                           key.hex().c_str(), std::strerror(errno)));
  }

  lru_.push_front(Entry{key, static_cast<std::int64_t>(value.size())});
  index_.emplace(key, lru_.begin());
  bytes_ += static_cast<std::int64_t>(value.size());
  evict_to_budget_locked();
  publish_gauges_locked();
}

bool PersistentStore::contains(const StoreKey& key) const {
  std::lock_guard lock(mutex_);
  return index_.count(key) > 0;
}

void PersistentStore::quarantine_locked(const StoreKey& key) {
  const std::string path = object_path(key);
  const std::string corrupt =
      options_.directory + "/objects/" + key.hex() + ".corrupt";
  if (::rename(path.c_str(), corrupt.c_str()) != 0) {
    ::unlink(path.c_str());  // rename failed (e.g. ENOENT): best effort
  }
  erase_index_locked(key);
  ++corrupt_;
  obs::MetricsRegistry::global().add("store.corrupt_evictions");
  publish_gauges_locked();
}

void PersistentStore::erase_index_locked(const StoreKey& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  bytes_ -= it->second->bytes;
  lru_.erase(it->second);
  index_.erase(it);
}

void PersistentStore::evict_to_budget_locked() {
  while (bytes_ > options_.max_bytes && !lru_.empty()) {
    const StoreKey victim = lru_.back().key;
    ::unlink(object_path(victim).c_str());
    erase_index_locked(victim);
    ++evictions_;
    obs::MetricsRegistry::global().add("store.evictions");
  }
}

void PersistentStore::publish_gauges_locked() const {
  auto& metrics = obs::MetricsRegistry::global();
  metrics.set_gauge("store.entries", static_cast<double>(index_.size()));
  metrics.set_gauge("store.bytes", static_cast<double>(bytes_));
}

StoreStats PersistentStore::stats() const {
  std::lock_guard lock(mutex_);
  StoreStats stats;
  stats.entries = index_.size();
  stats.bytes = bytes_;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.corrupt_evictions = corrupt_;
  return stats;
}

}  // namespace sdpm::service
