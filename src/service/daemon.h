// ServiceDaemon: the long-running core of sdpm_serviced.
//
// Thread structure:
//   accept thread      blocks in accept(2) on the Unix socket, spawns one
//                      handler thread per connection.
//   handler threads    one per connection; read one request frame, execute
//                      the op, write one response frame, in order.  Blocking
//                      ops (result with wait) only block their own
//                      connection.
//   dispatcher thread  pops admission-queue batches and evaluates each
//                      batch as ONE api::Session::run_batch sweep dispatch,
//                      so compatible cells share the process-wide TraceCache
//                      and the thread pool.  When a batch throws, the
//                      dispatcher falls back to per-job Session::run so the
//                      failure is attributed to the job that caused it and
//                      the rest of the batch still completes.
//
// Shutdown: request_drain() closes admission but keeps serving queries;
// request_shutdown() additionally ends the daemon once the queue is
// drained — wait() then returns with every admitted job in a terminal
// state (the lossless-drain guarantee the SIGTERM path relies on).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "service/journal.h"
#include "service/protocol.h"
#include "service/queue.h"
#include "service/store.h"
#include "service/telemetry.h"

namespace sdpm::obs {
class EventTracer;
class StructuredLog;
}

namespace sdpm::service {

struct DaemonOptions {
  std::string socket_path;
  /// Admission-queue capacity (queued jobs; running jobs do not count).
  std::size_t queue_capacity = 256;
  /// Maximum jobs evaluated per sweep dispatch.
  std::size_t max_batch = 16;
  /// Worker threads for the shared Session; 0 = default_jobs().
  unsigned jobs = 0;
  /// Per-job span tracer (not owned).  Spans are timestamped in wall
  /// milliseconds since the daemon started.
  obs::EventTracer* tracer = nullptr;
  /// Durability root.  When non-empty, start() opens
  /// `<state_dir>/journal.bin` (write-ahead job journal) and
  /// `<state_dir>/store` (persistent result store), replays the journal,
  /// and re-queues every admitted-but-incomplete job exactly once.  Empty
  /// = fully in-memory (the pre-durability behavior).
  std::string state_dir;
  /// Per-job wall-clock deadline in ms; 0 disables the watchdog.  A
  /// running job that overruns is failed with JOB_TIMEOUT.
  double job_timeout_ms = 0;
  /// A recovered job whose journal shows this many dispatches without a
  /// completion is quarantined (failed with QUARANTINED) instead of
  /// re-queued — a poison job cannot crash-loop the daemon forever.
  int max_attempts = 3;
  /// Payload-byte budget of the persistent store.
  std::int64_t store_max_bytes = 256ll << 20;
  /// Per-connection frame cap (request and response).  Tests shrink it to
  /// exercise FRAME_TOO_LARGE / RESULT_TOO_LARGE without 16 MB payloads.
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
  /// fsync the journal after every append (power-cut durability).
  bool fsync_journal = false;
  /// Structured JSONL logger for lifecycle diagnostics (not owned); null
  /// keeps the daemon silent (the pre-logging behavior).
  obs::StructuredLog* log = nullptr;
  /// When non-empty, a background thread writes the telemetry snapshot
  /// JSON to this path every `telemetry_interval_ms`, plus once at
  /// shutdown (atomic temp+rename, so scrapers never read a torn file).
  std::string telemetry_dump;
  double telemetry_interval_ms = 1000;
};

class ServiceDaemon {
 public:
  explicit ServiceDaemon(DaemonOptions options);
  ~ServiceDaemon();

  ServiceDaemon(const ServiceDaemon&) = delete;
  ServiceDaemon& operator=(const ServiceDaemon&) = delete;

  /// Bind the socket and start the accept + dispatcher threads.  Throws
  /// sdpm::Error when the socket cannot be bound.
  void start();

  /// Close admission; everything already admitted still runs.
  void request_drain();

  /// Drain, then end the daemon once no queued or running job remains.
  void request_shutdown();

  /// Block until request_shutdown() (local or via the "shutdown" op) has
  /// completed: queue drained, dispatcher exited, connections closed.
  void wait();

  /// True once wait() would return immediately.
  bool done() const { return done_.load(std::memory_order_acquire); }

  /// True once request_shutdown() was called (locally or via the
  /// "shutdown" op); the main thread polls this before calling wait().
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  const std::string& socket_path() const { return options_.socket_path; }
  AdmissionQueue& queue() { return queue_; }
  /// The persistent store, or nullptr when state_dir is empty.
  PersistentStore* store() { return store_.get(); }
  /// Per-stage latency histograms and per-client aggregates (always on;
  /// stamping a stage is an uncontended lock + one bucket increment).
  ServiceTelemetry& telemetry() { return telemetry_; }
  /// The journal, or nullptr when state_dir is empty.
  Journal* journal() { return journal_.get(); }

 private:
  void accept_loop();
  void handle_connection(int fd, std::uint64_t session_id);
  void dispatch_loop();
  void watchdog_loop();
  void telemetry_dump_loop();
  void dump_telemetry();
  void run_batch_jobs(const std::vector<std::shared_ptr<Job>>& batch,
                      double pop_ms);
  Json handle_request(const Json& request, std::uint64_t session_id);
  double wall_ms_now() const;
  void close_listener();
  void open_state();  ///< open store + journal, replay, restore the queue
  void finish_job(const std::shared_ptr<Job>& job, api::JobResult result,
                  double wall_ms);
  void finish_job_failed(const std::shared_ptr<Job>& job, std::string error,
                         double wall_ms, const char* code);
  void record_outcome(const std::shared_ptr<Job>& job, bool ok);
  void emit_stage(const std::shared_ptr<Job>& job, const char* stage,
                  double t0, double t1);

  DaemonOptions options_;
  AdmissionQueue queue_;
  api::Session session_;
  ServiceTelemetry telemetry_;
  std::unique_ptr<PersistentStore> store_;
  std::unique_ptr<Journal> journal_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::thread watchdog_thread_;
  std::thread telemetry_thread_;
  std::atomic<bool> watchdog_stop_{false};
  std::atomic<bool> telemetry_stop_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> done_{false};
  std::int64_t start_ns_ = 0;  ///< steady-clock epoch for span timestamps

  std::mutex conn_mutex_;
  std::uint64_t next_session_ = 1;
  std::map<std::uint64_t, int> conn_fds_;           ///< open connections
  std::vector<std::thread> conn_threads_;           ///< joined in wait()
  bool accepting_ = true;                           ///< guarded by conn_mutex_
};

}  // namespace sdpm::service
