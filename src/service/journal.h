// Write-ahead job journal: the crash-safety log of sdpm_serviced.
//
// Every admission-queue transition is appended as one length-prefixed,
// CRC32-checksummed record:
//
//   +-----------------+----------------+------ body ------------------+
//   | u32 BE body len | u32 BE CRC32   | u8 type | u64 id | u64 sess  |
//   +-----------------+----------------+ u64 wall_ms | u32 len | data |
//
// after an 8-byte file magic ("SDPMJNL1").  Types: ADMIT (data = the
// spec's canonical JSON), DISPATCH (empty), COMPLETE (data = a small JSON
// record: {"state":"done","store":<hex key>} or
// {"state":"failed","code":...,"error":...}), CANCEL (empty).  wall_ms is
// a wall-clock timestamp for operators only — replay never reads it.
//
// RECOVERY SEMANTICS (pinned by tests/test_journal.cpp and the chaos
// harness):
//   - replay() scans records until EOF or the first invalid record (bad
//     length, bad CRC, short read).  A torn tail — the normal result of a
//     crash mid-append — is TRUNCATED at the last valid record boundary,
//     not fatal.  A file with a bad magic is treated as empty.
//   - A job with an ADMIT but no terminal record is recovered for
//     EXACTLY-ONCE re-queueing, carrying the number of DISPATCH records
//     seen so the daemon can quarantine poison jobs (a job that keeps
//     killing the daemon accumulates dispatches without completions).
//   - Terminal jobs are recovered with their outcome so completed work
//     stays queryable across a restart (results themselves live in the
//     PersistentStore, addressed by the COMPLETE record's store key).
//
// open() replays, then COMPACTS: the file is atomically rewritten to hold
// only live state (every incomplete job, and the most recent
// keep_terminal terminal jobs), so the journal stays bounded across
// restarts instead of growing forever.
//
// All appends are serialized by an internal mutex; handlers, the
// dispatcher and the watchdog append concurrently.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sdpm::service {

class ServiceTelemetry;

enum class JournalRecordType : std::uint8_t {
  kAdmit = 1,
  kDispatch = 2,
  kComplete = 3,
  kCancel = 4,
};

/// One job's state as reconstructed by replay.
struct ReplayedJob {
  std::int64_t id = 0;
  std::uint64_t session = 0;
  std::string spec_json;      ///< canonical JobSpec document
  std::int64_t dispatches = 0;

  enum class Outcome { kIncomplete, kDone, kFailed, kCancelled };
  Outcome outcome = Outcome::kIncomplete;
  std::string store_key;   ///< kDone: hex key of the result in the store
  std::string error;       ///< kFailed
  std::string error_code;  ///< kFailed
};

struct JournalReplay {
  std::vector<ReplayedJob> jobs;  ///< in admission (id) order
  std::int64_t max_id = 0;
  std::size_t records = 0;        ///< valid records replayed
  bool truncated_tail = false;    ///< a torn/corrupt tail was cut off
};

struct JournalOptions {
  std::string path;
  /// fsync after every append.  Off by default: the chaos model is a
  /// crashed/SIGKILLed daemon (page cache survives), not a power cut.
  bool fsync_each = false;
  /// Terminal jobs kept through compaction, newest first; bounds the
  /// journal across restarts while keeping recent results queryable.
  std::size_t keep_terminal = 1024;
  /// When set (not owned), every append self-times into the
  /// journal_append stage (and the fsync portion into journal_fsync).
  ServiceTelemetry* telemetry = nullptr;
};

/// Lifetime health counters, surfaced by the daemon's `stats` op.
struct JournalStats {
  std::int64_t appends = 0;
  std::int64_t fsyncs = 0;
  std::int64_t compactions = 0;
  std::int64_t torn_tail_truncations = 0;
};

class Journal {
 public:
  explicit Journal(JournalOptions options);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Replay the existing file (if any), compact it to live state, and
  /// leave it open for appends.  Throws sdpm::Error on I/O errors that
  /// are not torn tails (e.g. an unwritable directory).
  JournalReplay open();

  void admit(std::int64_t id, std::uint64_t session,
             const std::string& spec_json);
  void dispatch(std::int64_t id);
  void complete_done(std::int64_t id, const std::string& store_key_hex);
  void complete_failed(std::int64_t id, const std::string& code,
                       const std::string& error);
  void cancel(std::int64_t id);

  void close();
  const std::string& path() const { return options_.path; }

  JournalStats stats() const;

 private:
  void append_locked(JournalRecordType type, std::int64_t id,
                     std::uint64_t session, const std::string& payload);
  void append(JournalRecordType type, std::int64_t id,
              const std::string& payload);

  JournalOptions options_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  JournalStats stats_;  ///< guarded by mutex_
};

}  // namespace sdpm::service
