// Blocking client for sdpm_serviced: one connection, one request frame in
// flight at a time (the protocol is strict request/response, so a client
// that wants concurrency opens more connections).
//
// Retry discipline: transient failures — a daemon that has not bound its
// socket yet (connect_attempts > 1) and backpressure rejections (submit)
// — are retried with exponential backoff plus deterministic, seeded
// jitter.  Jitter decorrelates a fleet of clients hammering a restarting
// daemon; seeding it keeps the retry schedule reproducible under test.
//
// The JSON-level request() escape hatch is public on purpose: the typed
// helpers cover the CLI's needs, tests poke edge cases through raw frames.
#pragma once

#include <cstdint>
#include <string>

#include "api/job_spec.h"
#include "service/protocol.h"
#include "util/json.h"
#include "util/rng.h"

namespace sdpm::service {

struct ClientOptions {
  /// Connect attempts before giving up.  1 = fail fast (the historical
  /// behavior); larger values ride out a daemon that is restarting and
  /// replaying its journal.
  int connect_attempts = 1;
  double backoff_base_ms = 5;
  double backoff_cap_ms = 500;
  /// Seed of the jitter stream (SplitMix64); never a wall clock.
  std::uint64_t jitter_seed = 0x5d9f2e3b4c1a7081ull;
};

class Client {
 public:
  /// Connect to the daemon at `socket_path`; throws sdpm::Error when the
  /// daemon is not listening (after options.connect_attempts tries).
  explicit Client(const std::string& socket_path,
                  ClientOptions options = ClientOptions{});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One request/response round trip.  Throws on socket errors; protocol
  /// errors come back as {"ok":false,...} responses, not exceptions.
  Json request(const Json& message);

  /// Typed helpers.  All throw sdpm::Error on an {"ok":false} response
  /// except try_submit, which surfaces the rejection to the caller.
  Json ping();

  /// Submit; returns the job id, or 0 with `error`/`retryable` set.
  /// `trace` (when active) rides along on the wire so the daemon stitches
  /// this job's service lifecycle into the client's distributed trace.
  std::int64_t try_submit(const api::JobSpec& spec, std::string& error,
                          bool& retryable,
                          const TraceContext& trace = TraceContext{});

  /// Submit with bounded exponential backoff + jitter on backpressure
  /// (retryable rejections).  Throws after `max_attempts` rejections or
  /// on any non-retryable error.
  std::int64_t submit(const api::JobSpec& spec, int max_attempts = 8,
                      const TraceContext& trace = TraceContext{});

  /// Job snapshot as the daemon rendered it ({"id","state","label",...}).
  Json status(std::int64_t id);

  /// Snapshot; with wait=true blocks until the job is terminal.
  Json result(std::int64_t id, bool wait);

  void cancel(std::int64_t id);
  Json stats();
  /// Per-stage latency histograms + rolling rates; with prometheus=true
  /// the response includes a "text" exposition rendering.
  Json telemetry(bool prometheus = false);
  void drain();
  void shutdown();

 private:
  Json expect_ok(Json response) const;
  /// backoff_base_ms * 2^attempt (capped), plus up to 50% seeded jitter.
  double backoff_ms(int attempt);

  std::string socket_path_;
  ClientOptions options_;
  SplitMix64 jitter_;
  int fd_ = -1;
};

}  // namespace sdpm::service
