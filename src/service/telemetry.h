// Service telemetry: per-stage latency histograms, rolling rates and
// per-client aggregates for sdpm_serviced.
//
// Every job's lifecycle is stamped into a fixed set of stages:
//
//   admit           handling time of the submit op (parse, validate,
//                   journal ADMIT, enqueue)
//   queue_wait      admission -> dispatcher pop
//   dispatch        pop -> evaluation start (DISPATCH journaling for the
//                   whole batch)
//   eval            evaluation wall time (store hits count too; their
//                   eval is the store get)
//   respond         response serialization + socket write of any op
//   e2e             admission -> terminal state (done or failed); the
//                   latency a client actually observes
//   journal_append / journal_fsync, store_get / store_put
//                   durability-layer self-timings
//
// All recording entry points are thread-safe (obs::LatencyHistogram
// shards; the client table takes a mutex per terminal transition, never
// per request).  Timestamps come from the caller — the daemon's monotonic
// wall_ms clock — so this module reads no clock itself.
//
// Null fast path: call sites that may run without telemetry go through
// the static `record_if(t, stage, ms)` helpers, which reduce to one
// branch when `t` is null — the same contract as obs::effective_tracer
// (bench: BM_ServiceTelemetryOverhead).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/latency.h"
#include "obs/rolling.h"
#include "util/histogram.h"
#include "util/json.h"

namespace sdpm::service {

enum class Stage {
  kAdmit = 0,
  kQueueWait,
  kDispatch,
  kEval,
  kRespond,
  kEndToEnd,
  kJournalAppend,
  kJournalFsync,
  kStoreGet,
  kStorePut,
  kCount,  // sentinel
};

const char* to_string(Stage stage);

class ServiceTelemetry {
 public:
  ServiceTelemetry();

  ServiceTelemetry(const ServiceTelemetry&) = delete;
  ServiceTelemetry& operator=(const ServiceTelemetry&) = delete;

  /// Record one latency sample for `stage`.  Thread-safe, lock-striped.
  void record(Stage stage, double ms);

  /// Null-safe helper for call sites whose telemetry pointer may be
  /// absent (standalone Journal/PersistentStore users): one predictable
  /// branch when `t` is null.
  static void record_if(ServiceTelemetry* t, Stage stage, double ms) {
    if (t != nullptr) t->record(stage, ms);
  }

  /// One job admitted for `session` at `now_ms` (per-client submitted
  /// count + admission rate window).
  void record_admit(std::uint64_t session, double now_ms);

  /// One job reached a terminal evaluated state: records the e2e stage,
  /// the per-client aggregate and the completion rate window.
  void record_outcome(std::uint64_t session, double e2e_ms, bool ok,
                      double now_ms);

  /// Merged quantiles for one stage.
  obs::LatencyHistogram::Quantiles stage_quantiles(Stage stage) const;

  /// Deterministically-keyed snapshot for the `telemetry` op /
  /// --telemetry-dump:
  ///   {"stages":{name:{count,mean_ms,p50_ms,p90_ms,p99_ms,p999_ms,max_ms}},
  ///    "windows":{"admissions":{"1s":{count,rate_per_sec},...},
  ///               "completions":{...}},
  ///    "clients":{"<session>":{submitted,completed,failed,e2e_ms:{...}}}}
  Json to_json(double now_ms) const;

  /// Prometheus text exposition: the global MetricsRegistry snapshot plus
  /// one summary per stage (sdpm_service_stage_latency_ms{stage="..."}).
  std::string prometheus_text() const;

 private:
  struct ClientAgg {
    std::int64_t submitted = 0;
    std::int64_t completed = 0;
    std::int64_t failed = 0;
    Histogram e2e_ms{1e-3, 1.25};
  };

  std::array<obs::LatencyHistogram, static_cast<std::size_t>(Stage::kCount)>
      stages_;
  obs::RollingWindow admissions_{60};
  obs::RollingWindow completions_{60};
  mutable std::mutex clients_mutex_;
  std::map<std::uint64_t, ClientAgg> clients_;
};

}  // namespace sdpm::service
